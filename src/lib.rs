//! # presence
//!
//! A faithful, production-quality reproduction of *"Are You Still There? —
//! A Lightweight Algorithm To Monitor Node Presence in Self-Configuring
//! Networks"* (Bohnenkamp, Gorter, Guidi, Katoen; DSN 2005), packaged as a
//! facade over the workspace crates:
//!
//! * [`core`] (`presence-core`) — the SAPP and DCPP probe protocols as
//!   sans-io state machines, plus baseline failure detectors;
//! * [`des`] (`presence-des`) — the deterministic discrete-event simulation
//!   engine (the MODEST/MÖBIUS substitute);
//! * [`net`] (`presence-net`) — delay models, loss models, bounded buffers,
//!   and the network fabric;
//! * [`stats`] (`presence-stats`) — batch means, confidence intervals,
//!   histograms, time series, fairness indices;
//! * [`sim`] (`presence-sim`) — scenarios, churn workloads, and one
//!   experiment preset per paper figure/claim;
//! * [`trace`] (`presence-trace`) — Chrome/Perfetto trace export,
//!   validation, and the `spotter` analytics;
//! * [`runtime`] (`presence-runtime`) — wall-clock hosts running the same
//!   state machines over UDP.
//!
//! ## Thirty-second tour
//!
//! ```
//! use presence::sim::{Protocol, Scenario, ScenarioConfig};
//!
//! // Run the paper's protagonist (DCPP) with 10 control points for a
//! // virtual minute and check the device load stayed at its budget.
//! let cfg = ScenarioConfig::paper_defaults(Protocol::dcpp_paper(), 10, 60.0, 42);
//! let mut scenario = Scenario::build(cfg);
//! scenario.run();
//! let result = scenario.collect();
//! assert!(result.device_probes > 0);
//! assert!(result.fairness_jain > 0.9); // DCPP is fair by construction
//! ```
//!
//! See `examples/` for runnable scenarios (including a live UDP demo) and
//! `crates/bench/src/bin/` for the binaries that regenerate every figure
//! and in-text number of the paper's evaluation. `EXPERIMENTS.md` records
//! paper-vs-measured for each.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use presence_core as core;
pub use presence_des as des;
pub use presence_net as net;
pub use presence_runtime as runtime;
pub use presence_sim as sim;
pub use presence_stats as stats;
pub use presence_trace as trace;
