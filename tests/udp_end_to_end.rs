//! End-to-end tests over real loopback UDP sockets: both protocols, real
//! threads, real timers — the deployment configuration, not the simulator.

use presence::core::{
    CpId, DcppConfig, DcppCp, DeviceId, ProbeCycleConfig, SappConfig, SappCp, SappDeviceConfig,
};
use presence::des::SimDuration;
use presence::runtime::{
    run_cp, run_device, CpOutcome, DeviceHost, StopFlag, SystemClock, UdpTransport,
};
use std::thread;
use std::time::Duration;

fn spawn_device(
    host: DeviceHost,
    stop: &StopFlag,
) -> (std::net::SocketAddr, thread::JoinHandle<DeviceHost>) {
    let transport = UdpTransport::server("127.0.0.1:0").expect("bind device");
    let addr = transport.local_addr().expect("addr");
    let stop = stop.clone();
    let handle = thread::spawn(move || {
        let clock = SystemClock::new();
        run_device(host, transport, &clock, &stop)
    });
    (addr, handle)
}

#[test]
fn dcpp_over_udp_many_cps() {
    // Scaled-down timing: device takes 100 probes/s, CPs wait ≥ 40 ms.
    let mut cfg = DcppConfig::paper_default();
    cfg.delta_min = SimDuration::from_millis(10);
    cfg.d_min = SimDuration::from_millis(40);

    let stop = StopFlag::new();
    let (addr, device) = spawn_device(
        DeviceHost::Dcpp(presence::core::DcppDevice::new(DeviceId(0), cfg)),
        &stop,
    );

    let mut cps: Vec<thread::JoinHandle<CpOutcome>> = Vec::new();
    for i in 0..5u32 {
        let transport = UdpTransport::client("127.0.0.1:0", addr).expect("bind cp");
        let prober = DcppCp::new(CpId(i), cfg);
        let stop = stop.clone();
        cps.push(thread::spawn(move || {
            let clock = SystemClock::new();
            run_cp(prober, transport, &clock, &stop)
        }));
    }

    thread::sleep(Duration::from_millis(800));
    stop.stop();
    let device = device.join().expect("device thread");

    let mut total_cycles = 0;
    for cp in cps {
        let outcome = cp.join().expect("cp thread");
        assert!(outcome.device_absent_at.is_none(), "false verdict over UDP");
        total_cycles += outcome.cycles_succeeded;
    }
    assert!(
        total_cycles >= 20,
        "only {total_cycles} cycles across 5 CPs in 800 ms"
    );
    assert!(device.probes_received() >= total_cycles);
}

#[test]
fn sapp_over_udp_adapts_and_detects_crash() {
    // SAPP CP against a SAPP device; after 500 ms the device dies and the
    // CP must detect within δ + TOF + 3·TOS.
    let cp_cfg = SappConfig {
        // Slow the greedy start slightly so the wall-clock run is gentle.
        initial_delay: SimDuration::from_millis(30),
        delta_min: SimDuration::from_millis(30),
        ..SappConfig::paper_default()
    };
    let dev_cfg = SappDeviceConfig::paper_default();

    let stop = StopFlag::new();
    let (addr, device) = spawn_device(
        DeviceHost::Sapp(presence::core::SappDevice::new(DeviceId(0), dev_cfg)),
        &stop,
    );

    let transport = UdpTransport::client("127.0.0.1:0", addr).expect("bind cp");
    let prober = SappCp::new(CpId(0), cp_cfg);
    let cp_stop = StopFlag::new();
    let cp = thread::spawn(move || {
        let clock = SystemClock::new();
        run_cp(prober, transport, &clock, &cp_stop)
    });

    thread::sleep(Duration::from_millis(500));
    stop.stop(); // kill the device only; the CP keeps probing
    let device = device.join().expect("device thread");
    assert!(device.probes_received() > 3, "device barely probed");

    let outcome = cp.join().expect("cp thread");
    assert!(
        outcome.device_absent_at.is_some(),
        "CP never noticed the crash"
    );
    assert!(outcome.cycles_succeeded > 3);
}

#[test]
fn udp_cp_survives_garbage_datagrams() {
    // A hostile or buggy peer sprays garbage at the CP's socket; the codec
    // must drop it and the protocol proceed unharmed.
    let mut cfg = DcppConfig::paper_default();
    cfg.delta_min = SimDuration::from_millis(10);
    cfg.d_min = SimDuration::from_millis(30);
    cfg.cycle = ProbeCycleConfig::paper_default();

    let stop = StopFlag::new();
    let (addr, device) = spawn_device(
        DeviceHost::Dcpp(presence::core::DcppDevice::new(DeviceId(0), cfg)),
        &stop,
    );

    let transport = UdpTransport::client("127.0.0.1:0", addr).expect("bind cp");
    let cp_local = transport.local_addr().expect("local");
    let prober = DcppCp::new(CpId(0), cfg);
    let cp_stop = stop.clone();
    let cp = thread::spawn(move || {
        let clock = SystemClock::new();
        run_cp(prober, transport, &clock, &cp_stop)
    });

    // Garbage sprayer.
    let noise = std::net::UdpSocket::bind("127.0.0.1:0").expect("noise socket");
    for i in 0..200u8 {
        let _ = noise.send_to(&[0xff, i, i, i, i, i], cp_local);
        if i % 50 == 0 {
            thread::sleep(Duration::from_millis(10));
        }
    }

    thread::sleep(Duration::from_millis(400));
    stop.stop();
    let outcome = cp.join().expect("cp thread");
    let _ = device.join().expect("device thread");
    assert!(
        outcome.device_absent_at.is_none(),
        "garbage datagrams tricked the CP into a verdict"
    );
    assert!(
        outcome.cycles_succeeded >= 5,
        "garbage stalled the protocol: {} cycles",
        outcome.cycles_succeeded
    );
}
