//! Acceptance suite for the scenario lab.
//!
//! * Every shipped `catalog/*.json` file parses, validates, matches its
//!   built-in definition, and runs green.
//! * The paper-trio catalog entries reproduce the existing golden
//!   `ScenarioResult` trajectories **bit-for-bit** (same fixtures the
//!   single-hop golden suite pins) — the declarative layer lowers onto
//!   the engine without perturbing it.
//! * The mixed-regime acceptance scenario (delay + loss + churn all
//!   switching mid-run) produces per-regime metric slices and is
//!   byte-identical across worker counts.
//! * The new churn generators behave as specified (flash crowds peak and
//!   drain; diurnal populations follow the sinusoid band).

use presence::sim::{
    builtin_catalog, mega_catalog, run_lab, ChurnActor, ChurnModel, ChurnPhase, CpSummary,
    MegaSpec, ScenarioSpec,
};
use serde::{Deserialize, Serialize};
use std::path::PathBuf;

fn catalog_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("catalog")
}

fn shipped_specs() -> Vec<ScenarioSpec> {
    let mut specs = Vec::new();
    let mut paths: Vec<PathBuf> = std::fs::read_dir(catalog_dir())
        .expect("catalog/ exists")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("json"))
        .collect();
    paths.sort();
    for path in paths {
        let text = std::fs::read_to_string(&path).expect("catalog file readable");
        let spec =
            ScenarioSpec::from_json(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert_eq!(
            path.file_stem().and_then(|s| s.to_str()),
            Some(spec.name.as_str()),
            "file stem must match the spec name"
        );
        specs.push(spec);
    }
    specs
}

/// The shipped `catalog/mega/*.json` files are exactly the built-in
/// mega definitions — regenerating with `lab --emit-catalog catalog` is
/// the only way to change them.
#[test]
fn mega_catalog_files_match_builtin_definitions() {
    let mega_dir = catalog_dir().join("mega");
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&mega_dir)
        .expect("catalog/mega/ exists")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("json"))
        .collect();
    // Sort by stem, not path: "mega-1m.json" > "mega-1m-lossy.json" as
    // paths ('.' > '-') but "mega-1m" < "mega-1m-lossy" as names.
    paths.sort_by_key(|p| p.file_stem().map(std::ffi::OsStr::to_os_string));
    let mut builtins = mega_catalog();
    builtins.sort_by(|a, b| a.name.cmp(&b.name));
    assert_eq!(
        paths.len(),
        builtins.len(),
        "mega catalog file count drifted from the built-ins"
    );
    for (path, builtin) in paths.iter().zip(&builtins) {
        let text = std::fs::read_to_string(path).expect("mega catalog file readable");
        let spec: MegaSpec =
            serde_json::from_str(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert_eq!(
            path.file_stem().and_then(|s| s.to_str()),
            Some(spec.name.as_str()),
            "file stem must match the spec name"
        );
        assert_eq!(&spec, builtin, "{} drifted from its built-in", builtin.name);
        spec.config.validate();
    }
}

/// The files on disk are exactly the built-in definitions — regenerating
/// with `lab --emit-catalog catalog` is the only way to change them.
#[test]
fn catalog_files_match_builtin_definitions() {
    let shipped = shipped_specs();
    let mut builtins = builtin_catalog();
    builtins.sort_by(|a, b| a.name.cmp(&b.name));
    assert_eq!(
        shipped.len(),
        builtins.len(),
        "catalog file count drifted from the built-ins"
    );
    for (file, builtin) in shipped.iter().zip(&builtins) {
        assert_eq!(file, builtin, "{} drifted from its built-in", builtin.name);
    }
}

/// Every catalog entry runs green end to end and reports a load sample in
/// every regime window (populations and fairness may legitimately vanish
/// in a full-partition window).
#[test]
fn every_catalog_entry_runs_green() {
    for spec in shipped_specs() {
        let report = run_lab(&spec, &[1], 1).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        assert_eq!(report.windows.len(), spec.regime_windows().len());
        assert!(
            !report.per_seed.is_empty() && report.per_seed[0].events_processed > 0,
            "{}: no events processed",
            spec.name
        );
        for slice in &report.slices {
            assert!(
                slice.load_mean.is_some(),
                "{}: window [{}, {}) has no load samples",
                spec.name,
                slice.start,
                slice.end
            );
        }
    }
}

/// Every `ScenarioResult` field except `events_processed` (and counters
/// introduced after the fixtures were recorded) — the same shape the
/// golden-equivalence suite compares.
#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct TrajectoryMetrics {
    duration: f64,
    device_probes: u64,
    load_series: Vec<(f64, f64)>,
    load_mean: f64,
    load_variance: f64,
    mean_buffer_occupancy: Option<f64>,
    messages_offered: u64,
    messages_dropped_overflow: u64,
    messages_dropped_loss: u64,
    population_series: Vec<(f64, f64)>,
    cps: Vec<CpSummary>,
    fairness_jain: f64,
}

/// The paper-trio catalog entries replay the recorded golden fixtures
/// bit-for-bit: lowering a spec through the lab is trajectory-neutral.
#[test]
fn paper_trio_catalog_entries_match_golden_fixtures() {
    for (entry, fixture) in [
        ("paper-sapp", "sapp"),
        ("paper-dcpp", "dcpp"),
        ("paper-churn", "churn"),
    ] {
        let spec = shipped_specs()
            .into_iter()
            .find(|s| s.name == entry)
            .unwrap_or_else(|| panic!("catalog entry {entry} missing"));
        let mut scenario = spec.build().expect("paper spec builds");
        scenario.run();
        let result = scenario.collect();
        let fresh: TrajectoryMetrics =
            serde_json::from_str(&serde_json::to_string(&result).expect("result serialises"))
                .expect("result narrows");

        let path = format!("{}/tests/golden/{fixture}.json", env!("CARGO_MANIFEST_DIR"));
        let golden: TrajectoryMetrics =
            serde_json::from_str(&std::fs::read_to_string(&path).expect("fixture readable"))
                .expect("fixture deserialises");
        assert_eq!(
            serde_json::to_string(&fresh).unwrap(),
            serde_json::to_string(&golden).unwrap(),
            "{entry}: catalog spec diverged from the recorded golden run"
        );
    }
}

/// The acceptance scenario: all three regimes switch mid-run, slices are
/// produced for every window, and the report is byte-identical at any
/// worker count.
#[test]
fn mixed_regime_slices_and_is_jobs_invariant() {
    let spec = shipped_specs()
        .into_iter()
        .find(|s| s.name == "mixed-regime-stress")
        .expect("acceptance scenario shipped");
    assert!(spec.delay.len() > 1 && spec.loss.len() > 1 && spec.churn.len() > 1);
    let seeds = [1, 2, 3];
    let serial = run_lab(&spec, &seeds, 1).expect("serial run");
    for jobs in [2, 4] {
        let parallel = run_lab(&spec, &seeds, jobs).expect("parallel run");
        assert_eq!(
            serde_json::to_string(&serial).unwrap(),
            serde_json::to_string(&parallel).unwrap(),
            "lab report diverged at --jobs {jobs}"
        );
    }
    assert!(serial.windows.len() >= 5, "windows: {:?}", serial.windows);
    // The loss storm must actually have dropped traffic…
    assert!(serial.per_seed.iter().all(|s| s.messages_dropped_loss > 0));
    // …and the churn switches must have been applied.
    let mut scenario = spec.build().expect("builds");
    scenario.run();
    let churn = scenario.churn_actor();
    let actor = scenario
        .sim_mut()
        .actor::<ChurnActor>(churn)
        .expect("churn actor");
    assert_eq!(
        actor.switches_applied(),
        (spec.churn.len() - 1) as u64,
        "every churn boundary applies exactly one switch"
    );
}

/// Flash crowds surge to the configured peak and drain back.
#[test]
fn flash_crowd_peaks_and_drains() {
    let spec = shipped_specs()
        .into_iter()
        .find(|s| s.name == "flash-crowd")
        .expect("flash-crowd shipped");
    let ChurnModel::FlashCrowd { peak, .. } = spec.churn[0].churn else {
        panic!("flash-crowd entry must use the FlashCrowd model");
    };
    let mut scenario = spec.build().expect("builds");
    scenario.run();
    let result = scenario.collect();
    let populations: Vec<f64> = result.population_series.iter().map(|&(_, p)| p).collect();
    let max = populations.iter().copied().fold(f64::NAN, f64::max);
    assert_eq!(max, f64::from(peak), "wave must reach the peak");
    let last = *populations.last().expect("population recorded");
    assert_eq!(
        last,
        f64::from(spec.initially_active),
        "population must drain back to the pre-surge baseline"
    );
}

/// Diurnal populations stay inside the configured band and actually move.
#[test]
fn diurnal_population_tracks_the_sinusoid_band() {
    let spec = shipped_specs()
        .into_iter()
        .find(|s| s.name == "diurnal-day")
        .expect("diurnal-day shipped");
    let ChurnModel::Diurnal { min, max, .. } = spec.churn[0].churn else {
        panic!("diurnal-day entry must use the Diurnal model");
    };
    let mut scenario = spec.build().expect("builds");
    scenario.run();
    let result = scenario.collect();
    assert!(
        result.population_series.len() > 20,
        "only {} resamples",
        result.population_series.len()
    );
    // Skip the initial sample (initially_active, set before the model
    // drives anything).
    let driven = &result.population_series[1..];
    for &(t, p) in driven {
        assert!(
            p >= f64::from(min) && p <= f64::from(max),
            "population {p} at {t} s outside [{min}, {max}]"
        );
    }
    let lo = driven.iter().map(|&(_, p)| p).fold(f64::NAN, f64::min);
    let hi = driven.iter().map(|&(_, p)| p).fold(f64::NAN, f64::max);
    assert!(
        hi - lo >= f64::from(max - min) * 0.5,
        "population barely moved: [{lo}, {hi}]"
    );
}

/// A regime switch mid-run changes observable network behaviour: a spec
/// whose loss regime turns total mid-run stops delivering exactly then.
#[test]
fn scheduled_loss_switch_is_visible_in_the_slices() {
    let mut spec = shipped_specs()
        .into_iter()
        .find(|s| s.name == "partition-recovery")
        .expect("partition-recovery shipped");
    // Single seed is enough; drop the churn recovery to isolate the loss.
    spec.churn = vec![ChurnPhase {
        start: 0.0,
        churn: ChurnModel::Static,
    }];
    let report = run_lab(&spec, &[9], 1).expect("runs");
    assert_eq!(report.slices.len(), 3);
    let healthy = report.slices[0].load_mean.expect("pre-partition load");
    let partitioned = report.slices[1].load_mean.expect("partition load");
    assert!(
        healthy > 5.0 && partitioned < 1.0,
        "partition must crater the device load: {healthy} -> {partitioned}"
    );
    assert!(
        report.slices[1].detections > 0,
        "a total partition must trigger absence verdicts"
    );
}
