//! End-to-end pins for the presence-trace pipeline: a hub scenario must
//! export a Perfetto-loadable Chrome JSON trace with actor tracks, probe
//! flow events, and counter tracks; and a regioned run's trace (barrier
//! marks aside — they only exist on the windowed engine) must be
//! byte-for-byte identical to the sequential engine's, because the trace
//! is a pure function of the simulated trajectory and the trajectory is
//! region-invariant.

use presence::sim::{DecomposedScenario, Protocol, Scenario, ScenarioConfig};
use presence::trace::{analyze, parse, validate, write_chrome_json};

/// The full pipeline on a paper-default DCPP hub: model → Chrome JSON →
/// parse → validate → spotter analytics.
#[test]
fn hub_trace_exports_and_validates() {
    let cfg = ScenarioConfig::paper_defaults(Protocol::dcpp_paper(), 10, 60.0, 42);
    let mut scenario = Scenario::build(cfg);
    scenario.enable_trace(None, true);
    scenario.run();
    let result = scenario.collect();
    let model = scenario.collect_trace(&result);

    // One track per actor: network plane, device, 10 CPs, churn.
    assert_eq!(model.tracks.len(), 1 + 1 + 10 + 1);
    assert!(!model.engine.is_empty(), "engine stream was requested");
    assert!(model.barriers.is_empty(), "hub run has no region barriers");

    let json = write_chrome_json(&model);
    let trace = parse(&json).expect("exported trace parses");
    let check = validate(&trace).unwrap_or_else(|e| panic!("exported trace invalid: {e}"));
    assert_eq!(check.tracks, model.tracks.len());
    assert!(check.flows_started > 0, "no probe cycles traced");
    assert!(
        check.flows_finished > 0 && check.flows_finished <= check.flows_started,
        "reply flows inconsistent ({} started, {} finished)",
        check.flows_started,
        check.flows_finished
    );
    assert!(
        check.counter_tracks >= 3,
        "want >= 3 counter tracks, got {}",
        check.counter_tracks
    );
    for name in [
        "device.load",
        "population",
        "cp0.frequency",
        "net0.in_flight",
    ] {
        assert!(
            trace.events.iter().any(|e| e.ph == "C" && e.name == name),
            "missing counter track `{name}`"
        );
    }

    let report = analyze(&trace, 5);
    assert_eq!(report.busiest.len(), 5);
    assert_eq!(report.cycles_started, check.flows_started);
    assert_eq!(report.cycles_completed, check.flows_finished);
    let latency = report
        .cycle_latency
        .expect("completed cycles give percentiles");
    assert!(latency.p50 > 0.0 && latency.p50 <= latency.p99);
}

/// Rendering the collected model is deterministic: two identical runs
/// export byte-identical JSON.
#[test]
fn trace_export_is_deterministic() {
    let export = || {
        let cfg = ScenarioConfig::paper_defaults(Protocol::sapp_paper(), 4, 30.0, 9);
        let mut scenario = Scenario::build(cfg);
        scenario.enable_trace(Some(20.0), true);
        scenario.run();
        let result = scenario.collect();
        write_chrome_json(&scenario.collect_trace(&result))
    };
    assert_eq!(export(), export());
}

fn decomposed_trace(cfg: ScenarioConfig, regions: usize, until: Option<f64>) -> String {
    let mut scenario = DecomposedScenario::build(cfg, regions);
    scenario.set_workers(regions);
    scenario.enable_trace(until, true);
    scenario.run();
    let result = scenario.collect();
    let mut model = scenario.collect_trace(&result);
    if regions > 1 {
        assert!(
            !model.barriers.is_empty(),
            "regions={regions}: windowed engine produced no barrier marks"
        );
    } else {
        assert!(model.barriers.is_empty(), "sequential run has no barriers");
    }
    // Barrier marks are an engine artifact (they exist only on the
    // windowed engine), not part of the simulated trajectory — strip
    // them before comparing regioned against sequential.
    model.barriers.clear();
    write_chrome_json(&model)
}

/// The exported trace of the paper-default DCPP catalog entry matches
/// the recorded fixture bit-for-bit (regenerate with the
/// `golden_fixtures` bin when the trace format legitimately changes).
#[test]
fn paper_dcpp_trace_matches_golden_fixture() {
    let spec = presence::sim::builtin_catalog()
        .into_iter()
        .find(|s| s.name == "paper-dcpp")
        .expect("paper-dcpp is in the builtin catalog");
    let mut scenario = spec.build().expect("spec builds");
    scenario.enable_trace(Some(10.0), false);
    scenario.run();
    let result = scenario.collect();
    let json = write_chrome_json(&scenario.collect_trace(&result));

    let path = format!(
        "{}/tests/golden/trace-paper-dcpp.json",
        env!("CARGO_MANIFEST_DIR")
    );
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("fixture {path} unreadable ({e}); regenerate with the golden_fixtures bin")
    });
    assert!(
        json == golden,
        "trace format drifted from tests/golden/trace-paper-dcpp.json \
         ({} vs {} bytes); regenerate with the golden_fixtures bin if intended",
        json.len(),
        golden.len()
    );
    // The fixture itself must stay a valid trace.
    let check = validate(&parse(&golden).expect("fixture parses")).expect("fixture validates");
    assert!(check.flows_started > 0 && check.counter_tracks >= 3);
}

/// The regioned engine's trace — dispatch spans, timer events, probe
/// flows, counters — is byte-identical to the sequential engine's at
/// every region count, on the decomposed trio.
#[test]
fn decomposed_trio_trace_is_byte_identical_across_regions() {
    for (name, cfg) in presence::sim::golden_trio() {
        // Cap the horizon so the engine stream stays test-sized; the cap
        // is part of what must be region-invariant.
        let reference = decomposed_trace(cfg, 1, Some(45.0));
        assert!(reference.len() > 2, "{name}: empty trace");
        for regions in [2usize, 4] {
            let got = decomposed_trace(cfg, regions, Some(45.0));
            assert_eq!(
                got, reference,
                "{name}: trace diverged from sequential at regions={regions}"
            );
        }
    }
}
