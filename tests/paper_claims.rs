//! One test per claim the paper makes in prose — the executable version of
//! the paper's Conclusions (§6) and the protocol-design assertions of
//! §2/§4/§5. Each test cites the sentence it checks.

use presence::core::{CpId, DcppConfig, DcppDevice, DeviceId, Probe, ProbeCycleConfig, ReplyBody};
use presence::des::SimTime;
use presence::sim::test_profile::horizon;
use presence::sim::{ChurnModel, Protocol, Scenario, ScenarioConfig};

/// §6: "Our analysis has shown that the self-adaptive probe protocol SAPP
/// suffers from a fairness problem. Some CPs can have low probing
/// frequencies, whereas other CPs probe very fast."
#[test]
fn claim_sapp_fairness_problem() {
    // The divergence is established well before 4 000 s (spread ≈ 3.5);
    // the full profile replays the paper's 20 000 s horizon.
    let cfg =
        ScenarioConfig::paper_defaults(Protocol::sapp_paper(), 20, horizon(4_000.0, 20_000.0), 3);
    let mut scenario = Scenario::build(cfg);
    scenario.run();
    let r = scenario.collect();
    assert!(
        r.frequency_spread() > 2.0,
        "no fast/slow split: spread {}",
        r.frequency_spread()
    );
    assert!(r.fairness_jain < 0.95, "jain {}", r.fairness_jain);
}

/// §3: "Despite this abnormal behavior of the CPs, the device load is
/// quite good (i.e., it is near to L_nom = 10, and has a low variance)."
#[test]
fn claim_sapp_device_load_is_controlled_anyway() {
    let cfg =
        ScenarioConfig::paper_defaults(Protocol::sapp_paper(), 20, horizon(2_000.0, 10_000.0), 3);
    let mut scenario = Scenario::build(cfg);
    scenario.run();
    let r = scenario.collect();
    // "near L_nom": within the protocol's dead band [L_nom/β, β·L_nom].
    assert!(
        r.load_mean > 10.0 / 1.5 - 1.0 && r.load_mean < 10.0 * 1.5 + 1.0,
        "load {} outside the dead band",
        r.load_mean
    );
    assert!(r.load_variance < 5.0, "load variance {}", r.load_variance);
}

/// §3: "network buffer overflow is a seldom phenomenon as the average
/// buffer length is very small (≈ 0.004)".
#[test]
fn claim_buffer_rarely_occupied() {
    let cfg =
        ScenarioConfig::paper_defaults(Protocol::sapp_paper(), 20, horizon(2_000.0, 5_000.0), 3);
    let mut scenario = Scenario::build(cfg);
    scenario.run();
    let r = scenario.collect();
    let occ = r.mean_buffer_occupancy.expect("occupancy measured");
    assert!(occ < 0.05, "mean buffer occupancy {occ}");
    assert_eq!(r.messages_dropped_overflow, 0, "buffer overflowed");
}

/// §5: "once a situation is reached where the number of probing CPs does
/// not change, the device has a probe load of L_nom, and the probe
/// frequency is nearly the same for all CPs."
#[test]
fn claim_dcpp_static_guarantee() {
    for k in [7u32, 25] {
        let cfg = ScenarioConfig::paper_defaults(Protocol::dcpp_paper(), k, 500.0, 5);
        let mut scenario = Scenario::build(cfg);
        scenario.run();
        let r = scenario.collect();
        assert!(
            (r.load_mean - 10.0).abs() < 1.0,
            "k={k}: load {}",
            r.load_mean
        );
        assert!(r.fairness_jain > 0.99, "k={k}: jain {}", r.fairness_jain);
    }
}

/// §5: "the probability of exceeding the nominal probe load is low" and
/// "the load falls off very quickly again towards L_nom" after join
/// bursts.
#[test]
fn claim_dcpp_churn_spikes_decay() {
    let mut cfg =
        ScenarioConfig::paper_defaults(Protocol::dcpp_paper(), 60, horizon(1_000.0, 3_000.0), 11);
    cfg.initially_active = 20;
    cfg.churn = ChurnModel::paper_fig5();
    cfg.load_window = 2.0;
    let mut scenario = Scenario::build(cfg);
    scenario.run();
    let r = scenario.collect();
    let over: usize = r.load_series.iter().filter(|&&(_, v)| v > 15.0).count();
    let frac = over as f64 / r.load_series.len().max(1) as f64;
    assert!(
        frac < 0.15,
        "{:.0}% of windows above 1.5·L_nom",
        frac * 100.0
    );
    // No sustained overload: never two consecutive minutes above 1.5·L_nom.
    let mut consecutive = 0usize;
    let mut max_consecutive = 0usize;
    for &(_, v) in &r.load_series {
        if v > 15.0 {
            consecutive += 1;
            max_consecutive = max_consecutive.max(consecutive);
        } else {
            consecutive = 0;
        }
    }
    assert!(
        max_consecutive * 2 < 60,
        "overload persisted for {} consecutive windows",
        max_consecutive
    );
}

/// §2/§4: the absence requirement — "the absence of nodes should be
/// detected quickly (e.g., in the order of one second)".
#[test]
fn claim_detection_within_the_order_of_one_second() {
    for protocol in [Protocol::dcpp_paper(), Protocol::sapp_paper()] {
        let cfg = ScenarioConfig::paper_defaults(protocol, 5, 200.0, 7);
        let mut scenario = Scenario::build(cfg);
        scenario.crash_device_at(150.0);
        scenario.run();
        let r = scenario.collect();
        for cp in r.active_cps() {
            let latency = cp.detected_absent_at.expect("detected") - 150.0;
            // "Order of one second": strictly bounded by the probing
            // interval in force + 85 ms; assert single-digit seconds.
            assert!(latency < 10.0, "latency {latency}");
        }
    }
}

/// §4 constraint (i): "two consecutive probes are at least δ_min time
/// units apart" — verified directly on the device state machine under a
/// randomised assault (complements the proptest in presence-core).
#[test]
fn claim_dcpp_slot_spacing() {
    let cfg = DcppConfig::paper_default();
    let mut device = DcppDevice::new(DeviceId(0), cfg);
    let mut slots: Vec<f64> = Vec::new();
    for i in 0..200u32 {
        let now = SimTime::from_secs_f64(f64::from(i % 7) * 0.013);
        // Times are intentionally non-monotone per CP but the device only
        // sees "a probe arrives"; feed monotone arrivals.
        let now = SimTime::from_secs_f64(now.as_secs_f64() + f64::from(i) * 0.01);
        let reply = device.on_probe(
            now,
            Probe {
                cp: CpId(i % 9),
                seq: u64::from(i),
            },
        );
        let ReplyBody::Dcpp { wait } = reply.body else {
            panic!("wrong body")
        };
        slots.push(now.as_secs_f64() + wait.as_secs_f64());
    }
    slots.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    for w in slots.windows(2) {
        assert!(
            w[1] - w[0] > cfg.delta_min.as_secs_f64() - 1e-9,
            "slots {} and {} closer than δ_min",
            w[0],
            w[1]
        );
    }
}

/// §6: DCPP "is even computationally simpler" — the state per device is a
/// single register (nt), versus SAPP's counter + prober list; and the CP
/// does no estimation. We check the observable consequence: a DCPP cycle
/// emits no more actions than a SAPP cycle.
#[test]
fn claim_dcpp_simplicity_observable() {
    use presence::core::{DcppCp, Prober, SappConfig, SappCp};
    let mut sapp = SappCp::new(CpId(0), SappConfig::paper_default());
    let mut dcpp = DcppCp::new(CpId(0), DcppConfig::paper_default());
    let mut out_s = Vec::new();
    let mut out_d = Vec::new();
    sapp.start(SimTime::ZERO, &mut out_s);
    dcpp.start(SimTime::ZERO, &mut out_d);
    assert_eq!(out_s.len(), out_d.len(), "same probe cycle skeleton");

    // The probe-cycle engine is shared; the difference is the adaptation
    // bookkeeping, which Rust sizes make concrete:
    assert!(
        std::mem::size_of::<DcppDevice>() <= std::mem::size_of::<presence::core::SappDevice>(),
        "DCPP device state should not exceed SAPP's"
    );
}

/// Fig. 1 timing: with the paper's constants, a failed cycle concludes in
/// exactly TOF + 3·TOS = 85 ms.
#[test]
fn claim_verdict_timing_fig1() {
    let c = ProbeCycleConfig::paper_default();
    assert_eq!(
        c.worst_case_detection(),
        presence::des::SimDuration::from_millis(85)
    );
}
