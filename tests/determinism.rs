//! Deterministic-replay regression tests: building and running the same
//! `ScenarioConfig` (same seed) twice must yield **bit-identical**
//! `ScenarioResult` metrics — the property every experiment in the paper
//! reproduction leans on (common random numbers, replayable figures).
//!
//! Serializing the whole result and comparing the JSON text is the
//! strictest practical check: every counter, every series point, every
//! floating-point metric must match to the last bit.

use presence::core::ProbeCycleConfig;
use presence::sim::{
    replicate_with_jobs, ChurnModel, LossKind, Protocol, Scenario, ScenarioConfig,
};

fn run_to_json(protocol: Protocol, seed: u64) -> String {
    let mut cfg = ScenarioConfig::paper_defaults(protocol, 12, 120.0, seed);
    // Exercise the stochastic subsystems too: loss and churn both draw from
    // the seeded streams, so replay must cover them.
    cfg.loss = LossKind::Bernoulli(0.01);
    cfg.churn = ChurnModel::UniformResample {
        min: 2,
        max: 12,
        rate: 0.05,
    };
    let mut scenario = Scenario::build(cfg);
    scenario.run();
    let result = scenario.collect();
    serde_json::to_string(&result).expect("ScenarioResult serializes")
}

fn assert_replays_bit_identical(protocol: Protocol, name: &str) {
    let a = run_to_json(protocol, 42);
    let b = run_to_json(protocol, 42);
    assert_eq!(a, b, "{name}: same seed must replay bit-identically");

    let c = run_to_json(protocol, 43);
    assert_ne!(a, c, "{name}: different seeds should not collide");
}

#[test]
fn sapp_replay_is_bit_identical() {
    assert_replays_bit_identical(Protocol::sapp_paper(), "SAPP");
}

#[test]
fn dcpp_replay_is_bit_identical() {
    assert_replays_bit_identical(Protocol::dcpp_paper(), "DCPP");
}

#[test]
fn fixed_rate_replay_is_bit_identical() {
    assert_replays_bit_identical(
        Protocol::FixedRate {
            cycle: ProbeCycleConfig::paper_default(),
            period: 0.5,
        },
        "fixed-rate",
    );
}

/// The parallel replication engine must be invisible in the results: a
/// replication study fanned over 4 workers (`PRESENCE_JOBS=4` /
/// `--jobs 4`) serialises to byte-identical JSON as the serial run
/// (`PRESENCE_JOBS=1`), for both protocols. Only wall-clock may differ.
#[test]
fn parallel_replication_equals_serial() {
    for (name, protocol) in [
        ("SAPP", Protocol::sapp_paper()),
        ("DCPP", Protocol::dcpp_paper()),
    ] {
        let mut base = ScenarioConfig::paper_defaults(protocol, 8, 90.0, 0);
        // Stochastic subsystems on, so workers exercise the full RNG
        // stream isolation story.
        base.loss = LossKind::Bernoulli(0.01);
        base.churn = ChurnModel::UniformResample {
            min: 2,
            max: 8,
            rate: 0.05,
        };
        let seeds = [11, 12, 13, 14, 15, 16];
        let serial = replicate_with_jobs(&base, &seeds, 0.95, 1);
        let parallel = replicate_with_jobs(&base, &seeds, 0.95, 4);
        let a = serde_json::to_string(&serial).expect("summary serialises");
        let b = serde_json::to_string(&parallel).expect("summary serialises");
        assert_eq!(a, b, "{name}: 4-worker study diverged from serial");
    }
}

/// The scenario lab inherits the same contract: a `LabReport` (per-seed
/// results **and** per-regime metric slices) serialises to byte-identical
/// JSON at any `--jobs` value, including under time-varying delay, loss,
/// and churn regimes.
#[test]
fn lab_report_is_byte_identical_at_any_jobs_value() {
    use presence::sim::{run_lab, ChurnPhase, DelayPhase, LossPhase, ScenarioSpec};

    let cfg = ScenarioConfig::paper_defaults(Protocol::dcpp_paper(), 10, 120.0, 0);
    let mut spec = ScenarioSpec::from_config("determinism-lab", "jobs-invariance pin", cfg);
    spec.delay.push(DelayPhase {
        start: 40.0,
        delay: presence::sim::DelayKind::Uniform(0.0002, 0.002),
    });
    spec.loss.push(LossPhase {
        start: 60.0,
        loss: LossKind::Bursty(0.1),
    });
    spec.churn.push(ChurnPhase {
        start: 80.0,
        churn: ChurnModel::UniformResample {
            min: 2,
            max: 10,
            rate: 0.1,
        },
    });
    let seeds = [21, 22, 23, 24, 25];
    let serial = run_lab(&spec, &seeds, 1).expect("serial lab run");
    let a = serde_json::to_string(&serial).expect("report serialises");
    for jobs in [2, 4, 8] {
        let parallel = run_lab(&spec, &seeds, jobs).expect("parallel lab run");
        let b = serde_json::to_string(&parallel).expect("report serialises");
        assert_eq!(a, b, "lab report diverged at jobs = {jobs}");
    }
}

/// A crash injection is part of the replayed trajectory too: the verdict
/// times must match bit-for-bit across replays.
#[test]
fn crash_detection_times_replay_exactly() {
    let run = || {
        let cfg = ScenarioConfig::paper_defaults(Protocol::dcpp_paper(), 8, 120.0, 7);
        let mut scenario = Scenario::build(cfg);
        scenario.crash_device_at(60.0);
        scenario.run();
        let r = scenario.collect();
        r.cps
            .iter()
            .map(|c| (c.id.0, c.detected_absent_at))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}
