//! Deterministic-replay regression tests: building and running the same
//! `ScenarioConfig` (same seed) twice must yield **bit-identical**
//! `ScenarioResult` metrics — the property every experiment in the paper
//! reproduction leans on (common random numbers, replayable figures).
//!
//! Serializing the whole result and comparing the JSON text is the
//! strictest practical check: every counter, every series point, every
//! floating-point metric must match to the last bit.

use presence::core::ProbeCycleConfig;
use presence::sim::{ChurnModel, LossKind, Protocol, Scenario, ScenarioConfig};

fn run_to_json(protocol: Protocol, seed: u64) -> String {
    let mut cfg = ScenarioConfig::paper_defaults(protocol, 12, 120.0, seed);
    // Exercise the stochastic subsystems too: loss and churn both draw from
    // the seeded streams, so replay must cover them.
    cfg.loss = LossKind::Bernoulli(0.01);
    cfg.churn = ChurnModel::UniformResample {
        min: 2,
        max: 12,
        rate: 0.05,
    };
    let mut scenario = Scenario::build(cfg);
    scenario.run();
    let result = scenario.collect();
    serde_json::to_string(&result).expect("ScenarioResult serializes")
}

fn assert_replays_bit_identical(protocol: Protocol, name: &str) {
    let a = run_to_json(protocol, 42);
    let b = run_to_json(protocol, 42);
    assert_eq!(a, b, "{name}: same seed must replay bit-identically");

    let c = run_to_json(protocol, 43);
    assert_ne!(a, c, "{name}: different seeds should not collide");
}

#[test]
fn sapp_replay_is_bit_identical() {
    assert_replays_bit_identical(Protocol::sapp_paper(), "SAPP");
}

#[test]
fn dcpp_replay_is_bit_identical() {
    assert_replays_bit_identical(Protocol::dcpp_paper(), "DCPP");
}

#[test]
fn fixed_rate_replay_is_bit_identical() {
    assert_replays_bit_identical(
        Protocol::FixedRate {
            cycle: ProbeCycleConfig::paper_default(),
            period: 0.5,
        },
        "fixed-rate",
    );
}

/// A crash injection is part of the replayed trajectory too: the verdict
/// times must match bit-for-bit across replays.
#[test]
fn crash_detection_times_replay_exactly() {
    let run = || {
        let cfg = ScenarioConfig::paper_defaults(Protocol::dcpp_paper(), 8, 120.0, 7);
        let mut scenario = Scenario::build(cfg);
        scenario.crash_device_at(60.0);
        scenario.run();
        let r = scenario.collect();
        r.cps
            .iter()
            .map(|c| (c.id.0, c.detected_absent_at))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}
