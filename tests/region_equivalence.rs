//! Region-equivalence suite: the golden fixtures must replay byte-for-byte
//! at every `PRESENCE_REGIONS` setting.
//!
//! The trio and lab scenarios are hub-coupled (every participant reaches
//! the others through one `NetworkActor` over zero-lookahead `send_now`
//! legs), so the region planner provably collapses any multi-region
//! request to one effective region — the run *is* the sequential engine,
//! and the fixtures recorded before the regioned engine existed must
//! match exactly. A divergence here means either the planner admitted an
//! unsound cut or the plan consultation itself perturbed a trajectory.
//!
//! `PRESENCE_REGIONS` is process-global, so this suite serialises its
//! env mutations behind a mutex and restores the variable afterwards.

use presence::sim::{
    builtin_catalog, golden_trio, run_spec_once, DecomposedScenario, Scenario, ScenarioResult,
};
use std::sync::Mutex;

static ENV_LOCK: Mutex<()> = Mutex::new(());

fn fixture(name: &str) -> ScenarioResult {
    let path = format!("{}/tests/golden/{name}.json", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("fixture {path} unreadable ({e}); regenerate with the golden_fixtures bin")
    });
    serde_json::from_str(&text).expect("fixture deserialises")
}

/// Runs `body` with `PRESENCE_REGIONS` set to each of the given values in
/// turn, restoring the previous value afterwards.
fn with_regions<F: FnMut(usize)>(settings: &[usize], mut body: F) {
    let _guard = ENV_LOCK.lock().expect("env lock");
    let previous = std::env::var("PRESENCE_REGIONS").ok();
    for &regions in settings {
        std::env::set_var("PRESENCE_REGIONS", regions.to_string());
        body(regions);
    }
    match previous {
        Some(v) => std::env::set_var("PRESENCE_REGIONS", v),
        None => std::env::remove_var("PRESENCE_REGIONS"),
    }
}

fn assert_matches_fixture(name: &str, regions: usize, result: &ScenarioResult) {
    let golden = fixture(name);
    assert_eq!(
        serde_json::to_string(result).expect("result serialises"),
        serde_json::to_string(&golden).expect("golden serialises"),
        "{name}: trajectory diverged from the recorded run at \
         PRESENCE_REGIONS={regions}"
    );
}

#[test]
fn golden_trio_replays_identically_at_every_region_count() {
    with_regions(&[1, 2, 4], |regions| {
        for (name, cfg) in golden_trio() {
            let mut scenario = Scenario::build(cfg);
            let plan = scenario.region_plan();
            assert_eq!(plan.requested, regions);
            assert_eq!(
                plan.effective, 1,
                "{name}: hub scenario must collapse ({})",
                plan.reason
            );
            scenario.run();
            let result = scenario.collect();
            assert_matches_fixture(name, regions, &result);
        }
    });
}

/// The decomposed (multi-plane) topology genuinely partitions — and its
/// recorded regions = 1 fixtures must replay byte-for-byte on the
/// windowed engine at every region count, with workers matched to
/// regions. This is the soundness pin for the PR 8 hub decomposition:
/// the fixtures were recorded on the sequential reference engine, so any
/// divergence is a barrier-ordering or lookahead bug, not a fixture
/// drift.
#[test]
fn decomposed_trio_replays_identically_at_every_region_count() {
    for regions in [1usize, 2, 4] {
        for (name, cfg) in golden_trio() {
            let mut scenario = DecomposedScenario::build(cfg, regions);
            let plan = scenario.region_plan();
            assert_eq!(plan.requested, regions, "{name}");
            if regions > 1 {
                assert!(
                    plan.effective >= 2,
                    "{name}: decomposed scenario collapsed ({})",
                    plan.reason
                );
            }
            scenario.set_workers(regions);
            scenario.run();
            let result = scenario.collect();
            assert_matches_fixture(&format!("decomposed-{name}"), regions, &result);
        }
    }
}

/// Same pin for the regime-switching lab spec on the decomposed
/// topology: per-plane `Scheduled` model instances must stay in lockstep
/// with the recorded single-instance run.
#[test]
fn decomposed_lab_replays_identically_at_every_region_count() {
    let spec = builtin_catalog()
        .into_iter()
        .find(|s| s.name == "mixed-regime-stress")
        .expect("mixed-regime-stress is in the builtin catalog");
    for regions in [1usize, 2, 4] {
        let mut scenario = spec.build_decomposed(regions).expect("spec builds");
        scenario.set_workers(regions);
        scenario.run();
        let result = scenario.collect();
        assert_matches_fixture("decomposed-lab-mixed", regions, &result);
    }
}

#[test]
fn mixed_regime_lab_replays_identically_at_every_region_count() {
    let spec = builtin_catalog()
        .into_iter()
        .find(|s| s.name == "mixed-regime-stress")
        .expect("mixed-regime-stress is in the builtin catalog");
    with_regions(&[1, 2, 4], |regions| {
        let result = run_spec_once(&spec).expect("lab fixture spec runs");
        assert_matches_fixture("lab-mixed", regions, &result);
    });
}
