//! Workspace integration tests: cross-crate behaviour that no single crate
//! can check alone — protocol machines under the full simulator, simulator
//! vs wall-clock runtime agreement, and the overlay dissemination path.

use presence::core::{CpId, DcppConfig, DcppCp, DeviceId};
use presence::des::SimDuration;
use presence::runtime::{run_cp, run_device, DeviceHost, InMemoryTransport, StopFlag, SystemClock};
use presence::sim::test_profile::horizon;
use presence::sim::{ChurnModel, LossKind, Protocol, Scenario, ScenarioConfig};
use std::thread;
use std::time::Duration;

/// DCPP's steady-state per-CP wait must equal `k · δ_min` (once
/// `k · δ_min > d_min`) — checked through the whole stack: sans-io
/// machines, DES engine, network fabric.
#[test]
fn dcpp_steady_state_wait_is_k_delta_min() {
    let k = 20;
    let cfg = ScenarioConfig::paper_defaults(Protocol::dcpp_paper(), k, 600.0, 5);
    let mut scenario = Scenario::build(cfg);
    scenario.run();
    let result = scenario.collect();
    // A misroute would show up as probe loss here; the unroutable counter
    // separates the two failure modes.
    debug_assert_eq!(result.messages_unroutable, 0, "misrouted messages");
    // k·δ_min = 20 · 0.1 = 2 s; each CP's mean delay converges there.
    for cp in result.active_cps() {
        assert!(
            (cp.mean_delay - 2.0).abs() < 0.3,
            "cp{:02} mean delay {} (expected ≈ 2.0)",
            cp.id.0,
            cp.mean_delay
        );
    }
    assert!(
        (result.load_mean - 10.0).abs() < 1.5,
        "load {}",
        result.load_mean
    );
}

/// The same protocol configuration produces consistent behaviour in the
/// simulator and the wall-clock runtime: comparable probe cadence and the
/// same absence verdict path.
#[test]
fn simulator_and_runtime_agree_on_dcpp_cadence() {
    // --- runtime: 1 CP at d_min = 50 ms for ~1 s => ~20 cycles.
    let mut cfg = DcppConfig::paper_default();
    cfg.delta_min = SimDuration::from_millis(10);
    cfg.d_min = SimDuration::from_millis(50);

    let (cp_side, dev_side) = InMemoryTransport::pair();
    let stop = StopFlag::new();
    let clock = SystemClock::new();
    let dev_stop = stop.clone();
    let dev_clock = clock.clone();
    let dev = thread::spawn(move || {
        run_device(
            DeviceHost::Dcpp(presence::core::DcppDevice::new(DeviceId(0), cfg)),
            dev_side,
            &dev_clock,
            &dev_stop,
        )
    });
    let cp_stop = stop.clone();
    let cp = thread::spawn(move || run_cp(DcppCp::new(CpId(0), cfg), cp_side, &clock, &cp_stop));
    thread::sleep(Duration::from_millis(1_000));
    stop.stop();
    let outcome = cp.join().unwrap();
    let _ = dev.join().unwrap();

    // --- simulator: the same config, 1 CP, 1 virtual second.
    let mut sim_cfg = ScenarioConfig::paper_defaults(Protocol::Dcpp { cfg }, 1, 1.0, 9);
    sim_cfg.join_stagger = 0.0;
    let mut scenario = Scenario::build(sim_cfg);
    scenario.run();
    let sim_result = scenario.collect();
    let sim_cycles = sim_result.cps[0].cycles_succeeded;

    // Both should complete ≈ 1 s / 50 ms = 20 cycles; allow generous slack
    // for wall-clock scheduling noise.
    let rt = outcome.cycles_succeeded as f64;
    let sim = sim_cycles as f64;
    assert!(rt > 10.0, "runtime managed only {rt} cycles");
    assert!(sim > 10.0, "simulator managed only {sim} cycles");
    assert!(
        (rt - sim).abs() / sim < 0.5,
        "cadence mismatch: runtime {rt} vs simulator {sim}"
    );
}

/// SAPP with overlay dissemination: when the device crashes, leave notices
/// propagate over the last-two-probers overlay, so CPs that have not yet
/// timed out learn of the departure from peers.
#[test]
fn overlay_dissemination_spreads_the_news() {
    let mut cfg = ScenarioConfig::paper_defaults(Protocol::sapp_paper(), 20, 400.0, 11);
    cfg.disseminate = true;
    let mut scenario = Scenario::build(cfg);
    scenario.crash_device_at(300.0);
    scenario.run();
    let result = scenario.collect();
    // Dissemination sends CP→CP unicast: every notice target must resolve.
    debug_assert_eq!(result.messages_unroutable, 0, "misrouted leave notices");

    let detected = result
        .cps
        .iter()
        .filter(|c| c.detected_absent_at.is_some())
        .count();
    assert_eq!(detected, 20, "every CP must learn of the crash");

    let forwarded: u64 = result.cps.iter().map(|c| c.notices_forwarded).sum();
    assert!(
        forwarded > 0,
        "dissemination enabled but no notice was ever forwarded"
    );
}

/// Without dissemination, starved SAPP CPs (δ near δ_max = 10 s) can take
/// many seconds to notice a crash; with dissemination the slowest detection
/// time improves (or at least never regresses).
#[test]
fn dissemination_speeds_up_worst_case_detection() {
    // Crash late enough that SAPP's starvation (δ toward δ_max) has had
    // time to develop, leaving δ_max + verdict + slack after it.
    let crash_at = horizon(900.0, 2_500.0);
    let worst_detection = |disseminate: bool| -> f64 {
        let mut cfg =
            ScenarioConfig::paper_defaults(Protocol::sapp_paper(), 20, crash_at + 500.0, 13);
        cfg.disseminate = disseminate;
        let mut scenario = Scenario::build(cfg);
        scenario.crash_device_at(crash_at);
        scenario.run();
        let result = scenario.collect();
        result
            .cps
            .iter()
            .filter_map(|c| c.detected_absent_at)
            .map(|t| t - crash_at)
            .fold(f64::NEG_INFINITY, f64::max)
    };
    let plain = worst_detection(false);
    let gossip = worst_detection(true);
    // Guard against a vacuous pass: if nobody detects the crash, both arms
    // fold to -inf and the comparison would hold trivially.
    assert!(
        plain.is_finite() && gossip.is_finite(),
        "no CP detected the crash at all (plain {plain}, gossip {gossip})"
    );
    assert!(
        gossip <= plain + 1e-9,
        "dissemination regressed worst-case detection: {gossip} vs {plain}"
    );
}

/// A graceful Bye reaches every active CP through the broadcast path and
/// stops all probing immediately.
#[test]
fn bye_broadcast_stops_everyone() {
    let cfg = ScenarioConfig::paper_defaults(Protocol::dcpp_paper(), 10, 200.0, 17);
    let mut scenario = Scenario::build(cfg);
    scenario.device_bye_at(100.0);
    scenario.run();
    let result = scenario.collect();
    for cp in &result.cps {
        let at = cp.detected_absent_at.expect("bye missed");
        assert!(
            (100.0..100.5).contains(&at),
            "cp{:02} verdict at {at}",
            cp.id.0
        );
    }
    // No probes answered after the leave.
    let late_probes: usize = result
        .load_series
        .iter()
        .filter(|&&(t, rate)| t > 105.0 && rate > 0.0)
        .count();
    assert_eq!(late_probes, 0, "device kept answering after its Bye");
}

/// Loss + churn + crash together: the protocols still converge to a
/// correct verdict for every CP that was present at crash time.
#[test]
fn stress_churn_loss_crash() {
    let mut cfg = ScenarioConfig::paper_defaults(Protocol::dcpp_paper(), 30, 900.0, 23);
    cfg.initially_active = 10;
    cfg.churn = ChurnModel::UniformResample {
        min: 1,
        max: 30,
        rate: 0.1,
    };
    cfg.loss = LossKind::Bursty(0.05);
    let mut scenario = Scenario::build(cfg);
    scenario.crash_device_at(800.0);
    scenario.run();
    let result = scenario.collect();

    // Under BURSTY loss a run of four swallowed probes is a legitimate
    // (if unfortunate) absence verdict — the bounded-retransmission design
    // trades false positives for fast detection, and the paper does not
    // add an acquittal mechanism. What must hold: every verdict issued
    // before the crash is backed by a failed cycle (no verdict out of thin
    // air).
    for cp in &result.cps {
        if let Some(at) = cp.detected_absent_at {
            if at < 800.0 {
                assert!(
                    cp.cycles_failed > 0,
                    "cp{:02} verdict at {at} without any failed cycle",
                    cp.id.0
                );
            }
        }
    }
    // The device load stayed capped until the crash despite loss + churn.
    for &(t, rate) in &result.load_series {
        if t > 50.0 && t < 790.0 {
            assert!(rate < 40.0, "load spike {rate} at t={t} escaped control");
        }
    }
}

/// Determinism across the full stack: identical seeds give identical
/// results, for both protocols, including under churn and loss.
#[test]
fn full_stack_determinism() {
    let run = |seed: u64| {
        let mut cfg = ScenarioConfig::paper_defaults(Protocol::sapp_paper(), 15, 300.0, seed);
        cfg.churn = ChurnModel::UniformResample {
            min: 2,
            max: 15,
            rate: 0.05,
        };
        cfg.loss = LossKind::Bernoulli(0.02);
        let mut scenario = Scenario::build(cfg);
        scenario.run();
        let r = scenario.collect();
        serde_json_string(&r)
    };
    assert_eq!(run(99), run(99), "same seed, same JSON");
    assert_ne!(run(99), run(100), "different seed, different run");
}

fn serde_json_string<T: serde::Serialize>(v: &T) -> String {
    serde_json::to_string(v).expect("serialisable")
}

/// The E2E fairness contrast that is the paper's main claim, at reduced
/// scale so it runs in CI time.
#[test]
fn headline_fairness_contrast() {
    let fairness = |protocol: Protocol| {
        let cfg = ScenarioConfig::paper_defaults(protocol, 10, horizon(1_500.0, 5_000.0), 3);
        let mut scenario = Scenario::build(cfg);
        scenario.run();
        scenario.collect().fairness_jain
    };
    let sapp = fairness(Protocol::sapp_paper());
    let dcpp = fairness(Protocol::dcpp_paper());
    assert!(
        dcpp > 0.99,
        "DCPP should be essentially perfectly fair, got {dcpp}"
    );
    assert!(
        dcpp >= sapp,
        "DCPP ({dcpp}) must not be less fair than SAPP ({sapp})"
    );
}
