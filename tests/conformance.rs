//! Sim/runtime conformance: the discrete-event engine is the oracle for
//! the sharded UDP host.
//!
//! Every scenario here runs twice — once through `presence_des` with a
//! zero-delay network, once over real loopback UDP sockets under a
//! lockstep virtual clock — and the two reports must agree **exactly**:
//! verdicts (instant and reason), cycle counts, probes sent, probes
//! answered. See `presence_runtime::conformance` for why exact agreement
//! is the correct expectation and not flakiness-bait.
//!
//! The UDP side honours `RUNTIME_SHARDS` (the ci.sh conformance stage
//! runs the suite at 1 and at 4); each test also pins one explicit shard
//! count so a plain `cargo test` covers both single- and multi-shard
//! routing.

use presence::runtime::conformance::{
    dcpp_fleet, dcpp_pair, mixed_fleet, run_oracle, run_udp, sapp_pair, ConformanceScenario,
};
use presence_runtime::shards_from_env;

fn assert_conformance(scenario: &ConformanceScenario, shards: usize) {
    let oracle = run_oracle(scenario);
    let udp = run_udp(scenario, shards).expect("udp conformance run failed");
    assert_eq!(
        oracle, udp,
        "scenario `{}` diverged between DES oracle and UDP runtime at {} shard(s)",
        scenario.name, shards
    );
}

#[test]
fn dcpp_pair_conforms() {
    assert_conformance(&dcpp_pair(), shards_from_env());
}

#[test]
fn dcpp_fleet_conforms_single_shard() {
    assert_conformance(&dcpp_fleet(6), 1);
}

#[test]
fn dcpp_fleet_conforms_multi_shard() {
    assert_conformance(&dcpp_fleet(6), shards_from_env().max(2));
}

#[test]
fn sapp_pair_conforms() {
    assert_conformance(&sapp_pair(), shards_from_env());
}

#[test]
fn mixed_fleet_conforms() {
    assert_conformance(&mixed_fleet(), shards_from_env());
}

/// The deflaked successor of the old `dcpp_over_in_memory_transport`
/// test, which slept 400 wall-clock milliseconds and hoped for ≥ 3
/// cycles. On the virtual clock the cycle count is *exact*, the verdict
/// check is *exact*, and CI load cannot perturb either.
#[test]
fn dcpp_runtime_cycles_are_exact_on_virtual_clock() {
    let scenario = dcpp_pair();
    let report = run_udp(&scenario, 1).expect("udp run failed");
    let cp = &report.cps[0];
    assert!(cp.verdict.is_none(), "false absence verdict");
    // horizon 5 s, d_min 100 ms: the oracle pins the exact count; here we
    // assert the envelope so the test documents the workload by itself.
    assert!(
        (40..=52).contains(&cp.stats.cycles_succeeded),
        "cycle count {} outside the d_min-determined envelope",
        cp.stats.cycles_succeeded
    );
    assert_eq!(cp.stats.retransmissions, 0, "loopback lost probes");
    assert_eq!(
        report.devices[0].probes_received, cp.stats.probes_sent,
        "device answered a different number of probes than the CP sent"
    );
}
