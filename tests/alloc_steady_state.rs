//! Allocation regression gate: the steady-state DCPP probe loop must not
//! touch the heap.
//!
//! PR 4 made the claim in a comment ("the steady-state loop is
//! allocation-free"); this test turns it into a regression gate with a
//! counting `#[global_allocator]`. The test lives in its **own**
//! integration-test binary so no concurrent test can pollute the counter,
//! and the binary contains exactly one `#[test]`.
//!
//! Mechanics: build the paper-default 30-CP DCPP scenario, run a warm-up
//! long enough for every one-off allocation to happen (joins, prober
//! boxes, recorder capacity hints, the event queue's high-water mark,
//! the device's pre-warmed timer-slot spill), snapshot the allocation
//! counter, run a further measurement window, and assert the counter did
//! not move. Everything on the per-event path — typed enum dispatch,
//! two-slot timer caches, the reusable CP action scratch, the slab-backed
//! event queue — must hold that line.

use presence::sim::{Protocol, Scenario, ScenarioConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocation and reallocation (frees are irrelevant to the
/// gate: a steady loop that frees without allocating is impossible, and
/// frees never grow the heap).
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`; the counter is a relaxed atomic
// with no aliasing or layout obligations of its own.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_dcpp_loop_is_allocation_free() {
    // The paper-default DCPP configuration the golden suite pins, with the
    // horizon the capacity hints are sized from.
    let cfg = ScenarioConfig::paper_defaults(Protocol::dcpp_paper(), 30, 300.0, 7);
    let mut scenario = Scenario::build(cfg);

    // Warm-up: joins staggered over the first second, probers built, every
    // recorder at capacity-stable fill, the event queue past its
    // high-water mark.
    scenario.run_until(40.0);

    // The allocation counter is process-global, and the libtest harness
    // keeps its own threads that may allocate at any moment — noise the
    // deterministic simulation cannot produce. Measuring several disjoint
    // windows and gating on the *minimum* delta filters that noise while
    // still catching any real steady-state allocation: an allocation on
    // the per-event (or even per-cycle) path would show up in **every**
    // window, thousands of times.
    let mut min_delta = u64::MAX;
    let mut total_events = 0u64;
    for window in 0..5u64 {
        let end = 40.0 + 40.0 * (window + 1) as f64;
        let events_before = scenario.sim_mut().events_processed();
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        scenario.run_until(end);
        let delta = ALLOCATIONS.load(Ordering::Relaxed) - before;
        let events = scenario.sim_mut().events_processed() - events_before;
        assert!(
            events > 1_000,
            "window {window} processed only {events} events — not steady state"
        );
        total_events += events;
        min_delta = min_delta.min(delta);
    }
    assert_eq!(
        min_delta,
        0,
        "every steady-state window allocated (≥ {min_delta} times per \
         ~{} events): the DCPP loop is supposed to be allocation-free — \
         typed dispatch, timer slots, scratch reuse, and the slab queue \
         all promise it",
        total_events / 5
    );
}
