//! Golden-equivalence suite for the single-hop network fast path.
//!
//! The fixtures under `tests/golden/` are full `ScenarioResult` JSON dumps
//! recorded **before** the 3-events-per-message delivery path was flattened
//! to 2 (`Send` → `InTransit` → same-instant `Deliver` became `Send` →
//! `Deliver` scheduled at admit time, with the reply's processing delay
//! folded into its `Send`). The refactor must not change the simulated
//! trajectory: every metric except `events_processed` — every counter,
//! every series point, every floating-point value — must match the
//! recorded runs bit-for-bit.
//!
//! `events_processed` is the one metric the refactor exists to change; it
//! is asserted separately to have dropped by ≥ 25 % (the PR's acceptance
//! floor) rather than to match.
//!
//! Regenerate with `cargo run --release -p presence-bench --bin
//! golden_fixtures` — but only in a PR that *intends* a trajectory change,
//! and say so there.

use presence::sim::{golden_trio, CpSummary, Scenario};
use serde::{Deserialize, Serialize};

/// Every `ScenarioResult` field except `events_processed` (and the
/// counters introduced after the fixtures were recorded). Deserialising
/// through this struct compares exactly the metrics both versions define;
/// the shim's derive ignores unknown JSON keys.
#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct TrajectoryMetrics {
    duration: f64,
    device_probes: u64,
    load_series: Vec<(f64, f64)>,
    load_mean: f64,
    load_variance: f64,
    mean_buffer_occupancy: Option<f64>,
    messages_offered: u64,
    messages_dropped_overflow: u64,
    messages_dropped_loss: u64,
    population_series: Vec<(f64, f64)>,
    cps: Vec<CpSummary>,
    fairness_jain: f64,
}

fn fixture(name: &str) -> TrajectoryMetrics {
    let path = format!("{}/tests/golden/{name}.json", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("fixture {path} unreadable ({e}); regenerate with the golden_fixtures bin")
    });
    serde_json::from_str(&text).expect("fixture deserialises")
}

#[test]
fn single_hop_fast_path_preserves_golden_trajectories() {
    for (name, cfg) in golden_trio() {
        let golden = fixture(name);
        let mut scenario = Scenario::build(cfg);
        scenario.run();
        let result = scenario.collect();
        assert_eq!(
            result.messages_unroutable, 0,
            "{name}: messages went unroutable"
        );
        let fresh: TrajectoryMetrics =
            serde_json::from_str(&serde_json::to_string(&result).expect("result serialises"))
                .expect("result round-trips");
        // Compare canonical JSON, not the structs: never-active CPs carry
        // NaN metrics (serialised as null), and NaN ≠ NaN would fail a
        // field-level comparison of two bit-identical trajectories.
        assert_eq!(
            serde_json::to_string(&fresh).expect("fresh serialises"),
            serde_json::to_string(&golden).expect("golden serialises"),
            "{name}: trajectory diverged from the recorded pre-refactor run"
        );
    }
}

/// The events_processed acceptance record for the single-hop refactor,
/// against the counts the **pre-refactor** engine produced for the trio
/// (hard-coded, not read from the fixtures: the fixtures are regenerated
/// whenever a PR intends a trajectory change, while these baselines are a
/// historical fact of the 3-events-per-message engine). A regression that
/// re-adds per-message hops pushes the counts back up and fails here.
#[test]
fn single_hop_fast_path_cuts_events_processed_by_a_quarter() {
    // Recorded at the PR 3 boundary (see CHANGES.md).
    let pre_refactor_events = [("sapp", 14_552u64), ("dcpp", 24_200), ("churn", 47_512)];
    for (name, cfg) in golden_trio() {
        let (_, baseline) = *pre_refactor_events
            .iter()
            .find(|(n, _)| *n == name)
            .expect("trio name has a recorded baseline");
        let mut scenario = Scenario::build(cfg);
        scenario.run();
        let events = scenario.collect().events_processed;
        assert!(
            (events as f64) <= 0.75 * baseline as f64,
            "{name}: events_processed {events} did not drop ≥ 25% from the \
             pre-refactor {baseline}"
        );
    }
}

/// The events-per-delivered-message ≤ 2 (+ drop/in-flight share) contract,
/// on the same trio the fixtures pin.
#[test]
fn golden_trio_meets_two_events_per_message_contract() {
    for (name, cfg) in golden_trio() {
        let mut scenario = Scenario::build(cfg);
        scenario.run();
        let result = scenario.collect();
        let epm = result
            .events_per_delivered_message()
            .expect("trio delivers messages");
        assert!(
            epm <= 2.05,
            "{name}: events-per-delivered-message {epm} exceeds the 2.05 gate"
        );
    }
}
