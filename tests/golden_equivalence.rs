//! Golden-equivalence suite for engine hot-path refactors.
//!
//! The fixtures under `tests/golden/` are full `ScenarioResult` JSON
//! dumps recorded **before** the typed-dispatch + timer-slot rewrite
//! (PR 5): the three `golden_trio()` presets plus the
//! `mixed-regime-stress` lab spec, whose regime-switching trajectory
//! exercises the `Scheduled` network models, the `RegimeActor`, and every
//! churn generator.
//!
//! Every metric must match bit-for-bit — **including `events_processed`**.
//! Earlier refactors (the PR 3 single-hop delivery path) legitimately
//! changed event counts, so the old suite excluded that one field; typed
//! dispatch and inline timer slots must not change what is scheduled, so
//! since PR 5 a changed count is a changed trajectory and fails here.
//!
//! Regenerate with `cargo run --release -p presence-bench --bin
//! golden_fixtures` — but only in a PR that *intends* a trajectory (or
//! event-count) change, and say so there.

use presence::sim::{builtin_catalog, golden_trio, run_spec_once, Scenario, ScenarioResult};

fn fixture(name: &str) -> ScenarioResult {
    let path = format!("{}/tests/golden/{name}.json", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("fixture {path} unreadable ({e}); regenerate with the golden_fixtures bin")
    });
    serde_json::from_str(&text).expect("fixture deserialises")
}

/// Asserts `result` matches the recorded fixture on every field,
/// `events_processed` included. Compared as canonical JSON, not structs:
/// never-active CPs carry NaN metrics (serialised as null), and NaN ≠ NaN
/// would fail a field-level comparison of two bit-identical trajectories.
fn assert_matches_fixture(name: &str, result: &ScenarioResult) {
    let golden = fixture(name);
    assert_eq!(
        result.events_processed, golden.events_processed,
        "{name}: events_processed diverged from the recorded run \
         (dispatch refactors must not change event counts)"
    );
    assert_eq!(
        serde_json::to_string(result).expect("result serialises"),
        serde_json::to_string(&golden).expect("golden serialises"),
        "{name}: trajectory diverged from the recorded pre-refactor run"
    );
}

#[test]
fn typed_dispatch_preserves_golden_trio_trajectories() {
    for (name, cfg) in golden_trio() {
        let mut scenario = Scenario::build(cfg);
        scenario.run();
        let result = scenario.collect();
        assert_eq!(
            result.messages_unroutable, 0,
            "{name}: messages went unroutable"
        );
        assert_matches_fixture(name, &result);
    }
}

/// The dispatch rewrite is pinned on a regime-switching lab trajectory,
/// not just the paper trio: mid-run churn-model switches (`SetChurn`),
/// staggered wave events, and `Scheduled` delay/loss boundaries all ride
/// the same engine paths the `ActorSet` refactor rewrote.
#[test]
fn typed_dispatch_preserves_mixed_regime_lab_trajectory() {
    let spec = builtin_catalog()
        .into_iter()
        .find(|s| s.name == "mixed-regime-stress")
        .expect("mixed-regime-stress is in the builtin catalog");
    let result = run_spec_once(&spec).expect("lab fixture spec runs");
    assert_matches_fixture("lab-mixed", &result);
}

/// The events_processed acceptance record for the single-hop refactor,
/// against the counts the **pre-refactor** engine produced for the trio
/// (hard-coded, not read from the fixtures: the fixtures are regenerated
/// whenever a PR intends a trajectory change, while these baselines are a
/// historical fact of the 3-events-per-message engine). A regression that
/// re-adds per-message hops pushes the counts back up and fails here.
#[test]
fn single_hop_fast_path_cuts_events_processed_by_a_quarter() {
    // Recorded at the PR 3 boundary (see CHANGES.md).
    let pre_refactor_events = [("sapp", 14_552u64), ("dcpp", 24_200), ("churn", 47_512)];
    for (name, cfg) in golden_trio() {
        let (_, baseline) = *pre_refactor_events
            .iter()
            .find(|(n, _)| *n == name)
            .expect("trio name has a recorded baseline");
        let mut scenario = Scenario::build(cfg);
        scenario.run();
        let events = scenario.collect().events_processed;
        assert!(
            (events as f64) <= 0.75 * baseline as f64,
            "{name}: events_processed {events} did not drop ≥ 25% from the \
             pre-refactor {baseline}"
        );
    }
}

/// The events-per-delivered-message ≤ 2 (+ drop/in-flight share) contract,
/// on the same trio the fixtures pin.
#[test]
fn golden_trio_meets_two_events_per_message_contract() {
    for (name, cfg) in golden_trio() {
        let mut scenario = Scenario::build(cfg);
        scenario.run();
        let result = scenario.collect();
        let epm = result
            .events_per_delivered_message()
            .expect("trio delivers messages");
        assert!(
            epm <= 2.05,
            "{name}: events-per-delivered-message {epm} exceeds the 2.05 gate"
        );
    }
}
