//! Packet-loss models.
//!
//! The paper's Figure 5 experiment assumes "packet losses are not
//! considered, i.e., every transmitted probe will eventually be answered",
//! and then conjectures (§5) that real losses — "which will occur in bursts
//! due to the limited capacity of devices" — would *spread the join spikes
//! over time*. Experiment E7 tests that conjecture, which requires both an
//! independent ([`BernoulliLoss`]) and a bursty ([`GilbertElliott`]) loss
//! model.

use presence_des::{SimTime, StreamRng};

/// Decides, per message, whether the network drops it.
///
/// `now` is the simulation time of the send: stationary models ignore it,
/// while time-varying wrappers ([`crate::Scheduled`]) use it to pick the
/// active regime. Callers must query with non-decreasing `now` values.
pub trait LossModel: std::fmt::Debug + Send {
    /// Returns `true` if a message sent at `now` should be dropped.
    fn should_drop(&mut self, now: SimTime, rng: &mut StreamRng) -> bool;
}

/// Boxed models forward to their contents, so `Box<dyn LossModel>` is
/// itself a [`LossModel`] — which lets the time-varying
/// [`crate::Scheduled`] wrapper hold heterogeneous boxed segments.
impl<M: LossModel + ?Sized> LossModel for Box<M> {
    fn should_drop(&mut self, now: SimTime, rng: &mut StreamRng) -> bool {
        (**self).should_drop(now, rng)
    }
}

/// The lossless network of the paper's baseline experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoLoss;

impl LossModel for NoLoss {
    fn should_drop(&mut self, _now: SimTime, _rng: &mut StreamRng) -> bool {
        false
    }
}

/// Independent (i.i.d.) loss with a fixed probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BernoulliLoss {
    p: f64,
}

impl BernoulliLoss {
    /// Creates a loss model dropping each message independently with
    /// probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1]`.
    #[must_use]
    pub fn new(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "loss probability out of range");
        Self { p }
    }

    /// The drop probability.
    #[must_use]
    pub fn probability(&self) -> f64 {
        self.p
    }
}

impl LossModel for BernoulliLoss {
    fn should_drop(&mut self, _now: SimTime, rng: &mut StreamRng) -> bool {
        rng.bernoulli(self.p)
    }
}

/// Two-state Markov (Gilbert–Elliott) burst-loss model.
///
/// The channel alternates between a *good* state with low loss and a *bad*
/// state with high loss; state transitions happen per message. This is the
/// standard model for the bursty losses the paper expects from "the limited
/// capacity of devices".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GilbertElliott {
    /// P(good → bad) per message.
    p_gb: f64,
    /// P(bad → good) per message.
    p_bg: f64,
    /// Loss probability while in the good state.
    loss_good: f64,
    /// Loss probability while in the bad state.
    loss_bad: f64,
    in_bad: bool,
}

impl GilbertElliott {
    /// Creates a Gilbert–Elliott channel starting in the good state.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]`.
    #[must_use]
    pub fn new(p_gb: f64, p_bg: f64, loss_good: f64, loss_bad: f64) -> Self {
        for (name, p) in [
            ("p_gb", p_gb),
            ("p_bg", p_bg),
            ("loss_good", loss_good),
            ("loss_bad", loss_bad),
        ] {
            assert!((0.0..=1.0).contains(&p), "{name} out of range: {p}");
        }
        Self {
            p_gb,
            p_bg,
            loss_good,
            loss_bad,
            in_bad: false,
        }
    }

    /// A moderately bursty channel with the given long-run average loss
    /// rate: bursts last ~20 messages, good periods scale to match.
    ///
    /// # Panics
    ///
    /// Panics if `avg_loss` is not in `(0, 0.5]`.
    #[must_use]
    pub fn bursty(avg_loss: f64) -> Self {
        assert!(
            avg_loss > 0.0 && avg_loss <= 0.5,
            "average loss must be in (0, 0.5]"
        );
        // In the bad state we lose 90% of messages; in good, 0.1%.
        // Stationary P(bad) = p_gb / (p_gb + p_bg). Solve for p_gb with
        // p_bg = 1/20 (mean burst length 20):
        //   avg = P(bad)*0.9 + P(good)*0.001
        let p_bg: f64 = 1.0 / 20.0;
        let want_p_bad = ((avg_loss - 0.001) / (0.9 - 0.001)).clamp(1e-6, 0.999);
        let p_gb = want_p_bad * p_bg / (1.0 - want_p_bad);
        Self::new(p_gb.min(1.0), p_bg, 0.001, 0.9)
    }

    /// Whether the channel is currently in the bad (bursty-loss) state.
    #[must_use]
    pub fn in_bad_state(&self) -> bool {
        self.in_bad
    }

    /// The long-run (stationary) drop rate of this channel:
    /// `P(bad)·loss_bad + P(good)·loss_good`, with the stationary
    /// bad-state probability `p_gb / (p_gb + p_bg)`. A channel that can
    /// never transition (`p_gb = p_bg = 0`) stays in its initial good
    /// state, so the stationary rate is `loss_good`.
    #[must_use]
    pub fn stationary_rate(&self) -> f64 {
        let p_bad = if self.p_gb + self.p_bg > 0.0 {
            self.p_gb / (self.p_gb + self.p_bg)
        } else {
            0.0
        };
        p_bad * self.loss_bad + (1.0 - p_bad) * self.loss_good
    }
}

impl LossModel for GilbertElliott {
    fn should_drop(&mut self, _now: SimTime, rng: &mut StreamRng) -> bool {
        // Transition first, then sample loss in the new state.
        if self.in_bad {
            if rng.bernoulli(self.p_bg) {
                self.in_bad = false;
            }
        } else if rng.bernoulli(self.p_gb) {
            self.in_bad = true;
        }
        let p = if self.in_bad {
            self.loss_bad
        } else {
            self.loss_good
        };
        rng.bernoulli(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> StreamRng {
        StreamRng::new(0xabcd, 1)
    }

    #[test]
    fn no_loss_never_drops() {
        let mut m = NoLoss;
        let mut r = rng();
        assert!((0..10_000).all(|_| !m.should_drop(SimTime::ZERO, &mut r)));
    }

    #[test]
    fn bernoulli_rate_matches() {
        let mut m = BernoulliLoss::new(0.2);
        let mut r = rng();
        let drops = (0..100_000)
            .filter(|_| m.should_drop(SimTime::ZERO, &mut r))
            .count();
        let rate = drops as f64 / 100_000.0;
        assert!((rate - 0.2).abs() < 0.01, "drop rate {rate}");
    }

    #[test]
    fn bernoulli_extremes() {
        let mut r = rng();
        assert!(!BernoulliLoss::new(0.0).should_drop(SimTime::ZERO, &mut r));
        assert!(BernoulliLoss::new(1.0).should_drop(SimTime::ZERO, &mut r));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bernoulli_rejects_bad_probability() {
        let _ = BernoulliLoss::new(1.5);
    }

    #[test]
    fn gilbert_elliott_long_run_rate() {
        let mut m = GilbertElliott::bursty(0.1);
        let mut r = rng();
        let n = 500_000;
        let drops = (0..n)
            .filter(|_| m.should_drop(SimTime::ZERO, &mut r))
            .count();
        let rate = drops as f64 / n as f64;
        assert!((rate - 0.1).abs() < 0.02, "long-run loss rate {rate}");
    }

    #[test]
    fn gilbert_elliott_losses_are_bursty() {
        // Compare the distribution of loss-run lengths against Bernoulli at
        // the same average rate: GE should produce much longer runs.
        fn max_run(mut m: impl LossModel, r: &mut StreamRng, n: usize) -> usize {
            let mut max = 0;
            let mut cur = 0;
            for _ in 0..n {
                if m.should_drop(SimTime::ZERO, r) {
                    cur += 1;
                    max = max.max(cur);
                } else {
                    cur = 0;
                }
            }
            max
        }
        let mut r1 = StreamRng::new(0x11, 0);
        let mut r2 = StreamRng::new(0x11, 1);
        let ge_run = max_run(GilbertElliott::bursty(0.05), &mut r1, 200_000);
        let be_run = max_run(BernoulliLoss::new(0.05), &mut r2, 200_000);
        assert!(
            ge_run > 2 * be_run,
            "GE max run {ge_run} should dwarf Bernoulli max run {be_run}"
        );
    }

    #[test]
    fn gilbert_elliott_visits_both_states() {
        let mut m = GilbertElliott::bursty(0.2);
        let mut r = rng();
        let mut saw_bad = false;
        let mut saw_good = false;
        for _ in 0..100_000 {
            let _ = m.should_drop(SimTime::ZERO, &mut r);
            if m.in_bad_state() {
                saw_bad = true;
            } else {
                saw_good = true;
            }
        }
        assert!(saw_bad && saw_good);
    }

    #[test]
    #[should_panic(expected = "average loss")]
    fn bursty_rejects_extreme_rate() {
        let _ = GilbertElliott::bursty(0.9);
    }
}
