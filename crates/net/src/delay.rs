//! Network delay models.
//!
//! The paper models one-way network delay as "a uniform probabilistic choice
//! between three modes of operation: a slow, a medium and a fast mode", and
//! notes that "we have experimented with several other types of networks,
//! and obtained similar phenomena for all of them". We therefore make the
//! delay model a trait with the paper's [`ThreeMode`] model as the default
//! and several alternatives for sensitivity studies.

use presence_des::{SimDuration, SimTime, StreamRng};

/// Samples a one-way network delay for each transmitted message.
///
/// `now` is the simulation time of the send: stationary models ignore it,
/// while time-varying wrappers ([`crate::Scheduled`]) use it to pick the
/// active regime. Callers must query with non-decreasing `now` values (the
/// fabric does, since event time is monotone).
pub trait DelayModel: std::fmt::Debug + Send {
    /// Draws the delay for one message sent at `now`.
    fn sample(&mut self, now: SimTime, rng: &mut StreamRng) -> SimDuration;

    /// An upper bound on the delay, if the model has one. Used by protocol
    /// configuration validation: the paper sets `TOF = 2·RTT_max + C_max`,
    /// which requires knowing the maximum round-trip delay.
    fn max_delay(&self) -> Option<SimDuration>;

    /// A guaranteed lower bound: every [`DelayModel::sample`] call, at any
    /// `now`, returns at least this much. This is the *lookahead* of a
    /// conservative parallel simulation — a region may safely advance
    /// `min_delay` past the barrier before a cross-region message could
    /// possibly arrive — so soundness demands the bound hold for every
    /// sample, never just in expectation (pinned by the
    /// `samples_never_undershoot_min_delay` proptest). Models that can
    /// produce arbitrarily small delays must return
    /// [`SimDuration::ZERO`], which region partitioning rejects.
    fn min_delay(&self) -> SimDuration {
        SimDuration::ZERO
    }
}

/// A constant (deterministic) delay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConstantDelay(pub SimDuration);

impl DelayModel for ConstantDelay {
    fn sample(&mut self, _now: SimTime, _rng: &mut StreamRng) -> SimDuration {
        self.0
    }
    fn max_delay(&self) -> Option<SimDuration> {
        Some(self.0)
    }
    fn min_delay(&self) -> SimDuration {
        self.0
    }
}

/// Uniformly distributed delay over `[low, high]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformDelay {
    low: SimDuration,
    high: SimDuration,
}

impl UniformDelay {
    /// Creates a uniform delay over `[low, high]`.
    ///
    /// # Panics
    ///
    /// Panics if `low > high`.
    #[must_use]
    pub fn new(low: SimDuration, high: SimDuration) -> Self {
        assert!(low <= high, "uniform delay bounds inverted");
        Self { low, high }
    }
}

impl DelayModel for UniformDelay {
    fn sample(&mut self, _now: SimTime, rng: &mut StreamRng) -> SimDuration {
        if self.low == self.high {
            return self.low;
        }
        let nanos = rng.uniform(
            self.low.as_nanos() as f64,
            self.high.as_nanos() as f64 + 1.0,
        );
        SimDuration::from_nanos((nanos as u64).min(self.high.as_nanos()))
    }
    fn max_delay(&self) -> Option<SimDuration> {
        Some(self.high)
    }
    fn min_delay(&self) -> SimDuration {
        self.low
    }
}

/// The paper's network model: each message independently experiences one of
/// three delays (slow / medium / fast), chosen uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreeMode {
    /// Delay in the slow mode (the largest of the three).
    pub slow: SimDuration,
    /// Delay in the medium mode.
    pub medium: SimDuration,
    /// Delay in the fast mode (the smallest of the three).
    pub fast: SimDuration,
}

impl ThreeMode {
    /// Creates a three-mode delay.
    ///
    /// # Panics
    ///
    /// Panics unless `fast ≤ medium ≤ slow`.
    #[must_use]
    pub fn new(slow: SimDuration, medium: SimDuration, fast: SimDuration) -> Self {
        assert!(
            fast <= medium && medium <= slow,
            "three-mode delays must satisfy fast <= medium <= slow"
        );
        Self { slow, medium, fast }
    }

    /// The delays consistent with the paper's timeout constants.
    ///
    /// The paper sets `TOF = 0.022 = 2·RTT_max + C_max` and
    /// `TOS = 0.021 = RTT_max + C_max`, which pins the maximal round-trip
    /// delay at 1 ms (one-way 0.5 ms) and the maximal device computation
    /// time at 20 ms. The slow mode is therefore 0.5 ms one way, with
    /// medium/fast at 0.3 ms and 0.1 ms.
    #[must_use]
    pub fn paper_default() -> Self {
        Self::new(
            SimDuration::from_micros(500),
            SimDuration::from_micros(300),
            SimDuration::from_micros(100),
        )
    }
}

impl DelayModel for ThreeMode {
    fn sample(&mut self, _now: SimTime, rng: &mut StreamRng) -> SimDuration {
        match rng.index(3) {
            0 => self.slow,
            1 => self.medium,
            _ => self.fast,
        }
    }
    fn max_delay(&self) -> Option<SimDuration> {
        Some(self.slow)
    }
    fn min_delay(&self) -> SimDuration {
        self.fast
    }
}

/// Exponentially distributed delay with a hard cap (the cap keeps the
/// model compatible with the protocols' bounded-timeout design; samples
/// beyond the cap are truncated to it).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExponentialDelay {
    mean: f64,
    cap: SimDuration,
}

impl ExponentialDelay {
    /// Creates an exponential delay with the given mean (seconds), truncated
    /// at `cap`.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not strictly positive and finite.
    #[must_use]
    pub fn new(mean: f64, cap: SimDuration) -> Self {
        assert!(mean > 0.0 && mean.is_finite(), "mean must be positive");
        Self { mean, cap }
    }
}

impl DelayModel for ExponentialDelay {
    fn sample(&mut self, _now: SimTime, rng: &mut StreamRng) -> SimDuration {
        let secs = rng.exponential(1.0 / self.mean);
        SimDuration::from_secs_f64(secs.min(self.cap.as_secs_f64()))
    }
    fn max_delay(&self) -> Option<SimDuration> {
        Some(self.cap)
    }
    // An exponential can land arbitrarily close to zero, so the inherited
    // `min_delay() == ZERO` default is the honest bound: exponential links
    // provide no lookahead on their own (wrap in `ShiftedDelay` to add a
    // propagation floor).
}

/// A fixed minimum plus a random component from an inner model — useful to
/// model a propagation floor plus queueing jitter.
#[derive(Debug)]
pub struct ShiftedDelay<M> {
    floor: SimDuration,
    inner: M,
}

impl<M: DelayModel> ShiftedDelay<M> {
    /// Creates a delay of `floor + inner.sample()`.
    #[must_use]
    pub fn new(floor: SimDuration, inner: M) -> Self {
        Self { floor, inner }
    }
}

impl<M: DelayModel> DelayModel for ShiftedDelay<M> {
    fn sample(&mut self, now: SimTime, rng: &mut StreamRng) -> SimDuration {
        self.floor + self.inner.sample(now, rng)
    }
    fn max_delay(&self) -> Option<SimDuration> {
        self.inner.max_delay().map(|d| self.floor + d)
    }
    fn min_delay(&self) -> SimDuration {
        self.floor + self.inner.min_delay()
    }
}

/// Clamps an inner model's samples to a hard lower bound:
/// `max(inner.sample(), floor)`.
///
/// Unlike [`ShiftedDelay`] (which *adds* the floor and shifts the whole
/// distribution), flooring leaves every sample at or above the floor
/// untouched — the distribution is unchanged wherever the inner model
/// already respects the bound. A decomposed network topology uses this to
/// give zero-`min_delay` fabrics a positive WAN-leg floor (and thereby a
/// usable cross-region lookahead) while perturbing as little of the delay
/// distribution as possible.
#[derive(Debug)]
pub struct FlooredDelay<M> {
    floor: SimDuration,
    inner: M,
}

impl<M: DelayModel> FlooredDelay<M> {
    /// Creates a delay of `max(inner.sample(), floor)`.
    #[must_use]
    pub fn new(floor: SimDuration, inner: M) -> Self {
        Self { floor, inner }
    }
}

impl<M: DelayModel> DelayModel for FlooredDelay<M> {
    fn sample(&mut self, now: SimTime, rng: &mut StreamRng) -> SimDuration {
        self.inner.sample(now, rng).max(self.floor)
    }
    fn max_delay(&self) -> Option<SimDuration> {
        self.inner.max_delay().map(|d| d.max(self.floor))
    }
    fn min_delay(&self) -> SimDuration {
        self.inner.min_delay().max(self.floor)
    }
}

/// Boxed models forward to their contents, so `Box<dyn DelayModel>` is
/// itself a [`DelayModel`] — which lets the time-varying
/// [`crate::Scheduled`] wrapper hold heterogeneous boxed segments.
impl<M: DelayModel + ?Sized> DelayModel for Box<M> {
    fn sample(&mut self, now: SimTime, rng: &mut StreamRng) -> SimDuration {
        (**self).sample(now, rng)
    }
    fn max_delay(&self) -> Option<SimDuration> {
        (**self).max_delay()
    }
    fn min_delay(&self) -> SimDuration {
        (**self).min_delay()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> StreamRng {
        StreamRng::new(0xfeed, 0)
    }

    #[test]
    fn constant_is_constant() {
        let mut m = ConstantDelay(SimDuration::from_millis(5));
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(m.sample(SimTime::ZERO, &mut r), SimDuration::from_millis(5));
        }
        assert_eq!(m.max_delay(), Some(SimDuration::from_millis(5)));
    }

    #[test]
    fn uniform_within_bounds() {
        let lo = SimDuration::from_micros(100);
        let hi = SimDuration::from_micros(500);
        let mut m = UniformDelay::new(lo, hi);
        let mut r = rng();
        for _ in 0..10_000 {
            let d = m.sample(SimTime::ZERO, &mut r);
            assert!(d >= lo && d <= hi, "sample {d} out of bounds");
        }
    }

    #[test]
    fn uniform_degenerate_point() {
        let d = SimDuration::from_micros(7);
        let mut m = UniformDelay::new(d, d);
        assert_eq!(m.sample(SimTime::ZERO, &mut rng()), d);
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn uniform_rejects_inverted() {
        let _ = UniformDelay::new(SimDuration::from_micros(2), SimDuration::from_micros(1));
    }

    #[test]
    fn three_mode_hits_all_modes_uniformly() {
        let mut m = ThreeMode::paper_default();
        let mut r = rng();
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            let d = m.sample(SimTime::ZERO, &mut r);
            if d == m.slow {
                counts[0] += 1;
            } else if d == m.medium {
                counts[1] += 1;
            } else if d == m.fast {
                counts[2] += 1;
            } else {
                panic!("unexpected delay {d}");
            }
        }
        for &c in &counts {
            let frac = c as f64 / 30_000.0;
            assert!((frac - 1.0 / 3.0).abs() < 0.02, "mode fraction {frac}");
        }
    }

    #[test]
    fn three_mode_paper_default_matches_timeout_math() {
        let m = ThreeMode::paper_default();
        // RTT_max = 2 * one-way slow = 1 ms; TOF = 2*RTT + 20ms comp = 22ms.
        let rtt_max = m.slow + m.slow;
        assert_eq!(rtt_max, SimDuration::from_millis(1));
        assert_eq!(m.max_delay(), Some(m.slow));
    }

    #[test]
    #[should_panic(expected = "fast <= medium <= slow")]
    fn three_mode_rejects_misordered() {
        let _ = ThreeMode::new(
            SimDuration::from_micros(1),
            SimDuration::from_micros(2),
            SimDuration::from_micros(3),
        );
    }

    #[test]
    fn exponential_mean_and_cap() {
        let cap = SimDuration::from_secs(1);
        let mut m = ExponentialDelay::new(0.001, cap);
        let mut r = rng();
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let d = m.sample(SimTime::ZERO, &mut r);
            assert!(d <= cap);
            sum += d.as_secs_f64();
        }
        let mean = sum / n as f64;
        assert!((mean - 0.001).abs() < 1e-4, "exp delay mean {mean}");
    }

    #[test]
    fn min_delay_bounds_are_the_expected_corners() {
        assert_eq!(
            ConstantDelay(SimDuration::from_millis(5)).min_delay(),
            SimDuration::from_millis(5)
        );
        assert_eq!(
            UniformDelay::new(SimDuration::from_micros(100), SimDuration::from_micros(500))
                .min_delay(),
            SimDuration::from_micros(100)
        );
        assert_eq!(
            ThreeMode::paper_default().min_delay(),
            SimDuration::from_micros(100)
        );
        // Exponential links admit arbitrarily small delays: no lookahead.
        assert_eq!(
            ExponentialDelay::new(0.001, SimDuration::from_secs(1)).min_delay(),
            SimDuration::ZERO
        );
        // A floor restores a positive bound even over an exponential.
        let shifted = ShiftedDelay::new(
            SimDuration::from_micros(50),
            ExponentialDelay::new(0.001, SimDuration::from_secs(1)),
        );
        assert_eq!(shifted.min_delay(), SimDuration::from_micros(50));
        let boxed: Box<dyn DelayModel> = Box::new(ThreeMode::paper_default());
        assert_eq!(boxed.min_delay(), SimDuration::from_micros(100));
    }

    #[test]
    fn shifted_adds_floor() {
        let floor = SimDuration::from_millis(1);
        let mut m = ShiftedDelay::new(floor, ConstantDelay(SimDuration::from_millis(2)));
        assert_eq!(
            m.sample(SimTime::ZERO, &mut rng()),
            SimDuration::from_millis(3)
        );
        assert_eq!(m.max_delay(), Some(SimDuration::from_millis(3)));
    }
}
