//! Simulated network substrate for the `presence` workspace.
//!
//! The paper's analysis runs both probe protocols over a network process
//! with (i) a bounded buffer of 20 000 elements, (ii) per-message delays
//! drawn from a uniform choice among three modes (slow / medium / fast),
//! and (iii) — for the Figure 5 study — no packet loss, with burst loss
//! discussed qualitatively. This crate builds those pieces as composable
//! parts:
//!
//! * [`DelayModel`] with [`ThreeMode`] (the paper's model),
//!   [`ConstantDelay`], [`UniformDelay`], [`ExponentialDelay`], and
//!   [`ShiftedDelay`];
//! * [`LossModel`] with [`NoLoss`], [`BernoulliLoss`], and the bursty
//!   [`GilbertElliott`] channel (for the paper's §5 loss conjecture);
//! * [`Scheduled`] — a piecewise wrapper that switches any delay or loss
//!   model at configured sim-time boundaries (the scenario lab's
//!   time-varying network regimes);
//! * [`BoundedFifo`] — a bounded queue with time-weighted occupancy
//!   accounting (the paper's "average buffer length ≈ 0.004");
//! * [`Fabric`] — the complete network: admission, loss, delay, and
//!   delivery bookkeeping, independent of any particular event loop.
//!
//! Everything is payload-agnostic; the simulation glue in `presence-sim`
//! marries the fabric to the DES engine and to protocol messages.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buffer;
mod delay;
mod fabric;
mod loss;
mod scheduled;

pub use buffer::{BoundedFifo, BufferStats};
pub use delay::{
    ConstantDelay, DelayModel, ExponentialDelay, FlooredDelay, ShiftedDelay, ThreeMode,
    UniformDelay,
};
pub use fabric::{Fabric, FabricStats, SendOutcome};
pub use loss::{BernoulliLoss, GilbertElliott, LossModel, NoLoss};
pub use scheduled::Scheduled;
