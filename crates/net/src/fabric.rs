//! The network fabric: in-flight message accounting, delay and loss
//! application, and overflow behaviour.
//!
//! The paper models the network as a single process with a bounded buffer
//! (20 000 elements) through which all probes and replies travel. The
//! fabric reproduces that: each message admitted occupies one buffer slot
//! from send until delivery; a full buffer drops the message (a "buffer
//! overrun"); the loss model may also discard it. The fabric is clockless —
//! it *decides* when a message would arrive, and the caller (the simulation
//! glue or a test harness) performs the actual delivery.

use crate::delay::DelayModel;
use crate::loss::LossModel;
use presence_des::{SimTime, StreamRng};
use presence_stats::TimeWeighted;

/// Counters describing everything a fabric did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FabricStats {
    /// Messages offered to the fabric.
    pub offered: u64,
    /// Messages admitted and scheduled for delivery.
    pub admitted: u64,
    /// Messages dropped because the buffer was full.
    pub dropped_overflow: u64,
    /// Messages dropped by the loss model.
    pub dropped_loss: u64,
    /// Messages handed back as delivered.
    pub delivered: u64,
    /// Highest in-flight count observed.
    pub peak_in_flight: usize,
}

/// The fabric's verdict on one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// The message is admitted and should be delivered at the given time.
    Deliver(SimTime),
    /// The message was dropped by the loss model.
    DroppedLoss,
    /// The message was dropped because the buffer was full.
    DroppedOverflow,
}

/// A bounded, lossy, delaying message fabric.
pub struct Fabric {
    capacity: usize,
    in_flight: usize,
    delay: Box<dyn DelayModel>,
    loss: Box<dyn LossModel>,
    stats: FabricStats,
    occupancy: TimeWeighted,
}

impl std::fmt::Debug for Fabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fabric")
            .field("capacity", &self.capacity)
            .field("in_flight", &self.in_flight)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Fabric {
    /// Creates a fabric with the given buffer capacity, delay model, and
    /// loss model.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize, delay: Box<dyn DelayModel>, loss: Box<dyn LossModel>) -> Self {
        assert!(capacity > 0, "fabric capacity must be positive");
        Self {
            capacity,
            in_flight: 0,
            delay,
            loss,
            stats: FabricStats::default(),
            occupancy: TimeWeighted::new(),
        }
    }

    /// The paper's configuration: 20 000-element buffer, three-mode delay,
    /// no loss.
    #[must_use]
    pub fn paper_default() -> Self {
        Self::new(
            20_000,
            Box::new(crate::delay::ThreeMode::paper_default()),
            Box::new(crate::loss::NoLoss),
        )
    }

    /// Offers a message to the fabric at time `now`. On
    /// [`SendOutcome::Deliver`], the caller must later call
    /// [`Fabric::on_delivered`] at the returned delivery time.
    pub fn send(&mut self, now: SimTime, rng: &mut StreamRng) -> SendOutcome {
        self.stats.offered += 1;
        if self.in_flight >= self.capacity {
            self.stats.dropped_overflow += 1;
            return SendOutcome::DroppedOverflow;
        }
        if self.loss.should_drop(rng) {
            self.stats.dropped_loss += 1;
            return SendOutcome::DroppedLoss;
        }
        self.in_flight += 1;
        self.stats.admitted += 1;
        self.stats.peak_in_flight = self.stats.peak_in_flight.max(self.in_flight);
        self.occupancy.set(now.as_secs_f64(), self.in_flight as f64);
        let delay = self.delay.sample(rng);
        SendOutcome::Deliver(now + delay)
    }

    /// Acknowledges that a previously admitted message reached its
    /// destination at time `now`.
    ///
    /// # Panics
    ///
    /// Panics if called more times than messages were admitted — that is a
    /// harness bug (double delivery).
    pub fn on_delivered(&mut self, now: SimTime) {
        assert!(self.in_flight > 0, "delivery without an in-flight message");
        self.in_flight -= 1;
        self.stats.delivered += 1;
        self.occupancy.set(now.as_secs_f64(), self.in_flight as f64);
    }

    /// Messages currently in flight (the paper's "buffer length").
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// The buffer capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lifetime counters.
    #[must_use]
    pub fn stats(&self) -> FabricStats {
        self.stats
    }

    /// Time-weighted mean in-flight count up to `now` — the paper's
    /// "average buffer length" (≈ 0.004 in its steady-state study).
    #[must_use]
    pub fn mean_occupancy(&self, now: SimTime) -> Option<f64> {
        self.occupancy.mean_until(now.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::ConstantDelay;
    use crate::loss::{BernoulliLoss, NoLoss};
    use presence_des::SimDuration;

    fn rng() -> StreamRng {
        StreamRng::new(0x5eed, 0)
    }

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    #[test]
    fn delivers_with_delay() {
        let mut f = Fabric::new(
            10,
            Box::new(ConstantDelay(SimDuration::from_millis(5))),
            Box::new(NoLoss),
        );
        let mut r = rng();
        match f.send(t(1.0), &mut r) {
            SendOutcome::Deliver(at) => assert_eq!(at, t(1.005)),
            other => panic!("unexpected outcome {other:?}"),
        }
        assert_eq!(f.in_flight(), 1);
        f.on_delivered(t(1.005));
        assert_eq!(f.in_flight(), 0);
        assert_eq!(f.stats().delivered, 1);
    }

    #[test]
    fn overflow_drops() {
        let mut f = Fabric::new(
            2,
            Box::new(ConstantDelay(SimDuration::from_secs(1))),
            Box::new(NoLoss),
        );
        let mut r = rng();
        assert!(matches!(f.send(t(0.0), &mut r), SendOutcome::Deliver(_)));
        assert!(matches!(f.send(t(0.0), &mut r), SendOutcome::Deliver(_)));
        assert_eq!(f.send(t(0.0), &mut r), SendOutcome::DroppedOverflow);
        assert_eq!(f.stats().dropped_overflow, 1);
        // Delivering frees a slot.
        f.on_delivered(t(1.0));
        assert!(matches!(f.send(t(1.0), &mut r), SendOutcome::Deliver(_)));
    }

    #[test]
    fn loss_model_applies() {
        let mut f = Fabric::new(
            1_000_000,
            Box::new(ConstantDelay(SimDuration::from_millis(1))),
            Box::new(BernoulliLoss::new(0.5)),
        );
        let mut r = rng();
        let mut lost = 0;
        for i in 0..10_000 {
            match f.send(t(i as f64 * 0.01), &mut r) {
                SendOutcome::DroppedLoss => lost += 1,
                SendOutcome::Deliver(at) => f.on_delivered(at),
                SendOutcome::DroppedOverflow => panic!("no overflow expected"),
            }
        }
        let rate = lost as f64 / 10_000.0;
        assert!((rate - 0.5).abs() < 0.03, "loss rate {rate}");
    }

    #[test]
    #[should_panic(expected = "delivery without")]
    fn double_delivery_panics() {
        let mut f = Fabric::paper_default();
        f.on_delivered(t(0.0));
    }

    #[test]
    fn occupancy_accounting() {
        let mut f = Fabric::new(
            10,
            Box::new(ConstantDelay(SimDuration::from_secs(1))),
            Box::new(NoLoss),
        );
        let mut r = rng();
        // One message in flight for 1s out of 100s → mean 0.01.
        let at = match f.send(t(0.0), &mut r) {
            SendOutcome::Deliver(at) => at,
            other => panic!("{other:?}"),
        };
        f.on_delivered(at);
        let mean = f.mean_occupancy(t(100.0)).unwrap();
        assert!((mean - 0.01).abs() < 1e-9, "mean occupancy {mean}");
        assert_eq!(f.stats().peak_in_flight, 1);
    }

    #[test]
    fn paper_default_shape() {
        let f = Fabric::paper_default();
        assert_eq!(f.capacity(), 20_000);
        assert_eq!(f.in_flight(), 0);
    }
}
