//! The network fabric: in-flight message accounting, delay and loss
//! application, and overflow behaviour.
//!
//! The paper models the network as a single process with a bounded buffer
//! (20 000 elements) through which all probes and replies travel. The
//! fabric reproduces that: each message admitted occupies one buffer slot
//! from send until delivery; a full buffer drops the message (a "buffer
//! overrun"); the loss model may also discard it. The fabric is clockless —
//! it *decides* when a message would arrive, and the caller (the simulation
//! glue or a test harness) performs the actual delivery.
//!
//! # Lazy delivery accounting
//!
//! The caller does **not** report deliveries back. Instead the fabric keeps
//! an internal min-heap of the delivery deadlines it has handed out and
//! settles every deadline `≤ now`, in time order, at the start of each
//! [`send`](Fabric::send) and each time-indexed query. This is what lets
//! the simulation glue schedule the delivery event directly on the
//! destination actor (one dispatch, no delivery callback hop) while the
//! buffer accounting stays exactly what an eagerly-notified fabric would
//! compute: deadlines are applied in the same time order, and a deadline
//! that ties with a `send` settles first — matching the engine's FIFO
//! order, where the delivery event (scheduled at admit time, hence with the
//! smaller sequence number) fires before a same-instant send. `in_flight`,
//! the overflow decisions, `peak_in_flight`, and the time-weighted
//! occupancy integral are therefore bit-identical to the eager version —
//! `tests/proptests.rs` pins that against a reference model.

use crate::delay::DelayModel;
use crate::loss::LossModel;
use presence_des::{SimDuration, SimTime, StreamRng};
use presence_stats::TimeWeighted;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Counters describing everything a fabric did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FabricStats {
    /// Messages offered to the fabric.
    pub offered: u64,
    /// Messages admitted and scheduled for delivery.
    pub admitted: u64,
    /// Messages dropped because the buffer was full.
    pub dropped_overflow: u64,
    /// Messages dropped by the loss model.
    pub dropped_loss: u64,
    /// Messages whose delivery deadline has passed.
    pub delivered: u64,
    /// Highest in-flight count observed.
    pub peak_in_flight: usize,
    /// Messages addressed to an unregistered destination. The fabric never
    /// sees those (they are refused before admission); the routing layer
    /// counts them here so misroutes cannot masquerade as network loss.
    pub unroutable: u64,
}

/// The fabric's verdict on one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// The message is admitted and will be counted as delivered at the
    /// given time (the caller schedules the actual hand-off).
    Deliver(SimTime),
    /// The message was dropped by the loss model.
    DroppedLoss,
    /// The message was dropped because the buffer was full.
    DroppedOverflow,
}

/// A bounded, lossy, delaying message fabric.
pub struct Fabric {
    capacity: usize,
    in_flight: usize,
    delay: Box<dyn DelayModel>,
    loss: Box<dyn LossModel>,
    stats: FabricStats,
    occupancy: TimeWeighted,
    /// Delivery deadlines handed out but not yet settled, drained in time
    /// order by [`Fabric::settle`]. Equal deadlines commute (each settles
    /// one anonymous slot), so the heap's tie order is immaterial.
    pending: BinaryHeap<Reverse<SimTime>>,
}

impl std::fmt::Debug for Fabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fabric")
            .field("capacity", &self.capacity)
            .field("in_flight", &self.in_flight)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Fabric {
    /// Creates a fabric with the given buffer capacity, delay model, and
    /// loss model.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize, delay: Box<dyn DelayModel>, loss: Box<dyn LossModel>) -> Self {
        assert!(capacity > 0, "fabric capacity must be positive");
        Self {
            capacity,
            in_flight: 0,
            delay,
            loss,
            stats: FabricStats::default(),
            occupancy: TimeWeighted::new(),
            pending: BinaryHeap::new(),
        }
    }

    /// The paper's configuration: 20 000-element buffer, three-mode delay,
    /// no loss.
    #[must_use]
    pub fn paper_default() -> Self {
        Self::new(
            20_000,
            Box::new(crate::delay::ThreeMode::paper_default()),
            Box::new(crate::loss::NoLoss),
        )
    }

    /// Settles every pending delivery deadline `≤ now`, in time order:
    /// frees the buffer slot, counts the delivery, and extends the
    /// occupancy integral at the deadline's own timestamp.
    pub fn settle(&mut self, now: SimTime) {
        while let Some(&Reverse(at)) = self.pending.peek() {
            if at > now {
                break;
            }
            self.pending.pop();
            debug_assert!(self.in_flight > 0, "deadline without in-flight message");
            self.in_flight -= 1;
            self.stats.delivered += 1;
            self.occupancy.set(at.as_secs_f64(), self.in_flight as f64);
        }
    }

    /// Offers a message to the fabric at time `now`. On
    /// [`SendOutcome::Deliver`], the fabric has already booked the returned
    /// delivery time; the caller's only job is to hand the message over at
    /// that instant.
    ///
    /// Deadlines `≤ now` settle first, so a delivery tying with this send
    /// frees its slot before the overflow check — the same order an eager
    /// engine would process the two events in.
    pub fn send(&mut self, now: SimTime, rng: &mut StreamRng) -> SendOutcome {
        self.send_relayed(now, rng, SimDuration::ZERO)
    }

    /// [`Fabric::send`] for a message that already spent `discount` of its
    /// end-to-end delay in transit before reaching this fabric — the
    /// decomposed-topology relay path, where an inter-plane leg of
    /// `min_delay` precedes admission on the plane that owns the
    /// destination. The sampled delay is reduced by `discount` (never
    /// below zero), so the total delivery delay is `max(sample, discount)`
    /// — bit-equal to the sampled delay whenever the model's
    /// [`DelayModel::min_delay`] covers the leg.
    pub fn send_relayed(
        &mut self,
        now: SimTime,
        rng: &mut StreamRng,
        discount: SimDuration,
    ) -> SendOutcome {
        self.settle(now);
        self.stats.offered += 1;
        if self.in_flight >= self.capacity {
            self.stats.dropped_overflow += 1;
            return SendOutcome::DroppedOverflow;
        }
        if self.loss.should_drop(now, rng) {
            self.stats.dropped_loss += 1;
            return SendOutcome::DroppedLoss;
        }
        self.in_flight += 1;
        self.stats.admitted += 1;
        self.stats.peak_in_flight = self.stats.peak_in_flight.max(self.in_flight);
        self.occupancy.set(now.as_secs_f64(), self.in_flight as f64);
        let delay = self.delay.sample(now, rng).saturating_sub(discount);
        let at = now + delay;
        self.pending.push(Reverse(at));
        SendOutcome::Deliver(at)
    }

    /// Records a message that could not be routed (no registered
    /// destination). Such messages never occupy a buffer slot.
    pub fn count_unroutable(&mut self) {
        self.stats.unroutable += 1;
    }

    /// Messages in flight at `now` (the paper's "buffer length").
    #[must_use]
    pub fn in_flight_at(&mut self, now: SimTime) -> usize {
        self.settle(now);
        self.in_flight
    }

    /// The buffer capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The guaranteed minimum delivery delay of this fabric's delay model —
    /// the cross-region *lookahead* a conservative parallel run may claim
    /// for routes through this fabric (see [`DelayModel::min_delay`]).
    /// Zero means the fabric provides no lookahead and its routes cannot
    /// cross a region boundary.
    #[must_use]
    pub fn min_delay(&self) -> SimDuration {
        self.delay.min_delay()
    }

    /// Lifetime counters as of `now` (deliveries due by `now` are settled
    /// first).
    #[must_use]
    pub fn stats_at(&mut self, now: SimTime) -> FabricStats {
        self.settle(now);
        self.stats
    }

    /// Time-weighted mean in-flight count up to `now` — the paper's
    /// "average buffer length" (≈ 0.004 in its steady-state study).
    #[must_use]
    pub fn mean_occupancy(&mut self, now: SimTime) -> Option<f64> {
        self.settle(now);
        self.occupancy.mean_until(now.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::ConstantDelay;
    use crate::loss::{BernoulliLoss, NoLoss};
    use presence_des::SimDuration;

    fn rng() -> StreamRng {
        StreamRng::new(0x5eed, 0)
    }

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    #[test]
    fn delivers_with_delay() {
        let mut f = Fabric::new(
            10,
            Box::new(ConstantDelay(SimDuration::from_millis(5))),
            Box::new(NoLoss),
        );
        let mut r = rng();
        match f.send(t(1.0), &mut r) {
            SendOutcome::Deliver(at) => assert_eq!(at, t(1.005)),
            other => panic!("unexpected outcome {other:?}"),
        }
        assert_eq!(f.in_flight_at(t(1.004)), 1, "still in transit");
        assert_eq!(f.in_flight_at(t(1.005)), 0, "deadline settles lazily");
        assert_eq!(f.stats_at(t(1.005)).delivered, 1);
    }

    #[test]
    fn overflow_drops() {
        let mut f = Fabric::new(
            2,
            Box::new(ConstantDelay(SimDuration::from_secs(1))),
            Box::new(NoLoss),
        );
        let mut r = rng();
        assert!(matches!(f.send(t(0.0), &mut r), SendOutcome::Deliver(_)));
        assert!(matches!(f.send(t(0.0), &mut r), SendOutcome::Deliver(_)));
        assert_eq!(f.send(t(0.0), &mut r), SendOutcome::DroppedOverflow);
        assert_eq!(f.stats_at(t(0.0)).dropped_overflow, 1);
        // A send at exactly the delivery deadline settles the slot first.
        assert!(matches!(f.send(t(1.0), &mut r), SendOutcome::Deliver(_)));
    }

    #[test]
    fn loss_model_applies() {
        let mut f = Fabric::new(
            1_000_000,
            Box::new(ConstantDelay(SimDuration::from_millis(1))),
            Box::new(BernoulliLoss::new(0.5)),
        );
        let mut r = rng();
        let mut lost = 0;
        for i in 0..10_000 {
            match f.send(t(i as f64 * 0.01), &mut r) {
                SendOutcome::DroppedLoss => lost += 1,
                SendOutcome::Deliver(_) | SendOutcome::DroppedOverflow => {}
            }
        }
        let rate = lost as f64 / 10_000.0;
        assert!((rate - 0.5).abs() < 0.03, "loss rate {rate}");
        let s = f.stats_at(t(1_000.0));
        assert_eq!(s.delivered, s.admitted, "all deadlines passed");
    }

    #[test]
    fn occupancy_accounting() {
        let mut f = Fabric::new(
            10,
            Box::new(ConstantDelay(SimDuration::from_secs(1))),
            Box::new(NoLoss),
        );
        let mut r = rng();
        // One message in flight for 1s out of 100s → mean 0.01.
        assert!(matches!(f.send(t(0.0), &mut r), SendOutcome::Deliver(_)));
        let mean = f.mean_occupancy(t(100.0)).unwrap();
        assert!((mean - 0.01).abs() < 1e-9, "mean occupancy {mean}");
        assert_eq!(f.stats_at(t(100.0)).peak_in_flight, 1);
    }

    #[test]
    fn settle_is_idempotent_and_ordered() {
        let mut f = Fabric::new(
            10,
            Box::new(ConstantDelay(SimDuration::from_secs(1))),
            Box::new(NoLoss),
        );
        let mut r = rng();
        for i in 0..5 {
            assert!(matches!(
                f.send(t(f64::from(i) * 0.1), &mut r),
                SendOutcome::Deliver(_)
            ));
        }
        f.settle(t(1.15));
        f.settle(t(1.15));
        let s = f.stats_at(t(1.15));
        assert_eq!(s.delivered, 2, "deadlines at 1.0 and 1.1 settled once");
        assert_eq!(f.in_flight_at(t(1.15)), 3);
        assert_eq!(f.in_flight_at(t(2.0)), 0);
    }

    #[test]
    fn unroutable_counter() {
        let mut f = Fabric::paper_default();
        f.count_unroutable();
        let s = f.stats_at(t(0.0));
        assert_eq!(s.unroutable, 1);
        assert_eq!(s.offered, 0, "unroutable messages are never offered");
    }

    #[test]
    fn paper_default_shape() {
        let mut f = Fabric::paper_default();
        assert_eq!(f.capacity(), 20_000);
        assert_eq!(f.in_flight_at(SimTime::ZERO), 0);
    }

    #[test]
    fn min_delay_reports_the_lookahead_bound() {
        let f = Fabric::paper_default();
        // ThreeMode's fast mode: the paper fabric offers 100 µs lookahead.
        assert_eq!(f.min_delay(), SimDuration::from_micros(100));
        let zero = Fabric::new(
            10,
            Box::new(crate::delay::ExponentialDelay::new(
                0.001,
                SimDuration::from_secs(1),
            )),
            Box::new(NoLoss),
        );
        assert_eq!(zero.min_delay(), SimDuration::ZERO, "no lookahead");
    }
}
