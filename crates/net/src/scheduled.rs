//! Time-varying ("scheduled") network models.
//!
//! The paper's future-work section conjectures how the protocols behave
//! under conditions that *change during a run* — bursty losses arriving
//! mid-experiment, links that degrade and recover. [`Scheduled<M>`] turns
//! any stationary [`DelayModel`] or [`LossModel`] into a piecewise
//! schedule: a sorted list of `(start, model)` segments, where the segment
//! whose start is the latest one `≤ now` is active. Switching is exact at
//! the boundary: a message sent at precisely the boundary instant already
//! uses the new model.
//!
//! The wrapper adds **no RNG draws** of its own, so a degenerate
//! single-segment schedule is draw-for-draw identical to the bare model —
//! the property the scenario lab leans on to keep paper-faithful catalog
//! entries bit-identical to the hard-coded presets (pinned by
//! `tests/proptests.rs` and the sim-level golden suite).

use crate::delay::DelayModel;
use crate::loss::LossModel;
use presence_des::{SimDuration, SimTime, StreamRng};

/// A piecewise-stationary model: `segments[i].1` is active from
/// `segments[i].0` (inclusive) until the next segment's start (exclusive).
///
/// Queries must come with non-decreasing `now` values — exactly what a
/// discrete-event simulation produces. The active-segment cursor only
/// moves forward, so each send pays an O(1) boundary check, not a search.
#[derive(Debug)]
pub struct Scheduled<M> {
    segments: Vec<(SimTime, M)>,
    current: usize,
}

impl<M> Scheduled<M> {
    /// A schedule with a single segment active from t = 0 — behaviourally
    /// identical to the bare `model`.
    #[must_use]
    pub fn new(model: M) -> Self {
        Self {
            segments: vec![(SimTime::ZERO, model)],
            current: 0,
        }
    }

    /// Builds a schedule from explicit segments.
    ///
    /// # Panics
    ///
    /// Panics if `segments` is empty, if the first segment does not start
    /// at t = 0 (there would be no model before it), or if starts are not
    /// strictly increasing.
    #[must_use]
    pub fn from_segments(segments: Vec<(SimTime, M)>) -> Self {
        assert!(!segments.is_empty(), "schedule needs at least one segment");
        assert_eq!(
            segments[0].0,
            SimTime::ZERO,
            "first segment must start at t = 0"
        );
        for pair in segments.windows(2) {
            assert!(
                pair[0].0 < pair[1].0,
                "segment starts must be strictly increasing"
            );
        }
        Self {
            segments,
            current: 0,
        }
    }

    /// Chains another segment starting at `at` (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `at` is not after the last segment's start.
    #[must_use]
    pub fn then(mut self, at: SimTime, model: M) -> Self {
        let last = self.segments.last().expect("schedule is never empty").0;
        assert!(at > last, "segment starts must be strictly increasing");
        self.segments.push((at, model));
        self
    }

    /// Index of the segment active at `now` (after advancing the cursor).
    pub fn active_index(&mut self, now: SimTime) -> usize {
        self.advance(now);
        self.current
    }

    /// The number of segments.
    #[must_use]
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Whether the schedule is empty (it never is; see `from_segments`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// The segment start times (regime boundaries), including t = 0.
    pub fn boundaries(&self) -> impl Iterator<Item = SimTime> + '_ {
        self.segments.iter().map(|&(at, _)| at)
    }

    fn advance(&mut self, now: SimTime) {
        while self.current + 1 < self.segments.len() && self.segments[self.current + 1].0 <= now {
            self.current += 1;
        }
    }

    fn active(&mut self, now: SimTime) -> &mut M {
        self.advance(now);
        &mut self.segments[self.current].1
    }
}

impl<M: DelayModel> DelayModel for Scheduled<M> {
    fn sample(&mut self, now: SimTime, rng: &mut StreamRng) -> SimDuration {
        self.active(now).sample(now, rng)
    }

    /// The maximum over *all* segments — protocol timeout validation must
    /// hold across every regime the run will visit. `None` if any segment
    /// is unbounded.
    fn max_delay(&self) -> Option<SimDuration> {
        self.segments
            .iter()
            .map(|(_, m)| m.max_delay())
            .try_fold(SimDuration::ZERO, |acc, d| d.map(|d| acc.max(d)))
    }

    /// The minimum over *all* segments — a lookahead bound must survive
    /// every regime the run will visit, including ones not yet active.
    fn min_delay(&self) -> SimDuration {
        self.segments
            .iter()
            .map(|(_, m)| m.min_delay())
            .min()
            .expect("schedule is never empty")
    }
}

impl<M: LossModel> LossModel for Scheduled<M> {
    fn should_drop(&mut self, now: SimTime, rng: &mut StreamRng) -> bool {
        self.active(now).should_drop(now, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::ConstantDelay;
    use crate::loss::{BernoulliLoss, NoLoss};

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    fn d(millis: u64) -> SimDuration {
        SimDuration::from_millis(millis)
    }

    fn rng() -> StreamRng {
        StreamRng::new(0x5c4ed, 0)
    }

    #[test]
    fn switches_exactly_at_the_boundary() {
        let mut m = Scheduled::new(ConstantDelay(d(1))).then(t(10.0), ConstantDelay(d(5)));
        let mut r = rng();
        assert_eq!(m.sample(t(0.0), &mut r), d(1));
        assert_eq!(m.sample(t(9.999_999), &mut r), d(1), "just before");
        assert_eq!(m.sample(t(10.0), &mut r), d(5), "at the boundary");
        assert_eq!(m.sample(t(10.0), &mut r), d(5), "still at the boundary");
        assert_eq!(m.sample(t(500.0), &mut r), d(5), "long after");
    }

    #[test]
    fn walks_multiple_boundaries_in_one_step() {
        let mut m = Scheduled::new(ConstantDelay(d(1)))
            .then(t(1.0), ConstantDelay(d(2)))
            .then(t(2.0), ConstantDelay(d(3)))
            .then(t(3.0), ConstantDelay(d(4)));
        let mut r = rng();
        // A quiet network may not send for several regimes; the cursor
        // must catch up across all of them at once.
        assert_eq!(m.sample(t(2.5), &mut r), d(3));
        assert_eq!(m.active_index(t(2.5)), 2);
        assert_eq!(m.sample(t(3.0), &mut r), d(4));
    }

    #[test]
    fn loss_schedule_switches() {
        let mut m = Scheduled::new(NoLoss);
        // NoLoss → NoLoss keeps the type uniform; dyn-box heterogeneous
        // schedules are covered below.
        let mut r = rng();
        assert!(!m.should_drop(t(0.0), &mut r));

        let mut m: Scheduled<Box<dyn LossModel>> =
            Scheduled::new(Box::new(NoLoss) as Box<dyn LossModel>)
                .then(t(5.0), Box::new(BernoulliLoss::new(1.0)));
        assert!(!m.should_drop(t(4.9), &mut r));
        assert!(m.should_drop(t(5.0), &mut r), "certain loss after switch");
    }

    #[test]
    fn heterogeneous_boxed_delay_schedule() {
        let mut m: Scheduled<Box<dyn DelayModel>> =
            Scheduled::new(Box::new(ConstantDelay(d(2))) as Box<dyn DelayModel>)
                .then(t(1.0), Box::new(crate::delay::ThreeMode::paper_default()));
        assert_eq!(m.max_delay(), Some(d(2)), "max over all segments");
        assert_eq!(
            m.min_delay(),
            SimDuration::from_micros(100),
            "min over all segments, even inactive ones"
        );
        let mut r = rng();
        assert_eq!(m.sample(t(0.5), &mut r), d(2));
        let after = m.sample(t(1.5), &mut r);
        assert!(after <= SimDuration::from_micros(500));
    }

    #[test]
    fn degenerate_schedule_matches_bare_model_draw_for_draw() {
        let mut bare = crate::delay::ThreeMode::paper_default();
        let mut scheduled = Scheduled::new(crate::delay::ThreeMode::paper_default());
        let mut r1 = StreamRng::new(42, 7);
        let mut r2 = StreamRng::new(42, 7);
        for i in 0..10_000 {
            let now = t(f64::from(i) * 0.01);
            assert_eq!(bare.sample(now, &mut r1), scheduled.sample(now, &mut r2));
        }
    }

    #[test]
    fn boundaries_are_exposed() {
        let m = Scheduled::new(ConstantDelay(d(1))).then(t(7.0), ConstantDelay(d(2)));
        let b: Vec<SimTime> = m.boundaries().collect();
        assert_eq!(b, vec![SimTime::ZERO, t(7.0)]);
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_non_increasing_segments() {
        let _ = Scheduled::from_segments(vec![
            (SimTime::ZERO, NoLoss),
            (t(5.0), NoLoss),
            (t(5.0), NoLoss),
        ]);
    }

    #[test]
    #[should_panic(expected = "start at t = 0")]
    fn rejects_late_first_segment() {
        let _ = Scheduled::from_segments(vec![(t(1.0), NoLoss)]);
    }

    #[test]
    #[should_panic(expected = "at least one segment")]
    fn rejects_empty_schedule() {
        let _ = Scheduled::from_segments(Vec::<(SimTime, NoLoss)>::new());
    }
}
