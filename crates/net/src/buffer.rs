//! Bounded FIFO buffers with occupancy accounting.
//!
//! The paper fixes the network buffer at 20 000 elements "to avoid buffer
//! overruns" and reports that the *average buffer length* stays tiny
//! (≈ 0.004). [`BoundedFifo`] provides the bounded queue plus exactly that
//! time-weighted occupancy measurement.

use presence_des::SimTime;
use presence_stats::TimeWeighted;
use std::collections::VecDeque;

/// Statistics of a [`BoundedFifo`]'s lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BufferStats {
    /// Items accepted into the buffer.
    pub accepted: u64,
    /// Items rejected because the buffer was full.
    pub rejected: u64,
    /// Items removed from the buffer.
    pub popped: u64,
    /// Highest occupancy ever observed.
    pub peak_occupancy: usize,
}

/// A bounded FIFO queue that tracks time-weighted occupancy.
///
/// All mutating operations take the current (virtual or wall) time so the
/// occupancy integral can be maintained without a clock dependency.
#[derive(Debug, Clone)]
pub struct BoundedFifo<T> {
    items: VecDeque<T>,
    capacity: usize,
    stats: BufferStats,
    occupancy: TimeWeighted,
}

impl<T> BoundedFifo<T> {
    /// Creates a buffer holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            items: VecDeque::new(),
            capacity,
            stats: BufferStats::default(),
            occupancy: TimeWeighted::new(),
        }
    }

    /// The paper's network buffer: 20 000 elements.
    #[must_use]
    pub fn paper_default() -> Self {
        Self::new(20_000)
    }

    /// Attempts to enqueue `item` at time `now`. Returns `Err(item)` if the
    /// buffer is full (the caller decides whether that is a drop or
    /// back-pressure).
    pub fn push(&mut self, now: SimTime, item: T) -> Result<(), T> {
        if self.items.len() >= self.capacity {
            self.stats.rejected += 1;
            return Err(item);
        }
        self.items.push_back(item);
        self.stats.accepted += 1;
        self.stats.peak_occupancy = self.stats.peak_occupancy.max(self.items.len());
        self.occupancy
            .set(now.as_secs_f64(), self.items.len() as f64);
        Ok(())
    }

    /// Dequeues the oldest item at time `now`.
    pub fn pop(&mut self, now: SimTime) -> Option<T> {
        let item = self.items.pop_front()?;
        self.stats.popped += 1;
        self.occupancy
            .set(now.as_secs_f64(), self.items.len() as f64);
        Some(item)
    }

    /// Current number of queued items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the buffer is at capacity.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lifetime statistics.
    #[must_use]
    pub fn stats(&self) -> BufferStats {
        self.stats
    }

    /// Time-weighted mean occupancy from the first operation until `now`
    /// (the paper's "average buffer length"); `None` before any operation.
    #[must_use]
    pub fn mean_occupancy(&self, now: SimTime) -> Option<f64> {
        self.occupancy.mean_until(now.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    #[test]
    fn fifo_order() {
        let mut b = BoundedFifo::new(10);
        for i in 0..5 {
            b.push(t(0.0), i).unwrap();
        }
        for i in 0..5 {
            assert_eq!(b.pop(t(1.0)), Some(i));
        }
        assert_eq!(b.pop(t(1.0)), None);
    }

    #[test]
    fn rejects_when_full() {
        let mut b = BoundedFifo::new(2);
        b.push(t(0.0), "a").unwrap();
        b.push(t(0.0), "b").unwrap();
        assert!(b.is_full());
        assert_eq!(b.push(t(0.0), "c"), Err("c"));
        assert_eq!(b.stats().rejected, 1);
        assert_eq!(b.stats().accepted, 2);
        // After a pop there is room again.
        assert_eq!(b.pop(t(1.0)), Some("a"));
        assert!(b.push(t(1.0), "c").is_ok());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = BoundedFifo::<u8>::new(0);
    }

    #[test]
    fn peak_occupancy_tracked() {
        let mut b = BoundedFifo::new(10);
        for i in 0..7 {
            b.push(t(0.0), i).unwrap();
        }
        for _ in 0..7 {
            b.pop(t(0.1));
        }
        assert_eq!(b.stats().peak_occupancy, 7);
        assert_eq!(b.stats().popped, 7);
    }

    #[test]
    fn mean_occupancy_time_weighted() {
        let mut b = BoundedFifo::new(10);
        // One item resident for 1s out of a 100s horizon → mean 0.01.
        b.push(t(0.0), ()).unwrap();
        b.pop(t(1.0));
        let mean = b.mean_occupancy(t(100.0)).unwrap();
        assert!((mean - 0.01).abs() < 1e-9, "mean occupancy {mean}");
    }

    #[test]
    fn mean_occupancy_empty_buffer_none() {
        let b = BoundedFifo::<u8>::new(5);
        assert!(b.mean_occupancy(t(10.0)).is_none());
    }

    #[test]
    fn paper_default_capacity() {
        let b = BoundedFifo::<u8>::paper_default();
        assert_eq!(b.capacity(), 20_000);
    }
}
