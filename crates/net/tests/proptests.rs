//! Property-based tests for the network substrate.

use presence_des::{SimDuration, SimTime, StreamRng};
use presence_net::{
    BernoulliLoss, BoundedFifo, ConstantDelay, DelayModel, ExponentialDelay, Fabric,
    GilbertElliott, LossModel, NoLoss, SendOutcome, ThreeMode, UniformDelay,
};
use proptest::prelude::*;

fn any_delay() -> impl Strategy<Value = (u8, u64, u64)> {
    // (kind, a, b) with a <= b, in nanoseconds up to 10 ms.
    (0u8..4, 0u64..10_000_000, 0u64..10_000_000)
        .prop_map(|(k, a, b)| (k, a.min(b), a.max(b).max(1)))
}

fn build_delay(kind: u8, a: u64, b: u64) -> Box<dyn DelayModel> {
    match kind {
        0 => Box::new(ConstantDelay(SimDuration::from_nanos(a))),
        1 => Box::new(UniformDelay::new(
            SimDuration::from_nanos(a),
            SimDuration::from_nanos(b),
        )),
        2 => Box::new(ThreeMode::new(
            SimDuration::from_nanos(b),
            SimDuration::from_nanos(a / 2 + b / 2),
            SimDuration::from_nanos(a),
        )),
        _ => Box::new(ExponentialDelay::new(
            (a.max(1)) as f64 / 1e9,
            SimDuration::from_nanos(b.max(a) + 1),
        )),
    }
}

proptest! {
    /// Every delay model respects its own stated maximum.
    #[test]
    fn delay_models_respect_max((kind, a, b) in any_delay(), seed in any::<u64>()) {
        let mut model = build_delay(kind, a, b);
        let mut rng = StreamRng::new(seed, 0);
        if let Some(max) = model.max_delay() {
            for _ in 0..500 {
                let d = model.sample(&mut rng);
                prop_assert!(d <= max, "sample {d} above stated max {max}");
            }
        }
    }

    /// Fabric conservation: offered = admitted + dropped, delivered never
    /// exceeds admitted, and in-flight is admitted − delivered.
    #[test]
    fn fabric_conserves_messages(
        capacity in 1usize..64,
        loss_p in 0.0..0.5f64,
        ops in prop::collection::vec(any::<bool>(), 1..300),
        seed in any::<u64>(),
    ) {
        let mut fabric = Fabric::new(
            capacity,
            Box::new(ConstantDelay(SimDuration::from_millis(1))),
            Box::new(BernoulliLoss::new(loss_p)),
        );
        let mut rng = StreamRng::new(seed, 1);
        let mut pending: Vec<SimTime> = Vec::new();
        let mut now = SimTime::ZERO;
        for &send in &ops {
            now += SimDuration::from_micros(100);
            if send || pending.is_empty() {
                match fabric.send(now, &mut rng) {
                    SendOutcome::Deliver(at) => pending.push(at),
                    SendOutcome::DroppedLoss | SendOutcome::DroppedOverflow => {}
                }
            } else {
                let at = pending.remove(0);
                fabric.on_delivered(at.max(now));
                now = at.max(now);
            }
        }
        let s = fabric.stats();
        prop_assert_eq!(s.offered, s.admitted + s.dropped_loss + s.dropped_overflow);
        prop_assert!(s.delivered <= s.admitted);
        prop_assert_eq!(fabric.in_flight() as u64, s.admitted - s.delivered);
        prop_assert!(s.peak_in_flight <= capacity);
    }

    /// The fabric never admits beyond capacity.
    #[test]
    fn fabric_capacity_is_hard(capacity in 1usize..32, extra in 1usize..32, seed in any::<u64>()) {
        let mut fabric = Fabric::new(
            capacity,
            Box::new(ConstantDelay(SimDuration::from_secs(1))),
            Box::new(NoLoss),
        );
        let mut rng = StreamRng::new(seed, 2);
        let mut admitted = 0;
        for _ in 0..capacity + extra {
            match fabric.send(SimTime::ZERO, &mut rng) {
                SendOutcome::Deliver(_) => admitted += 1,
                SendOutcome::DroppedOverflow => {}
                SendOutcome::DroppedLoss => unreachable!("no loss configured"),
            }
        }
        prop_assert_eq!(admitted, capacity);
        prop_assert_eq!(fabric.stats().dropped_overflow as usize, extra);
    }

    /// Bounded FIFO: pop order equals push order; counts conserved.
    #[test]
    fn fifo_order_and_conservation(items in prop::collection::vec(any::<u32>(), 1..200), cap in 1usize..64) {
        let mut fifo = BoundedFifo::new(cap);
        let mut accepted = Vec::new();
        let mut t = 0.0;
        for &x in &items {
            t += 0.001;
            if fifo.push(SimTime::from_secs_f64(t), x).is_ok() {
                accepted.push(x);
            }
        }
        let mut popped = Vec::new();
        while let Some(x) = fifo.pop(SimTime::from_secs_f64(t + 1.0)) {
            popped.push(x);
        }
        prop_assert_eq!(&popped, &accepted);
        let s = fifo.stats();
        prop_assert_eq!(s.accepted as usize + s.rejected as usize, items.len());
        prop_assert_eq!(s.popped as usize, accepted.len());
    }

    /// Gilbert–Elliott long-run loss rate lands near its target.
    #[test]
    fn gilbert_elliott_rate_targets(target in 0.02..0.4f64, seed in any::<u64>()) {
        let mut model = GilbertElliott::bursty(target);
        let mut rng = StreamRng::new(seed, 3);
        let n = 200_000;
        let drops = (0..n).filter(|_| model.should_drop(&mut rng)).count();
        let rate = drops as f64 / n as f64;
        prop_assert!(
            (rate - target).abs() < 0.05 + target * 0.3,
            "target {target}, measured {rate}"
        );
    }
}
