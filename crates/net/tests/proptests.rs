//! Property-based tests for the network substrate.

use presence_des::{SimDuration, SimTime, StreamRng};
use presence_net::{
    BernoulliLoss, BoundedFifo, ConstantDelay, DelayModel, ExponentialDelay, Fabric,
    GilbertElliott, LossModel, NoLoss, Scheduled, SendOutcome, ShiftedDelay, ThreeMode,
    UniformDelay,
};
use proptest::prelude::*;

/// One kind per stationary delay model, plus the min-plus wrapper
/// (`ShiftedDelay`, a floor over a zero-lookahead exponential).
const DELAY_KINDS: u8 = 5;

fn any_delay() -> impl Strategy<Value = (u8, u64, u64)> {
    // (kind, a, b) with a <= b, in nanoseconds up to 10 ms.
    (0u8..DELAY_KINDS, 0u64..10_000_000, 0u64..10_000_000)
        .prop_map(|(k, a, b)| (k, a.min(b), a.max(b).max(1)))
}

fn build_delay(kind: u8, a: u64, b: u64) -> Box<dyn DelayModel> {
    match kind {
        0 => Box::new(ConstantDelay(SimDuration::from_nanos(a))),
        1 => Box::new(UniformDelay::new(
            SimDuration::from_nanos(a),
            SimDuration::from_nanos(b),
        )),
        2 => Box::new(ThreeMode::new(
            SimDuration::from_nanos(b),
            SimDuration::from_nanos(a / 2 + b / 2),
            SimDuration::from_nanos(a),
        )),
        3 => Box::new(ExponentialDelay::new(
            (a.max(1)) as f64 / 1e9,
            SimDuration::from_nanos(b.max(a) + 1),
        )),
        _ => Box::new(ShiftedDelay::new(
            SimDuration::from_nanos(a),
            ExponentialDelay::new((b.max(1)) as f64 / 1e9, SimDuration::from_nanos(b)),
        )),
    }
}

proptest! {
    /// Every delay model respects its own stated maximum.
    #[test]
    fn delay_models_respect_max((kind, a, b) in any_delay(), seed in any::<u64>()) {
        let mut model = build_delay(kind, a, b);
        let mut rng = StreamRng::new(seed, 0);
        if let Some(max) = model.max_delay() {
            for _ in 0..500 {
                let d = model.sample(SimTime::ZERO, &mut rng);
                prop_assert!(d <= max, "sample {d} above stated max {max}");
            }
        }
    }

    /// Every delay model respects its own stated minimum at every query
    /// time — the lookahead soundness condition: a conservative parallel
    /// run advances a region `min_delay` past the barrier on the promise
    /// that no sample can undershoot it, ever, not just in expectation.
    /// Covers Constant, Uniform, ThreeMode, the capped exponential, and
    /// the min-plus wrapper (`ShiftedDelay`) directly, plus `Scheduled`
    /// over a random mix of all of them (the bound must hold across every
    /// segment, including ones not yet active).
    #[test]
    fn samples_never_undershoot_min_delay(
        (kind, a, b) in any_delay(),
        segs in prop::collection::vec(
            ((0u8..DELAY_KINDS), 0u64..10_000_000, 1u64..10_000_000),
            1..5
        ),
        seed in any::<u64>(),
    ) {
        let mut model = build_delay(kind, a, b);
        let floor = model.min_delay();
        let mut rng = StreamRng::new(seed, 8);
        for i in 0..300 {
            let now = SimTime::from_nanos(i * 77_777);
            let d = model.sample(now, &mut rng);
            prop_assert!(d >= floor, "sample {d} under stated min {floor}");
        }

        // Scheduled: min over all segments, honored at every instant.
        let mut segments: Vec<(SimTime, Box<dyn DelayModel>)> = Vec::new();
        for (i, &(k, sa, sb)) in segs.iter().enumerate() {
            segments.push((
                SimTime::from_nanos(i as u64 * 1_000_000),
                build_delay(k, sa.min(sb), sa.max(sb)),
            ));
        }
        let expected_min = segments
            .iter()
            .map(|(_, m)| m.min_delay())
            .min()
            .expect("at least one segment");
        let mut scheduled = Scheduled::from_segments(segments);
        prop_assert_eq!(scheduled.min_delay(), expected_min);
        for i in 0..300 {
            let now = SimTime::from_nanos(i * 33_333);
            let d = scheduled.sample(now, &mut rng);
            prop_assert!(
                d >= scheduled.min_delay(),
                "scheduled sample {d} under min {}",
                scheduled.min_delay()
            );
        }
    }

    /// Fabric conservation: offered = admitted + dropped, delivered never
    /// exceeds admitted, and in-flight is admitted − delivered.
    #[test]
    fn fabric_conserves_messages(
        capacity in 1usize..64,
        loss_p in 0.0..0.5f64,
        steps in prop::collection::vec(0u64..5_000_000, 1..300),
        seed in any::<u64>(),
    ) {
        let mut fabric = Fabric::new(
            capacity,
            Box::new(ConstantDelay(SimDuration::from_millis(1))),
            Box::new(BernoulliLoss::new(loss_p)),
        );
        let mut rng = StreamRng::new(seed, 1);
        let mut now = SimTime::ZERO;
        for &step in &steps {
            now += SimDuration::from_nanos(step);
            match fabric.send(now, &mut rng) {
                SendOutcome::Deliver(at) => prop_assert!(at > now),
                SendOutcome::DroppedLoss | SendOutcome::DroppedOverflow => {}
            }
            let s = fabric.stats_at(now);
            prop_assert_eq!(s.offered, s.admitted + s.dropped_loss + s.dropped_overflow);
            prop_assert!(s.delivered <= s.admitted);
            prop_assert_eq!(fabric.in_flight_at(now) as u64, s.admitted - s.delivered);
            prop_assert!(s.peak_in_flight <= capacity);
        }
        // Far enough in the future every deadline has settled.
        let end = now + SimDuration::from_secs(1);
        let s = fabric.stats_at(end);
        prop_assert_eq!(s.delivered, s.admitted);
        prop_assert_eq!(fabric.in_flight_at(end), 0);
    }

    /// The lazy-drain fabric is decision-for-decision identical to an
    /// eagerly-notified reference: same admit/overflow/loss verdicts, same
    /// delivery times, same peak, and a bit-identical occupancy integral,
    /// under random send/delivery interleavings (random inter-send gaps
    /// against a random constant delay make deliveries land arbitrarily
    /// between — and exactly on — send instants).
    #[test]
    fn lazy_fabric_matches_eager_reference(
        capacity in 1usize..8,
        delay_nanos in 1u64..2_000_000,
        loss_p in 0.0..0.3f64,
        steps in prop::collection::vec(0u64..3_000_000, 1..400),
        seed in any::<u64>(),
    ) {
        /// The pre-refactor fabric semantics, restated: the driver calls
        /// `on_delivered` for every deadline, eagerly, in time order, with
        /// deliveries settling before a send they tie with.
        struct EagerFabric {
            capacity: usize,
            in_flight: usize,
            delay: ConstantDelay,
            loss: BernoulliLoss,
            delivered: u64,
            peak: usize,
            occupancy: presence_stats::TimeWeighted,
            pending: std::collections::BinaryHeap<std::cmp::Reverse<SimTime>>,
        }
        impl EagerFabric {
            fn on_delivered(&mut self, at: SimTime) {
                self.in_flight -= 1;
                self.delivered += 1;
                self.occupancy.set(at.as_secs_f64(), self.in_flight as f64);
            }
            fn drain_due(&mut self, now: SimTime) {
                while let Some(&std::cmp::Reverse(at)) = self.pending.peek() {
                    if at > now { break; }
                    self.pending.pop();
                    self.on_delivered(at);
                }
            }
            fn send(&mut self, now: SimTime, rng: &mut StreamRng) -> SendOutcome {
                self.drain_due(now);
                if self.in_flight >= self.capacity {
                    return SendOutcome::DroppedOverflow;
                }
                if self.loss.should_drop(now, rng) {
                    return SendOutcome::DroppedLoss;
                }
                self.in_flight += 1;
                self.peak = self.peak.max(self.in_flight);
                self.occupancy.set(now.as_secs_f64(), self.in_flight as f64);
                let at = now + self.delay.sample(now, rng);
                self.pending.push(std::cmp::Reverse(at));
                SendOutcome::Deliver(at)
            }
        }

        let delay = SimDuration::from_nanos(delay_nanos);
        let mut lazy = Fabric::new(
            capacity,
            Box::new(ConstantDelay(delay)),
            Box::new(BernoulliLoss::new(loss_p)),
        );
        let mut eager = EagerFabric {
            capacity,
            in_flight: 0,
            delay: ConstantDelay(delay),
            loss: BernoulliLoss::new(loss_p),
            delivered: 0,
            peak: 0,
            occupancy: presence_stats::TimeWeighted::new(),
            pending: std::collections::BinaryHeap::new(),
        };
        // Identical RNG streams: if any decision diverges, the streams
        // desynchronise and the mismatch is caught on the spot.
        let mut rng_lazy = StreamRng::new(seed, 4);
        let mut rng_eager = rng_lazy.clone();

        let mut now = SimTime::ZERO;
        for &step in &steps {
            now += SimDuration::from_nanos(step);
            let a = lazy.send(now, &mut rng_lazy);
            let b = eager.send(now, &mut rng_eager);
            prop_assert_eq!(a, b, "send verdict diverged at {}", now);
            prop_assert_eq!(lazy.in_flight_at(now), eager.in_flight, "in-flight diverged");
        }
        let end = now + delay + SimDuration::from_secs(1);
        eager.drain_due(end);
        let s = lazy.stats_at(end);
        prop_assert_eq!(s.delivered, eager.delivered);
        prop_assert_eq!(s.peak_in_flight, eager.peak);
        prop_assert_eq!(lazy.in_flight_at(end), eager.in_flight);
        // The occupancy integral must be *bit*-identical, not just close:
        // both sides saw the same (t, value) step sequence.
        let lazy_mean = lazy.mean_occupancy(end).map(f64::to_bits);
        let eager_mean = eager.occupancy.mean_until(end.as_secs_f64()).map(f64::to_bits);
        prop_assert_eq!(lazy_mean, eager_mean);
    }

    /// The fabric never admits beyond capacity.
    #[test]
    fn fabric_capacity_is_hard(capacity in 1usize..32, extra in 1usize..32, seed in any::<u64>()) {
        let mut fabric = Fabric::new(
            capacity,
            Box::new(ConstantDelay(SimDuration::from_secs(1))),
            Box::new(NoLoss),
        );
        let mut rng = StreamRng::new(seed, 2);
        let mut admitted = 0;
        for _ in 0..capacity + extra {
            match fabric.send(SimTime::ZERO, &mut rng) {
                SendOutcome::Deliver(_) => admitted += 1,
                SendOutcome::DroppedOverflow => {}
                SendOutcome::DroppedLoss => unreachable!("no loss configured"),
            }
        }
        prop_assert_eq!(admitted, capacity);
        prop_assert_eq!(fabric.stats_at(SimTime::ZERO).dropped_overflow as usize, extra);
    }

    /// Bounded FIFO: pop order equals push order; counts conserved.
    #[test]
    fn fifo_order_and_conservation(items in prop::collection::vec(any::<u32>(), 1..200), cap in 1usize..64) {
        let mut fifo = BoundedFifo::new(cap);
        let mut accepted = Vec::new();
        let mut t = 0.0;
        for &x in &items {
            t += 0.001;
            if fifo.push(SimTime::from_secs_f64(t), x).is_ok() {
                accepted.push(x);
            }
        }
        let mut popped = Vec::new();
        while let Some(x) = fifo.pop(SimTime::from_secs_f64(t + 1.0)) {
            popped.push(x);
        }
        prop_assert_eq!(&popped, &accepted);
        let s = fifo.stats();
        prop_assert_eq!(s.accepted as usize + s.rejected as usize, items.len());
        prop_assert_eq!(s.popped as usize, accepted.len());
    }

    /// Gilbert–Elliott long-run loss rate lands near its target.
    #[test]
    fn gilbert_elliott_rate_targets(target in 0.02..0.4f64, seed in any::<u64>()) {
        let mut model = GilbertElliott::bursty(target);
        let mut rng = StreamRng::new(seed, 3);
        let n = 200_000;
        let drops = (0..n).filter(|_| model.should_drop(SimTime::ZERO, &mut rng)).count();
        let rate = drops as f64 / n as f64;
        prop_assert!(
            (rate - target).abs() < 0.05 + target * 0.3,
            "target {target}, measured {rate}"
        );
    }

    /// Gilbert–Elliott's empirical drop rate converges to the analytic
    /// stationary value `P(bad)·loss_bad + P(good)·loss_good` for
    /// arbitrary channel parameters, not just the `bursty` preset. The
    /// tolerance widens with burst length (longer bursts mix slower).
    #[test]
    fn gilbert_elliott_converges_to_stationary_rate(
        p_gb in 0.001..0.3f64,
        p_bg in 0.02..0.5f64,
        loss_good in 0.0..0.05f64,
        loss_bad in 0.5..1.0f64,
        seed in any::<u64>(),
    ) {
        let mut model = GilbertElliott::new(p_gb, p_bg, loss_good, loss_bad);
        let expected = model.stationary_rate();
        let mut rng = StreamRng::new(seed, 5);
        let n = 400_000;
        let drops = (0..n).filter(|_| model.should_drop(SimTime::ZERO, &mut rng)).count();
        let rate = drops as f64 / n as f64;
        // Mixing time scales with 1/(p_gb + p_bg); the sampling error of
        // n draws with that correlation length is ~sqrt(T/n) in spirit.
        let tolerance = 0.01 + 0.6 / ((p_gb + p_bg) * (n as f64).sqrt());
        prop_assert!(
            (rate - expected).abs() < tolerance,
            "stationary {expected:.4}, measured {rate:.4}, tolerance {tolerance:.4}"
        );
    }

    /// A `Scheduled` delay switches exactly at its boundaries: strictly
    /// before a boundary the old model answers, from the boundary on the
    /// new one does — for arbitrary boundary layouts and query points.
    #[test]
    fn scheduled_switches_exactly_at_boundaries(
        boundaries in prop::collection::vec(1..1_000_000u64, 1..6),
        queries in prop::collection::vec(0..1_100_000u64, 1..200),
        seed in any::<u64>(),
    ) {
        let mut starts: Vec<u64> = boundaries.clone();
        starts.sort_unstable();
        starts.dedup();
        // Segment i (starting at starts[i-1], with segment 0 at t = 0)
        // answers a constant delay of i+1 µs, so the answer identifies
        // the active segment.
        let mut segments: Vec<(SimTime, ConstantDelay)> =
            vec![(SimTime::ZERO, ConstantDelay(SimDuration::from_micros(1)))];
        for (i, &at) in starts.iter().enumerate() {
            segments.push((
                SimTime::from_nanos(at * 1_000),
                ConstantDelay(SimDuration::from_micros(i as u64 + 2)),
            ));
        }
        let mut model = Scheduled::from_segments(segments);
        let mut rng = StreamRng::new(seed, 6);
        let mut sorted_queries = queries.clone();
        sorted_queries.sort_unstable();
        for &q in &sorted_queries {
            let now = SimTime::from_nanos(q * 1_000);
            // Expected segment: number of boundaries <= q.
            let expected = starts.iter().filter(|&&b| b <= q).count() as u64 + 1;
            let got = model.sample(now, &mut rng);
            prop_assert_eq!(
                got,
                SimDuration::from_micros(expected),
                "query at {} µs expected segment delay {} µs",
                q,
                expected
            );
        }
    }

    /// A degenerate single-segment schedule is draw-for-draw identical to
    /// the bare model under the identical RNG stream — the property that
    /// keeps paper-faithful catalog entries bit-identical to the
    /// hard-coded presets.
    #[test]
    fn degenerate_schedule_is_transparent(
        (kind, a, b) in any_delay(),
        seed in any::<u64>(),
        steps in 1..500usize,
    ) {
        let mut bare = build_delay(kind, a, b);
        let mut scheduled = Scheduled::new(build_delay(kind, a, b));
        let mut rng_bare = StreamRng::new(seed, 7);
        let mut rng_sched = StreamRng::new(seed, 7);
        for i in 0..steps {
            let now = SimTime::from_nanos(i as u64 * 12_345);
            prop_assert_eq!(
                bare.sample(now, &mut rng_bare),
                scheduled.sample(now, &mut rng_sched)
            );
        }
        prop_assert_eq!(bare.max_delay(), scheduled.max_delay());
    }
}
