//! Regression tests for the dispatch edge cases the typed actor-set path
//! must preserve, run against **both** storage modes (the default
//! `DynActorSet` and a local enum member type) and cross-checked against
//! each other:
//!
//! * an actor spawned from `pending_spawns` mid-batch is started and
//!   receives its events in exactly the order the spawning handler
//!   scheduled them, interleaved identically with competing events;
//! * an actor sending to itself during `handle` observes every state
//!   change the earlier dispatch made (the old take/put-back dance and
//!   the new in-place borrow must be indistinguishable);
//! * the dynamic `Context::spawn` API panics loudly inside a typed
//!   simulation instead of corrupting the actor table.

use presence_des::{
    Actor, ActorId, Context, ProjectActor, RunOutcome, SimDuration, SimTime, Simulation,
};
use std::cell::RefCell;
use std::rc::Rc;

type Ev = u32;

/// Records events; asserts `on_start` ran before any of them.
struct Child {
    started: bool,
    log: Vec<Ev>,
}

impl Child {
    fn new() -> Self {
        Self {
            started: false,
            log: Vec::new(),
        }
    }
}

impl Actor<Ev> for Child {
    fn on_start(&mut self, _ctx: &mut Context<'_, Ev>) {
        self.started = true;
    }
    fn on_event(&mut self, _ctx: &mut Context<'_, Ev>, ev: Ev) {
        assert!(self.started, "event delivered before on_start");
        self.log.push(ev);
    }
}

/// Spawns a child mid-event and schedules a mix of same-instant and
/// delayed events around the spawn.
struct Spawner {
    typed: bool,
    peer: ActorId,
    child: Option<ActorId>,
}

impl Actor<Ev> for Spawner {
    fn on_event(&mut self, ctx: &mut Context<'_, Ev>, _: Ev) {
        // A competing same-instant event minted before the spawn…
        ctx.send_now(self.peer, 100);
        let child = if self.typed {
            ctx.spawn_member(Member::Child(Child::new()))
        } else {
            ctx.spawn(Child::new())
        };
        self.child = Some(child);
        // …events for the not-yet-absorbed child, in a deliberate order…
        ctx.send_now(child, 1);
        ctx.send_now(child, 2);
        ctx.schedule_in(SimDuration::from_secs(1), child, 3);
        // …and a competing event minted after.
        ctx.send_now(self.peer, 200);
    }
}

/// The typed member set used by the enum-path variants of these tests.
enum Member {
    Spawner(Spawner),
    Child(Child),
    Counter(SelfCounter),
}

impl Actor<Ev> for Member {
    fn on_start(&mut self, ctx: &mut Context<'_, Ev>) {
        match self {
            Member::Spawner(a) => a.on_start(ctx),
            Member::Child(a) => a.on_start(ctx),
            Member::Counter(a) => a.on_start(ctx),
        }
    }
    fn on_event(&mut self, ctx: &mut Context<'_, Ev>, ev: Ev) {
        match self {
            Member::Spawner(a) => a.on_event(ctx, ev),
            Member::Child(a) => a.on_event(ctx, ev),
            Member::Counter(a) => a.on_event(ctx, ev),
        }
    }
}

macro_rules! member_projection {
    ($variant:ident, $kind:ty) => {
        impl ProjectActor<$kind> for Member {
            fn project(&self) -> Option<&$kind> {
                match self {
                    Member::$variant(a) => Some(a),
                    _ => None,
                }
            }
            fn project_mut(&mut self) -> Option<&mut $kind> {
                match self {
                    Member::$variant(a) => Some(a),
                    _ => None,
                }
            }
        }
    };
}

member_projection!(Spawner, Spawner);
member_projection!(Child, Child);
member_projection!(Counter, SelfCounter);

/// One `(seq, target)` record per processed event, plus the logs the run
/// produced — everything the two storage modes must agree on.
#[derive(Debug, PartialEq)]
struct SpawnRunRecord {
    trace: Vec<(u64, usize)>,
    peer_log: Vec<Ev>,
    child_log: Vec<Ev>,
}

fn traced<E, S, F, G>(sim: &mut Simulation<E, S>, run: F, collect: G) -> SpawnRunRecord
where
    E: Clone + 'static,
    S: Actor<E>,
    F: FnOnce(&mut Simulation<E, S>),
    G: FnOnce(&Simulation<E, S>, Vec<(u64, usize)>) -> SpawnRunRecord,
{
    let trace = Rc::new(RefCell::new(Vec::new()));
    let t2 = Rc::clone(&trace);
    sim.set_trace(move |rec| t2.borrow_mut().push((rec.seq, rec.target.index())));
    run(sim);
    let trace = trace.borrow().clone();
    collect(sim, trace)
}

fn spawn_run_dyn() -> SpawnRunRecord {
    let mut sim: Simulation<Ev> = Simulation::new(7);
    let peer = sim.add_actor(Child::new());
    let spawner = sim.add_actor(Spawner {
        typed: false,
        peer,
        child: None,
    });
    sim.schedule_at(SimTime::from_secs_f64(1.0), spawner, 0);
    traced(
        &mut sim,
        |sim| {
            assert_eq!(sim.run_until_idle(), RunOutcome::Idle);
        },
        |sim, trace| {
            let child = sim.actor::<Spawner>(spawner).unwrap().child.unwrap();
            SpawnRunRecord {
                trace,
                peer_log: sim.actor::<Child>(peer).unwrap().log.clone(),
                child_log: sim.actor::<Child>(child).unwrap().log.clone(),
            }
        },
    )
}

fn spawn_run_typed() -> SpawnRunRecord {
    let mut sim: Simulation<Ev, Member> = Simulation::with_actor_set(7);
    let peer = sim.add_member(Member::Child(Child::new()));
    let spawner = sim.add_member(Member::Spawner(Spawner {
        typed: true,
        peer,
        child: None,
    }));
    sim.schedule_at(SimTime::from_secs_f64(1.0), spawner, 0);
    traced(
        &mut sim,
        |sim| {
            assert_eq!(sim.run_until_idle(), RunOutcome::Idle);
        },
        |sim, trace| {
            let child = sim.actor::<Spawner>(spawner).unwrap().child.unwrap();
            SpawnRunRecord {
                trace,
                peer_log: sim.actor::<Child>(peer).unwrap().log.clone(),
                child_log: sim.actor::<Child>(child).unwrap().log.clone(),
            }
        },
    )
}

/// The spawned actor's events fire in scheduling order, interleaved
/// correctly with the competitors, and the enum path reproduces the
/// dynamic path's trace exactly.
#[test]
fn mid_batch_spawn_receives_events_in_order_on_both_paths() {
    let dynamic = spawn_run_dyn();
    assert_eq!(dynamic.child_log, vec![1, 2, 3]);
    assert_eq!(
        dynamic.peer_log,
        vec![100, 200],
        "competing events keep their FIFO positions around the spawn"
    );
    let typed = spawn_run_typed();
    assert_eq!(
        dynamic, typed,
        "typed dispatch must replay the dynamic trace event-for-event"
    );
}

/// Counts its own events, mutating itself before *and after* the
/// self-send: the next dispatch must observe both mutations.
struct SelfCounter {
    value: u32,
    observed: Vec<u32>,
}

impl Actor<Ev> for SelfCounter {
    fn on_event(&mut self, ctx: &mut Context<'_, Ev>, ev: Ev) {
        self.observed.push(self.value);
        self.value += 1;
        if ev < 3 {
            let me = ctx.me();
            ctx.send_now(me, ev + 1);
        }
        // Mutation after the self-send: the queued event fires later, so
        // it must still see this write (the put-back happened, or — now —
        // the in-place borrow wrote through).
        self.value += 10;
    }
}

#[test]
fn self_send_during_handle_observes_all_state_changes() {
    // Dynamic storage.
    let mut sim: Simulation<Ev> = Simulation::new(1);
    let id = sim.add_actor(SelfCounter {
        value: 0,
        observed: vec![],
    });
    sim.schedule_at(SimTime::ZERO, id, 0);
    sim.run_until_idle();
    let dyn_observed = sim.actor::<SelfCounter>(id).unwrap().observed.clone();
    assert_eq!(dyn_observed, vec![0, 11, 22, 33]);

    // Typed storage: identical semantics.
    let mut sim: Simulation<Ev, Member> = Simulation::with_actor_set(1);
    let id = sim.add_member(Member::Counter(SelfCounter {
        value: 0,
        observed: vec![],
    }));
    sim.schedule_at(SimTime::ZERO, id, 0);
    sim.run_until_idle();
    let typed_observed = &sim.actor::<SelfCounter>(id).unwrap().observed;
    assert_eq!(typed_observed, &dyn_observed);
}

/// Spawning during `on_start` (before any event fires) chains: the spawned
/// actor is started by the same flush and is addressable at t = 0.
#[test]
fn spawn_during_on_start_is_started_and_addressable() {
    struct StartSpawner {
        child: Option<ActorId>,
    }
    impl Actor<Ev> for StartSpawner {
        fn on_start(&mut self, ctx: &mut Context<'_, Ev>) {
            let child = ctx.spawn(Child::new());
            self.child = Some(child);
            ctx.send_now(child, 42);
        }
        fn on_event(&mut self, _: &mut Context<'_, Ev>, _: Ev) {}
    }
    let mut sim: Simulation<Ev> = Simulation::new(3);
    let s = sim.add_actor(StartSpawner { child: None });
    sim.run_until_idle();
    let child = sim.actor::<StartSpawner>(s).unwrap().child.unwrap();
    let c = sim.actor::<Child>(child).unwrap();
    assert!(c.started);
    assert_eq!(c.log, vec![42]);
}

/// The dynamic `spawn` API cannot silently inject a boxed actor into a
/// typed member table.
#[test]
#[should_panic(expected = "member type must match")]
fn dynamic_spawn_inside_typed_simulation_panics() {
    struct BadSpawn;
    impl Actor<Ev> for BadSpawn {
        fn on_event(&mut self, ctx: &mut Context<'_, Ev>, _: Ev) {
            let _ = ctx.spawn(Child::new());
        }
    }
    enum Solo {
        Bad(BadSpawn),
    }
    impl Actor<Ev> for Solo {
        fn on_event(&mut self, ctx: &mut Context<'_, Ev>, ev: Ev) {
            let Solo::Bad(a) = self;
            a.on_event(ctx, ev);
        }
    }
    let mut sim: Simulation<Ev, Solo> = Simulation::with_actor_set(1);
    let id = sim.add_member(Solo::Bad(BadSpawn));
    sim.schedule_at(SimTime::ZERO, id, 0);
    sim.run_until_idle();
}
