//! Region-barrier model proptest: the conservative time-windowed
//! [`RegionSim`] must reproduce the sequential [`Simulation`] exactly —
//! per-actor logs, RNG draws, and event counts — over random topologies,
//! partitions, seeds, queue profiles, and worker counts.
//!
//! Topologies are unions of disjoint token rings. Each ring node forwards
//! to exactly one successor, so every actor receives events from a single
//! source actor — by construction no two events minted in *different*
//! regions can tie at the same `(time, target)`, which is precisely the
//! precondition under which `RegionSim` guarantees bit-identity (ties
//! within one region keep FIFO order on both engines). Region assignment
//! is round-robin across ring membership, so rings cross region
//! boundaries constantly and the window barrier carries real traffic.
//!
//! Soaked in CI at `PROPTEST_CASES=1024` (see `ci.sh`).

use presence_des::{
    Actor, ActorId, Context, ProjectActor, QueueProfile, RegionSim, SimDuration, SimTime,
    Simulation, WindowPolicy,
};
use proptest::prelude::*;

/// Cross-region lookahead declared for every regioned run; every link
/// delay generated below is at least this, so all schedules are safe.
const LOOKAHEAD: SimDuration = SimDuration::from_micros(10);

/// Ring node: on start (if a token source) and on each received token,
/// draw from its RNG stream, log, and forward to its successor until the
/// token's hop budget runs out. `next` is patched in after every node has
/// joined (actor ids are only minted at `add_member` time).
struct Node {
    next: Option<ActorId>,
    delay: SimDuration,
    source_hops: Option<u32>,
    log: Vec<(u64, u32, u64)>,
}

impl Actor<u32> for Node {
    fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
        if let Some(hops) = self.source_hops {
            let next = self.next.expect("ring links patched before run");
            ctx.schedule_in(self.delay, next, hops);
        }
    }

    fn on_event(&mut self, ctx: &mut Context<'_, u32>, hops_left: u32) {
        let draw = ctx.rng().next_u64();
        self.log.push((ctx.now().as_nanos(), hops_left, draw));
        if hops_left > 0 {
            let next = self.next.expect("ring links patched before run");
            ctx.schedule_in(self.delay, next, hops_left - 1);
        }
    }
}

impl ProjectActor<Node> for Node {
    fn project(&self) -> Option<&Node> {
        Some(self)
    }
    fn project_mut(&mut self) -> Option<&mut Node> {
        Some(self)
    }
}

/// One generated ring: per-node link delays (nanoseconds past the
/// lookahead) and the token's hop budget.
#[derive(Debug, Clone)]
struct RingSpec {
    delays: Vec<u64>,
    hops: u32,
}

fn ring_spec() -> impl Strategy<Value = RingSpec> {
    (prop::collection::vec(0u64..1_000_000, 1..5), 1u32..40)
        .prop_map(|(delays, hops)| RingSpec { delays, hops })
}

/// Builds the node list for a set of rings plus each node's successor
/// *index*; global actor order is ring after ring, so the sequential and
/// regioned populations are identical.
fn build_nodes(rings: &[RingSpec]) -> Vec<(Node, usize)> {
    let mut nodes = Vec::new();
    let mut base = 0usize;
    for ring in rings {
        let n = ring.delays.len();
        for (i, &extra) in ring.delays.iter().enumerate() {
            nodes.push((
                Node {
                    next: None,
                    delay: LOOKAHEAD + SimDuration::from_nanos(extra),
                    source_hops: (i == 0).then_some(ring.hops),
                    log: Vec::new(),
                },
                base + (i + 1) % n,
            ));
        }
        base += n;
    }
    nodes
}

/// What a run exposes for comparison: every node's `(time, hops, draw)`
/// log, plus the total event count.
type RunObservables = (Vec<Vec<(u64, u32, u64)>>, u64);

/// Runs the population on the sequential engine and returns every node's
/// log plus the total event count.
fn run_sequential(rings: &[RingSpec], seed: u64, end: SimTime) -> RunObservables {
    let mut sim: Simulation<u32, Node> = Simulation::with_actor_set(seed);
    let (ids, nexts): (Vec<ActorId>, Vec<usize>) = build_nodes(rings)
        .into_iter()
        .map(|(n, next)| (sim.add_member(n), next))
        .unzip();
    for (i, &next) in nexts.iter().enumerate() {
        sim.actor_mut::<Node>(ids[i]).unwrap().next = Some(ids[next]);
    }
    sim.run_until(end);
    let logs = ids
        .iter()
        .map(|&id| sim.actor::<Node>(id).unwrap().log.clone())
        .collect();
    (logs, sim.events_processed())
}

/// Runs the same population regioned (round-robin partition) and returns
/// the same observables.
fn run_regioned(
    rings: &[RingSpec],
    seed: u64,
    end: SimTime,
    regions: usize,
    workers: usize,
    profile: QueueProfile,
) -> RunObservables {
    run_regioned_with_policy(
        rings,
        seed,
        end,
        regions,
        workers,
        profile,
        WindowPolicy::default(),
    )
    .0
}

/// [`run_regioned`] with an explicit window policy; also returns the
/// window counter so the adaptive arm can assert barrier savings.
#[allow(clippy::too_many_arguments)]
fn run_regioned_with_policy(
    rings: &[RingSpec],
    seed: u64,
    end: SimTime,
    regions: usize,
    workers: usize,
    profile: QueueProfile,
    policy: WindowPolicy,
) -> (RunObservables, u64) {
    let mut reg: RegionSim<u32, Node> =
        RegionSim::with_profile(seed, regions, Some(LOOKAHEAD), profile);
    reg.set_window_policy(policy);
    reg.set_workers(workers);
    let (ids, nexts): (Vec<ActorId>, Vec<usize>) = build_nodes(rings)
        .into_iter()
        .enumerate()
        .map(|(i, (n, next))| (reg.add_member(i % regions, n), next))
        .unzip();
    for (i, &next) in nexts.iter().enumerate() {
        reg.actor_mut::<Node>(ids[i]).unwrap().next = Some(ids[next]);
    }
    reg.run_until(end);
    let logs = ids
        .iter()
        .map(|&id| reg.actor::<Node>(id).unwrap().log.clone())
        .collect();
    ((logs, reg.events_processed()), reg.windows_executed())
}

proptest! {
    /// Regioned execution is bit-identical to sequential for every region
    /// count, worker count, and queue profile — logs, RNG draws, and
    /// event totals all match.
    #[test]
    fn regioned_run_matches_sequential(
        rings in prop::collection::vec(ring_spec(), 1..4),
        seed in any::<u64>(),
        calendar in any::<bool>(),
    ) {
        // Hop budgets (< 40) times max per-hop delay (< 10µs + 1ms) keep
        // every token comfortably inside a 100 ms horizon, so the run
        // always drains before `end` and both engines see every event.
        let end = SimTime::from_nanos(100_000_000);
        let expected = run_sequential(&rings, seed, end);
        let profile = if calendar {
            QueueProfile::calendar()
        } else {
            QueueProfile::Heap
        };
        for regions in [1usize, 2, 4] {
            for workers in [1usize, 4] {
                let got = run_regioned(&rings, seed, end, regions, workers, profile);
                prop_assert_eq!(
                    &got, &expected,
                    "mismatch at regions={} workers={} calendar={}",
                    regions, workers, calendar
                );
            }
        }
    }

    /// Adaptive windows are a pure barrier-count optimisation: over the
    /// same random rings, regions {1,2,4} × workers {1,4}, an adaptive
    /// run is event-for-event bit-identical to the static-window and
    /// sequential runs, and never needs more windows than static.
    #[test]
    fn adaptive_windows_match_static_and_sequential(
        rings in prop::collection::vec(ring_spec(), 1..4),
        seed in any::<u64>(),
    ) {
        let end = SimTime::from_nanos(100_000_000);
        let expected = run_sequential(&rings, seed, end);
        for regions in [1usize, 2, 4] {
            for workers in [1usize, 4] {
                let (adaptive, adaptive_windows) = run_regioned_with_policy(
                    &rings, seed, end, regions, workers,
                    QueueProfile::Heap, WindowPolicy::Adaptive,
                );
                let (static_run, static_windows) = run_regioned_with_policy(
                    &rings, seed, end, regions, workers,
                    QueueProfile::Heap, WindowPolicy::Static,
                );
                prop_assert_eq!(
                    &adaptive, &expected,
                    "adaptive diverged from sequential at regions={} workers={}",
                    regions, workers
                );
                prop_assert_eq!(
                    &static_run, &expected,
                    "static diverged from sequential at regions={} workers={}",
                    regions, workers
                );
                prop_assert!(
                    adaptive_windows <= static_windows,
                    "adaptive needed more windows ({} > {}) at regions={} workers={}",
                    adaptive_windows, static_windows, regions, workers
                );
            }
        }
    }

    /// External stimuli injected via `schedule_at` land identically on
    /// both engines (they bypass the router and mint local sequence
    /// numbers directly, like the sequential engine's front door).
    #[test]
    fn external_stimuli_match_sequential(
        times in prop::collection::vec(0u64..50_000_000, 1..30),
        seed in any::<u64>(),
    ) {
        // A quiet two-node ring (no source token); all traffic is the
        // injected stimuli on node 0, each carrying a 0-hop budget so no
        // forwarding ever crosses the region boundary.
        let ring = [RingSpec { delays: vec![0, 0], hops: 1 }];
        let end = SimTime::from_nanos(60_000_000);

        let mut sim: Simulation<u32, Node> = Simulation::with_actor_set(seed);
        let seq_ids: Vec<ActorId> = build_nodes(&ring)
            .into_iter()
            .map(|(mut n, _)| {
                n.source_hops = None;
                sim.add_member(n)
            })
            .collect();
        for &t in &times {
            sim.schedule_at(SimTime::from_nanos(t), seq_ids[0], 0);
        }
        sim.run_until(end);

        let mut reg: RegionSim<u32, Node> = RegionSim::new(seed, 2, LOOKAHEAD);
        let reg_ids: Vec<ActorId> = build_nodes(&ring)
            .into_iter()
            .enumerate()
            .map(|(i, (mut n, _))| {
                n.source_hops = None;
                reg.add_member(i % 2, n)
            })
            .collect();
        for &t in &times {
            reg.schedule_at(SimTime::from_nanos(t), reg_ids[0], 0);
        }
        reg.run_until(end);

        prop_assert_eq!(sim.events_processed(), reg.events_processed());
        let seq_log = &sim.actor::<Node>(seq_ids[0]).unwrap().log;
        let reg_log = &reg.actor::<Node>(reg_ids[0]).unwrap().log;
        prop_assert_eq!(seq_log, reg_log);
    }
}
