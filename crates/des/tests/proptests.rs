//! Property-based tests for the DES engine: ordering, determinism,
//! cancellation, and clock monotonicity under arbitrary schedules.

use presence_des::{Actor, Context, RunOutcome, SimDuration, SimTime, Simulation};
use proptest::prelude::*;

/// Actor that records (time, tag) for every event it receives.
struct Sink {
    log: Vec<(u64, u32)>,
}

impl Actor<u32> for Sink {
    fn on_event(&mut self, ctx: &mut Context<'_, u32>, ev: u32) {
        self.log.push((ctx.now().as_nanos(), ev));
    }
}

proptest! {
    /// Events always fire in non-decreasing time order, FIFO within a time.
    #[test]
    fn firing_order_is_total(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut sim = Simulation::new(0);
        let id = sim.add_actor(Sink { log: vec![] });
        for (tag, &t) in times.iter().enumerate() {
            sim.schedule_at(SimTime::from_nanos(t), id, tag as u32);
        }
        sim.run_until_idle();
        let log = &sim.actor::<Sink>(id).unwrap().log;
        prop_assert_eq!(log.len(), times.len());
        for w in log.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time went backwards");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO violated for simultaneous events");
            }
        }
    }

    /// Same seed + same schedule ⇒ identical event log.
    #[test]
    fn deterministic_under_seed(seed in any::<u64>(), times in prop::collection::vec(0u64..1_000_000, 1..100)) {
        let run = |seed: u64| {
            let mut sim = Simulation::new(seed);
            let id = sim.add_actor(Sink { log: vec![] });
            for (tag, &t) in times.iter().enumerate() {
                sim.schedule_at(SimTime::from_nanos(t), id, tag as u32);
            }
            sim.run_until_idle();
            sim.actor::<Sink>(id).unwrap().log.clone()
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    /// Cancelling a subset of events fires exactly the complement.
    #[test]
    fn cancellation_fires_complement(
        times in prop::collection::vec(0u64..1_000_000, 1..100),
        cancel_mask in prop::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut sim = Simulation::new(0);
        let id = sim.add_actor(Sink { log: vec![] });
        let mut expected = Vec::new();
        for (tag, &t) in times.iter().enumerate() {
            let h = sim.schedule_at(SimTime::from_nanos(t), id, tag as u32);
            if *cancel_mask.get(tag).unwrap_or(&false) {
                sim.cancel(h);
            } else {
                expected.push(tag as u32);
            }
        }
        sim.run_until_idle();
        let mut fired: Vec<u32> = sim.actor::<Sink>(id).unwrap().log.iter().map(|&(_, e)| e).collect();
        fired.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(fired, expected);
    }

    /// run_until(t) processes exactly the events with time <= t.
    #[test]
    fn run_until_boundary(times in prop::collection::vec(0u64..1_000_000, 1..100), cut in 0u64..1_000_000) {
        let mut sim = Simulation::new(0);
        let id = sim.add_actor(Sink { log: vec![] });
        for (tag, &t) in times.iter().enumerate() {
            sim.schedule_at(SimTime::from_nanos(t), id, tag as u32);
        }
        sim.run_until(SimTime::from_nanos(cut));
        let fired = sim.actor::<Sink>(id).unwrap().log.len();
        let expected = times.iter().filter(|&&t| t <= cut).count();
        prop_assert_eq!(fired, expected);
        prop_assert!(sim.now() >= SimTime::from_nanos(cut));
    }

    /// Chained timers advance the clock by exactly the sum of delays.
    #[test]
    fn timer_chain_sums_delays(delays in prop::collection::vec(1u64..10_000_000, 1..50)) {
        struct Chain {
            delays: Vec<u64>,
            next: usize,
        }
        impl Actor<u32> for Chain {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                if let Some(&d) = self.delays.first() {
                    self.next = 1;
                    ctx.set_timer(SimDuration::from_nanos(d), 0);
                }
            }
            fn on_event(&mut self, ctx: &mut Context<'_, u32>, _: u32) {
                if let Some(&d) = self.delays.get(self.next) {
                    self.next += 1;
                    ctx.set_timer(SimDuration::from_nanos(d), 0);
                }
            }
        }
        let total: u64 = delays.iter().sum();
        let mut sim = Simulation::new(0);
        sim.add_actor(Chain { delays, next: 0 });
        let outcome = sim.run_until_idle();
        prop_assert_eq!(outcome, RunOutcome::Idle);
        prop_assert_eq!(sim.now().as_nanos(), total);
    }

    /// The event budget is honoured exactly.
    #[test]
    fn event_budget_exact(budget in 1u64..500) {
        struct Endless;
        impl Actor<u32> for Endless {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                ctx.set_timer(SimDuration::from_nanos(1), 0);
            }
            fn on_event(&mut self, ctx: &mut Context<'_, u32>, _: u32) {
                ctx.set_timer(SimDuration::from_nanos(1), 0);
            }
        }
        let mut sim = Simulation::new(0);
        sim.add_actor(Endless);
        prop_assert_eq!(sim.run(budget), RunOutcome::EventBudget);
        prop_assert_eq!(sim.events_processed(), budget);
    }
}

// ---------------------------------------------------------------------------
// EventQueue model checking: the indexed d-ary heap must agree with a
// brute-force reference model under arbitrary push/pop/cancel interleavings.
// ---------------------------------------------------------------------------

mod event_queue_model {
    use presence_des::{EventQueue, SimTime};
    use proptest::prelude::*;

    /// Brute-force reference: an unsorted list, popped by scanning for the
    /// minimum `(time, seq)` — obviously correct, O(n) per op.
    #[derive(Default)]
    struct Model {
        live: Vec<(u64, u64)>, // (time, seq)
    }

    impl Model {
        fn push(&mut self, time: u64, seq: u64) {
            self.live.push((time, seq));
        }
        fn pop(&mut self) -> Option<(u64, u64)> {
            let best = self.live.iter().enumerate().min_by_key(|&(_, &key)| key)?.0;
            Some(self.live.swap_remove(best))
        }
        fn cancel(&mut self, seq: u64) -> bool {
            match self.live.iter().position(|&(_, s)| s == seq) {
                Some(i) => {
                    self.live.swap_remove(i);
                    true
                }
                None => false,
            }
        }
    }

    proptest! {
        /// Drained in one go, the queue reproduces the model's total order
        /// (time ascending, FIFO on seq within a time).
        #[test]
        fn drain_matches_reference_order(
            times in prop::collection::vec(0u64..64, 1..200),
        ) {
            let mut q = EventQueue::new();
            let mut model = Model::default();
            for (seq, &t) in times.iter().enumerate() {
                q.push(SimTime::from_nanos(t), seq as u64, ());
                model.push(t, seq as u64);
            }
            prop_assert_eq!(q.len(), times.len());
            while let Some((key, ())) = q.pop() {
                let expect = model.pop().expect("model drained early");
                prop_assert_eq!((key.time.as_nanos(), key.seq), expect);
            }
            prop_assert!(model.pop().is_none(), "queue drained early");
        }

        /// Arbitrary interleavings of push / cancel / pop agree with the
        /// model at every step: cancel hits exactly the pending seqs, pops
        /// come out in model order, and `len` stays exact.
        #[test]
        fn interleaved_ops_match_reference(
            ops in prop::collection::vec((0u64..64, 0u64..200, 0u32..4), 1..300),
        ) {
            let mut q = EventQueue::new();
            let mut model = Model::default();
            let mut next_seq = 0u64;
            for &(time, pick, kind) in &ops {
                match kind {
                    // Push twice as often as the other ops so the queue
                    // actually fills up.
                    0 | 1 => {
                        q.push(SimTime::from_nanos(time), next_seq, ());
                        model.push(time, next_seq);
                        next_seq += 1;
                    }
                    2 => {
                        // Cancel an arbitrary seq — pending, fired, or
                        // never issued; queue and model must agree.
                        let seq = pick;
                        let got = q.cancel(seq).is_some();
                        let expect = model.cancel(seq);
                        prop_assert_eq!(got, expect, "cancel({}) disagreed", seq);
                        prop_assert!(!q.contains(seq), "cancelled seq still pending");
                    }
                    _ => {
                        let got = q.pop().map(|(k, ())| (k.time.as_nanos(), k.seq));
                        let expect = model.pop();
                        prop_assert_eq!(got, expect, "pop disagreed");
                    }
                }
                prop_assert_eq!(q.len(), model.live.len(), "live count diverged");
            }
            // Full drain at the end must still agree.
            while let Some((key, ())) = q.pop() {
                let expect = model.pop().expect("model drained early");
                prop_assert_eq!((key.time.as_nanos(), key.seq), expect);
            }
            prop_assert!(model.pop().is_none());
            prop_assert!(q.is_empty());
        }

        /// Cancel soundness: cancelling a random subset leaves exactly the
        /// complement, in order, and cancels of fired events return None.
        #[test]
        fn cancelled_subset_never_surfaces(
            times in prop::collection::vec(0u64..1_000, 1..150),
            mask in prop::collection::vec(any::<bool>(), 1..150),
        ) {
            let mut q = EventQueue::new();
            for (seq, &t) in times.iter().enumerate() {
                q.push(SimTime::from_nanos(t), seq as u64, seq);
            }
            let mut kept = Vec::new();
            for seq in 0..times.len() as u64 {
                if *mask.get(seq as usize).unwrap_or(&false) {
                    prop_assert_eq!(q.cancel(seq), Some(seq as usize));
                } else {
                    kept.push(seq);
                }
            }
            let mut surfaced: Vec<u64> = Vec::new();
            while let Some((key, item)) = q.pop() {
                prop_assert_eq!(key.seq as usize, item);
                prop_assert_eq!(q.cancel(key.seq), None, "fired seq cancellable");
                surfaced.push(key.seq);
            }
            surfaced.sort_unstable();
            prop_assert_eq!(surfaced, kept);
        }
    }
}

// ---------------------------------------------------------------------------
// Calendar-queue model checking: an EventQueue with a calendar profile must
// agree with the plain 4-ary heap EventQueue — the engine's proven
// reference — step for step under arbitrary push / cancel / reschedule /
// pop interleavings. Bucket widths and ring lengths are drawn tiny so every
// run crosses bucket, window-slide, far-overflow, and rebase boundaries.
// ---------------------------------------------------------------------------

mod calendar_queue_model {
    use presence_des::{EventQueue, QueueProfile, SimDuration, SimTime};
    use proptest::prelude::*;

    proptest! {
        /// Drained in one go, both profiles produce the identical
        /// `(time, seq)` sequence.
        #[test]
        fn drain_matches_heap_order(
            times in prop::collection::vec(0u64..100_000, 1..300),
            width in 1u64..5_000,
            buckets in 2usize..32,
        ) {
            let mut cal = EventQueue::with_profile(QueueProfile::Calendar {
                bucket_width: SimDuration::from_nanos(width),
                buckets,
            });
            let mut heap = EventQueue::new();
            for (seq, &t) in times.iter().enumerate() {
                cal.push(SimTime::from_nanos(t), seq as u64, ());
                heap.push(SimTime::from_nanos(t), seq as u64, ());
            }
            prop_assert_eq!(cal.len(), heap.len());
            while let Some((expect, ())) = heap.pop() {
                let got = cal.pop().map(|(k, ())| k);
                prop_assert_eq!(got, Some(expect), "pop order diverged");
            }
            prop_assert!(cal.pop().is_none(), "calendar retained events");
            prop_assert!(cal.is_empty());
        }

        /// Arbitrary interleavings of push / cancel / reschedule / pop /
        /// peek agree with the heap profile at every step.
        #[test]
        fn interleaved_ops_match_heap(
            ops in prop::collection::vec((0u64..50_000, 0u64..400, 0u32..8), 1..400),
            width in 1u64..3_000,
            buckets in 2usize..24,
        ) {
            let mut cal = EventQueue::with_profile(QueueProfile::Calendar {
                bucket_width: SimDuration::from_nanos(width),
                buckets,
            });
            let mut heap = EventQueue::new();
            let mut next_seq = 0u64;
            for &(time, pick, kind) in &ops {
                match kind {
                    // Push three times as often as the destructive ops so
                    // the tiers actually fill up.
                    0..=2 => {
                        cal.push(SimTime::from_nanos(time), next_seq, next_seq);
                        heap.push(SimTime::from_nanos(time), next_seq, next_seq);
                        next_seq += 1;
                    }
                    3 => {
                        let got = cal.cancel(pick);
                        let expect = heap.cancel(pick);
                        prop_assert_eq!(got, expect, "cancel({}) disagreed", pick);
                        prop_assert_eq!(cal.contains(pick), heap.contains(pick));
                    }
                    4 => {
                        // Reschedule an arbitrary seq to an arbitrary time;
                        // the fresh seq is minted like the engine does.
                        let new_time = SimTime::from_nanos(time);
                        let new_seq = next_seq;
                        let got = cal.reschedule(pick, new_time, new_seq).map(|item| *item);
                        let expect = heap.reschedule(pick, new_time, new_seq).map(|item| *item);
                        prop_assert_eq!(got, expect, "reschedule({}) disagreed", pick);
                        if got.is_some() {
                            next_seq += 1;
                        }
                    }
                    5 => {
                        prop_assert_eq!(cal.peek(), heap.peek(), "peek disagreed");
                    }
                    _ => {
                        let got = cal.pop();
                        let expect = heap.pop();
                        prop_assert_eq!(got, expect, "pop disagreed");
                    }
                }
                prop_assert_eq!(cal.len(), heap.len(), "len diverged");
                prop_assert_eq!(cal.is_empty(), heap.is_empty());
            }
            // Full drain at the end must still agree.
            loop {
                let got = cal.pop();
                let expect = heap.pop();
                prop_assert_eq!(got, expect, "drain disagreed");
                if expect.is_none() {
                    break;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// TimerSlots model checking: the two-slot inline cache must agree with a
// HashMap reference under arbitrary set/cancel/rearm/fire/is_pending
// interleavings — including the spill-past-2-slots path (keys range over
// six values, so three-plus live timers occur constantly).
// ---------------------------------------------------------------------------

mod timer_slots_model {
    use presence_des::{Actor, Context, EventHandle, SimTime, Simulation, TimerSlots};
    use proptest::prelude::*;
    use std::collections::HashMap;

    struct Sink;
    impl Actor<u32> for Sink {
        fn on_event(&mut self, _: &mut Context<'_, u32>, _: u32) {}
    }

    const KEYS: u8 = 6;

    proptest! {
        /// Step-for-step agreement with a `HashMap` reference model. Ops:
        /// 0 = set (arm a fresh engine timer and insert), 1 = cancel,
        /// 2 = rearm in place, 3 = fire (the engine consumed it; the
        /// bookkeeping forgets it), 4 = is_pending/lookup, 5 = retain
        /// (prune a deterministic subset). After every op the full key
        /// space must resolve identically on both sides.
        #[test]
        fn matches_hashmap_reference(
            ops in prop::collection::vec((0u8..6, 0u8..KEYS), 1..300),
        ) {
            let mut sim: Simulation<u32> = Simulation::new(1);
            let actor = sim.add_actor(Sink);
            let mut at = 1.0f64;
            let mut slots: TimerSlots<u8> = TimerSlots::new();
            let mut model: HashMap<u8, EventHandle> = HashMap::new();
            for &(op, key) in &ops {
                match op {
                    0 => {
                        at += 1.0;
                        let h = sim.schedule_at(
                            SimTime::from_secs_f64(at),
                            actor,
                            u32::from(key),
                        );
                        // A replaced timer is cancelled by the caller in
                        // real use; mirror that so the sim stays tidy.
                        let (a, b) = (slots.insert(key, h), model.insert(key, h));
                        prop_assert_eq!(a, b, "insert returned different old handle");
                        if let Some(old) = a {
                            sim.cancel(old);
                        }
                    }
                    1 => {
                        let (a, b) = (slots.remove(key), model.remove(&key));
                        prop_assert_eq!(a, b, "cancel removed different handle");
                        if let Some(h) = a {
                            sim.cancel(h);
                        }
                    }
                    2 => {
                        // Rearm: pull the live handle, reschedule the
                        // engine event in place, store the fresh handle.
                        let (a, b) = (slots.remove(key), model.remove(&key));
                        prop_assert_eq!(a, b, "rearm found different handle");
                        if let Some(h) = a {
                            at += 1.0;
                            let fresh = sim
                                .reschedule(h, SimTime::from_secs_f64(at))
                                .expect("handle minted by this run is pending");
                            prop_assert_eq!(slots.insert(key, fresh), None);
                            model.insert(key, fresh);
                        }
                    }
                    3 => {
                        // Fire: the engine delivered the event; both sides
                        // drop the bookkeeping entry.
                        let (a, b) = (slots.remove(key), model.remove(&key));
                        prop_assert_eq!(a, b, "fire removed different handle");
                        if let Some(h) = a {
                            sim.cancel(h);
                        }
                    }
                    4 => {
                        prop_assert_eq!(slots.get(key), model.get(&key).copied());
                        prop_assert_eq!(slots.contains(key), model.contains_key(&key));
                    }
                    _ => {
                        // Prune: keep even keys only (a deterministic
                        // stand-in for "handle still pending" predicates).
                        slots.retain(|k, _| k % 2 == 0);
                        model.retain(|k, _| k % 2 == 0);
                    }
                }
                prop_assert_eq!(slots.len(), model.len(), "len diverged");
                prop_assert_eq!(slots.is_empty(), model.is_empty());
                for k in 0..KEYS {
                    prop_assert_eq!(
                        slots.get(k),
                        model.get(&k).copied(),
                        "key {} resolved differently",
                        k
                    );
                }
            }
            // Drain must surface exactly the model's final contents.
            let mut drained: Vec<(u8, EventHandle)> = Vec::new();
            slots.drain(|k, h| drained.push((k, h)));
            prop_assert!(slots.is_empty());
            drained.sort_by_key(|&(k, _)| k);
            let mut expected: Vec<(u8, EventHandle)> = model.into_iter().collect();
            expected.sort_by_key(|&(k, _)| k);
            prop_assert_eq!(drained, expected);
        }
    }
}
