//! Property-based tests for the DES engine: ordering, determinism,
//! cancellation, and clock monotonicity under arbitrary schedules.

use presence_des::{Actor, Context, RunOutcome, SimDuration, SimTime, Simulation};
use proptest::prelude::*;

/// Actor that records (time, tag) for every event it receives.
struct Sink {
    log: Vec<(u64, u32)>,
}

impl Actor<u32> for Sink {
    fn on_event(&mut self, ctx: &mut Context<'_, u32>, ev: u32) {
        self.log.push((ctx.now().as_nanos(), ev));
    }
}

proptest! {
    /// Events always fire in non-decreasing time order, FIFO within a time.
    #[test]
    fn firing_order_is_total(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut sim = Simulation::new(0);
        let id = sim.add_actor(Sink { log: vec![] });
        for (tag, &t) in times.iter().enumerate() {
            sim.schedule_at(SimTime::from_nanos(t), id, tag as u32);
        }
        sim.run_until_idle();
        let log = &sim.actor::<Sink>(id).unwrap().log;
        prop_assert_eq!(log.len(), times.len());
        for w in log.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time went backwards");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO violated for simultaneous events");
            }
        }
    }

    /// Same seed + same schedule ⇒ identical event log.
    #[test]
    fn deterministic_under_seed(seed in any::<u64>(), times in prop::collection::vec(0u64..1_000_000, 1..100)) {
        let run = |seed: u64| {
            let mut sim = Simulation::new(seed);
            let id = sim.add_actor(Sink { log: vec![] });
            for (tag, &t) in times.iter().enumerate() {
                sim.schedule_at(SimTime::from_nanos(t), id, tag as u32);
            }
            sim.run_until_idle();
            sim.actor::<Sink>(id).unwrap().log.clone()
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    /// Cancelling a subset of events fires exactly the complement.
    #[test]
    fn cancellation_fires_complement(
        times in prop::collection::vec(0u64..1_000_000, 1..100),
        cancel_mask in prop::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut sim = Simulation::new(0);
        let id = sim.add_actor(Sink { log: vec![] });
        let mut expected = Vec::new();
        for (tag, &t) in times.iter().enumerate() {
            let h = sim.schedule_at(SimTime::from_nanos(t), id, tag as u32);
            if *cancel_mask.get(tag).unwrap_or(&false) {
                sim.cancel(h);
            } else {
                expected.push(tag as u32);
            }
        }
        sim.run_until_idle();
        let mut fired: Vec<u32> = sim.actor::<Sink>(id).unwrap().log.iter().map(|&(_, e)| e).collect();
        fired.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(fired, expected);
    }

    /// run_until(t) processes exactly the events with time <= t.
    #[test]
    fn run_until_boundary(times in prop::collection::vec(0u64..1_000_000, 1..100), cut in 0u64..1_000_000) {
        let mut sim = Simulation::new(0);
        let id = sim.add_actor(Sink { log: vec![] });
        for (tag, &t) in times.iter().enumerate() {
            sim.schedule_at(SimTime::from_nanos(t), id, tag as u32);
        }
        sim.run_until(SimTime::from_nanos(cut));
        let fired = sim.actor::<Sink>(id).unwrap().log.len();
        let expected = times.iter().filter(|&&t| t <= cut).count();
        prop_assert_eq!(fired, expected);
        prop_assert!(sim.now() >= SimTime::from_nanos(cut));
    }

    /// Chained timers advance the clock by exactly the sum of delays.
    #[test]
    fn timer_chain_sums_delays(delays in prop::collection::vec(1u64..10_000_000, 1..50)) {
        struct Chain {
            delays: Vec<u64>,
            next: usize,
        }
        impl Actor<u32> for Chain {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                if let Some(&d) = self.delays.first() {
                    self.next = 1;
                    ctx.set_timer(SimDuration::from_nanos(d), 0);
                }
            }
            fn on_event(&mut self, ctx: &mut Context<'_, u32>, _: u32) {
                if let Some(&d) = self.delays.get(self.next) {
                    self.next += 1;
                    ctx.set_timer(SimDuration::from_nanos(d), 0);
                }
            }
        }
        let total: u64 = delays.iter().sum();
        let mut sim = Simulation::new(0);
        sim.add_actor(Chain { delays, next: 0 });
        let outcome = sim.run_until_idle();
        prop_assert_eq!(outcome, RunOutcome::Idle);
        prop_assert_eq!(sim.now().as_nanos(), total);
    }

    /// The event budget is honoured exactly.
    #[test]
    fn event_budget_exact(budget in 1u64..500) {
        struct Endless;
        impl Actor<u32> for Endless {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                ctx.set_timer(SimDuration::from_nanos(1), 0);
            }
            fn on_event(&mut self, ctx: &mut Context<'_, u32>, _: u32) {
                ctx.set_timer(SimDuration::from_nanos(1), 0);
            }
        }
        let mut sim = Simulation::new(0);
        sim.add_actor(Endless);
        prop_assert_eq!(sim.run(budget), RunOutcome::EventBudget);
        prop_assert_eq!(sim.events_processed(), budget);
    }
}
