//! Stress tests for the DES engine at scales beyond the unit tests:
//! large actor populations, deep timer cancellation churn, and long
//! timer chains — the regimes the experiment harness actually exercises.

use presence_des::{Actor, Context, RunOutcome, SimDuration, SimTime, Simulation};

type Ev = u64;

/// An actor that bounces messages to a random peer, with a TTL.
struct Gossiper {
    peers: Vec<presence_des::ActorId>,
    received: u64,
}

impl Actor<Ev> for Gossiper {
    fn on_event(&mut self, ctx: &mut Context<'_, Ev>, ttl: Ev) {
        self.received += 1;
        if ttl > 0 && !self.peers.is_empty() {
            let idx = ctx.rng().index(self.peers.len());
            let peer = self.peers[idx];
            let jitter = ctx.rng().uniform(0.001, 0.1);
            ctx.schedule_in(SimDuration::from_secs_f64(jitter), peer, ttl - 1);
        }
    }
}

#[test]
fn thousand_actor_gossip_terminates_deterministically() {
    let run = |seed: u64| -> (u64, u64) {
        let mut sim = Simulation::new(seed);
        let ids: Vec<_> = (0..1_000)
            .map(|_| {
                sim.add_actor(Gossiper {
                    peers: Vec::new(),
                    received: 0,
                })
            })
            .collect();
        for &id in &ids {
            sim.actor_mut::<Gossiper>(id).unwrap().peers = ids.clone();
        }
        // Inject 50 rumours with TTL 100.
        for (i, &id) in ids.iter().take(50).enumerate() {
            sim.schedule_at(SimTime::from_nanos(i as u64), id, 100);
        }
        assert_eq!(sim.run_until_idle(), RunOutcome::Idle);
        let total: u64 = ids
            .iter()
            .map(|&id| sim.actor::<Gossiper>(id).unwrap().received)
            .sum();
        (total, sim.events_processed())
    };
    let (total_a, events_a) = run(42);
    let (total_b, events_b) = run(42);
    assert_eq!(total_a, 50 * 101, "every TTL hop must be delivered");
    assert_eq!((total_a, events_a), (total_b, events_b), "replay mismatch");
}

/// Arms and immediately cancels a million timers interleaved with live
/// ones; cancelled timers must neither fire nor linger in the queue.
#[test]
fn heavy_cancellation_churn() {
    struct Churner {
        remaining: u32,
        live_fired: u32,
    }
    impl Actor<Ev> for Churner {
        fn on_start(&mut self, ctx: &mut Context<'_, Ev>) {
            ctx.set_timer(SimDuration::from_nanos(1), 1);
        }
        fn on_event(&mut self, ctx: &mut Context<'_, Ev>, tag: Ev) {
            assert_eq!(tag, 1, "a cancelled (tag 0) timer fired");
            self.live_fired += 1;
            if self.remaining == 0 {
                return;
            }
            self.remaining -= 1;
            // Ten dead timers per live one.
            for _ in 0..10 {
                let h = ctx.set_timer(SimDuration::from_nanos(5), 0);
                ctx.cancel(h);
            }
            ctx.set_timer(SimDuration::from_nanos(10), 1);
        }
    }
    let mut sim = Simulation::new(7);
    let id = sim.add_actor(Churner {
        remaining: 100_000,
        live_fired: 0,
    });
    assert_eq!(sim.run_until_idle(), RunOutcome::Idle);
    let churner = sim.actor::<Churner>(id).unwrap();
    assert_eq!(churner.live_fired, 100_001);
}

/// Regression for the tombstone leak: `cancel` on an already-fired handle
/// used to insert its (unique, hence never-removed) seq into the cancelled
/// set, so retry/cancel-pattern sims grew state forever. With true
/// cancellation the engine must retain nothing across a million
/// fire-then-cancel cycles, report every such cancel as a no-op, and keep
/// `queue_len` at the exact live count throughout.
#[test]
fn million_fire_then_cancel_cycles_retain_nothing() {
    struct Sink {
        fired: u64,
    }
    impl Actor<Ev> for Sink {
        fn on_event(&mut self, _: &mut Context<'_, Ev>, _: Ev) {
            self.fired += 1;
        }
    }
    let mut sim = Simulation::new(1);
    let id = sim.add_actor(Sink { fired: 0 });
    for round in 0..1_000_000u64 {
        let h = sim.schedule_at(SimTime::from_nanos(round), id, round);
        assert!(sim.step(), "event {round} must fire");
        assert!(!sim.cancel(h), "cancel after fire must be a no-op");
        assert_eq!(sim.queue_len(), 0, "live count drifted at round {round}");
    }
    assert_eq!(sim.events_processed(), 1_000_000);
    assert_eq!(sim.actor::<Sink>(id).unwrap().fired, 1_000_000);
}

/// A long serial timer chain: virtual time accumulates exactly, with no
/// drift over ten million nanosecond steps.
#[test]
fn long_chain_no_time_drift() {
    struct Chain {
        remaining: u64,
    }
    impl Actor<Ev> for Chain {
        fn on_start(&mut self, ctx: &mut Context<'_, Ev>) {
            ctx.set_timer(SimDuration::from_nanos(3), 0);
        }
        fn on_event(&mut self, ctx: &mut Context<'_, Ev>, _: Ev) {
            if self.remaining > 0 {
                self.remaining -= 1;
                ctx.set_timer(SimDuration::from_nanos(3), 0);
            }
        }
    }
    const STEPS: u64 = 1_000_000;
    let mut sim = Simulation::new(1);
    sim.add_actor(Chain { remaining: STEPS });
    sim.run_until_idle();
    assert_eq!(sim.now().as_nanos(), (STEPS + 1) * 3);
    assert_eq!(sim.events_processed(), STEPS + 1);
}

/// run_until called repeatedly in small increments must agree with a
/// single run_until over the whole horizon.
#[test]
fn incremental_run_until_equivalence() {
    fn build(seed: u64) -> (Simulation<Ev>, Vec<presence_des::ActorId>) {
        let mut sim = Simulation::new(seed);
        let ids: Vec<_> = (0..20)
            .map(|_| {
                sim.add_actor(Gossiper {
                    peers: Vec::new(),
                    received: 0,
                })
            })
            .collect();
        for &id in &ids {
            sim.actor_mut::<Gossiper>(id).unwrap().peers = ids.clone();
        }
        for &id in &ids {
            sim.schedule_at(SimTime::ZERO, id, 500);
        }
        (sim, ids)
    }

    let (mut whole, ids_a) = build(3);
    whole.run_until(SimTime::from_secs_f64(10.0));
    let totals_a: Vec<u64> = ids_a
        .iter()
        .map(|&id| whole.actor::<Gossiper>(id).unwrap().received)
        .collect();

    let (mut steps, ids_b) = build(3);
    for i in 1..=100 {
        steps.run_until(SimTime::from_secs_f64(i as f64 * 0.1));
    }
    let totals_b: Vec<u64> = ids_b
        .iter()
        .map(|&id| steps.actor::<Gossiper>(id).unwrap().received)
        .collect();

    assert_eq!(totals_a, totals_b);
    assert_eq!(whole.events_processed(), steps.events_processed());
}
