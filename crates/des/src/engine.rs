//! The discrete-event simulation engine.
//!
//! A [`Simulation`] owns a set of actors, a virtual clock, and a stable
//! time-ordered event queue. Determinism guarantees:
//!
//! * Events fire in `(time, sequence-number)` order — two events scheduled
//!   for the same instant fire in the order they were scheduled, regardless
//!   of heap internals (the queue itself lives in [`crate::queue`]).
//! * Each actor draws randomness only from its own [`StreamRng`], derived
//!   from the root seed and the actor's id, so runs replay exactly and
//!   actors don't perturb each other's streams.
//!
//! # Typed actor storage
//!
//! `Simulation<E, S>` is generic over its actor storage `S` — any type
//! implementing [`Actor<E>`] can be the population's member type:
//!
//! * The default, [`DynActorSet<E>`], boxes heterogeneous actors behind a
//!   trait object, which keeps unit tests and examples ergonomic
//!   ([`Simulation::add_actor`] accepts any `Actor<E>`, and
//!   [`Simulation::actor`] downcasts back to the concrete type).
//! * A closed simulation domain supplies its own enum over its actor
//!   kinds (see [`ProjectActor`]), so the per-event hot path dispatches
//!   through a direct `match` instead of a vtable call — no box per
//!   actor, no pointer chase per event. There is also no take/put-back
//!   dance: the engine borrows the member in place (the actor table and
//!   the scheduler core are disjoint), and mid-event spawns are parked in
//!   a pending list absorbed after the handler returns, so dispatch is a
//!   plain indexed borrow either way.
//!
//! This is the stand-in for the paper's MODEST/MÖBIUS tool chain: a small,
//! auditable kernel whose event semantics are plain enough to validate by
//! inspection (the paper stresses that simulation results are only
//! trustworthy when the simulator's semantics are).

use crate::queue::{EventQueue, QueueProfile};
use crate::rng::StreamRng;
use crate::time::{SimDuration, SimTime};
use std::any::Any;

/// Identifies an actor within one [`Simulation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ActorId(pub(crate) usize);

impl ActorId {
    /// The raw index (stable for the lifetime of the simulation).
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// Handle to a scheduled event, usable to [cancel](Context::cancel) it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventHandle {
    pub(crate) seq: u64,
}

/// A simulation participant.
///
/// Actors are passive: they only run when an event addressed to them fires.
/// All interaction with the world — scheduling future events, sending to
/// other actors, randomness, stopping the run — goes through the
/// [`Context`].
///
/// The trait doubles as the bound on a simulation's *member type*: a typed
/// simulation stores an enum over its actor kinds whose `Actor` impl is a
/// `match` delegating to the active variant.
pub trait Actor<E>: 'static {
    /// Called once when the simulation starts (or, for actors spawned
    /// mid-run, when they are absorbed into the actor table).
    fn on_start(&mut self, _ctx: &mut Context<'_, E>) {}

    /// Called for every event addressed to this actor.
    fn on_event(&mut self, ctx: &mut Context<'_, E>, event: E);
}

/// Object-safe supertrait adding downcasting, implemented for every actor.
trait AnyActor<E>: Actor<E> {
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<E: 'static, T: Actor<E>> AnyActor<E> for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// The default actor storage: a boxed trait object per actor, so one
/// simulation can host any mix of actor types without declaring a closed
/// set. This is the ergonomic path for unit tests and examples; hot
/// simulation domains define an enum member type instead and dispatch
/// without the vtable (see the [module docs](self)).
pub struct DynActorSet<E: 'static>(Box<dyn AnyActor<E>>);

impl<E: 'static> DynActorSet<E> {
    /// Boxes a concrete actor as a dynamic set member.
    #[must_use]
    pub fn wrap<A: Actor<E>>(actor: A) -> Self {
        Self(Box::new(actor))
    }
}

impl<E: 'static> Actor<E> for DynActorSet<E> {
    fn on_start(&mut self, ctx: &mut Context<'_, E>) {
        self.0.on_start(ctx);
    }
    fn on_event(&mut self, ctx: &mut Context<'_, E>, event: E) {
        self.0.on_event(ctx, event);
    }
}

/// Projection from a simulation's member type to one concrete actor kind —
/// what [`Simulation::actor`]/[`Simulation::actor_mut`] use to hand out
/// typed access.
///
/// [`DynActorSet`] projects by `Any`-downcast to *every* actor type; an
/// enum member type implements it per variant:
///
/// ```
/// use presence_des::{Actor, Context, ProjectActor};
///
/// struct Ping;
/// struct Pong;
/// # impl Actor<u32> for Ping { fn on_event(&mut self, _: &mut Context<'_, u32>, _: u32) {} }
/// # impl Actor<u32> for Pong { fn on_event(&mut self, _: &mut Context<'_, u32>, _: u32) {} }
///
/// enum Member {
///     Ping(Ping),
///     Pong(Pong),
/// }
/// # impl Actor<u32> for Member {
/// #     fn on_event(&mut self, ctx: &mut Context<'_, u32>, ev: u32) {
/// #         match self {
/// #             Member::Ping(a) => a.on_event(ctx, ev),
/// #             Member::Pong(a) => a.on_event(ctx, ev),
/// #         }
/// #     }
/// # }
///
/// impl ProjectActor<Ping> for Member {
///     fn project(&self) -> Option<&Ping> {
///         match self {
///             Member::Ping(a) => Some(a),
///             _ => None,
///         }
///     }
///     fn project_mut(&mut self) -> Option<&mut Ping> {
///         match self {
///             Member::Ping(a) => Some(a),
///             _ => None,
///         }
///     }
/// }
/// ```
pub trait ProjectActor<A> {
    /// The member as an `A`, if that is what it holds.
    fn project(&self) -> Option<&A>;
    /// The member as a mutable `A`, if that is what it holds.
    fn project_mut(&mut self) -> Option<&mut A>;
}

impl<E: 'static, A: Actor<E>> ProjectActor<A> for DynActorSet<E> {
    fn project(&self) -> Option<&A> {
        self.0.as_any().downcast_ref::<A>()
    }
    fn project_mut(&mut self) -> Option<&mut A> {
        self.0.as_any_mut().downcast_mut::<A>()
    }
}

/// A record handed to the trace hook for every processed event.
#[derive(Debug, Clone, Copy)]
pub struct TraceRecord {
    /// Virtual time at which the event fired.
    pub time: SimTime,
    /// The actor that received it.
    pub target: ActorId,
    /// The event's global sequence number.
    pub seq: u64,
}

/// What a structured [`EngineEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineEventKind {
    /// An event was delivered to the actor (anything but a self-armed
    /// timer: messages from other actors, external stimuli, batch
    /// members).
    Dispatch,
    /// The actor armed a timer — [`Context::set_timer`], or a rearm of a
    /// still-pending timer ([`Context::rearm_timer`] /
    /// [`Context::reschedule`] on an armed handle).
    TimerArm,
    /// A pending timer was cancelled before it fired.
    TimerCancel,
    /// A self-armed timer fired.
    TimerFire,
}

/// One entry of the structured engine trace (see
/// [`Simulation::enable_engine_trace`]): what the scheduler did, when,
/// and to whom. Engine sequence numbers are deliberately absent — they
/// are scheduler-internal and differ between a sequential and a regioned
/// run of the same trajectory, whereas the `(time, actor, kind)` stream
/// in canonical order is bit-identical across engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineEvent {
    /// Virtual time of the action.
    pub time: SimTime,
    /// The actor concerned: the dispatch target, or the timer's owner.
    pub actor: ActorId,
    /// What happened.
    pub kind: EngineEventKind,
}

/// Buffered trace state behind [`Core::etrace`]. Lives in an
/// `Option<Box<_>>` so the disabled path (the default) costs one
/// predictable branch per scheduler operation and zero allocation —
/// the PR 5 steady-state alloc gate stays green with tracing off.
#[derive(Default)]
pub(crate) struct EngineTraceState {
    /// Buffer structured [`EngineEvent`]s (drained by
    /// `take_engine_trace`).
    pub(crate) record_events: bool,
    /// Buffer raw [`TraceRecord`]s at dispatch — the regioned engine's
    /// path to `set_trace` parity (collected and merged at each barrier).
    pub(crate) record_raw: bool,
    pub(crate) events: Vec<EngineEvent>,
    pub(crate) records: Vec<TraceRecord>,
    /// Sequence numbers of pending self-armed timers, so pops and
    /// cancels can classify themselves. A rearm mints a fresh sequence
    /// number ([`Core::reschedule_slot`]) and migrates membership to it.
    armed: std::collections::HashSet<u64>,
}

/// Why a run loop returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The requested end time was reached (queue may still hold events).
    ReachedTime,
    /// The event queue drained completely.
    Idle,
    /// An actor called [`Context::stop`].
    Stopped,
    /// The event budget was exhausted.
    EventBudget,
}

/// The destination of one queued event: a single actor, or a batch
/// delivered to every listed actor in order within one engine event.
///
/// A batch occupies **one** queue slot and one sequence number. Because a
/// loop of same-instant `send_now` calls mints consecutive sequence
/// numbers (nothing can be scheduled between them), collapsing the loop
/// into a batch cannot reorder anything: every other event either precedes
/// the whole run of sends or follows it, exactly as before. The batch
/// therefore preserves seeded trajectories bit-for-bit while costing one
/// queue operation instead of k (the churn actor's `drive_to` is the
/// motivating caller).
#[derive(Debug)]
pub(crate) enum Dest {
    One(ActorId),
    Batch(Box<[ActorId]>),
}

/// One cross-region event parked in a region's outbox until the next
/// window barrier (see [`crate::region::RegionSim`]). `mint_time` is the
/// minting region's clock at the scheduling call — the first component of
/// the deterministic barrier merge key.
pub(crate) struct Outbound<E> {
    pub(crate) mint_time: SimTime,
    pub(crate) time: SimTime,
    pub(crate) target: ActorId,
    pub(crate) payload: E,
}

/// Region-routing state a [`crate::region::RegionSim`] installs into each
/// region's scheduler core. When present, events scheduled for an actor
/// owned by another region are diverted to the outbox instead of the local
/// queue — after proving they land at or past the current window's end
/// (the conservative-lookahead soundness check, which fails loudly rather
/// than silently reordering).
pub(crate) struct RegionRouter<E> {
    /// Global actor index → owning region.
    pub(crate) region_of: std::sync::Arc<[u32]>,
    pub(crate) my_region: u32,
    /// Exclusive end of the window each region is currently executing
    /// (indexed by region). A cross-region event must land at or after its
    /// *target's* window end — with adaptive windows the regions advance
    /// unevenly, so the soundness bound is per-target, not global.
    /// `SimTime::MAX` means cross-region scheduling is forbidden outright
    /// (an isolated partition).
    ///
    /// The entry for `my_region` doubles as this region's own execution
    /// bound, *cut* on every cross-region mint to `arrival + lookahead`:
    /// once this region has sent something out, a reactivation chain can
    /// reach back one lookahead after that arrival, so an adaptive window
    /// that leapt ahead must stop there (see `region::WindowPolicy`).
    pub(crate) window_ends: Vec<SimTime>,
    /// The declared cross-region lookahead (zero in an isolated partition,
    /// where every cross mint panics before reading it).
    pub(crate) lookahead: SimDuration,
    /// Handles for outbound events count down from `u64::MAX` so they can
    /// never collide with a live local sequence number: cancelling or
    /// rescheduling a cross-region event is a documented no-op (`false` /
    /// `None`), not an aliasing hazard.
    pub(crate) sentinel_seq: u64,
    pub(crate) outbox: Vec<Outbound<E>>,
}

/// Mutable scheduler state shared between the engine loop and [`Context`].
pub(crate) struct Core<E> {
    pub(crate) now: SimTime,
    /// Live events only: cancellation removes entries immediately (see
    /// [`crate::queue`]), so there are no tombstones to skip at pop time.
    pub(crate) queue: EventQueue<(Dest, E)>,
    pub(crate) next_seq: u64,
    pub(crate) stop_requested: bool,
    pub(crate) actor_count: usize,
    /// `Some` only inside a regioned run; `None` keeps the sequential
    /// engine's push path branch-free apart from one predictable test.
    pub(crate) router: Option<RegionRouter<E>>,
    /// `Some` only while structured tracing is enabled; `None` keeps the
    /// hot loop allocation-free (one predictable branch per operation).
    pub(crate) etrace: Option<Box<EngineTraceState>>,
}

impl<E> Core<E> {
    pub(crate) fn push(&mut self, time: SimTime, target: ActorId, payload: E) -> EventHandle {
        assert!(
            time >= self.now,
            "cannot schedule into the past: {time} < now {}",
            self.now
        );
        if let Some(router) = self.router.as_mut() {
            let target_region = router.region_of[target.0];
            if target_region != router.my_region {
                let target_end = router.window_ends[target_region as usize];
                assert!(
                    time >= target_end,
                    "cross-region event for {target:?} at {time} lands inside the current \
                     window (end {target_end}): the route's real delay undercuts the declared \
                     lookahead — conservative parallel execution would be unsound"
                );
                router.outbox.push(Outbound {
                    mint_time: self.now,
                    time,
                    target,
                    payload,
                });
                // Cut this region's own window: a reactivation chain can
                // reach back one lookahead after the arrival just minted.
                let cut = time.checked_add(router.lookahead).unwrap_or(SimTime::MAX);
                let mine = &mut router.window_ends[router.my_region as usize];
                if cut < *mine {
                    *mine = cut;
                }
                router.sentinel_seq -= 1;
                return EventHandle {
                    seq: router.sentinel_seq,
                };
            }
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(time, seq, (Dest::One(target), payload));
        EventHandle { seq }
    }

    fn push_batch(&mut self, time: SimTime, targets: Box<[ActorId]>, payload: E) -> EventHandle {
        assert!(
            time >= self.now,
            "cannot schedule into the past: {time} < now {}",
            self.now
        );
        assert!(!targets.is_empty(), "batch needs at least one target");
        if let Some(router) = self.router.as_ref() {
            // Batches are minted by same-instant sends only, so a remote
            // member is by definition inside the current window.
            for &target in targets.iter() {
                assert!(
                    router.region_of[target.0] == router.my_region,
                    "batch event includes cross-region target {target:?}: same-instant \
                     batches cannot cross a region boundary (zero lookahead)"
                );
            }
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(time, seq, (Dest::Batch(targets), payload));
        EventHandle { seq }
    }

    /// In-place rearm core: moves the pending event behind `handle` to
    /// `at`, minting a fresh sequence number so the event re-enters the
    /// FIFO order exactly as a newly scheduled one would. Consumes one
    /// sequence number — the same as the `push` in a cancel-then-push
    /// pair — so swapping the two idioms never perturbs a seeded
    /// trajectory. Returns the fresh handle and the payload slot (target,
    /// payload), still in place, for optional rewriting.
    fn reschedule_slot(
        &mut self,
        handle: EventHandle,
        at: SimTime,
    ) -> Option<(EventHandle, &mut (Dest, E))> {
        assert!(
            at >= self.now,
            "cannot reschedule into the past: {at} < now {}",
            self.now
        );
        if !self.queue.contains(handle.seq) {
            return None;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        // A rearmed timer keeps its timer identity under the fresh
        // sequence number; the trace sees the rearm as a new arm.
        let rearmed_timer = self
            .etrace
            .as_deref_mut()
            .is_some_and(|t| t.armed.remove(&handle.seq) && t.armed.insert(seq));
        let entry = self
            .queue
            .reschedule(handle.seq, at, seq)
            .expect("pending event reschedules");
        if rearmed_timer {
            let Dest::One(actor) = entry.0 else {
                unreachable!("timers are never batch events")
            };
            let now = self.now;
            if let Some(t) = self.etrace.as_deref_mut() {
                if t.record_events {
                    t.events.push(EngineEvent {
                        time: now,
                        actor,
                        kind: EngineEventKind::TimerArm,
                    });
                }
            }
        }
        Some((EventHandle { seq }, entry))
    }

    /// Marks the event behind `handle` as a self-armed timer and records
    /// the arm, when structured tracing is on (no-op otherwise).
    pub(crate) fn note_timer_armed(&mut self, actor: ActorId, handle: EventHandle) {
        let now = self.now;
        if let Some(t) = self.etrace.as_deref_mut() {
            if t.record_events {
                t.armed.insert(handle.seq);
                t.events.push(EngineEvent {
                    time: now,
                    actor,
                    kind: EngineEventKind::TimerArm,
                });
            }
        }
    }

    /// Cancels a pending event, classifying a cancelled timer for the
    /// structured trace. Returns whether the event was still pending.
    pub(crate) fn cancel(&mut self, handle: EventHandle) -> bool {
        let now = self.now;
        match self.queue.cancel(handle.seq) {
            None => false,
            Some((dest, _payload)) => {
                if let Some(t) = self.etrace.as_deref_mut() {
                    if t.armed.remove(&handle.seq) && t.record_events {
                        let Dest::One(actor) = dest else {
                            unreachable!("timers are never batch events")
                        };
                        t.events.push(EngineEvent {
                            time: now,
                            actor,
                            kind: EngineEventKind::TimerCancel,
                        });
                    }
                }
                true
            }
        }
    }

    /// Records the pop of event `seq` for `actor` when tracing is on: a
    /// structured dispatch/fire event, and (under `record_raw`) the raw
    /// [`TraceRecord`] the regioned engine merges at its barriers.
    pub(crate) fn note_dispatch(&mut self, time: SimTime, actor: ActorId, seq: u64) {
        if let Some(t) = self.etrace.as_deref_mut() {
            if t.record_events {
                let kind = if t.armed.remove(&seq) {
                    EngineEventKind::TimerFire
                } else {
                    EngineEventKind::Dispatch
                };
                t.events.push(EngineEvent { time, actor, kind });
            }
            if t.record_raw {
                t.records.push(TraceRecord {
                    time,
                    target: actor,
                    seq,
                });
            }
        }
    }

    /// Enables structured tracing (idempotent).
    pub(crate) fn enable_etrace(&mut self) {
        self.etrace.get_or_insert_with(Box::default).record_events = true;
    }

    /// Enables raw [`TraceRecord`] buffering at dispatch (idempotent) —
    /// the regioned engine's `set_trace` substrate.
    pub(crate) fn enable_raw_records(&mut self) {
        self.etrace.get_or_insert_with(Box::default).record_raw = true;
    }

    /// Drains the raw record buffer into `out` (engine execution order).
    pub(crate) fn drain_raw_records_into(&mut self, out: &mut Vec<TraceRecord>) {
        if let Some(t) = self.etrace.as_deref_mut() {
            out.append(&mut t.records);
        }
    }

    /// Drains the structured trace buffer (raw, engine execution order).
    pub(crate) fn take_etrace_events(&mut self) -> Vec<EngineEvent> {
        self.etrace
            .as_deref_mut()
            .map_or_else(Vec::new, |t| std::mem::take(&mut t.events))
    }

    fn reschedule(&mut self, handle: EventHandle, at: SimTime) -> Option<EventHandle> {
        self.reschedule_slot(handle, at).map(|(h, _)| h)
    }

    /// [`Core::reschedule`], additionally rewriting the queued payload in
    /// its slot (the rearmed-timer-with-fresh-token idiom). The event's
    /// target actor is unchanged.
    fn reschedule_with(
        &mut self,
        handle: EventHandle,
        at: SimTime,
        payload: E,
    ) -> Option<EventHandle> {
        let (h, entry) = self.reschedule_slot(handle, at)?;
        entry.1 = payload;
        Some(h)
    }
}

/// The API an actor uses to interact with the simulation while handling an
/// event.
pub struct Context<'a, E> {
    pub(crate) core: &'a mut Core<E>,
    pub(crate) rng: &'a mut StreamRng,
    /// Mid-event spawns, parked until the current handler returns. Stored
    /// as `&mut dyn Any` over the engine's `Vec<S>` so the context (and
    /// therefore every `Actor` impl's signature) stays independent of the
    /// simulation's member type; [`Context::spawn_member`] downcasts it
    /// back, which is exact by construction for the owning engine.
    pub(crate) pending_spawns: &'a mut dyn Any,
    pub(crate) me: ActorId,
}

impl<'a, E> Context<'a, E> {
    /// Current virtual time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// The id of the actor currently handling an event.
    #[must_use]
    pub fn me(&self) -> ActorId {
        self.me
    }

    /// This actor's private random stream.
    pub fn rng(&mut self) -> &mut StreamRng {
        self.rng
    }

    /// Schedules `payload` for `target` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past or `target` does not exist (yet).
    pub fn schedule_at(&mut self, at: SimTime, target: ActorId, payload: E) -> EventHandle {
        assert!(
            target.0 < self.core.actor_count,
            "scheduling for unknown actor {target:?}"
        );
        self.core.push(at, target, payload)
    }

    /// Schedules `payload` for `target` after a delay.
    pub fn schedule_in(&mut self, delay: SimDuration, target: ActorId, payload: E) -> EventHandle {
        let at = self.core.now + delay;
        self.schedule_at(at, target, payload)
    }

    /// Schedules `payload` for this actor after a delay (a timer).
    pub fn set_timer(&mut self, delay: SimDuration, payload: E) -> EventHandle {
        let me = self.me;
        let handle = self.schedule_in(delay, me, payload);
        // Self-sends never cross a region boundary, so the handle is
        // always a live local sequence number.
        self.core.note_timer_armed(me, handle);
        handle
    }

    /// Sends `payload` to `target` at the current instant (it fires after
    /// all events already scheduled for this instant).
    pub fn send_now(&mut self, target: ActorId, payload: E) -> EventHandle {
        let now = self.core.now;
        self.schedule_at(now, target, payload)
    }

    /// Sends one copy of `payload` to every target at the current instant
    /// as a **single** engine event: one queue slot, one sequence number,
    /// one `events_processed` tick; the targets are dispatched in list
    /// order when it fires. Equivalent to a loop of [`Context::send_now`]
    /// calls in every observable ordering (a same-instant `send_now` run
    /// mints consecutive sequence numbers, so nothing can interleave), but
    /// k − 1 queue operations cheaper. Cancelling the returned handle
    /// cancels delivery to the whole batch.
    ///
    /// # Panics
    ///
    /// Panics if `targets` is empty or names an unknown actor.
    pub fn send_now_batch(&mut self, targets: Vec<ActorId>, payload: E) -> EventHandle {
        for &target in &targets {
            assert!(
                target.0 < self.core.actor_count,
                "scheduling for unknown actor {target:?}"
            );
        }
        let now = self.core.now;
        self.core
            .push_batch(now, targets.into_boxed_slice(), payload)
    }

    /// Cancels a previously scheduled event, returning whether it was
    /// still pending. Cancelling an event that has already fired (or was
    /// already cancelled) is a **true** no-op: nothing is retained, so
    /// fire-then-cancel patterns cannot grow engine state.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        self.core.cancel(handle)
    }

    /// Whether the event behind `handle` is still pending (neither fired
    /// nor cancelled).
    #[must_use]
    pub fn is_pending(&self, handle: EventHandle) -> bool {
        self.core.queue.contains(handle.seq)
    }

    /// Moves a pending event to fire at `at`, keeping its payload in place
    /// (no slab free/alloc, no queue remove/insert — a single in-place
    /// heap re-seat). Returns the fresh handle; the old one is dead. The
    /// event re-enters the same-instant FIFO order as if scheduled now, and
    /// one sequence number is consumed either way, so `reschedule` and
    /// cancel-then-schedule produce bit-identical trajectories.
    ///
    /// Returns `None` (and consumes nothing) when the event already fired
    /// or was cancelled — callers fall back to a fresh schedule.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn reschedule(&mut self, handle: EventHandle, at: SimTime) -> Option<EventHandle> {
        self.core.reschedule(handle, at)
    }

    /// [`Context::reschedule`] with a delay relative to now (the timer
    /// rearm idiom).
    pub fn reschedule_in(
        &mut self,
        handle: EventHandle,
        delay: SimDuration,
    ) -> Option<EventHandle> {
        let at = self.core.now + delay;
        self.core.reschedule(handle, at)
    }

    /// The cancel-then-rearm fast path: moves the pending event behind
    /// `handle` to `now + delay` **and** replaces its payload in place
    /// (timers are rearmed with a fresh token, so the queued payload must
    /// be rewritten along with the deadline). The event's target actor is
    /// unchanged. Everything else matches [`Context::reschedule`]: fresh
    /// handle out, one sequence number consumed, `None` if `handle` is no
    /// longer pending.
    pub fn rearm_timer(
        &mut self,
        handle: EventHandle,
        delay: SimDuration,
        payload: E,
    ) -> Option<EventHandle> {
        let at = self.core.now + delay;
        self.core.reschedule_with(handle, at, payload)
    }

    /// Requests the run loop to stop after the current event completes.
    pub fn stop(&mut self) {
        self.core.stop_requested = true;
    }

    /// Adds a new actor mid-run **in a dynamically stored simulation**
    /// (the default). The actor's `on_start` runs after the current event
    /// handler returns, at the current virtual time.
    ///
    /// # Panics
    ///
    /// Panics if the simulation stores a typed member set — spawn the set's
    /// own type with [`Context::spawn_member`] instead.
    pub fn spawn<A: Actor<E>>(&mut self, actor: A) -> ActorId
    where
        E: 'static,
    {
        self.spawn_member(DynActorSet::wrap(actor))
    }

    /// Adds a new actor mid-run, given as the simulation's member type
    /// `S` (for a typed simulation, the actor-set enum; for the default
    /// dynamic storage, a [`DynActorSet`] — or just use
    /// [`Context::spawn`]). The member's `on_start` runs after the
    /// current event handler returns, at the current virtual time.
    ///
    /// # Panics
    ///
    /// Panics if `S` is not the member type of the simulation dispatching
    /// this context.
    pub fn spawn_member<S: 'static>(&mut self, member: S) -> ActorId {
        let pending = self
            .pending_spawns
            .downcast_mut::<Vec<S>>()
            .expect("spawned member type must match the simulation's actor storage");
        let id = ActorId(self.core.actor_count);
        self.core.actor_count += 1;
        pending.push(member);
        id
    }
}

/// A deterministic discrete-event simulation over actor storage `S`
/// (default: [`DynActorSet`], which accepts any mix of actor types).
///
/// # Examples
///
/// ```
/// use presence_des::{Actor, Context, SimDuration, SimTime, Simulation};
///
/// struct Counter {
///     fired: u32,
/// }
///
/// impl Actor<&'static str> for Counter {
///     fn on_start(&mut self, ctx: &mut Context<'_, &'static str>) {
///         ctx.set_timer(SimDuration::from_secs(1), "tick");
///     }
///     fn on_event(&mut self, ctx: &mut Context<'_, &'static str>, ev: &'static str) {
///         assert_eq!(ev, "tick");
///         self.fired += 1;
///         if self.fired < 3 {
///             ctx.set_timer(SimDuration::from_secs(1), "tick");
///         }
///     }
/// }
///
/// let mut sim = Simulation::new(42);
/// let id = sim.add_actor(Counter { fired: 0 });
/// sim.run_until_idle();
/// assert_eq!(sim.now(), SimTime::from_secs_f64(3.0));
/// assert_eq!(sim.actor::<Counter>(id).unwrap().fired, 3);
/// ```
pub struct Simulation<E: 'static, S: Actor<E> = DynActorSet<E>> {
    core: Core<E>,
    actors: Vec<S>,
    rngs: Vec<StreamRng>,
    root_seed: u64,
    started: Vec<bool>,
    events_processed: u64,
    trace: Option<TraceHook>,
}

/// Observer hook invoked for every processed event when tracing is on.
type TraceHook = Box<dyn FnMut(&TraceRecord)>;

impl<E: 'static, S: Actor<E>> Simulation<E, S> {
    /// Creates an empty simulation with the given root seed, storing
    /// actors as the member type `S` (a typed simulation names its
    /// actor-set enum here; the dynamic default is [`Simulation::new`]).
    #[must_use]
    pub fn with_actor_set(root_seed: u64) -> Self {
        Self::with_actor_set_and_profile(root_seed, QueueProfile::Heap)
    }

    /// [`Simulation::with_actor_set`] with an explicit event-queue storage
    /// profile. Pop order — and therefore every simulation result — is
    /// identical across profiles; only the cost curve differs. Mega-scale
    /// scenarios (millions of pending events) select
    /// [`QueueProfile::calendar`] here.
    #[must_use]
    pub fn with_actor_set_and_profile(root_seed: u64, profile: QueueProfile) -> Self {
        Self {
            core: Core {
                now: SimTime::ZERO,
                queue: EventQueue::with_profile(profile),
                next_seq: 0,
                stop_requested: false,
                actor_count: 0,
                router: None,
                etrace: None,
            },
            actors: Vec::new(),
            rngs: Vec::new(),
            root_seed,
            started: Vec::new(),
            events_processed: 0,
            trace: None,
        }
    }

    /// The root seed of this run.
    #[must_use]
    pub fn root_seed(&self) -> u64 {
        self.root_seed
    }

    /// Installs a trace hook invoked for every processed event.
    pub fn set_trace<F: FnMut(&TraceRecord) + 'static>(&mut self, hook: F) {
        self.trace = Some(Box::new(hook));
    }

    /// Switches the structured engine trace on (idempotent): every
    /// dispatch, timer arm, timer cancel, and timer fire is buffered as
    /// an [`EngineEvent`] until [`Simulation::take_engine_trace`] drains
    /// it. Disabled (the default), the scheduler pays one predictable
    /// branch per operation and allocates nothing.
    pub fn enable_engine_trace(&mut self) {
        self.core.enable_etrace();
    }

    /// Drains the buffered structured trace in canonical `(time, actor)`
    /// order — the region-invariant order. Engine sequence numbers
    /// differ between a sequential and a regioned run of the same
    /// trajectory, but each actor's own event order does not (per-actor
    /// trajectories are bit-identical, and every actor lives in exactly
    /// one region), so a *stable* sort keyed on `(time, actor)` yields
    /// the identical stream from either engine. Empty when tracing was
    /// never enabled.
    pub fn take_engine_trace(&mut self) -> Vec<EngineEvent> {
        let mut events = self.core.take_etrace_events();
        events.sort_by_key(|e| (e.time, e.actor));
        events
    }

    /// Registers an actor given as the simulation's member type and
    /// returns its id. Its `on_start` runs when the first run method is
    /// called (or immediately if the run has begun). Typed simulations
    /// pass their enum (usually via a `From` impl); dynamic simulations
    /// can use [`Simulation::add_actor`] instead.
    pub fn add_member(&mut self, member: S) -> ActorId {
        let id = ActorId(self.actors.len());
        self.actors.push(member);
        self.started.push(false);
        self.core.actor_count = self.actors.len();
        id
    }

    /// Current virtual time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// Number of events processed so far.
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of live events currently queued. Cancelled events are
    /// removed eagerly, so this is the exact count a backpressure or
    /// diagnostic reader should act on — never inflated by tombstones.
    #[must_use]
    pub fn queue_len(&self) -> usize {
        self.core.queue.len()
    }

    /// Number of registered actors.
    #[must_use]
    pub fn actor_count(&self) -> usize {
        self.actors.len()
    }

    /// Immutable access to an actor, projected to its concrete type
    /// (an `Any`-downcast for dynamic storage, a variant match for a
    /// typed set).
    ///
    /// Returns `None` if the id is unknown or the type does not match.
    #[must_use]
    pub fn actor<A>(&self, id: ActorId) -> Option<&A>
    where
        S: ProjectActor<A>,
    {
        self.actors.get(id.0)?.project()
    }

    /// Mutable access to an actor, projected to its concrete type.
    #[must_use]
    pub fn actor_mut<A>(&mut self, id: ActorId) -> Option<&mut A>
    where
        S: ProjectActor<A>,
    {
        self.actors.get_mut(id.0)?.project_mut()
    }

    /// Schedules an event from outside the simulation (e.g. initial stimuli
    /// or experiment-driven interventions).
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past or the target is unknown.
    pub fn schedule_at(&mut self, at: SimTime, target: ActorId, payload: E) -> EventHandle {
        assert!(target.0 < self.core.actor_count, "unknown actor {target:?}");
        self.core.push(at, target, payload)
    }

    /// Cancels an event scheduled with [`Simulation::schedule_at`] or from a
    /// context, returning whether it was still pending. Cancelling a fired
    /// or already-cancelled handle is a true no-op (nothing is retained).
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        self.core.cancel(handle)
    }

    /// Moves a pending event to `at` in place, returning the fresh handle
    /// (see [`Context::reschedule`]); `None` if it already fired or was
    /// cancelled.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn reschedule(&mut self, handle: EventHandle, at: SimTime) -> Option<EventHandle> {
        self.core.reschedule(handle, at)
    }

    fn rng_for(&mut self, idx: usize) {
        while self.rngs.len() <= idx {
            let stream = self.rngs.len() as u64;
            self.rngs.push(StreamRng::new(self.root_seed, stream));
        }
    }

    /// Runs `on_start` for any actor that has not started yet.
    fn flush_starts(&mut self) {
        // New spawns during on_start are appended and handled by the loop.
        let mut idx = 0;
        while idx < self.actors.len() {
            if !self.started[idx] {
                self.started[idx] = true;
                self.dispatch(idx, None);
            }
            idx += 1;
        }
    }

    /// Dispatches either `on_start` (payload `None`) or `on_event` to the
    /// actor at `idx`, then absorbs any spawned actors.
    ///
    /// The member is borrowed **in place**: the actor table, the scheduler
    /// core, and the RNG table are disjoint, so no take/put-back swap is
    /// needed. Re-entrant dispatch is impossible by construction — an
    /// actor interacts with others only through queued events, and a
    /// message to itself fires in a later dispatch that observes every
    /// state change made here (pinned by the engine's self-send test).
    fn dispatch(&mut self, idx: usize, payload: Option<E>) {
        self.rng_for(idx);
        // Parked spawns: allocation-free unless a spawn actually happens.
        let mut pending: Vec<S> = Vec::new();
        {
            let actor = &mut self.actors[idx];
            let mut ctx = Context {
                core: &mut self.core,
                rng: &mut self.rngs[idx],
                pending_spawns: &mut pending,
                me: ActorId(idx),
            };
            match payload {
                Some(ev) => actor.on_event(&mut ctx, ev),
                None => actor.on_start(&mut ctx),
            }
        }
        for spawned in pending {
            self.actors.push(spawned);
            self.started.push(false);
        }
        debug_assert_eq!(self.core.actor_count, self.actors.len());
    }

    fn trace_dispatch(&mut self, time: SimTime, target: ActorId, seq: u64) {
        if let Some(hook) = self.trace.as_mut() {
            hook(&TraceRecord { time, target, seq });
        }
    }
}

impl<E: 'static> Simulation<E> {
    /// Creates an empty simulation with the given root seed, using the
    /// default dynamic actor storage ([`DynActorSet`]).
    #[must_use]
    pub fn new(root_seed: u64) -> Self {
        Self::with_actor_set(root_seed)
    }

    /// Registers an actor and returns its id. Its `on_start` runs when the
    /// first run method is called (or immediately if the run has begun).
    pub fn add_actor<A: Actor<E>>(&mut self, actor: A) -> ActorId {
        self.add_member(DynActorSet::wrap(actor))
    }
}

/// The run loop. Requires `E: Clone` so a batch event
/// ([`Context::send_now_batch`]) can hand each target its own copy of the
/// payload (the final target receives the original without cloning).
impl<E: Clone + 'static, S: Actor<E>> Simulation<E, S> {
    /// Processes a single event — which may be a batch delivering to
    /// several actors in order. Returns `false` when the queue is empty.
    /// Cancelled events were removed at cancel time, so every pop is live.
    pub fn step(&mut self) -> bool {
        self.flush_starts();
        let Some((key, (dest, payload))) = self.core.queue.pop() else {
            return false;
        };
        debug_assert!(key.time >= self.core.now, "event queue went backwards");
        self.core.now = key.time;
        self.events_processed += 1;
        match dest {
            Dest::One(target) => {
                self.trace_dispatch(key.time, target, key.seq);
                self.core.note_dispatch(key.time, target, key.seq);
                self.dispatch(target.0, Some(payload));
            }
            Dest::Batch(targets) => {
                // The trace hook sees one record per member dispatch (all
                // sharing the batch's time and seq), so observers still
                // see every delivery.
                let (&last, rest) = targets.split_last().expect("batch is never empty");
                for &target in rest {
                    self.trace_dispatch(key.time, target, key.seq);
                    self.core.note_dispatch(key.time, target, key.seq);
                    self.dispatch(target.0, Some(payload.clone()));
                }
                self.trace_dispatch(key.time, last, key.seq);
                self.core.note_dispatch(key.time, last, key.seq);
                self.dispatch(last.0, Some(payload));
            }
        }
        self.flush_starts();
        true
    }

    /// Runs until the queue drains, an actor stops the run, or `max_events`
    /// have been processed.
    ///
    /// [`RunOutcome::EventBudget`] is returned only when live events remain
    /// unprocessed: `run(0)` on an idle simulation, or a budget that is
    /// consumed exactly as the queue drains, report [`RunOutcome::Idle`].
    pub fn run(&mut self, max_events: u64) -> RunOutcome {
        self.flush_starts();
        for _ in 0..max_events {
            if self.core.stop_requested {
                self.core.stop_requested = false;
                return RunOutcome::Stopped;
            }
            if !self.step() {
                return RunOutcome::Idle;
            }
        }
        if self.core.stop_requested {
            self.core.stop_requested = false;
            RunOutcome::Stopped
        } else if self.core.queue.is_empty() {
            RunOutcome::Idle
        } else {
            RunOutcome::EventBudget
        }
    }

    /// Runs until the virtual clock reaches `end` (processing every event
    /// with `time ≤ end`), the queue drains, or an actor stops the run.
    /// On [`RunOutcome::ReachedTime`] the clock is left exactly at `end`.
    pub fn run_until(&mut self, end: SimTime) -> RunOutcome {
        self.flush_starts();
        loop {
            if self.core.stop_requested {
                self.core.stop_requested = false;
                return RunOutcome::Stopped;
            }
            // The head of the queue is always live (true cancellation).
            match self.core.queue.peek() {
                None => {
                    self.core.now = self.core.now.max(end);
                    return RunOutcome::Idle;
                }
                Some(head) if head.time > end => {
                    self.core.now = end;
                    return RunOutcome::ReachedTime;
                }
                Some(_) => {
                    self.step();
                }
            }
        }
    }

    /// Runs until the event queue is empty or an actor stops the run.
    pub fn run_until_idle(&mut self) -> RunOutcome {
        self.flush_starts();
        loop {
            if self.core.stop_requested {
                self.core.stop_requested = false;
                return RunOutcome::Stopped;
            }
            if !self.step() {
                return RunOutcome::Idle;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Ev = u32;

    /// Records the order in which its events fire.
    struct Recorder {
        log: Vec<(f64, Ev)>,
    }

    impl Actor<Ev> for Recorder {
        fn on_event(&mut self, ctx: &mut Context<'_, Ev>, ev: Ev) {
            self.log.push((ctx.now().as_secs_f64(), ev));
        }
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Simulation::new(1);
        let id = sim.add_actor(Recorder { log: vec![] });
        sim.schedule_at(SimTime::from_secs_f64(3.0), id, 3);
        sim.schedule_at(SimTime::from_secs_f64(1.0), id, 1);
        sim.schedule_at(SimTime::from_secs_f64(2.0), id, 2);
        assert_eq!(sim.run_until_idle(), RunOutcome::Idle);
        let events: Vec<Ev> = sim
            .actor::<Recorder>(id)
            .unwrap()
            .log
            .iter()
            .map(|&(_, e)| e)
            .collect();
        assert_eq!(events, vec![1, 2, 3]);
        assert_eq!(sim.events_processed(), 3);
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut sim = Simulation::new(1);
        let id = sim.add_actor(Recorder { log: vec![] });
        let t = SimTime::from_secs_f64(1.0);
        for i in 0..100 {
            sim.schedule_at(t, id, i);
        }
        sim.run_until_idle();
        let events: Vec<Ev> = sim
            .actor::<Recorder>(id)
            .unwrap()
            .log
            .iter()
            .map(|&(_, e)| e)
            .collect();
        assert_eq!(events, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn run_until_stops_at_boundary() {
        let mut sim = Simulation::new(1);
        let id = sim.add_actor(Recorder { log: vec![] });
        sim.schedule_at(SimTime::from_secs_f64(1.0), id, 1);
        sim.schedule_at(SimTime::from_secs_f64(5.0), id, 5);
        let outcome = sim.run_until(SimTime::from_secs_f64(2.0));
        assert_eq!(outcome, RunOutcome::ReachedTime);
        assert_eq!(sim.now(), SimTime::from_secs_f64(2.0));
        assert_eq!(sim.actor::<Recorder>(id).unwrap().log.len(), 1);
        // Continue to the rest.
        assert_eq!(sim.run_until_idle(), RunOutcome::Idle);
        assert_eq!(sim.actor::<Recorder>(id).unwrap().log.len(), 2);
    }

    #[test]
    fn run_until_inclusive_of_end_instant() {
        let mut sim = Simulation::new(1);
        let id = sim.add_actor(Recorder { log: vec![] });
        sim.schedule_at(SimTime::from_secs_f64(2.0), id, 7);
        sim.run_until(SimTime::from_secs_f64(2.0));
        assert_eq!(sim.actor::<Recorder>(id).unwrap().log.len(), 1);
    }

    #[test]
    fn idle_run_until_advances_clock() {
        let mut sim: Simulation<Ev> = Simulation::new(1);
        let _ = sim.add_actor(Recorder { log: vec![] });
        assert_eq!(
            sim.run_until(SimTime::from_secs_f64(10.0)),
            RunOutcome::Idle
        );
        assert_eq!(sim.now(), SimTime::from_secs_f64(10.0));
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_in_the_past_panics() {
        struct Bad;
        impl Actor<Ev> for Bad {
            fn on_event(&mut self, _: &mut Context<'_, Ev>, _: Ev) {}
        }
        let mut sim = Simulation::new(1);
        let id = sim.add_actor(Bad);
        sim.schedule_at(SimTime::from_secs_f64(5.0), id, 0);
        sim.run_until_idle();
        // now == 5.0; scheduling at 1.0 must panic.
        sim.schedule_at(SimTime::from_secs_f64(1.0), id, 0);
    }

    #[test]
    #[should_panic(expected = "unknown actor")]
    fn scheduling_for_unknown_actor_panics() {
        let mut sim: Simulation<Ev> = Simulation::new(1);
        sim.schedule_at(SimTime::ZERO, ActorId(3), 0);
    }

    /// An actor that sets a timer and cancels it before it fires.
    struct Canceller {
        fired: bool,
    }

    impl Actor<Ev> for Canceller {
        fn on_start(&mut self, ctx: &mut Context<'_, Ev>) {
            let h = ctx.set_timer(SimDuration::from_secs(1), 1);
            ctx.cancel(h);
            ctx.set_timer(SimDuration::from_secs(2), 2);
        }
        fn on_event(&mut self, _ctx: &mut Context<'_, Ev>, ev: Ev) {
            assert_eq!(ev, 2, "cancelled timer fired");
            self.fired = true;
        }
    }

    #[test]
    fn cancelled_events_do_not_fire() {
        let mut sim = Simulation::new(1);
        let id = sim.add_actor(Canceller { fired: false });
        sim.run_until_idle();
        assert!(sim.actor::<Canceller>(id).unwrap().fired);
        assert_eq!(sim.events_processed(), 1);
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut sim = Simulation::new(1);
        let id = sim.add_actor(Recorder { log: vec![] });
        let h = sim.schedule_at(SimTime::from_secs_f64(1.0), id, 1);
        sim.run_until_idle();
        // Already fired — must not disturb anything, and must report the
        // no-op rather than parking a tombstone.
        assert!(!sim.cancel(h));
        sim.schedule_at(SimTime::from_secs_f64(2.0), id, 2);
        sim.run_until_idle();
        assert_eq!(sim.actor::<Recorder>(id).unwrap().log.len(), 2);
    }

    #[test]
    fn cancel_reports_whether_the_event_was_pending() {
        let mut sim = Simulation::new(1);
        let id = sim.add_actor(Recorder { log: vec![] });
        let h = sim.schedule_at(SimTime::from_secs_f64(1.0), id, 1);
        assert!(sim.cancel(h), "pending event");
        assert!(!sim.cancel(h), "double cancel");
        sim.run_until_idle();
        assert!(sim.actor::<Recorder>(id).unwrap().log.is_empty());
    }

    /// Satellite regression: `queue_len` must be the exact live count —
    /// the tombstone design counted cancelled events as queued.
    #[test]
    fn queue_len_counts_only_live_events() {
        let mut sim = Simulation::new(1);
        let id = sim.add_actor(Recorder { log: vec![] });
        let handles: Vec<_> = (0..10)
            .map(|i| sim.schedule_at(SimTime::from_secs_f64(f64::from(i) + 1.0), id, i as Ev))
            .collect();
        assert_eq!(sim.queue_len(), 10);
        for (i, h) in handles.iter().enumerate().take(5) {
            assert!(sim.cancel(*h), "handle {i} was pending");
            assert_eq!(sim.queue_len(), 10 - i - 1);
        }
        sim.run_until_idle();
        assert_eq!(sim.queue_len(), 0);
        assert_eq!(sim.actor::<Recorder>(id).unwrap().log.len(), 5);
    }

    /// A timer that rearms itself in place instead of cancel + schedule.
    struct Rearmer {
        handle: Option<EventHandle>,
        fired: Vec<Ev>,
    }

    impl Actor<Ev> for Rearmer {
        fn on_start(&mut self, ctx: &mut Context<'_, Ev>) {
            // Arm for t=1, then immediately push the deadline out to t=2.
            let h = ctx.set_timer(SimDuration::from_secs(1), 1);
            self.handle = ctx.reschedule_in(h, SimDuration::from_secs(2));
            assert!(self.handle.is_some());
            assert!(!ctx.is_pending(h), "old handle must be dead");
            assert!(ctx.is_pending(self.handle.unwrap()));
        }
        fn on_event(&mut self, ctx: &mut Context<'_, Ev>, ev: Ev) {
            self.fired.push(ev);
            // Rescheduling a fired handle is a no-op returning None.
            let dead = self.handle.take().unwrap();
            assert!(ctx.reschedule_in(dead, SimDuration::from_secs(1)).is_none());
        }
    }

    #[test]
    fn reschedule_moves_timer_and_kills_old_handle() {
        let mut sim = Simulation::new(1);
        let id = sim.add_actor(Rearmer {
            handle: None,
            fired: vec![],
        });
        sim.run_until_idle();
        assert_eq!(sim.now(), SimTime::from_secs_f64(2.0));
        assert_eq!(sim.actor::<Rearmer>(id).unwrap().fired, vec![1]);
        assert_eq!(sim.events_processed(), 1);
    }

    /// `reschedule` and cancel-then-schedule consume sequence numbers
    /// identically, so the two idioms interleave same-instant events the
    /// same way — the property the CP timer fast path relies on.
    #[test]
    fn reschedule_orders_like_cancel_then_schedule() {
        fn trace(rearm_in_place: bool) -> Vec<(u64, Ev)> {
            struct Driver {
                rearm_in_place: bool,
                peer: ActorId,
            }
            impl Actor<Ev> for Driver {
                fn on_start(&mut self, ctx: &mut Context<'_, Ev>) {
                    let h = ctx.set_timer(SimDuration::from_secs(5), 7);
                    // An unrelated same-instant event competing for order.
                    ctx.schedule_at(SimTime::from_secs_f64(3.0), self.peer, 9);
                    if self.rearm_in_place {
                        ctx.reschedule(h, SimTime::from_secs_f64(3.0)).unwrap();
                    } else {
                        ctx.cancel(h);
                        let me = ctx.me();
                        ctx.schedule_at(SimTime::from_secs_f64(3.0), me, 7);
                    }
                }
                fn on_event(&mut self, _: &mut Context<'_, Ev>, _: Ev) {}
            }
            let mut sim = Simulation::new(1);
            let peer = sim.add_actor(Recorder { log: vec![] });
            sim.add_actor(Driver {
                rearm_in_place,
                peer,
            });
            use std::cell::RefCell;
            use std::rc::Rc;
            let log = Rc::new(RefCell::new(Vec::new()));
            let log2 = Rc::clone(&log);
            sim.set_trace(move |rec| log2.borrow_mut().push((rec.seq, rec.target.0 as Ev)));
            sim.run_until_idle();
            let out = log.borrow().clone();
            out
        }
        assert_eq!(trace(true), trace(false));
    }

    /// A batch send must be indistinguishable from a loop of `send_now`
    /// calls in everything but event count: same delivery order, same
    /// interleaving with competing same-instant events.
    #[test]
    fn batch_send_orders_like_send_now_loop() {
        fn run(batch: bool) -> (Vec<(usize, Ev)>, u64) {
            struct Driver {
                batch: bool,
                peers: Vec<ActorId>,
            }
            impl Actor<Ev> for Driver {
                fn on_event(&mut self, ctx: &mut Context<'_, Ev>, _: Ev) {
                    // A competing event minted before the sends…
                    ctx.send_now(self.peers[0], 99);
                    if self.batch {
                        ctx.send_now_batch(self.peers.clone(), 7);
                    } else {
                        for &p in &self.peers {
                            ctx.send_now(p, 7);
                        }
                    }
                    // …and one minted after.
                    ctx.send_now(self.peers[2], 42);
                }
            }
            let mut sim = Simulation::new(1);
            let peers: Vec<ActorId> = (0..3)
                .map(|_| sim.add_actor(Recorder { log: vec![] }))
                .collect();
            let d = sim.add_actor(Driver {
                batch,
                peers: peers.clone(),
            });
            sim.schedule_at(SimTime::from_secs_f64(1.0), d, 0);
            sim.run_until_idle();
            let mut log = Vec::new();
            use std::collections::BTreeMap;
            let mut per_peer: BTreeMap<usize, Vec<Ev>> = BTreeMap::new();
            for (i, &p) in peers.iter().enumerate() {
                per_peer.insert(
                    i,
                    sim.actor::<Recorder>(p)
                        .unwrap()
                        .log
                        .iter()
                        .map(|&(_, e)| e)
                        .collect(),
                );
            }
            for (i, evs) in per_peer {
                for e in evs {
                    log.push((i, e));
                }
            }
            (log, sim.events_processed())
        }
        let (batched, batched_events) = run(true);
        let (serial, serial_events) = run(false);
        assert_eq!(batched, serial, "delivery must match the serial loop");
        // driver + 99 + batch(1 vs 3) + 42
        assert_eq!(serial_events, 6);
        assert_eq!(batched_events, 4, "3 sends collapse into one event");
    }

    #[test]
    fn batch_send_traces_every_member_and_cancels_whole() {
        use std::cell::RefCell;
        use std::rc::Rc;
        struct Batcher {
            peers: Vec<ActorId>,
            cancel_it: bool,
        }
        impl Actor<Ev> for Batcher {
            fn on_event(&mut self, ctx: &mut Context<'_, Ev>, _: Ev) {
                let h = ctx.send_now_batch(self.peers.clone(), 5);
                assert!(ctx.is_pending(h));
                if self.cancel_it {
                    assert!(ctx.cancel(h));
                }
            }
        }
        for cancel_it in [false, true] {
            let mut sim = Simulation::new(1);
            let peers: Vec<ActorId> = (0..4)
                .map(|_| sim.add_actor(Recorder { log: vec![] }))
                .collect();
            let b = sim.add_actor(Batcher {
                peers: peers.clone(),
                cancel_it,
            });
            let records = Rc::new(RefCell::new(Vec::new()));
            let r2 = Rc::clone(&records);
            sim.set_trace(move |rec| r2.borrow_mut().push((rec.seq, rec.target)));
            sim.schedule_at(SimTime::ZERO, b, 0);
            sim.run_until_idle();
            let delivered: usize = peers
                .iter()
                .map(|&p| sim.actor::<Recorder>(p).unwrap().log.len())
                .sum();
            if cancel_it {
                assert_eq!(delivered, 0, "cancelled batch must not deliver");
                assert_eq!(records.borrow().len(), 1, "only the driver event");
            } else {
                assert_eq!(delivered, 4);
                // 1 driver record + 4 member records sharing one seq.
                let recs = records.borrow();
                assert_eq!(recs.len(), 5);
                let batch_seq = recs[1].0;
                assert!(recs[1..].iter().all(|&(s, _)| s == batch_seq));
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one target")]
    fn empty_batch_panics() {
        struct Empty;
        impl Actor<Ev> for Empty {
            fn on_event(&mut self, ctx: &mut Context<'_, Ev>, _: Ev) {
                ctx.send_now_batch(Vec::new(), 1);
            }
        }
        let mut sim = Simulation::new(1);
        let id = sim.add_actor(Empty);
        sim.schedule_at(SimTime::ZERO, id, 0);
        sim.run_until_idle();
    }

    /// Ping-pong pair demonstrating actor-to-actor messaging.
    struct Ping {
        peer: Option<ActorId>,
        rounds: u32,
        max: u32,
    }

    impl Actor<Ev> for Ping {
        fn on_event(&mut self, ctx: &mut Context<'_, Ev>, _ev: Ev) {
            self.rounds += 1;
            if self.rounds < self.max {
                let peer = self.peer.expect("peer set");
                ctx.schedule_in(SimDuration::from_millis(10), peer, 0);
            }
        }
    }

    #[test]
    fn ping_pong() {
        let mut sim = Simulation::new(1);
        let a = sim.add_actor(Ping {
            peer: None,
            rounds: 0,
            max: 10,
        });
        let b = sim.add_actor(Ping {
            peer: None,
            rounds: 0,
            max: 10,
        });
        sim.actor_mut::<Ping>(a).unwrap().peer = Some(b);
        sim.actor_mut::<Ping>(b).unwrap().peer = Some(a);
        sim.schedule_at(SimTime::ZERO, a, 0);
        sim.run_until_idle();
        let ra = sim.actor::<Ping>(a).unwrap().rounds;
        let rb = sim.actor::<Ping>(b).unwrap().rounds;
        assert_eq!(ra + rb, 19); // a fires 10 times, b 9 (b's 10th never sent)
    }

    #[test]
    fn stop_from_actor() {
        struct Stopper;
        impl Actor<Ev> for Stopper {
            fn on_event(&mut self, ctx: &mut Context<'_, Ev>, ev: Ev) {
                if ev == 3 {
                    ctx.stop();
                }
                ctx.set_timer(SimDuration::from_secs(1), ev + 1);
            }
        }
        let mut sim = Simulation::new(1);
        let id = sim.add_actor(Stopper);
        sim.schedule_at(SimTime::ZERO, id, 0);
        let outcome = sim.run_until_idle();
        assert_eq!(outcome, RunOutcome::Stopped);
        assert_eq!(sim.events_processed(), 4); // events 0,1,2,3
    }

    /// Satellite regression: an exhausted budget used to mask an empty
    /// queue — `run(0)` on an idle sim reported `EventBudget` even though
    /// nothing was pending.
    #[test]
    fn run_zero_on_idle_sim_reports_idle() {
        let mut sim: Simulation<Ev> = Simulation::new(1);
        let _ = sim.add_actor(Recorder { log: vec![] });
        assert_eq!(sim.run(0), RunOutcome::Idle);
        assert_eq!(sim.run(10), RunOutcome::Idle);
    }

    /// Satellite regression: a budget consumed exactly as the queue drains
    /// must report `Idle` (nothing pending), not `EventBudget`.
    #[test]
    fn run_budget_exactly_consumed_by_drain_reports_idle() {
        let mut sim = Simulation::new(1);
        let id = sim.add_actor(Recorder { log: vec![] });
        for i in 0..5 {
            sim.schedule_at(SimTime::from_secs_f64(f64::from(i)), id, i as Ev);
        }
        assert_eq!(sim.run(5), RunOutcome::Idle);
        assert_eq!(sim.events_processed(), 5);
    }

    /// A budget smaller than the queue still reports `EventBudget`.
    #[test]
    fn run_budget_with_events_left_reports_event_budget() {
        let mut sim = Simulation::new(1);
        let id = sim.add_actor(Recorder { log: vec![] });
        for i in 0..5 {
            sim.schedule_at(SimTime::from_secs_f64(f64::from(i)), id, i as Ev);
        }
        assert_eq!(sim.run(3), RunOutcome::EventBudget);
        assert_eq!(sim.run(0), RunOutcome::EventBudget, "2 events still queued");
        assert_eq!(sim.run(2), RunOutcome::Idle);
    }

    #[test]
    fn event_budget() {
        struct Endless;
        impl Actor<Ev> for Endless {
            fn on_start(&mut self, ctx: &mut Context<'_, Ev>) {
                ctx.set_timer(SimDuration::from_secs(1), 0);
            }
            fn on_event(&mut self, ctx: &mut Context<'_, Ev>, _: Ev) {
                ctx.set_timer(SimDuration::from_secs(1), 0);
            }
        }
        let mut sim = Simulation::new(1);
        sim.add_actor(Endless);
        assert_eq!(sim.run(100), RunOutcome::EventBudget);
        assert_eq!(sim.events_processed(), 100);
    }

    /// Spawner creates a child mid-run; the child must receive on_start and
    /// be addressable.
    struct Spawner {
        child: Option<ActorId>,
    }
    struct Child {
        started: bool,
        got: u32,
    }
    impl Actor<Ev> for Child {
        fn on_start(&mut self, _ctx: &mut Context<'_, Ev>) {
            self.started = true;
        }
        fn on_event(&mut self, _ctx: &mut Context<'_, Ev>, ev: Ev) {
            self.got = ev;
        }
    }
    impl Actor<Ev> for Spawner {
        fn on_event(&mut self, ctx: &mut Context<'_, Ev>, _: Ev) {
            let child = ctx.spawn(Child {
                started: false,
                got: 0,
            });
            self.child = Some(child);
            ctx.schedule_in(SimDuration::from_secs(1), child, 99);
        }
    }

    #[test]
    fn mid_run_spawn() {
        let mut sim = Simulation::new(1);
        let s = sim.add_actor(Spawner { child: None });
        sim.schedule_at(SimTime::from_secs_f64(1.0), s, 0);
        sim.run_until_idle();
        let child = sim.actor::<Spawner>(s).unwrap().child.unwrap();
        let c = sim.actor::<Child>(child).unwrap();
        assert!(c.started);
        assert_eq!(c.got, 99);
    }

    #[test]
    fn downcast_type_mismatch_is_none() {
        let mut sim = Simulation::new(1);
        let id = sim.add_actor(Recorder { log: vec![] });
        assert!(sim.actor::<Child>(id).is_none());
        assert!(sim.actor::<Recorder>(ActorId(99)).is_none());
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        fn run(seed: u64) -> Vec<u64> {
            struct Jitter;
            impl Actor<Ev> for Jitter {
                fn on_start(&mut self, ctx: &mut Context<'_, Ev>) {
                    ctx.set_timer(SimDuration::from_secs(1), 0);
                }
                fn on_event(&mut self, ctx: &mut Context<'_, Ev>, n: Ev) {
                    if n < 50 {
                        let d = ctx.rng().uniform(0.1, 2.0);
                        ctx.set_timer(SimDuration::from_secs_f64(d), n + 1);
                    }
                }
            }
            let mut sim = Simulation::new(seed);
            sim.add_actor(Jitter);
            let mut times = Vec::new();
            // Collect event times via trace hook into a shared Vec.
            use std::cell::RefCell;
            use std::rc::Rc;
            let log = Rc::new(RefCell::new(Vec::new()));
            let log2 = Rc::clone(&log);
            sim.set_trace(move |rec| log2.borrow_mut().push(rec.time.as_nanos()));
            sim.run_until_idle();
            times.extend(log.borrow().iter().copied());
            times
        }
        let a = run(7);
        let b = run(7);
        let c = run(8);
        assert_eq!(a, b, "same seed must replay identically");
        assert_ne!(a, c, "different seeds should diverge");
    }

    /// The structured trace classifies timers end to end: arm, rearm
    /// (which mints a fresh sequence number and must migrate the timer
    /// identity), cancel, and fire, with plain sends staying `Dispatch`.
    #[test]
    fn engine_trace_classifies_timers_across_rearm() {
        use EngineEventKind as K;
        struct Timers {
            peer: ActorId,
        }
        impl Actor<Ev> for Timers {
            fn on_start(&mut self, ctx: &mut Context<'_, Ev>) {
                // Armed then cancelled: TimerArm + TimerCancel.
                let dead = ctx.set_timer(SimDuration::from_secs(1), 0);
                assert!(ctx.cancel(dead));
                // Armed then rearmed in place: the fire must still be a
                // TimerFire even though the sequence number changed.
                let h = ctx.set_timer(SimDuration::from_secs(2), 1);
                ctx.rearm_timer(h, SimDuration::from_secs(3), 2).unwrap();
                // A plain message to the peer stays a Dispatch.
                ctx.schedule_in(SimDuration::from_secs(1), self.peer, 3);
            }
            fn on_event(&mut self, _: &mut Context<'_, Ev>, ev: Ev) {
                assert_eq!(ev, 2, "only the rearmed timer fires");
            }
        }
        let mut sim = Simulation::new(1);
        sim.enable_engine_trace();
        let peer = sim.add_actor(Recorder { log: vec![] });
        let t = sim.add_actor(Timers { peer });
        sim.run_until_idle();
        let kinds: Vec<(usize, K)> = sim
            .take_engine_trace()
            .into_iter()
            .map(|e| (e.actor.index(), e.kind))
            .collect();
        assert_eq!(
            kinds,
            vec![
                (t.index(), K::TimerArm),    // set_timer (cancelled)
                (t.index(), K::TimerCancel), // cancel
                (t.index(), K::TimerArm),    // set_timer (rearmed)
                (t.index(), K::TimerArm),    // rearm_timer
                (peer.index(), K::Dispatch), // message at t=1
                (t.index(), K::TimerFire),   // rearmed timer at t=3
            ]
        );
    }

    /// Disabled tracing must stay disabled: no buffer appears unless
    /// `enable_engine_trace` is called, and taking the trace then is
    /// empty.
    #[test]
    fn engine_trace_disabled_is_empty() {
        let mut sim = Simulation::new(1);
        let id = sim.add_actor(Recorder { log: vec![] });
        sim.schedule_at(SimTime::from_secs_f64(1.0), id, 1);
        sim.run_until_idle();
        assert!(sim.take_engine_trace().is_empty());
    }

    #[test]
    fn trace_hook_sees_every_event() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let mut sim = Simulation::new(1);
        let id = sim.add_actor(Recorder { log: vec![] });
        let count = Rc::new(RefCell::new(0u32));
        let c2 = Rc::clone(&count);
        sim.set_trace(move |_| *c2.borrow_mut() += 1);
        for i in 0..5 {
            sim.schedule_at(SimTime::from_secs_f64(i as f64), id, i);
        }
        sim.run_until_idle();
        assert_eq!(*count.borrow(), 5);
    }
}
