//! Deterministic random-number streams.
//!
//! Every source of randomness in a simulation run derives from a single root
//! seed. Each actor (and the network fabric) receives its own *stream*,
//! derived by mixing the root seed with a stream index through SplitMix64.
//! This gives two properties the experiment harness relies on:
//!
//! * **replayability** — the same `--seed` reproduces a run bit-for-bit;
//! * **partial independence** — adding an actor does not perturb the random
//!   streams of existing actors (common random numbers across scenarios,
//!   which sharpens A/B comparisons such as SAPP vs. DCPP on "the same"
//!   network weather).

/// SplitMix64 mixing step — a high-quality 64-bit finalizer used to derive
/// stream seeds from `(root, stream)` pairs.
#[must_use]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives the seed for stream `stream` of root seed `root`.
#[must_use]
pub fn derive_seed(root: u64, stream: u64) -> u64 {
    // Two rounds of SplitMix64 over a mixed input; one round already passes
    // PractRand at this usage level, the second is cheap insurance against
    // related-key artefacts when (root, stream) differ in one bit.
    splitmix64(splitmix64(root ^ stream.rotate_left(32)).wrapping_add(stream))
}

/// A deterministic random stream — a self-contained xoshiro256++ generator
/// (no external crates, so the bit stream is pinned by this file alone) with
/// the distribution helpers the protocols and workloads need.
#[derive(Debug, Clone)]
pub struct StreamRng {
    state: [u64; 4],
    root: u64,
    stream: u64,
}

impl StreamRng {
    /// Creates stream `stream` of root seed `root`.
    #[must_use]
    pub fn new(root: u64, stream: u64) -> Self {
        // Expand the derived 64-bit seed into the 256-bit xoshiro state with
        // SplitMix64, exactly as the xoshiro authors recommend.
        // splitmix64(z) computes mix(z + GOLDEN), so stepping z by GOLDEN
        // between calls reproduces the sequential SplitMix64 stream.
        let mut z = derive_seed(root, stream);
        let mut state = [0u64; 4];
        for s in &mut state {
            *s = splitmix64(z);
            z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        }
        Self {
            state,
            root,
            stream,
        }
    }

    /// The root seed this stream derives from.
    #[must_use]
    pub fn root(&self) -> u64 {
        self.root
    }

    /// The stream index.
    #[must_use]
    pub fn stream(&self) -> u64 {
        self.stream
    }

    /// Uniform `u64` in `[0, bound)` by rejection sampling (unbiased).
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        if bound.is_power_of_two() {
            return self.next_u64() & (bound - 1);
        }
        let zone = u64::MAX - (u64::MAX % bound) - 1;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn uniform01(&mut self) -> f64 {
        // 53 random mantissa bits — the standard uniform-double recipe.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are not finite or `low >= high`.
    pub fn uniform(&mut self, low: f64, high: f64) -> f64 {
        assert!(
            low.is_finite() && high.is_finite() && low < high,
            "bad uniform bounds"
        );
        let x = low + self.uniform01() * (high - low);
        // Guard the half-open contract against floating-point rounding.
        if x >= high {
            high.next_down().max(low)
        } else {
            x
        }
    }

    /// Uniform integer in the **inclusive** range `[low, high]` — the paper's
    /// Figure 5 workload draws the CP population size from `U{1..60}`.
    ///
    /// # Panics
    ///
    /// Panics if `low > high`.
    pub fn uniform_inclusive_u64(&mut self, low: u64, high: u64) -> u64 {
        assert!(low <= high, "bad uniform integer bounds");
        let span = high - low;
        if span == u64::MAX {
            return self.next_u64();
        }
        low + self.below(span + 1)
    }

    /// Exponentially distributed sample with the given `rate` (λ), via
    /// inverse transform. The paper's churn workload resamples the CP
    /// population at exponentially distributed intervals with rate 0.05.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive and finite.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
        // 1 - U in (0, 1] avoids ln(0).
        let u = 1.0 - self.uniform01();
        -u.ln() / rate
    }

    /// Bernoulli trial with success probability `p ∈ [0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.uniform01() < p
    }

    /// Picks a uniformly random element index for a slice of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn index(&mut self, len: usize) -> usize {
        assert!(len > 0, "cannot index an empty collection");
        self.below(len as u64) as usize
    }

    /// Raw uniform `u64` (xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_replay() {
        let mut a = StreamRng::new(42, 7);
        let mut b = StreamRng::new(42, 7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn streams_are_distinct() {
        let mut a = StreamRng::new(42, 0);
        let mut b = StreamRng::new(42, 1);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0, "adjacent streams should not collide");
    }

    #[test]
    fn roots_are_distinct() {
        let mut a = StreamRng::new(1, 0);
        let mut b = StreamRng::new(2, 0);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn derive_seed_avalanche() {
        // Flipping one bit of the stream index should change about half the
        // seed bits on average.
        let base = derive_seed(0xdead_beef, 5);
        let mut total = 0u32;
        for bit in 0..64 {
            let flipped = derive_seed(0xdead_beef, 5 ^ (1u64 << bit));
            total += (base ^ flipped).count_ones();
        }
        let avg = total as f64 / 64.0;
        assert!((avg - 32.0).abs() < 6.0, "avalanche average {avg}");
    }

    #[test]
    fn uniform01_in_range_and_spread() {
        let mut r = StreamRng::new(9, 0);
        let mut acc = 0.0;
        for _ in 0..10_000 {
            let x = r.uniform01();
            assert!((0.0..1.0).contains(&x));
            acc += x;
        }
        let mean = acc / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn uniform_bounds_respected() {
        let mut r = StreamRng::new(1, 1);
        for _ in 0..1000 {
            let x = r.uniform(2.0, 3.5);
            assert!((2.0..3.5).contains(&x));
        }
    }

    #[test]
    fn uniform_inclusive_hits_both_ends() {
        let mut r = StreamRng::new(3, 3);
        let mut saw_low = false;
        let mut saw_high = false;
        for _ in 0..10_000 {
            match r.uniform_inclusive_u64(1, 60) {
                1 => saw_low = true,
                60 => saw_high = true,
                x => assert!((1..=60).contains(&x)),
            }
        }
        assert!(
            saw_low && saw_high,
            "U{{1..60}} should reach both endpoints"
        );
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut r = StreamRng::new(11, 0);
        let rate = 0.05; // the paper's churn rate → mean 20 s
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| r.exponential(rate)).sum::<f64>() / n as f64;
        assert!((mean - 20.0).abs() < 0.5, "exp mean {mean}");
    }

    #[test]
    fn exponential_is_positive() {
        let mut r = StreamRng::new(5, 5);
        for _ in 0..10_000 {
            assert!(r.exponential(10.0) >= 0.0);
        }
    }

    #[test]
    fn bernoulli_frequency() {
        let mut r = StreamRng::new(2, 4);
        let hits = (0..100_000).filter(|_| r.bernoulli(0.3)).count();
        let freq = hits as f64 / 100_000.0;
        assert!((freq - 0.3).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn bernoulli_extremes() {
        let mut r = StreamRng::new(6, 0);
        assert!(!r.bernoulli(0.0));
        assert!(r.bernoulli(1.0));
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn exponential_rejects_zero_rate() {
        let mut r = StreamRng::new(0, 0);
        let _ = r.exponential(0.0);
    }

    #[test]
    fn index_covers_range() {
        let mut r = StreamRng::new(8, 8);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[r.index(5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
