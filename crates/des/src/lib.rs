//! Deterministic discrete-event simulation engine for the `presence`
//! workspace.
//!
//! The paper evaluated its protocols with the MODEST/MÖBIUS tool chain —
//! formal stochastic-timed models fed to a trusted simulator. This crate is
//! our substitute substrate: a compact DES kernel with explicitly documented
//! semantics so the whole analysis chain can be audited.
//!
//! Guarantees:
//!
//! * **Total event order.** Events fire ordered by `(virtual time, sequence
//!   number)`; ties in time resolve in scheduling order (FIFO), never by
//!   heap whim.
//! * **Integer clock.** [`SimTime`] counts nanoseconds in a `u64`; no
//!   floating-point drift can reorder events over long runs.
//! * **Deterministic randomness.** Each actor owns a [`StreamRng`] derived
//!   from the root seed and its actor id; a run is a pure function of its
//!   seed and configuration.
//!
//! See [`Simulation`] for the entry point and an end-to-end example.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
pub mod queue;
pub mod region;
mod rng;
mod time;
mod timer_slots;

pub use engine::{
    Actor, ActorId, Context, DynActorSet, EngineEvent, EngineEventKind, EventHandle, ProjectActor,
    RunOutcome, Simulation, TraceRecord,
};
pub use queue::{EventKey, EventQueue, QueueProfile};
pub use region::{BarrierMark, RegionSim, WindowPolicy};
pub use rng::{derive_seed, splitmix64, StreamRng};
pub use time::{SimDuration, SimTime, NANOS_PER_SEC};
pub use timer_slots::TimerSlots;
