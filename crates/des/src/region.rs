//! Conservative time-windowed parallel simulation: one run, many regions.
//!
//! A [`RegionSim`] partitions one simulation's actors into *regions*, each
//! owning its own event queue (reusing [`QueueProfile`]) and advancing
//! independently inside a safe window `[t, t + lookahead)`. Events whose
//! target lives in another region are parked in the minting region's
//! outbox and exchanged at the window barrier, where a deterministic merge
//! admits them in `(mint_time, source_region, source_order)` order —
//! thread-schedule-independent by construction, so a run is a pure
//! function of its seed and partition, never of worker timing.
//!
//! # The lookahead contract
//!
//! The engine is *conservative*: region R may execute its window only if
//! every event that will ever arrive in that window is already queued.
//! That holds when every cross-region scheduling delay is at least the
//! declared `lookahead` (in the presence stack, the fabric's
//! [`DelayModel::min_delay`] bound; see `presence_net`). The engine does
//! not trust the declaration: a cross-region event landing inside the
//! current window **panics** at the scheduling call — the violation is
//! loud and attributed, never a silent reorder or a deadlock. A zero
//! lookahead is rejected at construction for the same reason.
//!
//! # Adaptive windows
//!
//! The static window `[t_min, t_min + lookahead)` is sound but pays one
//! barrier per lookahead of virtual time even when cross-region traffic
//! is sparse (a ping-pong with a 250 µs gap and 10 µs lookahead crosses
//! 25 barriers per hop). Under [`WindowPolicy::Adaptive`] (the default)
//! each region reports its earliest possible next activity `h_R` at the
//! barrier (queue head, or its clock if starts are pending), and the
//! region `M` *uniquely* holding `t_min = min h_R` runs a wider window:
//!
//! ```text
//! end_M = max(t_min + lookahead, m2 + lookahead)
//! ```
//!
//! where `m2 = min over R ≠ M of h_R` (the run horizon when no other
//! region has work), **dynamically cut** while the window runs: the
//! moment `M` mints a cross-region event arriving at `c`, its bound
//! drops to `min(end_M, c + lookahead)`. Every other region keeps the
//! static `t_min + lookahead` end.
//!
//! *Safety:* an event arriving in `M` is minted by some region `R ≠ M`,
//! reacting either to an event already queued somewhere else — every
//! such event sits at ≥ `m2`, so the arrival is ≥ `m2 + lookahead` — or
//! to traffic `M` itself emitted; `M`'s earliest outbound arrival is
//! some `c`, so the re-mint reaches `M` at ≥ `c + lookahead`, which is
//! exactly where the dynamic cut stopped it. Chains of more hops only
//! add lookahead. Non-minimal regions cannot widen (the `t_min` holder
//! can mint into them at `t_min + lookahead` directly). The cross-region
//! soundness check accordingly becomes per-target — an event must land
//! at or after its *target's* window end — and the lookahead-violation
//! panic stays as the net underneath. Both policies produce bit-identical
//! trajectories; adaptive executes the same events in fewer, wider
//! windows ([`RegionSim::windows_executed`] adaptive ≤ static, round by
//! round).
//!
//! # Bit-identity with the sequential engine
//!
//! Each actor keeps the [`StreamRng`] stream of its *global* index —
//! identical to the same population in a sequential [`Simulation`] — and
//! regions preserve local FIFO mint order, so a regioned run reproduces
//! the sequential run event-for-event provided no two events minted in
//! *different* regions tie at the same `(time, target)` instant (ties
//! wholly within one region keep their FIFO order exactly). Continuous or
//! positive-gap cross-region delays satisfy this; the region-model
//! proptest in `tests/region_model.rs` pins the equivalence over random
//! partitions, topologies, and seeds, at every worker count.
//!
//! [`DelayModel::min_delay`]: trait method in `presence-net`

use crate::engine::{
    Actor, ActorId, Context, Core, Dest, EngineEvent, RegionRouter, RunOutcome, TraceRecord,
};
use crate::queue::{EventQueue, QueueProfile};
use crate::rng::StreamRng;
use crate::time::{SimDuration, SimTime};
use std::sync::Arc;

/// The raw trace hook installed by [`RegionSim::set_trace`].
type TraceHook = Box<dyn FnMut(&TraceRecord)>;

/// How a [`RegionSim`] sizes its conservative windows (see the
/// [module docs](self) for the safety argument).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WindowPolicy {
    /// Every region runs `[t_min, t_min + lookahead)` — the classic
    /// conservative advance, one barrier per lookahead of busy time.
    Static,
    /// The region uniquely holding the earliest activity runs to
    /// `max(t_min + lookahead, m2 + lookahead)` — `m2` being the other
    /// regions' earliest activity — cut dynamically to one lookahead past
    /// its own first cross-region arrival: strictly wider windows,
    /// bit-identical trajectory, fewer barriers when cross-region traffic
    /// is sparse (see the [module docs](self) for the safety argument).
    #[default]
    Adaptive,
}

/// One region's private slice of the simulation: its actors, their RNG
/// streams, and a scheduler core with its own event queue and outbox.
struct RegionState<E: 'static, S: Actor<E>> {
    core: Core<E>,
    actors: Vec<S>,
    /// Slot → global actor index (RNG streams and `ActorId`s are global).
    global_ids: Vec<usize>,
    rngs: Vec<StreamRng>,
    started: Vec<bool>,
    /// Whether any actor in this region still awaits `on_start`.
    starts_pending: bool,
    events_processed: u64,
    /// Global actor index → (region, slot), shared by every region so
    /// batch dispatch can resolve targets locally.
    locate: Arc<Vec<(u32, u32)>>,
}

impl<E: 'static, S: Actor<E>> RegionState<E, S> {
    /// The earliest instant at which this region could possibly act: its
    /// next queued event, or the current clock if starts are pending.
    fn next_activity(&self) -> Option<SimTime> {
        if self.starts_pending {
            return Some(self.core.now);
        }
        self.core.queue.peek().map(|k| k.time)
    }

    fn dispatch(&mut self, slot: usize, payload: Option<E>) {
        let mut pending: Vec<S> = Vec::new();
        {
            let actor = &mut self.actors[slot];
            let mut ctx = Context {
                core: &mut self.core,
                rng: &mut self.rngs[slot],
                pending_spawns: &mut pending,
                me: ActorId(self.global_ids[slot]),
            };
            match payload {
                Some(ev) => actor.on_event(&mut ctx, ev),
                None => actor.on_start(&mut ctx),
            }
        }
        assert!(
            pending.is_empty(),
            "mid-run actor spawn is not supported in a regioned simulation \
             (the global actor table is fixed at run start)"
        );
    }

    fn flush_starts(&mut self) {
        if !self.starts_pending {
            return;
        }
        for slot in 0..self.actors.len() {
            if !self.started[slot] {
                self.started[slot] = true;
                self.dispatch(slot, None);
            }
        }
        self.starts_pending = false;
    }
}

impl<E: Clone + 'static, S: Actor<E>> RegionState<E, S> {
    /// Advances this region through one window: runs `on_start` backlog,
    /// then fires every queued event strictly before `window_end`. A
    /// region whose queue empties (or never had events this window) simply
    /// returns — going idle mid-window is the normal case, not an error.
    fn run_window(&mut self, window_end: SimTime) {
        self.flush_starts();
        loop {
            // Re-read the bound each iteration: a cross-region mint cuts
            // this region's own window end (see `RegionRouter`), so an
            // adaptive window that leapt ahead stops as soon as its own
            // outbound traffic could circle back.
            let bound = self
                .core
                .router
                .as_ref()
                .map_or(window_end, |r| r.window_ends[r.my_region as usize]);
            match self.core.queue.peek() {
                Some(key) if key.time < bound => {}
                _ => return,
            }
            if self.core.stop_requested {
                return;
            }
            let (key, (dest, payload)) = self.core.queue.pop().expect("peeked event pops");
            debug_assert!(key.time >= self.core.now, "region queue went backwards");
            self.core.now = key.time;
            self.events_processed += 1;
            match dest {
                Dest::One(target) => {
                    self.core.note_dispatch(key.time, target, key.seq);
                    let (_, slot) = self.locate[target.0];
                    self.dispatch(slot as usize, Some(payload));
                }
                Dest::Batch(targets) => {
                    let (&last, rest) = targets.split_last().expect("batch is never empty");
                    for &target in rest {
                        self.core.note_dispatch(key.time, target, key.seq);
                        let (_, slot) = self.locate[target.0];
                        self.dispatch(slot as usize, Some(payload.clone()));
                    }
                    self.core.note_dispatch(key.time, last, key.seq);
                    let (_, slot) = self.locate[last.0];
                    self.dispatch(slot as usize, Some(payload));
                }
            }
        }
    }
}

/// A conservative time-windowed parallel simulation over actor storage `S`
/// (see the [module docs](self) for the protocol and its guarantees).
///
/// Construction mirrors [`Simulation`]: actors join via
/// [`RegionSim::add_member`] with an explicit region, receiving globally
/// numbered [`ActorId`]s (and therefore the same RNG streams the
/// sequential engine would hand them). Unlike `Simulation` there is no
/// dynamic-storage default: a parallel run hands regions to worker
/// threads, so the member type must be `Send` (typed actor-set enums are;
/// the `Rc`-friendly [`crate::DynActorSet`] is not).
///
/// [`Simulation`]: crate::Simulation
pub struct RegionSim<E: 'static, S: Actor<E>> {
    regions: Vec<RegionState<E, S>>,
    /// Global actor index → (region, slot).
    locate: Vec<(u32, u32)>,
    /// `None` means the partition is *isolated*: no cross-region events
    /// are permitted at all (infinite lookahead — one window per run).
    lookahead: Option<SimDuration>,
    root_seed: u64,
    now: SimTime,
    /// Upper bound on worker threads per window barrier; 1 executes the
    /// windows inline (bit-identical results either way).
    workers: usize,
    /// Window sizing policy (trajectory-invariant; affects barrier count
    /// only).
    policy: WindowPolicy,
    /// Windows executed (drive-loop rounds ending in a barrier).
    windows_executed: u64,
    /// Cross-region events exchanged at barriers over the sim's lifetime.
    barrier_exchanges: u64,
    /// Whether the per-region routers have been (re)installed since the
    /// last membership change.
    sealed: bool,
    /// Trace hook with [`crate::Simulation::set_trace`] parity: invoked
    /// for every processed event, in deterministic barrier-merge order.
    trace: Option<TraceHook>,
    /// Reusable scratch for the per-barrier trace merge.
    trace_scratch: Vec<TraceRecord>,
    /// Barrier marks buffered while structured tracing is on.
    barriers: Vec<BarrierMark>,
    /// Whether structured tracing (and barrier marks) are enabled.
    etrace_enabled: bool,
}

/// One window-barrier mark from a regioned run's structured trace: when
/// the barrier completed (the global frontier) and how many cross-region
/// events it exchanged. Sequential runs have no barriers, so these live
/// beside the [`EngineEvent`] stream rather than in it — stripping them
/// recovers the engine-invariant trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarrierMark {
    /// Global frontier when the barrier completed.
    pub time: SimTime,
    /// Cross-region events exchanged at this barrier.
    pub exchanged: u64,
}

impl<E: 'static, S: Actor<E>> RegionSim<E, S> {
    /// Creates a regioned simulation with `regions` regions and the given
    /// cross-region lookahead, on the default heap queue profile.
    ///
    /// # Panics
    ///
    /// Panics if `regions == 0`, or if `lookahead` is zero — a route that
    /// can deliver instantly admits no safe window, so the configuration
    /// is rejected loudly at construction instead of deadlocking or
    /// reordering at run time. (Use [`RegionSim::isolated`] for partitions
    /// with no cross-region communication at all.)
    #[must_use]
    pub fn new(root_seed: u64, regions: usize, lookahead: SimDuration) -> Self {
        Self::with_profile(root_seed, regions, Some(lookahead), QueueProfile::Heap)
    }

    /// A partition whose regions never exchange events (e.g. one
    /// independent population shard per region): any cross-region
    /// scheduling call panics, and each run is a single window.
    #[must_use]
    pub fn isolated(root_seed: u64, regions: usize) -> Self {
        Self::with_profile(root_seed, regions, None, QueueProfile::Heap)
    }

    /// [`RegionSim::new`]/[`RegionSim::isolated`] with an explicit queue
    /// profile per region (`lookahead: None` means isolated). Mega-scale
    /// regions select [`QueueProfile::calendar`] here.
    ///
    /// # Panics
    ///
    /// Panics if `regions == 0` or `lookahead == Some(SimDuration::ZERO)`.
    #[must_use]
    pub fn with_profile(
        root_seed: u64,
        regions: usize,
        lookahead: Option<SimDuration>,
        profile: QueueProfile,
    ) -> Self {
        assert!(
            regions > 0,
            "a regioned simulation needs at least one region"
        );
        assert!(
            lookahead != Some(SimDuration::ZERO),
            "zero lookahead rejected: a cross-region route that can deliver \
             instantly admits no safe window (fix the partition, or add a \
             delay floor to the route)"
        );
        let locate = Arc::new(Vec::new());
        let regions = (0..regions)
            .map(|_| RegionState {
                core: Core {
                    now: SimTime::ZERO,
                    queue: EventQueue::with_profile(profile),
                    next_seq: 0,
                    stop_requested: false,
                    actor_count: 0,
                    router: None,
                    etrace: None,
                },
                actors: Vec::new(),
                global_ids: Vec::new(),
                rngs: Vec::new(),
                started: Vec::new(),
                starts_pending: false,
                events_processed: 0,
                locate: Arc::clone(&locate),
            })
            .collect();
        Self {
            regions,
            locate: Vec::new(),
            lookahead,
            root_seed,
            now: SimTime::ZERO,
            workers: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            policy: WindowPolicy::default(),
            windows_executed: 0,
            barrier_exchanges: 0,
            sealed: false,
            trace: None,
            trace_scratch: Vec::new(),
            barriers: Vec::new(),
            etrace_enabled: false,
        }
    }

    /// Installs a trace hook with [`crate::Simulation::set_trace`]
    /// parity: the hook observes every processed event exactly once.
    /// Regions buffer their records while a window runs and the hook is
    /// invoked at each barrier, merged in `(time, target)` order — a
    /// total order fixed by the trajectory, independent of worker
    /// scheduling. The `seq` field is the *region-local* sequence number
    /// (engine sequence numbering is per-region here); `time` and
    /// `target` match the sequential engine's records exactly.
    pub fn set_trace<F: FnMut(&TraceRecord) + 'static>(&mut self, hook: F) {
        for region in &mut self.regions {
            region.core.enable_raw_records();
        }
        self.trace = Some(Box::new(hook));
    }

    /// Switches the structured engine trace on for every region
    /// (idempotent) — the regioned mirror of
    /// [`crate::Simulation::enable_engine_trace`]. Window barriers are
    /// additionally recorded as [`BarrierMark`]s.
    pub fn enable_engine_trace(&mut self) {
        for region in &mut self.regions {
            region.core.enable_etrace();
        }
        self.etrace_enabled = true;
    }

    /// Drains the structured trace in canonical `(time, actor)` order —
    /// bit-identical to [`crate::Simulation::take_engine_trace`] on the
    /// same population and seed (each actor's trajectory is identical
    /// and lives in exactly one region, so the stable cross-region sort
    /// reconstructs the sequential stream exactly).
    pub fn take_engine_trace(&mut self) -> Vec<EngineEvent> {
        let mut events = Vec::new();
        for region in &mut self.regions {
            events.append(&mut region.core.take_etrace_events());
        }
        events.sort_by_key(|e| (e.time, e.actor));
        events
    }

    /// Drains the buffered [`BarrierMark`]s (one per window barrier
    /// executed while [`RegionSim::enable_engine_trace`] was on).
    pub fn take_barrier_marks(&mut self) -> Vec<BarrierMark> {
        std::mem::take(&mut self.barriers)
    }

    /// Caps the worker threads used per window (1 forces inline serial
    /// execution). Results are bit-identical at any setting; only wall
    /// time changes.
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = workers.max(1);
    }

    /// Selects the window sizing policy (default
    /// [`WindowPolicy::Adaptive`]). Trajectories are bit-identical under
    /// either; only the number of barriers changes.
    pub fn set_window_policy(&mut self, policy: WindowPolicy) {
        self.policy = policy;
    }

    /// The active window sizing policy.
    #[must_use]
    pub fn window_policy(&self) -> WindowPolicy {
        self.policy
    }

    /// The configured cross-region lookahead (`None` for an isolated
    /// partition).
    #[must_use]
    pub fn lookahead(&self) -> Option<SimDuration> {
        self.lookahead
    }

    /// Windows executed so far: one per drive-loop round (every region
    /// with work runs one window per round, then all regions barrier).
    #[must_use]
    pub fn windows_executed(&self) -> u64 {
        self.windows_executed
    }

    /// Cross-region events exchanged at barriers so far.
    #[must_use]
    pub fn barrier_exchanges(&self) -> u64 {
        self.barrier_exchanges
    }

    /// Mean events processed per window (0 before the first window) —
    /// the figure of merit for window sizing: higher means less barrier
    /// overhead per unit of work.
    #[must_use]
    pub fn events_per_window(&self) -> f64 {
        if self.windows_executed == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            self.events_processed() as f64 / self.windows_executed as f64
        }
    }

    /// The number of regions.
    #[must_use]
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// Registers `member` in `region`, returning its globally numbered id.
    /// Global ids (and therefore RNG streams) are assigned in call order,
    /// independent of the region — assembling the same population in the
    /// same order into a sequential [`Simulation`] yields the same
    /// actor-id layout and the same random streams.
    ///
    /// # Panics
    ///
    /// Panics if `region` is out of range.
    pub fn add_member(&mut self, region: usize, member: S) -> ActorId {
        assert!(region < self.regions.len(), "unknown region {region}");
        let global = self.locate.len();
        let slot = self.regions[region].actors.len();
        self.locate
            .push((u32::try_from(region).expect("region fits u32"), {
                u32::try_from(slot).expect("slot fits u32")
            }));
        let state = &mut self.regions[region];
        state.actors.push(member);
        state.global_ids.push(global);
        state
            .rngs
            .push(StreamRng::new(self.root_seed, global as u64));
        state.started.push(false);
        state.starts_pending = true;
        self.sealed = false;
        ActorId(global)
    }

    /// Current virtual time: the last completed barrier (or the end passed
    /// to [`RegionSim::run_until`]).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events processed across all regions. With identical
    /// trajectories this equals the sequential engine's count exactly:
    /// every event is minted once and fired once, on whichever side of a
    /// barrier it lands.
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.regions.iter().map(|r| r.events_processed).sum()
    }

    /// Events processed by one region alone (fan-out observability for
    /// isolated shard-per-region runs).
    ///
    /// # Panics
    ///
    /// Panics if `region` is out of range.
    #[must_use]
    pub fn region_events_processed(&self, region: usize) -> u64 {
        self.regions[region].events_processed
    }

    /// Number of registered actors (across all regions).
    #[must_use]
    pub fn actor_count(&self) -> usize {
        self.locate.len()
    }

    /// Immutable access to an actor by its global id, projected to its
    /// concrete type (the regioned mirror of [`crate::Simulation::actor`]).
    #[must_use]
    pub fn actor<A>(&self, id: ActorId) -> Option<&A>
    where
        S: crate::engine::ProjectActor<A>,
    {
        let &(region, slot) = self.locate.get(id.0)?;
        self.regions[region as usize].actors[slot as usize].project()
    }

    /// Mutable access to an actor by its global id.
    #[must_use]
    pub fn actor_mut<A>(&mut self, id: ActorId) -> Option<&mut A>
    where
        S: crate::engine::ProjectActor<A>,
    {
        let &(region, slot) = self.locate.get(id.0)?;
        self.regions[region as usize].actors[slot as usize].project_mut()
    }

    /// Schedules an external stimulus for `target` (any region) at `at`.
    ///
    /// # Panics
    ///
    /// Panics if the target is unknown or `at` is in the past.
    pub fn schedule_at(&mut self, at: SimTime, target: ActorId, payload: E) {
        let &(region, _) = self.locate.get(target.0).expect("unknown actor");
        let state = &mut self.regions[region as usize];
        // Bypass the router (external injection is not a cross-region
        // event minted by an actor): push straight into the owning queue.
        let seq = state.core.next_seq;
        state.core.next_seq += 1;
        assert!(at >= state.core.now, "cannot schedule into the past");
        state.core.queue.push(at, seq, (Dest::One(target), payload));
    }

    /// (Re)installs the routers after membership changes: every region
    /// learns the global actor count and the shared global→region map.
    fn seal(&mut self) {
        if self.sealed {
            return;
        }
        let region_of: Arc<[u32]> = self.locate.iter().map(|&(r, _)| r).collect();
        let locate = Arc::new(self.locate.clone());
        let total = self.locate.len();
        let count = self.regions.len();
        for (index, state) in self.regions.iter_mut().enumerate() {
            state.core.actor_count = total;
            state.locate = Arc::clone(&locate);
            let sentinel = state
                .core
                .router
                .as_ref()
                .map_or(u64::MAX, |r| r.sentinel_seq);
            state.core.router = Some(RegionRouter {
                region_of: Arc::clone(&region_of),
                my_region: u32::try_from(index).expect("region fits u32"),
                window_ends: vec![SimTime::MAX; count],
                lookahead: self.lookahead.unwrap_or(SimDuration::ZERO),
                sentinel_seq: sentinel,
                outbox: Vec::new(),
            });
        }
        self.sealed = true;
    }
}

impl<E: Clone + Send + 'static, S: Actor<E> + Send> RegionSim<E, S> {
    /// Runs until the virtual clock reaches `end` (processing every event
    /// with `time ≤ end`), the queues drain, or an actor stops the run.
    /// On [`RunOutcome::ReachedTime`] the clock is left exactly at `end`
    /// (mirroring [`crate::Simulation::run_until`]).
    pub fn run_until(&mut self, end: SimTime) -> RunOutcome {
        let outcome = self.drive(Some(end));
        if outcome != RunOutcome::Stopped {
            self.now = self.now.max(end);
            for region in &mut self.regions {
                region.core.now = region.core.now.max(end);
            }
        }
        outcome
    }

    /// Runs until every region's queue is empty (and no cross-region
    /// events remain in flight) or an actor stops the run.
    pub fn run_until_idle(&mut self) -> RunOutcome {
        self.drive(None)
    }

    /// The window loop. `end` bounds the run (inclusive, like
    /// [`crate::Simulation::run_until`]); `None` runs to global idle.
    fn drive(&mut self, end: Option<SimTime>) -> RunOutcome {
        self.seal();
        // Exclusive horizon: `end` is inclusive and the clock is integer
        // nanoseconds, so the half-open window machinery uses `end + 1ns`.
        let horizon = end.map_or(SimTime::MAX, |e| {
            e.checked_add(SimDuration::from_nanos(1))
                .unwrap_or(SimTime::MAX)
        });
        let mut ends: Vec<SimTime> = Vec::with_capacity(self.regions.len());
        loop {
            if self.take_stop_request() {
                return RunOutcome::Stopped;
            }
            let activity: Vec<Option<SimTime>> = self
                .regions
                .iter()
                .map(RegionState::next_activity)
                .collect();
            let Some(t_min) = activity.iter().flatten().copied().min() else {
                // Queues drained and no starts pending; outboxes are
                // always empty at the top of the loop (drained at every
                // barrier), so the simulation is globally idle.
                return RunOutcome::Idle;
            };
            if let Some(end) = end {
                if t_min > end {
                    return RunOutcome::ReachedTime;
                }
            }
            self.window_ends(t_min, horizon, &activity, &mut ends);
            // Every router learns the full per-region frontier: a minting
            // region checks cross events against the *target's* end.
            for state in &mut self.regions {
                let router = state.core.router.as_mut().expect("sealed run has routers");
                router.window_ends.clear();
                router.window_ends.extend_from_slice(&ends);
            }
            self.run_windows(&ends);
            self.windows_executed += 1;
            self.flush_trace();
            if self.take_stop_request() {
                return RunOutcome::Stopped;
            }
            // The global frontier is the smallest window end: everything
            // before it has executed in every region.
            let frontier = ends.iter().copied().min().unwrap_or(horizon);
            self.now = self.now.max(frontier.min(end.unwrap_or(SimTime::MAX)));
            let before = self.barrier_exchanges;
            self.merge_outboxes();
            if self.etrace_enabled {
                self.barriers.push(BarrierMark {
                    time: self.now,
                    exchanged: self.barrier_exchanges - before,
                });
            }
        }
    }

    /// Delivers every record buffered during the last round of windows to
    /// the trace hook, merged in `(time, target)` order (see
    /// [`RegionSim::set_trace`]).
    fn flush_trace(&mut self) {
        let Some(hook) = self.trace.as_mut() else {
            return;
        };
        let records = &mut self.trace_scratch;
        for region in &mut self.regions {
            region.core.drain_raw_records_into(records);
        }
        records.sort_by_key(|r| (r.time, r.target));
        for record in records.iter() {
            hook(record);
        }
        records.clear();
    }

    /// Computes each region's window end for the next round (see the
    /// [module docs](self)): the classic conservative `t_min + lookahead`
    /// under [`WindowPolicy::Static`]; under [`WindowPolicy::Adaptive`]
    /// the unique `t_min` holder widens to `m2 + lookahead` — nothing can
    /// reach it earlier unless its own outbound traffic circles back,
    /// which the router's dynamic cut bounds at run time. All ends are
    /// clamped to the run horizon; an isolated partition always runs
    /// straight to the horizon.
    fn window_ends(
        &self,
        t_min: SimTime,
        horizon: SimTime,
        activity: &[Option<SimTime>],
        ends: &mut Vec<SimTime>,
    ) {
        ends.clear();
        let count = self.regions.len();
        let Some(lookahead) = self.lookahead else {
            ends.resize(count, horizon);
            return;
        };
        let static_end = t_min.checked_add(lookahead).unwrap_or(SimTime::MAX);
        if self.policy == WindowPolicy::Static {
            ends.resize(count, static_end.min(horizon));
            return;
        }
        if count == 1 {
            // Degenerate single region: no cross-region events can exist,
            // so the whole run is one window.
            ends.push(horizon);
            return;
        }
        let minimal = activity
            .iter()
            .filter(|h| **h == Some(t_min))
            .take(2)
            .count();
        ends.extend((0..count).map(|target| {
            if minimal != 1 || activity[target] != Some(t_min) {
                // Tied minima, or not the frontier region: another region
                // can mint a direct arrival at t_min + lookahead.
                return static_end.min(horizon);
            }
            // The unique frontier region leaps to the others' earliest
            // possible direct mint; its own cross mints cut the window
            // further at run time (see `RegionRouter::window_ends`).
            let direct = activity
                .iter()
                .enumerate()
                .filter(|&(source, _)| source != target)
                .filter_map(|(_, h)| *h)
                .min()
                .map_or(SimTime::MAX, |m2| {
                    m2.checked_add(lookahead).unwrap_or(SimTime::MAX)
                });
            static_end.max(direct).min(horizon)
        }));
    }

    /// Clears and reports any region's stop request (stop is
    /// barrier-granular: the whole run halts at the end of the window in
    /// which any actor called [`crate::Context::stop`]).
    fn take_stop_request(&mut self) -> bool {
        let mut stopped = false;
        for region in &mut self.regions {
            stopped |= region.core.stop_requested;
            region.core.stop_requested = false;
        }
        stopped
    }

    /// Executes one window on every region that has work, in parallel when
    /// more than one worker is configured. Regions are mutually disjoint,
    /// so the windows are data-race-free by construction; results do not
    /// depend on the worker count.
    fn run_windows(&mut self, ends: &[SimTime]) {
        let mut active: Vec<(&mut RegionState<E, S>, SimTime)> = self
            .regions
            .iter_mut()
            .zip(ends.iter().copied())
            .filter(|(r, end)| r.next_activity().is_some_and(|t| t < *end))
            .collect();
        if self.workers <= 1 || active.len() <= 1 {
            for (region, end) in active {
                region.run_window(end);
            }
            return;
        }
        std::thread::scope(|scope| {
            for (region, end) in active.drain(..) {
                scope.spawn(move || region.run_window(end));
            }
        });
    }

    /// The barrier merge: drains every region's outbox and admits the
    /// events into their target regions in `(mint_time, source_region,
    /// source_order)` order — a total order fixed by the simulation's own
    /// trajectory, independent of thread scheduling.
    fn merge_outboxes(&mut self) {
        let mut moves = Vec::new();
        for (source, region) in self.regions.iter_mut().enumerate() {
            let router = region.core.router.as_mut().expect("sealed run has routers");
            for (order, outbound) in router.outbox.drain(..).enumerate() {
                moves.push((outbound.mint_time, source, order, outbound));
            }
        }
        if moves.is_empty() {
            return;
        }
        self.barrier_exchanges += moves.len() as u64;
        moves.sort_by_key(|m| (m.0, m.1, m.2));
        for (_, _, _, outbound) in moves {
            let (region, _) = self.locate[outbound.target.0];
            let state = &mut self.regions[region as usize];
            let seq = state.core.next_seq;
            state.core.next_seq += 1;
            debug_assert!(
                outbound.time >= state.core.now,
                "barrier admitted an event into the past: lookahead violation"
            );
            state.core.queue.push(
                outbound.time,
                seq,
                (Dest::One(outbound.target), outbound.payload),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{ProjectActor, Simulation};

    type Ev = u32;

    /// Ping-pong chain: forwards each event to `peer` after `delay`,
    /// logging everything it receives, with one RNG draw per event so
    /// stream alignment is also under test.
    struct Relay {
        peer: ActorId,
        delay: SimDuration,
        limit: u32,
        log: Vec<(SimTime, Ev, u64)>,
    }

    impl Actor<Ev> for Relay {
        fn on_start(&mut self, ctx: &mut Context<'_, Ev>) {
            if self.limit > 0 {
                ctx.schedule_in(self.delay, self.peer, 0);
            }
        }
        fn on_event(&mut self, ctx: &mut Context<'_, Ev>, ev: Ev) {
            let draw = ctx.rng().next_u64();
            self.log.push((ctx.now(), ev, draw));
            if ev < self.limit {
                let peer = self.peer;
                let delay = self.delay;
                ctx.schedule_in(delay, peer, ev + 1);
            }
        }
    }

    impl ProjectActor<Relay> for Relay {
        fn project(&self) -> Option<&Relay> {
            Some(self)
        }
        fn project_mut(&mut self) -> Option<&mut Relay> {
            Some(self)
        }
    }

    /// A regioned simulation whose member type is the relay itself.
    type RelayRegionSim = RegionSim<Ev, Relay>;
    type RelaySim = Simulation<Ev, Relay>;

    fn relay(peer: usize, delay_nanos: u64, limit: u32) -> Relay {
        Relay {
            peer: ActorId(peer),
            delay: SimDuration::from_nanos(delay_nanos),
            limit,
            log: Vec::new(),
        }
    }

    const LOOKAHEAD: SimDuration = SimDuration::from_micros(10);

    /// Builds the same two-relay population sequentially and regioned
    /// (one relay per region) and asserts bit-identical logs and counts.
    fn assert_matches_sequential(delay_a: u64, delay_b: u64, limit: u32, end_secs: f64) {
        let end = SimTime::from_secs_f64(end_secs);

        let mut seq: RelaySim = Simulation::with_actor_set(0xabcd);
        let a_seq = seq.add_member(relay(1, delay_a, limit));
        let b_seq = seq.add_member(relay(0, delay_b, limit));
        seq.run_until(end);

        let mut reg: RelayRegionSim = RegionSim::new(0xabcd, 2, LOOKAHEAD);
        let a_reg = reg.add_member(0, relay(1, delay_a, limit));
        let b_reg = reg.add_member(1, relay(0, delay_b, limit));
        assert_eq!((a_seq, b_seq), (a_reg, b_reg), "global id layout matches");
        reg.run_until(end);

        for (s, r) in [(a_seq, a_reg), (b_seq, b_reg)] {
            assert_eq!(
                seq.actor::<Relay>(s).unwrap().log,
                reg.actor::<Relay>(r).unwrap().log,
                "per-actor trajectories must be bit-identical"
            );
        }
        assert_eq!(seq.events_processed(), reg.events_processed());
        assert_eq!(seq.now(), reg.now());
    }

    #[test]
    fn cross_region_ping_pong_matches_sequential() {
        // Delays comfortably above the lookahead, and distinct so no
        // cross-region (time, target) ties can occur.
        assert_matches_sequential(25_000, 35_000, 40, 0.01);
    }

    #[test]
    fn delay_exactly_at_lookahead_window_boundary() {
        // Every event lands exactly on a window boundary (delay ==
        // lookahead): the boundary belongs to the *next* window, and each
        // event must fire exactly once.
        assert_matches_sequential(10_000, 10_000, 25, 0.01);
    }

    #[test]
    fn idle_region_mid_window_catches_up() {
        // Region 1's relay stops forwarding after 3 hops while region 0
        // keeps a private timer chain running: one region goes idle
        // mid-run and must neither stall the other nor corrupt the clock.
        let end = SimTime::from_secs_f64(0.005);

        let mut seq: RelaySim = Simulation::with_actor_set(7);
        let a = seq.add_member(relay(0, 20_000, 100)); // self-loop, region 0
        let b = seq.add_member(relay(1, 30_000, 3)); // self-loop, dies early
        seq.run_until(end);

        let mut reg: RelayRegionSim = RegionSim::new(7, 2, LOOKAHEAD);
        let ra = reg.add_member(0, relay(0, 20_000, 100));
        let rb = reg.add_member(1, relay(1, 30_000, 3));
        reg.run_until(end);

        assert_eq!(
            seq.actor::<Relay>(a).unwrap().log,
            reg.actor::<Relay>(ra).unwrap().log
        );
        assert_eq!(
            seq.actor::<Relay>(b).unwrap().log,
            reg.actor::<Relay>(rb).unwrap().log
        );
        assert_eq!(seq.events_processed(), reg.events_processed());
    }

    #[test]
    fn serial_and_threaded_execution_are_bit_identical() {
        let run = |workers: usize| {
            let mut reg: RelayRegionSim = RegionSim::new(99, 4, LOOKAHEAD);
            let ids: Vec<ActorId> = (0..4)
                .map(|r| reg.add_member(r, relay((r + 1) % 4, 15_000 + r as u64, 60)))
                .collect();
            reg.set_workers(workers);
            reg.run_until(SimTime::from_secs_f64(0.01));
            let logs: Vec<_> = ids
                .iter()
                .map(|&id| reg.actor::<Relay>(id).unwrap().log.clone())
                .collect();
            (logs, reg.events_processed())
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn run_until_idle_drains_everything() {
        let mut reg: RelayRegionSim = RegionSim::new(3, 2, LOOKAHEAD);
        let a = reg.add_member(0, relay(1, 12_000, 10));
        let _b = reg.add_member(1, relay(0, 13_000, 10));
        assert_eq!(reg.run_until_idle(), RunOutcome::Idle);
        // 2 starts mint one event each; the chain then runs to the limit.
        assert!(reg.actor::<Relay>(a).unwrap().log.len() >= 5);
        assert!(reg.events_processed() > 0);
    }

    #[test]
    #[should_panic(expected = "zero lookahead rejected")]
    fn zero_lookahead_is_rejected_at_construction() {
        let _: RelayRegionSim = RegionSim::new(1, 2, SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "lands inside the current window")]
    fn lookahead_violation_panics_loudly() {
        // Declared lookahead 10 µs, but the cross-region delay is 1 µs:
        // the very first cross send must be rejected, not reordered.
        let mut reg: RelayRegionSim = RegionSim::new(5, 2, LOOKAHEAD);
        reg.add_member(0, relay(1, 1_000, 10));
        reg.add_member(1, relay(0, 1_000, 10));
        reg.run_until(SimTime::from_secs_f64(0.001));
    }

    #[test]
    #[should_panic(expected = "lands inside the current window")]
    fn isolated_partition_rejects_any_cross_send() {
        let mut reg: RelayRegionSim = RegionSim::isolated(5, 2);
        reg.add_member(0, relay(1, 1_000_000, 10));
        reg.add_member(1, relay(0, 1_000_000, 10));
        reg.run_until(SimTime::from_secs_f64(1.0));
    }

    #[test]
    fn isolated_regions_match_sequential() {
        // Two self-contained timer chains, one per region: an isolated
        // partition runs them in a single window each and still matches
        // the sequential engine exactly.
        let end = SimTime::from_secs_f64(0.01);
        let mut seq: RelaySim = Simulation::with_actor_set(11);
        let a = seq.add_member(relay(0, 21_000, 50));
        let b = seq.add_member(relay(1, 17_000, 50));
        seq.run_until(end);

        let mut reg: RelayRegionSim = RegionSim::isolated(11, 2);
        let ra = reg.add_member(0, relay(0, 21_000, 50));
        let rb = reg.add_member(1, relay(1, 17_000, 50));
        reg.run_until(end);

        assert_eq!(
            seq.actor::<Relay>(a).unwrap().log,
            reg.actor::<Relay>(ra).unwrap().log
        );
        assert_eq!(
            seq.actor::<Relay>(b).unwrap().log,
            reg.actor::<Relay>(rb).unwrap().log
        );
        assert_eq!(seq.events_processed(), reg.events_processed());
    }

    #[test]
    fn adaptive_matches_static_with_fewer_windows() {
        // Sparse cross traffic: two relays ping-ponging with delays far
        // above the lookahead. Static pays a barrier every 10 µs of busy
        // time; adaptive jumps straight to the next activity.
        let end = SimTime::from_secs_f64(0.01);
        let run = |policy: WindowPolicy| {
            let mut reg: RelayRegionSim = RegionSim::new(0xfeed, 2, LOOKAHEAD);
            reg.set_window_policy(policy);
            let a = reg.add_member(0, relay(1, 250_000, 30));
            let b = reg.add_member(1, relay(0, 330_000, 30));
            reg.run_until(end);
            let logs = (
                reg.actor::<Relay>(a).unwrap().log.clone(),
                reg.actor::<Relay>(b).unwrap().log.clone(),
            );
            (logs, reg.events_processed(), reg.windows_executed())
        };
        let (adaptive_logs, adaptive_events, adaptive_windows) = run(WindowPolicy::Adaptive);
        let (static_logs, static_events, static_windows) = run(WindowPolicy::Static);
        assert_eq!(adaptive_logs, static_logs, "trajectory must not change");
        assert_eq!(adaptive_events, static_events);
        assert!(
            adaptive_windows < static_windows,
            "sparse traffic must need fewer adaptive windows \
             ({adaptive_windows} vs {static_windows})"
        );
    }

    #[test]
    fn adaptive_counts_windows_and_barrier_exchanges() {
        let mut reg: RelayRegionSim = RegionSim::new(21, 2, LOOKAHEAD);
        let a = reg.add_member(0, relay(1, 50_000, 9));
        let _b = reg.add_member(1, relay(0, 50_000, 9));
        reg.run_until_idle();
        assert!(reg.windows_executed() > 0);
        // Every forwarded token crosses the cut: 2 start tokens + 10
        // forwards (hops 0..=9 fire on each side, minting until the limit).
        assert!(reg.barrier_exchanges() > 0);
        assert!(reg.events_per_window() > 0.0);
        let _ = reg.actor::<Relay>(a);
    }

    #[test]
    #[should_panic(expected = "lands inside the current window")]
    fn adaptive_keeps_the_violation_panic() {
        let mut reg: RelayRegionSim = RegionSim::new(5, 2, LOOKAHEAD);
        reg.set_window_policy(WindowPolicy::Adaptive);
        reg.add_member(0, relay(1, 1_000, 10));
        reg.add_member(1, relay(0, 1_000, 10));
        reg.run_until(SimTime::from_secs_f64(0.001));
    }

    /// The canonical structured trace is engine-invariant: the regioned
    /// run (any worker count) reproduces the sequential stream exactly,
    /// and its barrier marks strip away cleanly.
    #[test]
    fn engine_trace_is_bit_identical_to_sequential() {
        let end = SimTime::from_secs_f64(0.01);
        let mut seq: RelaySim = Simulation::with_actor_set(0xabcd);
        seq.enable_engine_trace();
        seq.add_member(relay(1, 25_000, 40));
        seq.add_member(relay(0, 35_000, 40));
        seq.run_until(end);
        let sequential = seq.take_engine_trace();
        assert!(!sequential.is_empty());

        for workers in [1, 4] {
            let mut reg: RelayRegionSim = RegionSim::new(0xabcd, 2, LOOKAHEAD);
            reg.enable_engine_trace();
            reg.add_member(0, relay(1, 25_000, 40));
            reg.add_member(1, relay(0, 35_000, 40));
            reg.set_workers(workers);
            reg.run_until(end);
            assert_eq!(
                reg.take_engine_trace(),
                sequential,
                "workers={workers}: canonical trace must match sequential"
            );
            let marks = reg.take_barrier_marks();
            assert!(!marks.is_empty(), "regioned run records barrier marks");
            assert!(marks.windows(2).all(|w| w[0].time <= w[1].time));
        }
    }

    /// `set_trace` parity: the regioned hook observes every processed
    /// event exactly once, in a worker-count-independent order.
    #[test]
    fn set_trace_hook_sees_every_event_deterministically() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let run = |workers: usize| {
            let mut reg: RelayRegionSim = RegionSim::new(9, 2, LOOKAHEAD);
            reg.add_member(0, relay(1, 25_000, 20));
            reg.add_member(1, relay(0, 35_000, 20));
            let log = Rc::new(RefCell::new(Vec::new()));
            let log2 = Rc::clone(&log);
            reg.set_trace(move |rec| log2.borrow_mut().push((rec.time, rec.target)));
            reg.set_workers(workers);
            reg.run_until(SimTime::from_secs_f64(0.01));
            let records = log.borrow().clone();
            assert_eq!(records.len() as u64, reg.events_processed());
            records
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn external_stimuli_and_single_region_degenerate() {
        // One region is the sequential engine with extra bookkeeping:
        // inject external events and compare.
        let end = SimTime::from_secs_f64(0.01);
        let mut seq: RelaySim = Simulation::with_actor_set(13);
        let a = seq.add_member(relay(0, 40_000, 5));
        seq.schedule_at(SimTime::from_nanos(500), a, 100);
        seq.run_until(end);

        let mut reg: RelayRegionSim = RegionSim::new(13, 1, LOOKAHEAD);
        let ra = reg.add_member(0, relay(0, 40_000, 5));
        reg.schedule_at(SimTime::from_nanos(500), ra, 100);
        reg.run_until(end);

        assert_eq!(
            seq.actor::<Relay>(a).unwrap().log,
            reg.actor::<Relay>(ra).unwrap().log
        );
        assert_eq!(seq.events_processed(), reg.events_processed());
    }
}
