//! Conservative time-windowed parallel simulation: one run, many regions.
//!
//! A [`RegionSim`] partitions one simulation's actors into *regions*, each
//! owning its own event queue (reusing [`QueueProfile`]) and advancing
//! independently inside a safe window `[t, t + lookahead)`. Events whose
//! target lives in another region are parked in the minting region's
//! outbox and exchanged at the window barrier, where a deterministic merge
//! admits them in `(mint_time, source_region, source_order)` order —
//! thread-schedule-independent by construction, so a run is a pure
//! function of its seed and partition, never of worker timing.
//!
//! # The lookahead contract
//!
//! The engine is *conservative*: region R may execute its window only if
//! every event that will ever arrive in that window is already queued.
//! That holds when every cross-region scheduling delay is at least the
//! declared `lookahead` (in the presence stack, the fabric's
//! [`DelayModel::min_delay`] bound; see `presence_net`). The engine does
//! not trust the declaration: a cross-region event landing inside the
//! current window **panics** at the scheduling call — the violation is
//! loud and attributed, never a silent reorder or a deadlock. A zero
//! lookahead is rejected at construction for the same reason.
//!
//! # Bit-identity with the sequential engine
//!
//! Each actor keeps the [`StreamRng`] stream of its *global* index —
//! identical to the same population in a sequential [`Simulation`] — and
//! regions preserve local FIFO mint order, so a regioned run reproduces
//! the sequential run event-for-event provided no two events minted in
//! *different* regions tie at the same `(time, target)` instant (ties
//! wholly within one region keep their FIFO order exactly). Continuous or
//! positive-gap cross-region delays satisfy this; the region-model
//! proptest in `tests/region_model.rs` pins the equivalence over random
//! partitions, topologies, and seeds, at every worker count.
//!
//! [`DelayModel::min_delay`]: trait method in `presence-net`

use crate::engine::{Actor, ActorId, Context, Core, Dest, RegionRouter, RunOutcome};
use crate::queue::{EventQueue, QueueProfile};
use crate::rng::StreamRng;
use crate::time::{SimDuration, SimTime};
use std::sync::Arc;

/// One region's private slice of the simulation: its actors, their RNG
/// streams, and a scheduler core with its own event queue and outbox.
struct RegionState<E: 'static, S: Actor<E>> {
    core: Core<E>,
    actors: Vec<S>,
    /// Slot → global actor index (RNG streams and `ActorId`s are global).
    global_ids: Vec<usize>,
    rngs: Vec<StreamRng>,
    started: Vec<bool>,
    /// Whether any actor in this region still awaits `on_start`.
    starts_pending: bool,
    events_processed: u64,
    /// Global actor index → (region, slot), shared by every region so
    /// batch dispatch can resolve targets locally.
    locate: Arc<Vec<(u32, u32)>>,
}

impl<E: 'static, S: Actor<E>> RegionState<E, S> {
    /// The earliest instant at which this region could possibly act: its
    /// next queued event, or the current clock if starts are pending.
    fn next_activity(&self) -> Option<SimTime> {
        if self.starts_pending {
            return Some(self.core.now);
        }
        self.core.queue.peek().map(|k| k.time)
    }

    fn dispatch(&mut self, slot: usize, payload: Option<E>) {
        let mut pending: Vec<S> = Vec::new();
        {
            let actor = &mut self.actors[slot];
            let mut ctx = Context {
                core: &mut self.core,
                rng: &mut self.rngs[slot],
                pending_spawns: &mut pending,
                me: ActorId(self.global_ids[slot]),
            };
            match payload {
                Some(ev) => actor.on_event(&mut ctx, ev),
                None => actor.on_start(&mut ctx),
            }
        }
        assert!(
            pending.is_empty(),
            "mid-run actor spawn is not supported in a regioned simulation \
             (the global actor table is fixed at run start)"
        );
    }

    fn flush_starts(&mut self) {
        if !self.starts_pending {
            return;
        }
        for slot in 0..self.actors.len() {
            if !self.started[slot] {
                self.started[slot] = true;
                self.dispatch(slot, None);
            }
        }
        self.starts_pending = false;
    }
}

impl<E: Clone + 'static, S: Actor<E>> RegionState<E, S> {
    /// Advances this region through one window: runs `on_start` backlog,
    /// then fires every queued event strictly before `window_end`. A
    /// region whose queue empties (or never had events this window) simply
    /// returns — going idle mid-window is the normal case, not an error.
    fn run_window(&mut self, window_end: SimTime) {
        if let Some(router) = self.core.router.as_mut() {
            router.window_end = window_end;
        }
        self.flush_starts();
        loop {
            match self.core.queue.peek() {
                Some(key) if key.time < window_end => {}
                _ => return,
            }
            if self.core.stop_requested {
                return;
            }
            let (key, (dest, payload)) = self.core.queue.pop().expect("peeked event pops");
            debug_assert!(key.time >= self.core.now, "region queue went backwards");
            self.core.now = key.time;
            self.events_processed += 1;
            match dest {
                Dest::One(target) => {
                    let (_, slot) = self.locate[target.0];
                    self.dispatch(slot as usize, Some(payload));
                }
                Dest::Batch(targets) => {
                    let (&last, rest) = targets.split_last().expect("batch is never empty");
                    for &target in rest {
                        let (_, slot) = self.locate[target.0];
                        self.dispatch(slot as usize, Some(payload.clone()));
                    }
                    let (_, slot) = self.locate[last.0];
                    self.dispatch(slot as usize, Some(payload));
                }
            }
        }
    }
}

/// A conservative time-windowed parallel simulation over actor storage `S`
/// (see the [module docs](self) for the protocol and its guarantees).
///
/// Construction mirrors [`Simulation`]: actors join via
/// [`RegionSim::add_member`] with an explicit region, receiving globally
/// numbered [`ActorId`]s (and therefore the same RNG streams the
/// sequential engine would hand them). Unlike `Simulation` there is no
/// dynamic-storage default: a parallel run hands regions to worker
/// threads, so the member type must be `Send` (typed actor-set enums are;
/// the `Rc`-friendly [`crate::DynActorSet`] is not).
///
/// [`Simulation`]: crate::Simulation
pub struct RegionSim<E: 'static, S: Actor<E>> {
    regions: Vec<RegionState<E, S>>,
    /// Global actor index → (region, slot).
    locate: Vec<(u32, u32)>,
    /// `None` means the partition is *isolated*: no cross-region events
    /// are permitted at all (infinite lookahead — one window per run).
    lookahead: Option<SimDuration>,
    root_seed: u64,
    now: SimTime,
    /// Upper bound on worker threads per window barrier; 1 executes the
    /// windows inline (bit-identical results either way).
    workers: usize,
    /// Whether the per-region routers have been (re)installed since the
    /// last membership change.
    sealed: bool,
}

impl<E: 'static, S: Actor<E>> RegionSim<E, S> {
    /// Creates a regioned simulation with `regions` regions and the given
    /// cross-region lookahead, on the default heap queue profile.
    ///
    /// # Panics
    ///
    /// Panics if `regions == 0`, or if `lookahead` is zero — a route that
    /// can deliver instantly admits no safe window, so the configuration
    /// is rejected loudly at construction instead of deadlocking or
    /// reordering at run time. (Use [`RegionSim::isolated`] for partitions
    /// with no cross-region communication at all.)
    #[must_use]
    pub fn new(root_seed: u64, regions: usize, lookahead: SimDuration) -> Self {
        Self::with_profile(root_seed, regions, Some(lookahead), QueueProfile::Heap)
    }

    /// A partition whose regions never exchange events (e.g. one
    /// independent population shard per region): any cross-region
    /// scheduling call panics, and each run is a single window.
    #[must_use]
    pub fn isolated(root_seed: u64, regions: usize) -> Self {
        Self::with_profile(root_seed, regions, None, QueueProfile::Heap)
    }

    /// [`RegionSim::new`]/[`RegionSim::isolated`] with an explicit queue
    /// profile per region (`lookahead: None` means isolated). Mega-scale
    /// regions select [`QueueProfile::calendar`] here.
    ///
    /// # Panics
    ///
    /// Panics if `regions == 0` or `lookahead == Some(SimDuration::ZERO)`.
    #[must_use]
    pub fn with_profile(
        root_seed: u64,
        regions: usize,
        lookahead: Option<SimDuration>,
        profile: QueueProfile,
    ) -> Self {
        assert!(
            regions > 0,
            "a regioned simulation needs at least one region"
        );
        assert!(
            lookahead != Some(SimDuration::ZERO),
            "zero lookahead rejected: a cross-region route that can deliver \
             instantly admits no safe window (fix the partition, or add a \
             delay floor to the route)"
        );
        let locate = Arc::new(Vec::new());
        let regions = (0..regions)
            .map(|_| RegionState {
                core: Core {
                    now: SimTime::ZERO,
                    queue: EventQueue::with_profile(profile),
                    next_seq: 0,
                    stop_requested: false,
                    actor_count: 0,
                    router: None,
                },
                actors: Vec::new(),
                global_ids: Vec::new(),
                rngs: Vec::new(),
                started: Vec::new(),
                starts_pending: false,
                events_processed: 0,
                locate: Arc::clone(&locate),
            })
            .collect();
        Self {
            regions,
            locate: Vec::new(),
            lookahead,
            root_seed,
            now: SimTime::ZERO,
            workers: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            sealed: false,
        }
    }

    /// Caps the worker threads used per window (1 forces inline serial
    /// execution). Results are bit-identical at any setting; only wall
    /// time changes.
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = workers.max(1);
    }

    /// The configured cross-region lookahead (`None` for an isolated
    /// partition).
    #[must_use]
    pub fn lookahead(&self) -> Option<SimDuration> {
        self.lookahead
    }

    /// The number of regions.
    #[must_use]
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// Registers `member` in `region`, returning its globally numbered id.
    /// Global ids (and therefore RNG streams) are assigned in call order,
    /// independent of the region — assembling the same population in the
    /// same order into a sequential [`Simulation`] yields the same
    /// actor-id layout and the same random streams.
    ///
    /// # Panics
    ///
    /// Panics if `region` is out of range.
    pub fn add_member(&mut self, region: usize, member: S) -> ActorId {
        assert!(region < self.regions.len(), "unknown region {region}");
        let global = self.locate.len();
        let slot = self.regions[region].actors.len();
        self.locate
            .push((u32::try_from(region).expect("region fits u32"), {
                u32::try_from(slot).expect("slot fits u32")
            }));
        let state = &mut self.regions[region];
        state.actors.push(member);
        state.global_ids.push(global);
        state
            .rngs
            .push(StreamRng::new(self.root_seed, global as u64));
        state.started.push(false);
        state.starts_pending = true;
        self.sealed = false;
        ActorId(global)
    }

    /// Current virtual time: the last completed barrier (or the end passed
    /// to [`RegionSim::run_until`]).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events processed across all regions. With identical
    /// trajectories this equals the sequential engine's count exactly:
    /// every event is minted once and fired once, on whichever side of a
    /// barrier it lands.
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.regions.iter().map(|r| r.events_processed).sum()
    }

    /// Events processed by one region alone (fan-out observability for
    /// isolated shard-per-region runs).
    ///
    /// # Panics
    ///
    /// Panics if `region` is out of range.
    #[must_use]
    pub fn region_events_processed(&self, region: usize) -> u64 {
        self.regions[region].events_processed
    }

    /// Number of registered actors (across all regions).
    #[must_use]
    pub fn actor_count(&self) -> usize {
        self.locate.len()
    }

    /// Immutable access to an actor by its global id, projected to its
    /// concrete type (the regioned mirror of [`crate::Simulation::actor`]).
    #[must_use]
    pub fn actor<A>(&self, id: ActorId) -> Option<&A>
    where
        S: crate::engine::ProjectActor<A>,
    {
        let &(region, slot) = self.locate.get(id.0)?;
        self.regions[region as usize].actors[slot as usize].project()
    }

    /// Mutable access to an actor by its global id.
    #[must_use]
    pub fn actor_mut<A>(&mut self, id: ActorId) -> Option<&mut A>
    where
        S: crate::engine::ProjectActor<A>,
    {
        let &(region, slot) = self.locate.get(id.0)?;
        self.regions[region as usize].actors[slot as usize].project_mut()
    }

    /// Schedules an external stimulus for `target` (any region) at `at`.
    ///
    /// # Panics
    ///
    /// Panics if the target is unknown or `at` is in the past.
    pub fn schedule_at(&mut self, at: SimTime, target: ActorId, payload: E) {
        let &(region, _) = self.locate.get(target.0).expect("unknown actor");
        let state = &mut self.regions[region as usize];
        // Bypass the router (external injection is not a cross-region
        // event minted by an actor): push straight into the owning queue.
        let seq = state.core.next_seq;
        state.core.next_seq += 1;
        assert!(at >= state.core.now, "cannot schedule into the past");
        state.core.queue.push(at, seq, (Dest::One(target), payload));
    }

    /// (Re)installs the routers after membership changes: every region
    /// learns the global actor count and the shared global→region map.
    fn seal(&mut self) {
        if self.sealed {
            return;
        }
        let region_of: Arc<[u32]> = self.locate.iter().map(|&(r, _)| r).collect();
        let locate = Arc::new(self.locate.clone());
        let total = self.locate.len();
        for (index, state) in self.regions.iter_mut().enumerate() {
            state.core.actor_count = total;
            state.locate = Arc::clone(&locate);
            let sentinel = state
                .core
                .router
                .as_ref()
                .map_or(u64::MAX, |r| r.sentinel_seq);
            state.core.router = Some(RegionRouter {
                region_of: Arc::clone(&region_of),
                my_region: u32::try_from(index).expect("region fits u32"),
                window_end: SimTime::MAX,
                sentinel_seq: sentinel,
                outbox: Vec::new(),
            });
        }
        self.sealed = true;
    }
}

impl<E: Clone + Send + 'static, S: Actor<E> + Send> RegionSim<E, S> {
    /// Runs until the virtual clock reaches `end` (processing every event
    /// with `time ≤ end`), the queues drain, or an actor stops the run.
    /// On [`RunOutcome::ReachedTime`] the clock is left exactly at `end`
    /// (mirroring [`crate::Simulation::run_until`]).
    pub fn run_until(&mut self, end: SimTime) -> RunOutcome {
        let outcome = self.drive(Some(end));
        if outcome != RunOutcome::Stopped {
            self.now = self.now.max(end);
            for region in &mut self.regions {
                region.core.now = region.core.now.max(end);
            }
        }
        outcome
    }

    /// Runs until every region's queue is empty (and no cross-region
    /// events remain in flight) or an actor stops the run.
    pub fn run_until_idle(&mut self) -> RunOutcome {
        self.drive(None)
    }

    /// The window loop. `end` bounds the run (inclusive, like
    /// [`crate::Simulation::run_until`]); `None` runs to global idle.
    fn drive(&mut self, end: Option<SimTime>) -> RunOutcome {
        self.seal();
        // Exclusive horizon: `end` is inclusive and the clock is integer
        // nanoseconds, so the half-open window machinery uses `end + 1ns`.
        let horizon = end.map_or(SimTime::MAX, |e| {
            e.checked_add(SimDuration::from_nanos(1))
                .unwrap_or(SimTime::MAX)
        });
        loop {
            if self.take_stop_request() {
                return RunOutcome::Stopped;
            }
            let Some(t_min) = self
                .regions
                .iter()
                .filter_map(RegionState::next_activity)
                .min()
            else {
                // Queues drained and no starts pending; outboxes are
                // always empty at the top of the loop (drained at every
                // barrier), so the simulation is globally idle.
                return RunOutcome::Idle;
            };
            if let Some(end) = end {
                if t_min > end {
                    return RunOutcome::ReachedTime;
                }
            }
            // The classic conservative advance: nothing anywhere can mint
            // before t_min, and every cross-region delivery adds at least
            // `lookahead`, so every region may run to t_min + lookahead.
            let window_end = match self.lookahead {
                Some(lookahead) => t_min
                    .checked_add(lookahead)
                    .unwrap_or(SimTime::MAX)
                    .min(horizon),
                None => horizon,
            };
            self.run_windows(window_end);
            if self.take_stop_request() {
                return RunOutcome::Stopped;
            }
            self.now = self.now.max(window_end.min(end.unwrap_or(SimTime::MAX)));
            self.merge_outboxes();
        }
    }

    /// Clears and reports any region's stop request (stop is
    /// barrier-granular: the whole run halts at the end of the window in
    /// which any actor called [`crate::Context::stop`]).
    fn take_stop_request(&mut self) -> bool {
        let mut stopped = false;
        for region in &mut self.regions {
            stopped |= region.core.stop_requested;
            region.core.stop_requested = false;
        }
        stopped
    }

    /// Executes one window on every region that has work, in parallel when
    /// more than one worker is configured. Regions are mutually disjoint,
    /// so the windows are data-race-free by construction; results do not
    /// depend on the worker count.
    fn run_windows(&mut self, window_end: SimTime) {
        let mut active: Vec<&mut RegionState<E, S>> = self
            .regions
            .iter_mut()
            .filter(|r| r.next_activity().is_some_and(|t| t < window_end))
            .collect();
        if self.workers <= 1 || active.len() <= 1 {
            for region in active {
                region.run_window(window_end);
            }
            return;
        }
        std::thread::scope(|scope| {
            for region in active.drain(..) {
                scope.spawn(move || region.run_window(window_end));
            }
        });
    }

    /// The barrier merge: drains every region's outbox and admits the
    /// events into their target regions in `(mint_time, source_region,
    /// source_order)` order — a total order fixed by the simulation's own
    /// trajectory, independent of thread scheduling.
    fn merge_outboxes(&mut self) {
        let mut moves = Vec::new();
        for (source, region) in self.regions.iter_mut().enumerate() {
            let router = region.core.router.as_mut().expect("sealed run has routers");
            for (order, outbound) in router.outbox.drain(..).enumerate() {
                moves.push((outbound.mint_time, source, order, outbound));
            }
        }
        if moves.is_empty() {
            return;
        }
        moves.sort_by_key(|m| (m.0, m.1, m.2));
        for (_, _, _, outbound) in moves {
            let (region, _) = self.locate[outbound.target.0];
            let state = &mut self.regions[region as usize];
            let seq = state.core.next_seq;
            state.core.next_seq += 1;
            debug_assert!(
                outbound.time >= state.core.now,
                "barrier admitted an event into the past: lookahead violation"
            );
            state.core.queue.push(
                outbound.time,
                seq,
                (Dest::One(outbound.target), outbound.payload),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{ProjectActor, Simulation};

    type Ev = u32;

    /// Ping-pong chain: forwards each event to `peer` after `delay`,
    /// logging everything it receives, with one RNG draw per event so
    /// stream alignment is also under test.
    struct Relay {
        peer: ActorId,
        delay: SimDuration,
        limit: u32,
        log: Vec<(SimTime, Ev, u64)>,
    }

    impl Actor<Ev> for Relay {
        fn on_start(&mut self, ctx: &mut Context<'_, Ev>) {
            if self.limit > 0 {
                ctx.schedule_in(self.delay, self.peer, 0);
            }
        }
        fn on_event(&mut self, ctx: &mut Context<'_, Ev>, ev: Ev) {
            let draw = ctx.rng().next_u64();
            self.log.push((ctx.now(), ev, draw));
            if ev < self.limit {
                let peer = self.peer;
                let delay = self.delay;
                ctx.schedule_in(delay, peer, ev + 1);
            }
        }
    }

    impl ProjectActor<Relay> for Relay {
        fn project(&self) -> Option<&Relay> {
            Some(self)
        }
        fn project_mut(&mut self) -> Option<&mut Relay> {
            Some(self)
        }
    }

    /// A regioned simulation whose member type is the relay itself.
    type RelayRegionSim = RegionSim<Ev, Relay>;
    type RelaySim = Simulation<Ev, Relay>;

    fn relay(peer: usize, delay_nanos: u64, limit: u32) -> Relay {
        Relay {
            peer: ActorId(peer),
            delay: SimDuration::from_nanos(delay_nanos),
            limit,
            log: Vec::new(),
        }
    }

    const LOOKAHEAD: SimDuration = SimDuration::from_micros(10);

    /// Builds the same two-relay population sequentially and regioned
    /// (one relay per region) and asserts bit-identical logs and counts.
    fn assert_matches_sequential(delay_a: u64, delay_b: u64, limit: u32, end_secs: f64) {
        let end = SimTime::from_secs_f64(end_secs);

        let mut seq: RelaySim = Simulation::with_actor_set(0xabcd);
        let a_seq = seq.add_member(relay(1, delay_a, limit));
        let b_seq = seq.add_member(relay(0, delay_b, limit));
        seq.run_until(end);

        let mut reg: RelayRegionSim = RegionSim::new(0xabcd, 2, LOOKAHEAD);
        let a_reg = reg.add_member(0, relay(1, delay_a, limit));
        let b_reg = reg.add_member(1, relay(0, delay_b, limit));
        assert_eq!((a_seq, b_seq), (a_reg, b_reg), "global id layout matches");
        reg.run_until(end);

        for (s, r) in [(a_seq, a_reg), (b_seq, b_reg)] {
            assert_eq!(
                seq.actor::<Relay>(s).unwrap().log,
                reg.actor::<Relay>(r).unwrap().log,
                "per-actor trajectories must be bit-identical"
            );
        }
        assert_eq!(seq.events_processed(), reg.events_processed());
        assert_eq!(seq.now(), reg.now());
    }

    #[test]
    fn cross_region_ping_pong_matches_sequential() {
        // Delays comfortably above the lookahead, and distinct so no
        // cross-region (time, target) ties can occur.
        assert_matches_sequential(25_000, 35_000, 40, 0.01);
    }

    #[test]
    fn delay_exactly_at_lookahead_window_boundary() {
        // Every event lands exactly on a window boundary (delay ==
        // lookahead): the boundary belongs to the *next* window, and each
        // event must fire exactly once.
        assert_matches_sequential(10_000, 10_000, 25, 0.01);
    }

    #[test]
    fn idle_region_mid_window_catches_up() {
        // Region 1's relay stops forwarding after 3 hops while region 0
        // keeps a private timer chain running: one region goes idle
        // mid-run and must neither stall the other nor corrupt the clock.
        let end = SimTime::from_secs_f64(0.005);

        let mut seq: RelaySim = Simulation::with_actor_set(7);
        let a = seq.add_member(relay(0, 20_000, 100)); // self-loop, region 0
        let b = seq.add_member(relay(1, 30_000, 3)); // self-loop, dies early
        seq.run_until(end);

        let mut reg: RelayRegionSim = RegionSim::new(7, 2, LOOKAHEAD);
        let ra = reg.add_member(0, relay(0, 20_000, 100));
        let rb = reg.add_member(1, relay(1, 30_000, 3));
        reg.run_until(end);

        assert_eq!(
            seq.actor::<Relay>(a).unwrap().log,
            reg.actor::<Relay>(ra).unwrap().log
        );
        assert_eq!(
            seq.actor::<Relay>(b).unwrap().log,
            reg.actor::<Relay>(rb).unwrap().log
        );
        assert_eq!(seq.events_processed(), reg.events_processed());
    }

    #[test]
    fn serial_and_threaded_execution_are_bit_identical() {
        let run = |workers: usize| {
            let mut reg: RelayRegionSim = RegionSim::new(99, 4, LOOKAHEAD);
            let ids: Vec<ActorId> = (0..4)
                .map(|r| reg.add_member(r, relay((r + 1) % 4, 15_000 + r as u64, 60)))
                .collect();
            reg.set_workers(workers);
            reg.run_until(SimTime::from_secs_f64(0.01));
            let logs: Vec<_> = ids
                .iter()
                .map(|&id| reg.actor::<Relay>(id).unwrap().log.clone())
                .collect();
            (logs, reg.events_processed())
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn run_until_idle_drains_everything() {
        let mut reg: RelayRegionSim = RegionSim::new(3, 2, LOOKAHEAD);
        let a = reg.add_member(0, relay(1, 12_000, 10));
        let _b = reg.add_member(1, relay(0, 13_000, 10));
        assert_eq!(reg.run_until_idle(), RunOutcome::Idle);
        // 2 starts mint one event each; the chain then runs to the limit.
        assert!(reg.actor::<Relay>(a).unwrap().log.len() >= 5);
        assert!(reg.events_processed() > 0);
    }

    #[test]
    #[should_panic(expected = "zero lookahead rejected")]
    fn zero_lookahead_is_rejected_at_construction() {
        let _: RelayRegionSim = RegionSim::new(1, 2, SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "lands inside the current window")]
    fn lookahead_violation_panics_loudly() {
        // Declared lookahead 10 µs, but the cross-region delay is 1 µs:
        // the very first cross send must be rejected, not reordered.
        let mut reg: RelayRegionSim = RegionSim::new(5, 2, LOOKAHEAD);
        reg.add_member(0, relay(1, 1_000, 10));
        reg.add_member(1, relay(0, 1_000, 10));
        reg.run_until(SimTime::from_secs_f64(0.001));
    }

    #[test]
    #[should_panic(expected = "lands inside the current window")]
    fn isolated_partition_rejects_any_cross_send() {
        let mut reg: RelayRegionSim = RegionSim::isolated(5, 2);
        reg.add_member(0, relay(1, 1_000_000, 10));
        reg.add_member(1, relay(0, 1_000_000, 10));
        reg.run_until(SimTime::from_secs_f64(1.0));
    }

    #[test]
    fn isolated_regions_match_sequential() {
        // Two self-contained timer chains, one per region: an isolated
        // partition runs them in a single window each and still matches
        // the sequential engine exactly.
        let end = SimTime::from_secs_f64(0.01);
        let mut seq: RelaySim = Simulation::with_actor_set(11);
        let a = seq.add_member(relay(0, 21_000, 50));
        let b = seq.add_member(relay(1, 17_000, 50));
        seq.run_until(end);

        let mut reg: RelayRegionSim = RegionSim::isolated(11, 2);
        let ra = reg.add_member(0, relay(0, 21_000, 50));
        let rb = reg.add_member(1, relay(1, 17_000, 50));
        reg.run_until(end);

        assert_eq!(
            seq.actor::<Relay>(a).unwrap().log,
            reg.actor::<Relay>(ra).unwrap().log
        );
        assert_eq!(
            seq.actor::<Relay>(b).unwrap().log,
            reg.actor::<Relay>(rb).unwrap().log
        );
        assert_eq!(seq.events_processed(), reg.events_processed());
    }

    #[test]
    fn external_stimuli_and_single_region_degenerate() {
        // One region is the sequential engine with extra bookkeeping:
        // inject external events and compare.
        let end = SimTime::from_secs_f64(0.01);
        let mut seq: RelaySim = Simulation::with_actor_set(13);
        let a = seq.add_member(relay(0, 40_000, 5));
        seq.schedule_at(SimTime::from_nanos(500), a, 100);
        seq.run_until(end);

        let mut reg: RelayRegionSim = RegionSim::new(13, 1, LOOKAHEAD);
        let ra = reg.add_member(0, relay(0, 40_000, 5));
        reg.schedule_at(SimTime::from_nanos(500), ra, 100);
        reg.run_until(end);

        assert_eq!(
            seq.actor::<Relay>(a).unwrap().log,
            reg.actor::<Relay>(ra).unwrap().log
        );
        assert_eq!(seq.events_processed(), reg.events_processed());
    }
}
