//! The engine's event queue: an indexed d-ary min-heap with true
//! cancellation.
//!
//! The first engine used `BinaryHeap<Scheduled> + HashSet<u64>` with *lazy*
//! cancellation: a cancelled sequence number was parked in the set and the
//! event skipped when it surfaced at the heap root. That design had two
//! defects this module exists to remove:
//!
//! * cancelling a handle whose event had **already fired** inserted a
//!   tombstone that nothing could ever remove (sequence numbers are unique),
//!   so long-running simulations with retry/cancel patterns grew the set
//!   without bound;
//! * `len()` counted tombstones as live events, overstating queue depth to
//!   backpressure and diagnostic readers.
//!
//! [`EventQueue`] instead keeps a `seq → slot` index beside a 4-ary heap so
//! that cancellation removes the event *immediately*:
//!
//! * [`pop`](EventQueue::pop) is `O(log₄ n)` and yields events in exactly
//!   the engine's documented `(time, seq)` total order — FIFO for
//!   simultaneous events, bit-for-bit identical to the old heap's order;
//! * [`cancel`](EventQueue::cancel) is an O(1) hash lookup plus a local
//!   heap repair (constant in the common cancel-a-pending-timeout case,
//!   `O(log n)` worst case) and retains **zero** state afterwards:
//!   cancelling an unknown or already-fired sequence number is a pure no-op;
//! * [`len`](EventQueue::len) is the exact live event count.
//!
//! Layout, tuned so the indexing never taxes the pop-dominated hot path:
//! keys live *inline* in the heap (`Vec<(EventKey, u32)>`), so sift
//! comparisons walk contiguous memory exactly like a plain binary heap;
//! payloads live in a slab (`Vec<Option<_>>` with a free list) whose slots
//! the heap references, so payloads never move during sifts; and the
//! `seq → slot` index is a `HashMap` with a splitmix64 finalizer instead of
//! SipHash (sequence numbers are internal, monotonic `u64`s — no DoS
//! surface, so the cheap avalanche is the right trade). Each
//! `push`/`pop`/`cancel` performs exactly one hash-map operation, and the
//! slab never grows beyond the high-water mark of *concurrently live*
//! events.
//!
//! # The calendar tier ([`QueueProfile::Calendar`])
//!
//! At mega scale (millions of pending events) even a 4-ary heap pays
//! `O(log n)` with poor locality per operation. A queue built with
//! [`EventQueue::with_profile`] and a calendar profile keeps the heap as a
//! small *near* tier and adds two *future* tiers:
//!
//! * a **bucket ring**: `buckets` unordered `Vec`s, each covering one
//!   `bucket_width` span of virtual time — push/cancel are O(1) appends and
//!   swap-removes;
//! * a **far overflow** list for events beyond the ring's window.
//!
//! The tier boundary is the absolute bucket index `base`: events in buckets
//! `< base` live in the heap, `[base, base + buckets)` in the ring,
//! `≥ base + buckets` in `far`. Pops always come off the heap; when it
//! drains, the earliest non-empty bucket is migrated wholesale into the
//! heap and `base` advances past it, pulling far events whose bucket
//! entered the window along the way. Because every heap event strictly
//! precedes every ring event, which strictly precedes every far event
//! (modulo the pull-before-migrate discipline), the pop sequence is the
//! exact sorted `(time, seq)` order — **bit-for-bit identical** to the
//! plain heap profile, which the `calendar_queue_model` proptest pins.

use crate::rng::splitmix64;
use crate::time::{SimDuration, SimTime};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Heap arity. A 4-ary heap halves the tree depth of a binary heap at the
/// cost of three extra (contiguous, cheap) key comparisons per level — a
/// good trade when the queue is large enough for depth to mean cache
/// misses.
const ARITY: usize = 4;

/// Hasher for the `seq → slot` index: a single splitmix64 finalizer.
/// Sequence numbers are engine-internal monotonic counters, so collision
/// attacks are impossible and SipHash's keyed security buys nothing here.
#[derive(Debug, Default)]
pub struct SeqHasher(u64);

impl Hasher for SeqHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("seq keys are u64 and hash via write_u64");
    }
    fn write_u64(&mut self, n: u64) {
        self.0 = splitmix64(n);
    }
}

type SeqMap = HashMap<u64, u32, BuildHasherDefault<SeqHasher>>;

/// Total-order key of a queued event: virtual time first, then the global
/// schedule sequence number (FIFO tie-break within an instant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventKey {
    /// When the event fires.
    pub time: SimTime,
    /// Schedule order, unique per queue lifetime.
    pub seq: u64,
}

/// Storage-tier selection for an [`EventQueue`], fixed at construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueProfile {
    /// The indexed 4-ary heap alone: `O(log₄ n)` pops, best for the
    /// paper-scale populations every golden scenario runs at. This is the
    /// default ([`EventQueue::new`]).
    #[default]
    Heap,
    /// Heap + calendar bucket ring + far overflow: O(1) scheduling and
    /// cancellation at millions of pending events. Pop order is identical
    /// to [`QueueProfile::Heap`].
    Calendar {
        /// Virtual-time span of one bucket. Pending events spread across
        /// roughly one bucket's worth of time collapse into a single
        /// unordered `Vec`.
        bucket_width: SimDuration,
        /// Number of buckets in the ring; the window covers
        /// `buckets × bucket_width` of virtual time ahead of the cursor.
        buckets: usize,
    },
}

impl QueueProfile {
    /// A calendar profile tuned for the mega scenarios: 1 ms buckets and a
    /// 4096-bucket ring (a ~4 s window), sized so DCPP's 21–22 ms cycle
    /// timers and sub-second wake timers land in the ring and only deeply
    /// backlogged wake times spill to the far tier.
    #[must_use]
    pub fn calendar() -> Self {
        Self::Calendar {
            bucket_width: SimDuration::from_millis(1),
            buckets: 4096,
        }
    }
}

/// Destination tier for a key, as selected by `EventQueue::route`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Route {
    Heap,
    Bucket(usize),
    Far,
}

/// Where an entry's `(key, slot)` pair currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    /// Position inside `heap`.
    Heap(u32),
    /// `ring[slot][pos]` of the calendar tier.
    Bucket { slot: u32, pos: u32 },
    /// Position inside the calendar tier's far-overflow list.
    Far(u32),
}

/// Payload storage: the containers reference slots by index, so payloads
/// stay put while the heap sifts or buckets shuffle.
#[derive(Debug)]
struct Entry<T> {
    /// Current location of this entry's `(key, slot)` pair.
    loc: Loc,
    item: T,
}

/// The calendar (future) tiers of a [`QueueProfile::Calendar`] queue.
#[derive(Debug)]
struct Calendar {
    /// Bucket width in nanoseconds (> 0).
    width: u64,
    /// The bucket ring; slot `i` holds the unique absolute bucket index
    /// `≡ i (mod ring.len())` inside the window `[base, base + ring.len())`.
    ring: Vec<Vec<(EventKey, u32)>>,
    /// Absolute bucket index of the tier boundary: heap events have bucket
    /// index `< base`, ring events `≥ base`.
    base: u64,
    /// Live events across all ring buckets.
    in_ring: usize,
    /// Events beyond the ring window (absolute index `≥ base + ring.len()`).
    far: Vec<(EventKey, u32)>,
    /// Lower bound on the minimum bucket index in `far`; `u64::MAX` when
    /// empty. May be stale-low after removals (only costs a wasted scan).
    far_min_idx: u64,
    /// Reusable migration buffer, swapped with a bucket being drained so
    /// steady-state migration never allocates.
    scratch: Vec<(EventKey, u32)>,
}

impl Calendar {
    fn bucket_index(&self, time: SimTime) -> u64 {
        time.as_nanos() / self.width
    }

    fn window_end(&self) -> u64 {
        self.base.saturating_add(self.ring.len() as u64)
    }
}

/// A priority queue of events ordered by [`EventKey`], supporting true
/// O(1)-indexed cancellation (no tombstones) and an exact live [`len`].
///
/// [`len`]: EventQueue::len
///
/// # Examples
///
/// ```
/// use presence_des::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs_f64(2.0), 0, "late");
/// q.push(SimTime::from_secs_f64(1.0), 1, "early");
/// q.push(SimTime::from_secs_f64(3.0), 2, "cancelled");
/// assert_eq!(q.cancel(2), Some("cancelled"));
/// assert_eq!(q.cancel(2), None); // true no-op, nothing retained
/// assert_eq!(q.len(), 2);
/// assert_eq!(q.pop().map(|(_, item)| item), Some("early"));
/// assert_eq!(q.pop().map(|(_, item)| item), Some("late"));
/// assert!(q.is_empty());
/// ```
#[derive(Debug)]
pub struct EventQueue<T> {
    /// `(key, slab slot)` pairs arranged as a 4-ary min-heap on the keys.
    heap: Vec<(EventKey, u32)>,
    /// Stable payload storage; `None` slots are parked on `free`.
    slab: Vec<Option<Entry<T>>>,
    /// Reusable slab slots.
    free: Vec<u32>,
    /// Live sequence numbers → slab slot. Never iterated, so hash order
    /// cannot perturb determinism.
    index: SeqMap,
    /// The calendar tiers; `None` for [`QueueProfile::Heap`].
    cal: Option<Box<Calendar>>,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue with the default [`QueueProfile::Heap`].
    #[must_use]
    pub fn new() -> Self {
        Self::with_profile(QueueProfile::Heap)
    }

    /// Creates an empty queue with the given storage profile.
    ///
    /// # Panics
    ///
    /// Panics if a calendar profile has a zero bucket width or fewer than
    /// two buckets.
    #[must_use]
    pub fn with_profile(profile: QueueProfile) -> Self {
        let cal = match profile {
            QueueProfile::Heap => None,
            QueueProfile::Calendar {
                bucket_width,
                buckets,
            } => {
                assert!(
                    bucket_width > SimDuration::ZERO,
                    "calendar bucket width must be positive"
                );
                assert!(buckets >= 2, "calendar ring needs at least two buckets");
                Some(Box::new(Calendar {
                    width: bucket_width.as_nanos(),
                    ring: (0..buckets).map(|_| Vec::new()).collect(),
                    base: 0,
                    in_ring: 0,
                    far: Vec::new(),
                    far_min_idx: u64::MAX,
                    scratch: Vec::new(),
                }))
            }
        };
        Self {
            heap: Vec::new(),
            slab: Vec::new(),
            free: Vec::new(),
            index: SeqMap::default(),
            cal,
        }
    }

    /// Creates an empty queue with room for `capacity` live events.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            heap: Vec::with_capacity(capacity),
            slab: Vec::with_capacity(capacity),
            free: Vec::new(),
            index: SeqMap::with_capacity_and_hasher(capacity, BuildHasherDefault::default()),
            cal: None,
        }
    }

    /// The profile this queue was built with.
    #[must_use]
    pub fn profile(&self) -> QueueProfile {
        match &self.cal {
            None => QueueProfile::Heap,
            Some(cal) => QueueProfile::Calendar {
                bucket_width: SimDuration::from_nanos(cal.width),
                buckets: cal.ring.len(),
            },
        }
    }

    /// Number of live (non-cancelled, non-fired) events.
    #[must_use]
    pub fn len(&self) -> usize {
        let future = self
            .cal
            .as_ref()
            .map_or(0, |cal| cal.in_ring + cal.far.len());
        self.heap.len() + future
    }

    /// Whether no live events are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the event with this sequence number is still pending.
    #[must_use]
    pub fn contains(&self, seq: u64) -> bool {
        self.index.contains_key(&seq)
    }

    /// Key of the next event to fire, if any.
    ///
    /// With a calendar profile this is O(1) in practice: every mutating
    /// operation restores the "heap empty ⟹ queue empty" invariant by
    /// migrating eagerly, so the fallback scan over the future tiers only
    /// runs if that discipline is ever broken.
    #[must_use]
    pub fn peek(&self) -> Option<EventKey> {
        if let Some(&(key, _)) = self.heap.first() {
            return Some(key);
        }
        let cal = self.cal.as_ref()?;
        // Fallback: the earliest non-empty bucket's minimum precedes every
        // later bucket; far events may share the window's last bucket index
        // with ring events, so take the global minimum across both.
        let mut best: Option<EventKey> = None;
        if cal.in_ring > 0 {
            for off in 0..cal.ring.len() as u64 {
                let s = ((cal.base + off) % cal.ring.len() as u64) as usize;
                if let Some(m) = cal.ring[s].iter().map(|&(k, _)| k).min() {
                    best = Some(m);
                    break;
                }
            }
        }
        for &(k, _) in &cal.far {
            if best.is_none_or(|b| k < b) {
                best = Some(k);
            }
        }
        best
    }

    /// Enqueues `item` to fire at `(time, seq)`.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is already pending (sequence numbers must be unique)
    /// or the queue holds `u32::MAX` live events.
    pub fn push(&mut self, time: SimTime, seq: u64, item: T) {
        // Loc is provisional until `attach` routes the key to its tier.
        let entry = Entry {
            loc: Loc::Heap(0),
            item,
        };
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slab[slot as usize] = Some(entry);
                slot
            }
            None => {
                let slot = u32::try_from(self.slab.len()).expect("event queue overflow");
                self.slab.push(Some(entry));
                slot
            }
        };
        if let Some(prev_slot) = self.index.insert(seq, slot) {
            // Roll back before panicking so a caught panic cannot leave the
            // index pointing at a slot that never reached a container.
            self.index.insert(seq, prev_slot);
            self.slab[slot as usize] = None;
            self.free.push(slot);
            panic!("duplicate event sequence number {seq}");
        }
        self.attach(EventKey { time, seq }, slot);
        if self.heap.is_empty() {
            self.ensure_front();
        }
    }

    /// Removes and returns the earliest event (ties broken FIFO by `seq`).
    pub fn pop(&mut self) -> Option<(EventKey, T)> {
        if self.heap.is_empty() {
            self.ensure_front();
            if self.heap.is_empty() {
                return None;
            }
        }
        let (key, slot) = self.remove_heap_entry(0);
        let item = self.release(key.seq, slot);
        if self.heap.is_empty() {
            self.ensure_front();
        }
        Some((key, item))
    }

    /// Cancels the pending event with this sequence number, returning its
    /// payload. Unknown sequence numbers — never scheduled, already fired,
    /// or already cancelled — return `None` and leave the queue untouched:
    /// nothing is retained, so cancel-after-fire cannot leak.
    pub fn cancel(&mut self, seq: u64) -> Option<T> {
        let slot = *self.index.get(&seq)?;
        let loc = self.slab[slot as usize]
            .as_ref()
            .expect("indexed slab slot is occupied")
            .loc;
        let key = self.detach(loc);
        debug_assert_eq!(key.seq, seq, "location out of sync with index");
        let item = self.release(seq, slot);
        if self.heap.is_empty() {
            self.ensure_front();
        }
        Some(item)
    }

    /// Reschedules the pending event `seq` to fire at `(new_time, new_seq)`,
    /// in place: the payload stays in its slab slot, the heap entry's key is
    /// rewritten and re-seated with a single sift, and the index swaps one
    /// mapping. Compared to `cancel` + `push` this skips the slab
    /// free/realloc and one full heap remove/insert pair — the win behind
    /// the engine's cancel-then-rearm timer fast path.
    ///
    /// Returns a mutable reference to the (still in place) payload so the
    /// caller can rewrite it for the new firing — e.g. a rearmed timer
    /// carrying a fresh token — or `None` (queue untouched) when `seq` is
    /// unknown: never scheduled, already fired, or already cancelled.
    ///
    /// # Panics
    ///
    /// Panics if `new_seq` is already pending (sequence numbers must be
    /// unique, exactly as for [`push`](EventQueue::push)).
    pub fn reschedule(&mut self, seq: u64, new_time: SimTime, new_seq: u64) -> Option<&mut T> {
        let slot = self.index.remove(&seq)?;
        assert!(
            !self.index.contains_key(&new_seq),
            "duplicate event sequence number {new_seq}"
        );
        self.index.insert(new_seq, slot);
        let loc = self.slab[slot as usize]
            .as_ref()
            .expect("indexed slab slot is occupied")
            .loc;
        let new_key = EventKey {
            time: new_time,
            seq: new_seq,
        };
        if let (Loc::Heap(pos), Route::Heap) = (loc, self.route(new_time)) {
            // Fast path: the key stays in the heap and re-seats with a
            // single sift — the engine's cancel-then-rearm timer pattern.
            let heap_pos = pos as usize;
            let old_key = self.heap[heap_pos].0;
            self.heap[heap_pos].0 = new_key;
            if new_key < old_key {
                self.sift_up(heap_pos);
            } else {
                self.sift_down(heap_pos);
            }
        } else {
            self.detach(loc);
            self.attach(new_key, slot);
            if self.heap.is_empty() {
                self.ensure_front();
            }
        }
        self.slab[slot as usize].as_mut().map(|e| &mut e.item)
    }

    /// Drops every pending event.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.slab.clear();
        self.free.clear();
        self.index.clear();
        if let Some(cal) = self.cal.as_mut() {
            for bucket in &mut cal.ring {
                bucket.clear();
            }
            cal.base = 0;
            cal.in_ring = 0;
            cal.far.clear();
            cal.far_min_idx = u64::MAX;
        }
    }

    /// Which tier a key scheduled at `time` belongs to right now.
    fn route(&self, time: SimTime) -> Route {
        match &self.cal {
            None => Route::Heap,
            Some(cal) => {
                let idx = cal.bucket_index(time);
                if idx < cal.base {
                    Route::Heap
                } else if idx < cal.window_end() {
                    Route::Bucket((idx % cal.ring.len() as u64) as usize)
                } else {
                    Route::Far
                }
            }
        }
    }

    /// Inserts `(key, slot)` into the tier [`route`](Self::route) selects,
    /// recording the location in the slab entry.
    fn attach(&mut self, key: EventKey, slot: u32) {
        match self.route(key.time) {
            Route::Heap => {
                let pos = u32::try_from(self.heap.len()).expect("event queue overflow");
                self.slab[slot as usize]
                    .as_mut()
                    .expect("attached slab slot is occupied")
                    .loc = Loc::Heap(pos);
                self.heap.push((key, slot));
                self.sift_up(pos as usize);
            }
            Route::Bucket(s) => {
                let cal = self.cal.as_mut().expect("bucket route implies calendar");
                let pos = u32::try_from(cal.ring[s].len()).expect("event queue overflow");
                cal.ring[s].push((key, slot));
                cal.in_ring += 1;
                self.slab[slot as usize]
                    .as_mut()
                    .expect("attached slab slot is occupied")
                    .loc = Loc::Bucket {
                    slot: s as u32,
                    pos,
                };
            }
            Route::Far => {
                let cal = self.cal.as_mut().expect("far route implies calendar");
                let pos = u32::try_from(cal.far.len()).expect("event queue overflow");
                let idx = cal.bucket_index(key.time);
                cal.far.push((key, slot));
                cal.far_min_idx = cal.far_min_idx.min(idx);
                self.slab[slot as usize]
                    .as_mut()
                    .expect("attached slab slot is occupied")
                    .loc = Loc::Far(pos);
            }
        }
    }

    /// Removes the `(key, slot)` pair at `loc` from its container and
    /// repairs the container. Slab and index are left untouched.
    fn detach(&mut self, loc: Loc) -> EventKey {
        match loc {
            Loc::Heap(pos) => self.remove_heap_entry(pos as usize).0,
            Loc::Bucket { slot: s, pos } => {
                let cal = self.cal.as_mut().expect("bucket loc implies calendar");
                let bucket = &mut cal.ring[s as usize];
                let (key, _) = bucket.swap_remove(pos as usize);
                cal.in_ring -= 1;
                if let Some(&(_, moved)) = bucket.get(pos as usize) {
                    self.slab[moved as usize]
                        .as_mut()
                        .expect("bucketed slab slot is occupied")
                        .loc = Loc::Bucket { slot: s, pos };
                }
                key
            }
            Loc::Far(pos) => {
                let cal = self.cal.as_mut().expect("far loc implies calendar");
                let (key, _) = cal.far.swap_remove(pos as usize);
                // far_min_idx may now be stale-low; that only costs a
                // wasted pull scan, never correctness.
                if let Some(&(_, moved)) = cal.far.get(pos as usize) {
                    self.slab[moved as usize]
                        .as_mut()
                        .expect("far slab slot is occupied")
                        .loc = Loc::Far(pos);
                }
                key
            }
        }
    }

    /// Frees the slab slot and index entry of a removed event, returning
    /// its payload.
    fn release(&mut self, seq: u64, slot: u32) -> T {
        let entry = self.slab[slot as usize]
            .take()
            .expect("removed slab slot is occupied");
        self.free.push(slot);
        let removed = self.index.remove(&seq);
        debug_assert_eq!(removed, Some(slot), "index out of sync with slab");
        entry.item
    }

    /// Restores the calendar invariant "heap empty ⟹ queue empty" by
    /// migrating the earliest non-empty bucket into the heap, rebasing the
    /// window from the far tier when the whole ring is empty, and pulling
    /// far events whose bucket slides into the window as `base` advances
    /// (so `base` never passes an event still parked in `far`).
    fn ensure_front(&mut self) {
        if !self.heap.is_empty() {
            return;
        }
        let Some(cal) = self.cal.as_mut() else {
            return;
        };
        if cal.in_ring == 0 && cal.far.is_empty() {
            return;
        }
        let ring_len = cal.ring.len() as u64;
        if cal.in_ring == 0 {
            // Ring exhausted: rebase the window onto the earliest far
            // bucket. The heap is empty, so moving `base` backwards (far
            // events may predate the old window after it slid) is safe.
            let mut min_idx = u64::MAX;
            for &(key, _) in &cal.far {
                min_idx = min_idx.min(cal.bucket_index(key.time));
            }
            cal.base = min_idx;
            Self::pull_far(cal, &mut self.slab);
            debug_assert!(cal.in_ring > 0, "rebase pulled nothing into the ring");
        }
        let s = loop {
            if cal.far_min_idx < cal.window_end() {
                Self::pull_far(cal, &mut self.slab);
            }
            let s = (cal.base % ring_len) as usize;
            if !cal.ring[s].is_empty() {
                break s;
            }
            cal.base += 1;
        };
        cal.base += 1;
        let mut scratch = std::mem::take(&mut cal.scratch);
        std::mem::swap(&mut cal.ring[s], &mut scratch);
        cal.in_ring -= scratch.len();
        for (key, slot) in scratch.drain(..) {
            let pos = u32::try_from(self.heap.len()).expect("event queue overflow");
            self.slab[slot as usize]
                .as_mut()
                .expect("migrated slab slot is occupied")
                .loc = Loc::Heap(pos);
            self.heap.push((key, slot));
            self.sift_up(pos as usize);
        }
        self.cal.as_mut().expect("calendar profile").scratch = scratch;
    }

    /// Moves every far event whose bucket fell inside the ring window into
    /// its bucket, and recomputes the exact far minimum.
    fn pull_far(cal: &mut Calendar, slab: &mut [Option<Entry<T>>]) {
        let ring_len = cal.ring.len() as u64;
        let window_end = cal.window_end();
        let mut min_out = u64::MAX;
        let mut i = 0;
        while i < cal.far.len() {
            let (key, slot) = cal.far[i];
            let idx = key.time.as_nanos() / cal.width;
            if idx < window_end {
                debug_assert!(idx >= cal.base, "far event behind the window base");
                cal.far.swap_remove(i);
                if let Some(&(_, moved)) = cal.far.get(i) {
                    slab[moved as usize]
                        .as_mut()
                        .expect("far slab slot is occupied")
                        .loc = Loc::Far(i as u32);
                }
                let s = (idx % ring_len) as usize;
                let pos = u32::try_from(cal.ring[s].len()).expect("event queue overflow");
                cal.ring[s].push((key, slot));
                cal.in_ring += 1;
                slab[slot as usize]
                    .as_mut()
                    .expect("pulled slab slot is occupied")
                    .loc = Loc::Bucket {
                    slot: s as u32,
                    pos,
                };
            } else {
                min_out = min_out.min(idx);
                i += 1;
            }
        }
        cal.far_min_idx = min_out;
    }

    /// Removes the heap entry at `heap_pos` (0 = pop) and repairs the heap.
    /// Slab and index are left untouched.
    fn remove_heap_entry(&mut self, heap_pos: usize) -> (EventKey, u32) {
        let last = self.heap.len() - 1;
        self.heap.swap(heap_pos, last);
        let (key, slot) = self.heap.pop().expect("heap non-empty");
        // If the removed entry was not the heap's last, a filler from the
        // bottom now sits at `heap_pos` and must be re-seated.
        if heap_pos < self.heap.len() {
            self.set_heap_pos(heap_pos);
            // The filler came from the bottom, so it usually sinks; it can
            // need to rise when the removed entry sat below the filler's
            // correct position (possible for interior removals).
            let settled = self.sift_down(heap_pos);
            if settled == heap_pos {
                self.sift_up(heap_pos);
            }
        }
        (key, slot)
    }

    /// Records `heap[heap_pos]`'s new position inside its slab entry.
    fn set_heap_pos(&mut self, heap_pos: usize) {
        let slot = self.heap[heap_pos].1;
        let entry = self.slab[slot as usize]
            .as_mut()
            .expect("slab slot referenced by heap is occupied");
        entry.loc = Loc::Heap(heap_pos as u32);
    }

    /// Hole-based sift: the moving element is held aside while displaced
    /// elements shift into the hole, so each level costs one heap write
    /// and one slab `heap_pos` update instead of a full swap's two.
    fn sift_up(&mut self, start: usize) -> usize {
        let moving = self.heap[start];
        let mut pos = start;
        while pos > 0 {
            let parent = (pos - 1) / ARITY;
            if moving.0 < self.heap[parent].0 {
                self.heap[pos] = self.heap[parent];
                self.set_heap_pos(pos);
                pos = parent;
            } else {
                break;
            }
        }
        if pos != start {
            self.heap[pos] = moving;
            self.set_heap_pos(pos);
        }
        pos
    }

    fn sift_down(&mut self, start: usize) -> usize {
        let moving = self.heap[start];
        let mut pos = start;
        loop {
            let first_child = pos * ARITY + 1;
            if first_child >= self.heap.len() {
                break;
            }
            let end = (first_child + ARITY).min(self.heap.len());
            let mut best = first_child;
            let mut best_key = self.heap[first_child].0;
            for child in (first_child + 1)..end {
                let key = self.heap[child].0;
                if key < best_key {
                    best = child;
                    best_key = key;
                }
            }
            if best_key < moving.0 {
                self.heap[pos] = self.heap[best];
                self.set_heap_pos(pos);
                pos = best;
            } else {
                break;
            }
        }
        if pos != start {
            self.heap[pos] = moving;
            self.set_heap_pos(pos);
        }
        pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(nanos: u64) -> SimTime {
        SimTime::from_nanos(nanos)
    }

    /// Checks every structural invariant the queue relies on, across all
    /// three tiers.
    fn assert_invariants<T>(q: &EventQueue<T>) {
        let live = q.len();
        assert_eq!(live, q.index.len(), "index out of sync");
        assert_eq!(
            q.slab.iter().filter(|e| e.is_some()).count(),
            live,
            "live slab entries out of sync"
        );
        assert_eq!(q.free.len() + live, q.slab.len(), "free list out of sync");
        for (pos, &(key, slot)) in q.heap.iter().enumerate() {
            let entry = q.slab[slot as usize].as_ref().expect("occupied slot");
            assert_eq!(entry.loc, Loc::Heap(pos as u32), "stale heap loc");
            assert_eq!(q.index.get(&key.seq), Some(&slot), "stale index");
            if pos > 0 {
                let parent = (pos - 1) / ARITY;
                assert!(q.heap[parent].0 <= key, "heap property violated");
            }
        }
        let Some(cal) = &q.cal else { return };
        let ring_len = cal.ring.len() as u64;
        for &(key, _) in &q.heap {
            assert!(
                cal.bucket_index(key.time) < cal.base,
                "heap event at or past the window base"
            );
        }
        let mut in_ring = 0;
        for (s, bucket) in cal.ring.iter().enumerate() {
            for (pos, &(key, slot)) in bucket.iter().enumerate() {
                let entry = q.slab[slot as usize].as_ref().expect("occupied slot");
                assert_eq!(
                    entry.loc,
                    Loc::Bucket {
                        slot: s as u32,
                        pos: pos as u32
                    },
                    "stale bucket loc"
                );
                assert_eq!(q.index.get(&key.seq), Some(&slot), "stale index");
                let idx = cal.bucket_index(key.time);
                assert!(
                    idx >= cal.base && idx < cal.window_end(),
                    "ring event outside the window"
                );
                assert_eq!((idx % ring_len) as usize, s, "event in the wrong bucket");
                in_ring += 1;
            }
        }
        assert_eq!(in_ring, cal.in_ring, "ring count out of sync");
        for (pos, &(key, slot)) in cal.far.iter().enumerate() {
            let entry = q.slab[slot as usize].as_ref().expect("occupied slot");
            assert_eq!(entry.loc, Loc::Far(pos as u32), "stale far loc");
            assert_eq!(q.index.get(&key.seq), Some(&slot), "stale index");
            assert!(
                cal.bucket_index(key.time) >= cal.base,
                "far event behind the window base"
            );
            assert!(
                cal.bucket_index(key.time) >= cal.far_min_idx,
                "far_min_idx overshoots"
            );
        }
        if cal.in_ring + cal.far.len() > 0 {
            assert!(
                !q.heap.is_empty(),
                "eager migration invariant broken: empty heap with future events"
            );
        }
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = EventQueue::new();
        q.push(t(3), 0, 'c');
        q.push(t(1), 1, 'a');
        q.push(t(2), 2, 'b');
        q.push(t(1), 3, 'x'); // same instant as seq 1 → fires after it
        assert_invariants(&q);
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, c)| c)).collect();
        assert_eq!(order, vec!['a', 'x', 'b', 'c']);
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.push(t(5), 0, ());
        q.push(t(2), 1, ());
        assert_eq!(q.peek().map(|k| k.seq), Some(1));
        let (key, ()) = q.pop().unwrap();
        assert_eq!(key.seq, 1);
        assert_eq!(key.time, t(2));
    }

    #[test]
    fn cancel_is_exact_and_repeatable() {
        let mut q = EventQueue::new();
        q.push(t(1), 0, "keep");
        q.push(t(2), 1, "drop");
        assert_eq!(q.cancel(1), Some("drop"));
        assert_eq!(q.cancel(1), None, "double cancel");
        assert_eq!(q.cancel(99), None, "never-scheduled seq");
        assert_eq!(q.len(), 1);
        assert_invariants(&q);
        assert_eq!(q.pop().map(|(_, s)| s), Some("keep"));
        assert_eq!(q.cancel(0), None, "cancel after fire");
        assert_invariants(&q);
    }

    #[test]
    fn interior_cancel_keeps_order() {
        // Cancel entries at every position of a populated heap; the
        // survivors must still pop in key order.
        for cancelled in 0..32u64 {
            let mut q = EventQueue::new();
            for seq in 0..32u64 {
                // Scrambled times, with collisions, to exercise ties.
                q.push(t((seq * 7) % 11), seq, seq);
            }
            assert_eq!(q.cancel(cancelled), Some(cancelled));
            assert_invariants(&q);
            let mut popped = Vec::new();
            let mut last_key = None;
            while let Some((key, seq)) = q.pop() {
                if let Some(prev) = last_key {
                    assert!(prev < key, "order violated after cancelling {cancelled}");
                }
                last_key = Some(key);
                popped.push(seq);
            }
            assert_eq!(popped.len(), 31);
            assert!(!popped.contains(&cancelled));
        }
    }

    /// Satellite regression: a million fire-then-cancel cycles must retain
    /// nothing — with the lazy-tombstone design this grew the cancelled set
    /// by one entry per cycle, forever.
    #[test]
    fn million_fire_then_cancel_cycles_retain_nothing() {
        let mut q = EventQueue::new();
        for seq in 0..1_000_000u64 {
            q.push(t(seq), seq, ());
            let (key, ()) = q.pop().expect("just pushed");
            assert_eq!(key.seq, seq);
            // The event already "fired" (was popped): cancel is a no-op.
            assert_eq!(q.cancel(seq), None);
        }
        assert_eq!(q.len(), 0);
        assert!(q.index.is_empty(), "index leaked {} seqs", q.index.len());
        assert!(q.slab.len() <= 1, "slab grew to {}", q.slab.len());
        assert!(q.free.len() <= 1, "free list grew to {}", q.free.len());
        assert!(q.heap.capacity() <= 4, "heap storage grew");
    }

    /// The slab high-water mark tracks *concurrently live* events, not
    /// total throughput: heavy schedule/cancel churn reuses slots.
    #[test]
    fn slab_reuses_slots_under_churn() {
        let mut q = EventQueue::new();
        let mut seq = 0u64;
        for round in 0..10_000u64 {
            // Ten short-lived events per round, all cancelled.
            let base = seq;
            for _ in 0..10 {
                q.push(t(round + 100), seq, ());
                seq += 1;
            }
            for s in base..seq {
                assert_eq!(q.cancel(s), Some(()));
            }
        }
        assert_eq!(q.len(), 0);
        assert!(q.slab.len() <= 10, "slab grew to {}", q.slab.len());
        assert_invariants(&q);
    }

    #[test]
    fn reschedule_moves_in_both_directions() {
        let mut q = EventQueue::new();
        for seq in 0..8u64 {
            q.push(t(10 + seq), seq, seq);
        }
        // Pull seq 6 to the front (decrease-key)…
        assert!(q.reschedule(6, t(1), 100).is_some());
        // …and push seq 0 to the back (increase-key).
        assert!(q.reschedule(0, t(99), 101).is_some());
        assert_invariants(&q);
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, s)| s)).collect();
        assert_eq!(order, vec![6, 1, 2, 3, 4, 5, 7, 0]);
    }

    #[test]
    fn reschedule_reuses_the_payload_slot() {
        let mut q = EventQueue::new();
        q.push(t(5), 0, "timer");
        let slab_before = q.slab.len();
        for round in 0..1_000u64 {
            assert!(q.reschedule(round, t(5 + round), round + 1).is_some());
        }
        assert_eq!(q.slab.len(), slab_before, "reschedule must not grow slab");
        assert!(q.free.is_empty());
        assert_invariants(&q);
        assert_eq!(q.pop().map(|(k, s)| (k.seq, s)), Some((1_000, "timer")));
    }

    #[test]
    fn reschedule_ties_break_by_new_seq() {
        let mut q = EventQueue::new();
        q.push(t(5), 0, 'a');
        q.push(t(5), 1, 'b');
        // Rearm 'a' for the same instant with a fresh (larger) seq: it must
        // now fire after 'b', exactly as cancel + re-push would order it.
        assert!(q.reschedule(0, t(5), 2).is_some());
        assert_invariants(&q);
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, c)| c)).collect();
        assert_eq!(order, vec!['b', 'a']);
    }

    #[test]
    fn reschedule_unknown_seq_is_noop() {
        let mut q = EventQueue::new();
        q.push(t(1), 0, ());
        let (key, ()) = q.pop().unwrap();
        assert!(q.reschedule(key.seq, t(2), 10).is_none(), "already fired");
        assert!(q.reschedule(99, t(2), 11).is_none(), "never scheduled");
        assert!(q.is_empty());
        assert_invariants(&q);
    }

    #[test]
    #[should_panic(expected = "duplicate event sequence number")]
    fn reschedule_to_pending_seq_panics() {
        let mut q = EventQueue::new();
        q.push(t(1), 0, ());
        q.push(t(2), 1, ());
        let _ = q.reschedule(0, t(3), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate event sequence number")]
    fn duplicate_seq_panics() {
        let mut q = EventQueue::new();
        q.push(t(1), 7, ());
        q.push(t(2), 7, ());
    }

    #[test]
    fn duplicate_seq_panic_leaves_queue_consistent() {
        let mut q = EventQueue::new();
        q.push(t(1), 7, 'a');
        let panicked =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| q.push(t(2), 7, 'b')));
        assert!(panicked.is_err());
        assert_invariants(&q);
        assert_eq!(q.len(), 1);
        assert_eq!(q.cancel(7), Some('a'), "original event must survive");
        assert_invariants(&q);
    }

    #[test]
    fn clear_empties_everything() {
        let mut q = EventQueue::new();
        for seq in 0..10 {
            q.push(t(seq), seq, seq);
        }
        q.clear();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
        assert_eq!(q.cancel(3), None);
        q.push(t(1), 100, 0);
        assert_eq!(q.len(), 1);
        assert_invariants(&q);
    }

    // -- calendar profile ---------------------------------------------------

    /// A small calendar: 16 buckets of 1 µs, so tests cross bucket, window
    /// and far boundaries with tiny time values.
    fn small_calendar<T>() -> EventQueue<T> {
        EventQueue::with_profile(QueueProfile::Calendar {
            bucket_width: SimDuration::from_nanos(1_000),
            buckets: 16,
        })
    }

    #[test]
    fn profile_roundtrips() {
        let q: EventQueue<()> = small_calendar();
        assert_eq!(
            q.profile(),
            QueueProfile::Calendar {
                bucket_width: SimDuration::from_nanos(1_000),
                buckets: 16
            }
        );
        let q: EventQueue<()> = EventQueue::new();
        assert_eq!(q.profile(), QueueProfile::Heap);
        assert_eq!(QueueProfile::default(), QueueProfile::Heap);
    }

    #[test]
    fn calendar_pops_in_time_then_seq_order() {
        let mut q = small_calendar();
        // Spread across near bucket, mid ring, and far overflow, with a tie.
        q.push(t(40_000), 0, 'f'); // far (idx 40 ≥ 16)
        q.push(t(3), 1, 'a');
        q.push(t(2_500), 2, 'c');
        q.push(t(3), 3, 'b'); // same instant as seq 1 → fires after it
        q.push(t(15_999), 4, 'e'); // last ring bucket
        q.push(t(9_000), 5, 'd');
        assert_invariants(&q);
        assert_eq!(q.len(), 6);
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, c)| c)).collect();
        assert_eq!(order, vec!['a', 'b', 'c', 'd', 'e', 'f']);
    }

    #[test]
    fn calendar_peek_matches_pop_everywhere() {
        let mut q = small_calendar();
        for seq in 0..64u64 {
            q.push(t((seq * 7919) % 50_000), seq, seq);
        }
        assert_invariants(&q);
        while let Some(key) = q.peek() {
            let (popped, _) = q.pop().expect("peeked queue pops");
            assert_eq!(popped, key, "peek disagreed with pop");
        }
        assert!(q.is_empty());
    }

    #[test]
    fn calendar_cancel_hits_every_tier() {
        let mut q = small_calendar();
        q.push(t(100), 0, "near");
        q.push(t(5_000), 1, "ring");
        q.push(t(5_100), 2, "ring2");
        q.push(t(90_000), 3, "far");
        q.push(t(91_000), 4, "far2");
        assert_invariants(&q);
        assert_eq!(q.cancel(1), Some("ring"));
        assert_invariants(&q);
        assert_eq!(q.cancel(3), Some("far"));
        assert_invariants(&q);
        assert_eq!(q.cancel(3), None, "double cancel");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, s)| s)).collect();
        assert_eq!(order, vec!["near", "ring2", "far2"]);
        assert_invariants(&q);
    }

    #[test]
    fn calendar_window_slides_over_long_horizons() {
        // Events far beyond the initial window, scheduled in pop-interleaved
        // rounds, keep arriving in order as the window slides and rebases.
        let mut q = small_calendar();
        let mut seq = 0u64;
        let mut expected = Vec::new();
        for round in 0..50u64 {
            for k in 0..4u64 {
                let time = round * 20_000 + k * 6_000; // crosses window spans
                q.push(t(time), seq, (time, seq));
                expected.push((time, seq));
                seq += 1;
            }
        }
        assert_invariants(&q);
        expected.sort_unstable();
        let mut got = Vec::new();
        while let Some((key, item)) = q.pop() {
            assert_eq!((key.time.as_nanos(), key.seq), (item.0, item.1));
            got.push(item);
        }
        assert_eq!(got, expected);
    }

    #[test]
    fn calendar_push_into_the_past_goes_to_the_heap() {
        let mut q = small_calendar();
        q.push(t(10_000), 0, "later");
        // First pop migrates bucket 10 and advances the base past it.
        assert_eq!(q.pop().map(|(_, s)| s), Some("later"));
        // A push before the base lands in the heap tier and still pops
        // ahead of everything in the ring.
        q.push(t(500), 1, "past");
        q.push(t(12_000), 2, "future");
        assert_invariants(&q);
        assert_eq!(q.pop().map(|(_, s)| s), Some("past"));
        assert_eq!(q.pop().map(|(_, s)| s), Some("future"));
    }

    #[test]
    fn calendar_reschedule_crosses_tiers() {
        let mut q = small_calendar();
        q.push(t(2_000), 0, "a");
        q.push(t(3_000), 1, "b");
        q.push(t(50_000), 2, "c");
        // ring → far
        assert!(q.reschedule(0, t(60_000), 10).is_some());
        assert_invariants(&q);
        // far → ring
        assert!(q.reschedule(2, t(4_000), 11).is_some());
        assert_invariants(&q);
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, s)| s)).collect();
        assert_eq!(order, vec!["b", "c", "a"]);
    }

    #[test]
    fn calendar_reschedule_ties_break_by_new_seq() {
        let mut q = small_calendar();
        q.push(t(5_000), 0, 'a');
        q.push(t(5_000), 1, 'b');
        assert!(q.reschedule(0, t(5_000), 2).is_some());
        assert_invariants(&q);
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, c)| c)).collect();
        assert_eq!(order, vec!['b', 'a']);
    }

    #[test]
    fn calendar_clear_resets_the_window() {
        let mut q = small_calendar();
        for seq in 0..32u64 {
            q.push(t(seq * 3_000), seq, seq);
        }
        let _ = q.pop();
        q.clear();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
        q.push(t(1), 100, 0);
        assert_eq!(q.len(), 1);
        assert_invariants(&q);
    }

    #[test]
    fn calendar_far_tier_rebases_backwards_safely() {
        let mut q = small_calendar();
        // Drain a late event so the base slides far forward…
        q.push(t(200_000), 0, ());
        assert_eq!(q.pop().map(|(k, ())| k.seq), Some(0));
        // …then queue events that are all "past" relative to pushes but in
        // the future of the (empty) queue — they route via heap or far and
        // must still drain in order.
        q.push(t(250_000), 1, ());
        q.push(t(210_000), 2, ());
        assert_invariants(&q);
        assert_eq!(q.pop().map(|(k, ())| k.seq), Some(2));
        assert_eq!(q.pop().map(|(k, ())| k.seq), Some(1));
    }

    #[test]
    fn calendar_million_events_flat_structures() {
        // A mega-scale smoke: a million pushes spread over many windows
        // drain in exactly sorted order, and churny fire-then-cancel cycles
        // retain nothing (same guarantee as the heap profile).
        let mut q = EventQueue::with_profile(QueueProfile::Calendar {
            bucket_width: SimDuration::from_nanos(1_000),
            buckets: 256,
        });
        let mut last = None;
        for seq in 0..100_000u64 {
            q.push(t((seq * 48_271) % 10_000_000), seq, ());
        }
        while let Some((key, ())) = q.pop() {
            if let Some(prev) = last {
                assert!(prev < key, "order violated");
            }
            last = Some(key);
            assert_eq!(q.cancel(key.seq), None, "fired seq cancellable");
        }
        assert_eq!(q.len(), 0);
        assert!(q.index.is_empty());
    }
}
