//! The engine's event queue: an indexed d-ary min-heap with true
//! cancellation.
//!
//! The first engine used `BinaryHeap<Scheduled> + HashSet<u64>` with *lazy*
//! cancellation: a cancelled sequence number was parked in the set and the
//! event skipped when it surfaced at the heap root. That design had two
//! defects this module exists to remove:
//!
//! * cancelling a handle whose event had **already fired** inserted a
//!   tombstone that nothing could ever remove (sequence numbers are unique),
//!   so long-running simulations with retry/cancel patterns grew the set
//!   without bound;
//! * `len()` counted tombstones as live events, overstating queue depth to
//!   backpressure and diagnostic readers.
//!
//! [`EventQueue`] instead keeps a `seq → slot` index beside a 4-ary heap so
//! that cancellation removes the event *immediately*:
//!
//! * [`pop`](EventQueue::pop) is `O(log₄ n)` and yields events in exactly
//!   the engine's documented `(time, seq)` total order — FIFO for
//!   simultaneous events, bit-for-bit identical to the old heap's order;
//! * [`cancel`](EventQueue::cancel) is an O(1) hash lookup plus a local
//!   heap repair (constant in the common cancel-a-pending-timeout case,
//!   `O(log n)` worst case) and retains **zero** state afterwards:
//!   cancelling an unknown or already-fired sequence number is a pure no-op;
//! * [`len`](EventQueue::len) is the exact live event count.
//!
//! Layout, tuned so the indexing never taxes the pop-dominated hot path:
//! keys live *inline* in the heap (`Vec<(EventKey, u32)>`), so sift
//! comparisons walk contiguous memory exactly like a plain binary heap;
//! payloads live in a slab (`Vec<Option<_>>` with a free list) whose slots
//! the heap references, so payloads never move during sifts; and the
//! `seq → slot` index is a `HashMap` with a splitmix64 finalizer instead of
//! SipHash (sequence numbers are internal, monotonic `u64`s — no DoS
//! surface, so the cheap avalanche is the right trade). Each
//! `push`/`pop`/`cancel` performs exactly one hash-map operation, and the
//! slab never grows beyond the high-water mark of *concurrently live*
//! events.

use crate::rng::splitmix64;
use crate::time::SimTime;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Heap arity. A 4-ary heap halves the tree depth of a binary heap at the
/// cost of three extra (contiguous, cheap) key comparisons per level — a
/// good trade when the queue is large enough for depth to mean cache
/// misses.
const ARITY: usize = 4;

/// Hasher for the `seq → slot` index: a single splitmix64 finalizer.
/// Sequence numbers are engine-internal monotonic counters, so collision
/// attacks are impossible and SipHash's keyed security buys nothing here.
#[derive(Debug, Default)]
pub struct SeqHasher(u64);

impl Hasher for SeqHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("seq keys are u64 and hash via write_u64");
    }
    fn write_u64(&mut self, n: u64) {
        self.0 = splitmix64(n);
    }
}

type SeqMap = HashMap<u64, u32, BuildHasherDefault<SeqHasher>>;

/// Total-order key of a queued event: virtual time first, then the global
/// schedule sequence number (FIFO tie-break within an instant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventKey {
    /// When the event fires.
    pub time: SimTime,
    /// Schedule order, unique per queue lifetime.
    pub seq: u64,
}

/// Payload storage: the heap references slots by index, so payloads stay
/// put while the heap sifts.
#[derive(Debug)]
struct Entry<T> {
    /// Current position of this entry's `(key, slot)` pair inside `heap`.
    heap_pos: u32,
    item: T,
}

/// A priority queue of events ordered by [`EventKey`], supporting true
/// O(1)-indexed cancellation (no tombstones) and an exact live [`len`].
///
/// [`len`]: EventQueue::len
///
/// # Examples
///
/// ```
/// use presence_des::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs_f64(2.0), 0, "late");
/// q.push(SimTime::from_secs_f64(1.0), 1, "early");
/// q.push(SimTime::from_secs_f64(3.0), 2, "cancelled");
/// assert_eq!(q.cancel(2), Some("cancelled"));
/// assert_eq!(q.cancel(2), None); // true no-op, nothing retained
/// assert_eq!(q.len(), 2);
/// assert_eq!(q.pop().map(|(_, item)| item), Some("early"));
/// assert_eq!(q.pop().map(|(_, item)| item), Some("late"));
/// assert!(q.is_empty());
/// ```
#[derive(Debug)]
pub struct EventQueue<T> {
    /// `(key, slab slot)` pairs arranged as a 4-ary min-heap on the keys.
    heap: Vec<(EventKey, u32)>,
    /// Stable payload storage; `None` slots are parked on `free`.
    slab: Vec<Option<Entry<T>>>,
    /// Reusable slab slots.
    free: Vec<u32>,
    /// Live sequence numbers → slab slot. Never iterated, so hash order
    /// cannot perturb determinism.
    index: SeqMap,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self {
            heap: Vec::new(),
            slab: Vec::new(),
            free: Vec::new(),
            index: SeqMap::default(),
        }
    }

    /// Creates an empty queue with room for `capacity` live events.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            heap: Vec::with_capacity(capacity),
            slab: Vec::with_capacity(capacity),
            free: Vec::new(),
            index: SeqMap::with_capacity_and_hasher(capacity, BuildHasherDefault::default()),
        }
    }

    /// Number of live (non-cancelled, non-fired) events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no live events are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Whether the event with this sequence number is still pending.
    #[must_use]
    pub fn contains(&self, seq: u64) -> bool {
        self.index.contains_key(&seq)
    }

    /// Key of the next event to fire, if any.
    #[must_use]
    pub fn peek(&self) -> Option<EventKey> {
        self.heap.first().map(|&(key, _)| key)
    }

    /// Enqueues `item` to fire at `(time, seq)`.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is already pending (sequence numbers must be unique)
    /// or the queue holds `u32::MAX` live events.
    pub fn push(&mut self, time: SimTime, seq: u64, item: T) {
        let heap_pos = u32::try_from(self.heap.len()).expect("event queue overflow");
        let entry = Entry { heap_pos, item };
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slab[slot as usize] = Some(entry);
                slot
            }
            None => {
                let slot = u32::try_from(self.slab.len()).expect("event queue overflow");
                self.slab.push(Some(entry));
                slot
            }
        };
        if let Some(prev_slot) = self.index.insert(seq, slot) {
            // Roll back before panicking so a caught panic cannot leave the
            // index pointing at a slot that never reached the heap.
            self.index.insert(seq, prev_slot);
            self.slab[slot as usize] = None;
            self.free.push(slot);
            panic!("duplicate event sequence number {seq}");
        }
        self.heap.push((EventKey { time, seq }, slot));
        self.sift_up(heap_pos as usize);
    }

    /// Removes and returns the earliest event (ties broken FIFO by `seq`).
    pub fn pop(&mut self) -> Option<(EventKey, T)> {
        if self.heap.is_empty() {
            None
        } else {
            Some(self.remove_heap_pos(0))
        }
    }

    /// Cancels the pending event with this sequence number, returning its
    /// payload. Unknown sequence numbers — never scheduled, already fired,
    /// or already cancelled — return `None` and leave the queue untouched:
    /// nothing is retained, so cancel-after-fire cannot leak.
    pub fn cancel(&mut self, seq: u64) -> Option<T> {
        let slot = *self.index.get(&seq)?;
        let heap_pos = self.slab[slot as usize]
            .as_ref()
            .expect("indexed slab slot is occupied")
            .heap_pos;
        Some(self.remove_heap_pos(heap_pos as usize).1)
    }

    /// Reschedules the pending event `seq` to fire at `(new_time, new_seq)`,
    /// in place: the payload stays in its slab slot, the heap entry's key is
    /// rewritten and re-seated with a single sift, and the index swaps one
    /// mapping. Compared to `cancel` + `push` this skips the slab
    /// free/realloc and one full heap remove/insert pair — the win behind
    /// the engine's cancel-then-rearm timer fast path.
    ///
    /// Returns a mutable reference to the (still in place) payload so the
    /// caller can rewrite it for the new firing — e.g. a rearmed timer
    /// carrying a fresh token — or `None` (queue untouched) when `seq` is
    /// unknown: never scheduled, already fired, or already cancelled.
    ///
    /// # Panics
    ///
    /// Panics if `new_seq` is already pending (sequence numbers must be
    /// unique, exactly as for [`push`](EventQueue::push)).
    pub fn reschedule(&mut self, seq: u64, new_time: SimTime, new_seq: u64) -> Option<&mut T> {
        let slot = self.index.remove(&seq)?;
        assert!(
            !self.index.contains_key(&new_seq),
            "duplicate event sequence number {new_seq}"
        );
        self.index.insert(new_seq, slot);
        let heap_pos = self.slab[slot as usize]
            .as_ref()
            .expect("indexed slab slot is occupied")
            .heap_pos as usize;
        let old_key = self.heap[heap_pos].0;
        let new_key = EventKey {
            time: new_time,
            seq: new_seq,
        };
        self.heap[heap_pos].0 = new_key;
        if new_key < old_key {
            self.sift_up(heap_pos);
        } else {
            self.sift_down(heap_pos);
        }
        self.slab[slot as usize].as_mut().map(|e| &mut e.item)
    }

    /// Drops every pending event.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.slab.clear();
        self.free.clear();
        self.index.clear();
    }

    /// Removes the entry at `heap_pos` (0 = pop) and repairs the heap.
    fn remove_heap_pos(&mut self, heap_pos: usize) -> (EventKey, T) {
        let last = self.heap.len() - 1;
        self.heap.swap(heap_pos, last);
        let (key, slot) = self.heap.pop().expect("heap non-empty");
        // If the removed entry was not the heap's last, a filler from the
        // bottom now sits at `heap_pos` and must be re-seated.
        if heap_pos < self.heap.len() {
            self.set_heap_pos(heap_pos);
            // The filler came from the bottom, so it usually sinks; it can
            // need to rise when the removed entry sat below the filler's
            // correct position (possible for interior removals).
            let settled = self.sift_down(heap_pos);
            if settled == heap_pos {
                self.sift_up(heap_pos);
            }
        }
        let entry = self.slab[slot as usize]
            .take()
            .expect("removed slab slot is occupied");
        self.free.push(slot);
        let removed = self.index.remove(&key.seq);
        debug_assert_eq!(removed, Some(slot), "index out of sync with slab");
        (key, entry.item)
    }

    /// Records `heap[heap_pos]`'s new position inside its slab entry.
    fn set_heap_pos(&mut self, heap_pos: usize) {
        let slot = self.heap[heap_pos].1;
        let entry = self.slab[slot as usize]
            .as_mut()
            .expect("slab slot referenced by heap is occupied");
        entry.heap_pos = heap_pos as u32;
    }

    /// Hole-based sift: the moving element is held aside while displaced
    /// elements shift into the hole, so each level costs one heap write
    /// and one slab `heap_pos` update instead of a full swap's two.
    fn sift_up(&mut self, start: usize) -> usize {
        let moving = self.heap[start];
        let mut pos = start;
        while pos > 0 {
            let parent = (pos - 1) / ARITY;
            if moving.0 < self.heap[parent].0 {
                self.heap[pos] = self.heap[parent];
                self.set_heap_pos(pos);
                pos = parent;
            } else {
                break;
            }
        }
        if pos != start {
            self.heap[pos] = moving;
            self.set_heap_pos(pos);
        }
        pos
    }

    fn sift_down(&mut self, start: usize) -> usize {
        let moving = self.heap[start];
        let mut pos = start;
        loop {
            let first_child = pos * ARITY + 1;
            if first_child >= self.heap.len() {
                break;
            }
            let end = (first_child + ARITY).min(self.heap.len());
            let mut best = first_child;
            let mut best_key = self.heap[first_child].0;
            for child in (first_child + 1)..end {
                let key = self.heap[child].0;
                if key < best_key {
                    best = child;
                    best_key = key;
                }
            }
            if best_key < moving.0 {
                self.heap[pos] = self.heap[best];
                self.set_heap_pos(pos);
                pos = best;
            } else {
                break;
            }
        }
        if pos != start {
            self.heap[pos] = moving;
            self.set_heap_pos(pos);
        }
        pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(nanos: u64) -> SimTime {
        SimTime::from_nanos(nanos)
    }

    /// Checks every structural invariant the queue relies on.
    fn assert_invariants<T>(q: &EventQueue<T>) {
        assert_eq!(q.heap.len(), q.index.len(), "index out of sync");
        assert_eq!(
            q.slab.iter().filter(|e| e.is_some()).count(),
            q.heap.len(),
            "live slab entries out of sync"
        );
        assert_eq!(
            q.free.len() + q.heap.len(),
            q.slab.len(),
            "free list out of sync"
        );
        for (pos, &(key, slot)) in q.heap.iter().enumerate() {
            let entry = q.slab[slot as usize].as_ref().expect("occupied slot");
            assert_eq!(entry.heap_pos as usize, pos, "stale heap_pos");
            assert_eq!(q.index.get(&key.seq), Some(&slot), "stale index");
            if pos > 0 {
                let parent = (pos - 1) / ARITY;
                assert!(q.heap[parent].0 <= key, "heap property violated");
            }
        }
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = EventQueue::new();
        q.push(t(3), 0, 'c');
        q.push(t(1), 1, 'a');
        q.push(t(2), 2, 'b');
        q.push(t(1), 3, 'x'); // same instant as seq 1 → fires after it
        assert_invariants(&q);
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, c)| c)).collect();
        assert_eq!(order, vec!['a', 'x', 'b', 'c']);
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.push(t(5), 0, ());
        q.push(t(2), 1, ());
        assert_eq!(q.peek().map(|k| k.seq), Some(1));
        let (key, ()) = q.pop().unwrap();
        assert_eq!(key.seq, 1);
        assert_eq!(key.time, t(2));
    }

    #[test]
    fn cancel_is_exact_and_repeatable() {
        let mut q = EventQueue::new();
        q.push(t(1), 0, "keep");
        q.push(t(2), 1, "drop");
        assert_eq!(q.cancel(1), Some("drop"));
        assert_eq!(q.cancel(1), None, "double cancel");
        assert_eq!(q.cancel(99), None, "never-scheduled seq");
        assert_eq!(q.len(), 1);
        assert_invariants(&q);
        assert_eq!(q.pop().map(|(_, s)| s), Some("keep"));
        assert_eq!(q.cancel(0), None, "cancel after fire");
        assert_invariants(&q);
    }

    #[test]
    fn interior_cancel_keeps_order() {
        // Cancel entries at every position of a populated heap; the
        // survivors must still pop in key order.
        for cancelled in 0..32u64 {
            let mut q = EventQueue::new();
            for seq in 0..32u64 {
                // Scrambled times, with collisions, to exercise ties.
                q.push(t((seq * 7) % 11), seq, seq);
            }
            assert_eq!(q.cancel(cancelled), Some(cancelled));
            assert_invariants(&q);
            let mut popped = Vec::new();
            let mut last_key = None;
            while let Some((key, seq)) = q.pop() {
                if let Some(prev) = last_key {
                    assert!(prev < key, "order violated after cancelling {cancelled}");
                }
                last_key = Some(key);
                popped.push(seq);
            }
            assert_eq!(popped.len(), 31);
            assert!(!popped.contains(&cancelled));
        }
    }

    /// Satellite regression: a million fire-then-cancel cycles must retain
    /// nothing — with the lazy-tombstone design this grew the cancelled set
    /// by one entry per cycle, forever.
    #[test]
    fn million_fire_then_cancel_cycles_retain_nothing() {
        let mut q = EventQueue::new();
        for seq in 0..1_000_000u64 {
            q.push(t(seq), seq, ());
            let (key, ()) = q.pop().expect("just pushed");
            assert_eq!(key.seq, seq);
            // The event already "fired" (was popped): cancel is a no-op.
            assert_eq!(q.cancel(seq), None);
        }
        assert_eq!(q.len(), 0);
        assert!(q.index.is_empty(), "index leaked {} seqs", q.index.len());
        assert!(q.slab.len() <= 1, "slab grew to {}", q.slab.len());
        assert!(q.free.len() <= 1, "free list grew to {}", q.free.len());
        assert!(q.heap.capacity() <= 4, "heap storage grew");
    }

    /// The slab high-water mark tracks *concurrently live* events, not
    /// total throughput: heavy schedule/cancel churn reuses slots.
    #[test]
    fn slab_reuses_slots_under_churn() {
        let mut q = EventQueue::new();
        let mut seq = 0u64;
        for round in 0..10_000u64 {
            // Ten short-lived events per round, all cancelled.
            let base = seq;
            for _ in 0..10 {
                q.push(t(round + 100), seq, ());
                seq += 1;
            }
            for s in base..seq {
                assert_eq!(q.cancel(s), Some(()));
            }
        }
        assert_eq!(q.len(), 0);
        assert!(q.slab.len() <= 10, "slab grew to {}", q.slab.len());
        assert_invariants(&q);
    }

    #[test]
    fn reschedule_moves_in_both_directions() {
        let mut q = EventQueue::new();
        for seq in 0..8u64 {
            q.push(t(10 + seq), seq, seq);
        }
        // Pull seq 6 to the front (decrease-key)…
        assert!(q.reschedule(6, t(1), 100).is_some());
        // …and push seq 0 to the back (increase-key).
        assert!(q.reschedule(0, t(99), 101).is_some());
        assert_invariants(&q);
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, s)| s)).collect();
        assert_eq!(order, vec![6, 1, 2, 3, 4, 5, 7, 0]);
    }

    #[test]
    fn reschedule_reuses_the_payload_slot() {
        let mut q = EventQueue::new();
        q.push(t(5), 0, "timer");
        let slab_before = q.slab.len();
        for round in 0..1_000u64 {
            assert!(q.reschedule(round, t(5 + round), round + 1).is_some());
        }
        assert_eq!(q.slab.len(), slab_before, "reschedule must not grow slab");
        assert!(q.free.is_empty());
        assert_invariants(&q);
        assert_eq!(q.pop().map(|(k, s)| (k.seq, s)), Some((1_000, "timer")));
    }

    #[test]
    fn reschedule_ties_break_by_new_seq() {
        let mut q = EventQueue::new();
        q.push(t(5), 0, 'a');
        q.push(t(5), 1, 'b');
        // Rearm 'a' for the same instant with a fresh (larger) seq: it must
        // now fire after 'b', exactly as cancel + re-push would order it.
        assert!(q.reschedule(0, t(5), 2).is_some());
        assert_invariants(&q);
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, c)| c)).collect();
        assert_eq!(order, vec!['b', 'a']);
    }

    #[test]
    fn reschedule_unknown_seq_is_noop() {
        let mut q = EventQueue::new();
        q.push(t(1), 0, ());
        let (key, ()) = q.pop().unwrap();
        assert!(q.reschedule(key.seq, t(2), 10).is_none(), "already fired");
        assert!(q.reschedule(99, t(2), 11).is_none(), "never scheduled");
        assert!(q.is_empty());
        assert_invariants(&q);
    }

    #[test]
    #[should_panic(expected = "duplicate event sequence number")]
    fn reschedule_to_pending_seq_panics() {
        let mut q = EventQueue::new();
        q.push(t(1), 0, ());
        q.push(t(2), 1, ());
        let _ = q.reschedule(0, t(3), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate event sequence number")]
    fn duplicate_seq_panics() {
        let mut q = EventQueue::new();
        q.push(t(1), 7, ());
        q.push(t(2), 7, ());
    }

    #[test]
    fn duplicate_seq_panic_leaves_queue_consistent() {
        let mut q = EventQueue::new();
        q.push(t(1), 7, 'a');
        let panicked =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| q.push(t(2), 7, 'b')));
        assert!(panicked.is_err());
        assert_invariants(&q);
        assert_eq!(q.len(), 1);
        assert_eq!(q.cancel(7), Some('a'), "original event must survive");
        assert_invariants(&q);
    }

    #[test]
    fn clear_empties_everything() {
        let mut q = EventQueue::new();
        for seq in 0..10 {
            q.push(t(seq), seq, seq);
        }
        q.clear();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
        assert_eq!(q.cancel(3), None);
        q.push(t(1), 100, 0);
        assert_eq!(q.len(), 1);
        assert_invariants(&q);
    }
}
