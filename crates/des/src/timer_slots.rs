//! A two-slot inline timer cache.
//!
//! The protocols this engine was built for hold very few timers per node —
//! a control point arms at most two at once (the probe-cycle timer and a
//! timeout), and the device tracks a handful of in-flight processing
//! completions. A `HashMap<Token, EventHandle>` pays a hash, a probe
//! sequence, and (once, per actor) a heap allocation for what is almost
//! always a one- or two-element collection on the hottest path in the
//! simulator.
//!
//! [`TimerSlots`] stores the first two live entries **inline** — lookup is
//! at most two key comparisons on a cache-resident 48-byte struct, and an
//! actor that never exceeds two live timers never allocates. Entries past
//! two spill into a lazily boxed `HashMap`, so correctness never depends
//! on the ≤ 2 expectation: the structure behaves exactly like a map at any
//! population (pinned by a model-based proptest against a `HashMap`
//! reference, spill path included).
//!
//! None of the operations touch the event queue or any RNG, so swapping a
//! `HashMap` for `TimerSlots` cannot perturb a seeded trajectory — the
//! golden-equivalence suite holds bit-for-bit across the swap.

use crate::engine::EventHandle;
use std::collections::HashMap;
use std::hash::Hash;

/// An inline-first map from timer keys to [`EventHandle`]s: two inline
/// slots, lazily allocated spill for the rest.
///
/// # Examples
///
/// ```
/// use presence_des::{SimTime, Simulation, TimerSlots};
///
/// let mut sim: Simulation<u32> = Simulation::new(1);
/// # struct Sink;
/// # impl presence_des::Actor<u32> for Sink {
/// #     fn on_event(&mut self, _: &mut presence_des::Context<'_, u32>, _: u32) {}
/// # }
/// let id = sim.add_actor(Sink);
/// let mut timers: TimerSlots<u8> = TimerSlots::new();
/// let h = sim.schedule_at(SimTime::from_secs_f64(1.0), id, 7);
/// assert_eq!(timers.insert(3, h), None);
/// assert_eq!(timers.remove(3), Some(h));
/// assert!(timers.is_empty());
/// ```
#[derive(Debug)]
pub struct TimerSlots<K> {
    /// The inline fast path: the first two live entries.
    slots: [Option<(K, EventHandle)>; 2],
    /// Overflow past two live entries; allocated on first spill and kept
    /// (empty) afterwards so a node that spiked once doesn't re-allocate
    /// on the next spike. Boxed so the never-spilling common case pays a
    /// single pointer of footprint, not a full inline `HashMap` header —
    /// the struct stays small enough to live inside every actor.
    #[allow(clippy::box_collection)]
    spill: Option<Box<HashMap<K, EventHandle>>>,
}

impl<K> Default for TimerSlots<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K> TimerSlots<K> {
    /// Creates an empty cache (no heap allocation).
    #[must_use]
    pub const fn new() -> Self {
        Self {
            slots: [None, None],
            spill: None,
        }
    }
}

impl<K: Copy + Eq + Hash> TimerSlots<K> {
    /// Creates an empty cache whose spill map is pre-allocated for
    /// `capacity` overflow entries. For nodes where occasional bursts past
    /// two live timers are expected (the device under overload), this
    /// moves the one-off spill allocation to construction time so the
    /// steady-state loop stays allocation-free even across its first
    /// burst.
    #[must_use]
    pub fn with_spill_capacity(capacity: usize) -> Self {
        Self {
            slots: [None, None],
            spill: Some(Box::new(HashMap::with_capacity(capacity))),
        }
    }

    /// Number of live entries.
    #[must_use]
    pub fn len(&self) -> usize {
        let inline = self.slots.iter().filter(|s| s.is_some()).count();
        inline + self.spill.as_ref().map_or(0, |m| m.len())
    }

    /// Whether no entries are live.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(Option::is_none) && self.spill.as_ref().is_none_or(|m| m.is_empty())
    }

    /// The handle stored under `key`, if any.
    #[must_use]
    pub fn get(&self, key: K) -> Option<EventHandle> {
        for (k, h) in self.slots.iter().flatten() {
            if *k == key {
                return Some(*h);
            }
        }
        self.spill.as_ref().and_then(|m| m.get(&key).copied())
    }

    /// Whether an entry is stored under `key`.
    #[must_use]
    pub fn contains(&self, key: K) -> bool {
        self.get(key).is_some()
    }

    /// Inserts (or replaces) the handle under `key`, returning the
    /// replaced handle if the key was already live — the same contract as
    /// `HashMap::insert`.
    pub fn insert(&mut self, key: K, handle: EventHandle) -> Option<EventHandle> {
        // Replace in place wherever the key already lives.
        for (k, h) in self.slots.iter_mut().flatten() {
            if *k == key {
                return Some(std::mem::replace(h, handle));
            }
        }
        // A key can only live in the spill if the spill is non-empty; the
        // emptiness check keeps the pre-warmed-spill common case (device
        // steady state) from paying a hash per insert.
        if let Some(spill) = &mut self.spill {
            if !spill.is_empty() {
                if let Some(old) = spill.get_mut(&key) {
                    return Some(std::mem::replace(old, handle));
                }
            }
        }
        // New key: first free inline slot, else spill.
        for slot in &mut self.slots {
            if slot.is_none() {
                *slot = Some((key, handle));
                return None;
            }
        }
        self.spill
            .get_or_insert_with(Box::default)
            .insert(key, handle)
    }

    /// Removes and returns the handle stored under `key`.
    pub fn remove(&mut self, key: K) -> Option<EventHandle> {
        for slot in &mut self.slots {
            if let Some((k, _)) = slot {
                if *k == key {
                    return slot.take().map(|(_, h)| h);
                }
            }
        }
        self.spill.as_mut().and_then(|m| m.remove(&key))
    }

    /// Removes every entry, invoking `f` on each. The inline slots drain
    /// in slot order, then the spill map in its iteration order — callers
    /// must not depend on the order (the engine's cancel operations
    /// commute, which is what this is for).
    pub fn drain(&mut self, mut f: impl FnMut(K, EventHandle)) {
        for slot in &mut self.slots {
            if let Some((k, h)) = slot.take() {
                f(k, h);
            }
        }
        if let Some(spill) = &mut self.spill {
            for (k, h) in spill.drain() {
                f(k, h);
            }
        }
    }

    /// Keeps only the entries for which `f` returns `true` (the pruning
    /// pass the device runs over its in-flight processing completions).
    pub fn retain(&mut self, mut f: impl FnMut(K, EventHandle) -> bool) {
        for slot in &mut self.slots {
            if let Some((k, h)) = slot {
                if !f(*k, *h) {
                    *slot = None;
                }
            }
        }
        if let Some(spill) = &mut self.spill {
            spill.retain(|&k, &mut h| f(k, h));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Actor, Context, Simulation};
    use crate::time::SimTime;

    struct Sink;
    impl Actor<u32> for Sink {
        fn on_event(&mut self, _: &mut Context<'_, u32>, _: u32) {}
    }

    /// Mints distinct handles from a throwaway simulation.
    fn handles(n: usize) -> Vec<EventHandle> {
        let mut sim: Simulation<u32> = Simulation::new(1);
        let id = sim.add_actor(Sink);
        (0..n)
            .map(|i| sim.schedule_at(SimTime::from_secs_f64(1.0 + i as f64), id, 0))
            .collect()
    }

    #[test]
    fn inline_slots_cover_two_keys_without_spill() {
        let hs = handles(3);
        let mut t: TimerSlots<u8> = TimerSlots::new();
        assert!(t.is_empty());
        assert_eq!(t.insert(1, hs[0]), None);
        assert_eq!(t.insert(2, hs[1]), None);
        assert_eq!(t.len(), 2);
        assert!(t.spill.is_none(), "two keys must stay inline");
        assert_eq!(t.insert(1, hs[2]), Some(hs[0]), "replace returns old");
        assert_eq!(t.get(1), Some(hs[2]));
        assert_eq!(t.remove(2), Some(hs[1]));
        assert_eq!(t.remove(2), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn third_key_spills_and_behaves_like_a_map() {
        let hs = handles(4);
        let mut t: TimerSlots<u8> = TimerSlots::new();
        t.insert(1, hs[0]);
        t.insert(2, hs[1]);
        t.insert(3, hs[2]);
        assert!(t.spill.is_some(), "third key must spill");
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(3), Some(hs[2]));
        assert_eq!(t.insert(3, hs[3]), Some(hs[2]), "replace in spill");
        // Removing an inline key then inserting a fresh one reuses the
        // inline slot even while the spill holds an entry.
        assert_eq!(t.remove(1), Some(hs[0]));
        assert_eq!(t.insert(4, hs[0]), None);
        assert_eq!(t.len(), 3);
        let mut drained = Vec::new();
        t.drain(|k, h| drained.push((k, h)));
        assert_eq!(drained.len(), 3);
        assert!(t.is_empty());
    }

    #[test]
    fn retain_prunes_inline_and_spill() {
        let hs = handles(4);
        let mut t: TimerSlots<u8> = TimerSlots::new();
        for (i, &h) in hs.iter().enumerate() {
            t.insert(i as u8, h);
        }
        t.retain(|k, _| k % 2 == 0);
        assert_eq!(t.len(), 2);
        assert!(t.contains(0) && t.contains(2));
        assert!(!t.contains(1) && !t.contains(3));
    }

    #[test]
    fn with_spill_capacity_preallocates() {
        let hs = handles(3);
        let mut t: TimerSlots<u8> = TimerSlots::with_spill_capacity(8);
        assert!(t.is_empty());
        for (i, &h) in hs.iter().enumerate() {
            t.insert(i as u8, h);
        }
        assert_eq!(t.len(), 3);
        assert!(t.spill.as_ref().is_some_and(|m| m.capacity() >= 8));
    }
}
