//! Virtual time for the simulation engine.
//!
//! Time is a `u64` count of **nanoseconds** since simulation start. Using an
//! integer clock (instead of `f64` seconds) keeps the event queue free of
//! floating-point comparison hazards: two events scheduled at "the same"
//! instant compare equal exactly, and accumulation over the paper's
//! 20 000-simulated-second transient runs cannot drift.
//!
//! Conversions to `f64` seconds happen only at the statistics boundary.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Nanoseconds per second, the resolution of the virtual clock.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

/// A span of virtual time (non-negative).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from whole nanoseconds.
    #[must_use]
    pub const fn from_nanos(nanos: u64) -> Self {
        Self(nanos)
    }

    /// Creates a duration from whole microseconds.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        Self(micros * 1_000)
    }

    /// Creates a duration from whole milliseconds.
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        Self(millis * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        Self(secs * NANOS_PER_SEC)
    }

    /// Subtracts `other`, clamping at zero (like
    /// `Duration::saturating_sub`).
    #[must_use]
    pub const fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN, or too large to represent.
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration must be non-negative and finite, got {secs}"
        );
        let nanos = secs * NANOS_PER_SEC as f64;
        assert!(
            nanos <= u64::MAX as f64,
            "duration {secs}s overflows the virtual clock"
        );
        Self(nanos.round() as u64)
    }

    /// The duration in whole nanoseconds.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration in fractional seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Saturating duration addition.
    #[must_use]
    pub const fn saturating_add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }

    /// Scales the duration by a non-negative factor, rounding to the nearest
    /// nanosecond.
    ///
    /// # Panics
    ///
    /// Panics on a negative or non-finite factor.
    #[must_use]
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be non-negative and finite"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.9}s", self.as_secs_f64())
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("duration overflow"))
    }
}

/// An instant on the virtual clock (nanoseconds since simulation start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch, `t = 0`.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant (used as "never").
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from whole nanoseconds since the epoch.
    #[must_use]
    pub const fn from_nanos(nanos: u64) -> Self {
        Self(nanos)
    }

    /// Creates an instant from fractional seconds since the epoch.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN, or too large.
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime(SimDuration::from_secs_f64(secs).as_nanos())
    }

    /// Nanoseconds since the epoch.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds since the epoch.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// The later of two instants.
    #[must_use]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    #[must_use]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    /// Time elapsed since `earlier`; [`SimDuration::ZERO`] if `earlier` is in
    /// the future (saturating, like `Instant::saturating_duration_since`).
    #[must_use]
    pub const fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration.
    #[must_use]
    pub const fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        match self.0.checked_add(d.as_nanos()) {
            Some(n) => Some(SimTime(n)),
            None => None,
        }
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        self.checked_add(rhs).expect("virtual clock overflow")
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Exact elapsed time; panics if `rhs` is later than `self`.
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("subtracting a later SimTime from an earlier one"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_seconds() {
        for &s in &[0.0, 0.021, 0.022, 1.0, 2.5, 20_000.0] {
            let t = SimTime::from_secs_f64(s);
            assert!((t.as_secs_f64() - s).abs() < 1e-9, "round-trip of {s}");
        }
    }

    #[test]
    fn nanosecond_resolution_is_exact() {
        let t = SimTime::from_secs_f64(0.022);
        assert_eq!(t.as_nanos(), 22_000_000);
        let d = SimDuration::from_secs_f64(0.021);
        assert_eq!(d.as_nanos(), 21_000_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs_f64(1.0) + SimDuration::from_secs_f64(0.5);
        assert_eq!(t, SimTime::from_secs_f64(1.5));
        let d = SimTime::from_secs_f64(3.0) - SimTime::from_secs_f64(1.0);
        assert_eq!(d, SimDuration::from_secs(2));
    }

    #[test]
    #[should_panic(expected = "later SimTime")]
    fn subtraction_underflow_panics() {
        let _ = SimTime::from_secs_f64(1.0) - SimTime::from_secs_f64(2.0);
    }

    #[test]
    fn saturating_since() {
        let a = SimTime::from_secs_f64(1.0);
        let b = SimTime::from_secs_f64(2.0);
        assert_eq!(b.saturating_since(a), SimDuration::from_secs(1));
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_duration_rejected() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn nan_duration_rejected() {
        let _ = SimDuration::from_secs_f64(f64::NAN);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_secs_f64(1.0) < SimTime::from_secs_f64(1.000000001));
        assert_eq!(SimTime::ZERO.min(SimTime::MAX), SimTime::ZERO);
        assert_eq!(SimTime::ZERO.max(SimTime::MAX), SimTime::MAX);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_secs(10).mul_f64(0.5);
        assert_eq!(d, SimDuration::from_secs(5));
        assert_eq!(SimDuration::from_secs(1).mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimTime::from_secs_f64(1.5)), "t=1.500000s");
        assert_eq!(format!("{}", SimDuration::from_millis(22)), "0.022000000s");
    }

    #[test]
    fn checked_add_overflow() {
        assert!(SimTime::MAX
            .checked_add(SimDuration::from_nanos(1))
            .is_none());
        assert_eq!(
            SimDuration::from_nanos(u64::MAX).saturating_add(SimDuration::from_nanos(1)),
            SimDuration::from_nanos(u64::MAX)
        );
    }
}
