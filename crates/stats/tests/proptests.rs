//! Property-based tests for the statistics substrate.

use presence_stats::{
    autocorrelation, coefficient_of_variation, jain_index, max_min_ratio, t_quantile, z_quantile,
    BatchMeans, BatchMeansConfig, Histogram, P2Quantile, TimeSeries, TimeWeighted, Welford,
};
use proptest::prelude::*;

fn finite_f64() -> impl Strategy<Value = f64> {
    -1e6..1e6f64
}

fn finite_vec(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(finite_f64(), 1..max_len)
}

proptest! {
    #[test]
    fn welford_mean_matches_naive(xs in finite_vec(200)) {
        let mut w = Welford::new();
        w.extend(xs.iter().copied());
        let naive = xs.iter().sum::<f64>() / xs.len() as f64;
        prop_assert!((w.mean() - naive).abs() < 1e-6 * (1.0 + naive.abs()));
    }

    #[test]
    fn welford_variance_non_negative(xs in finite_vec(200)) {
        let mut w = Welford::new();
        w.extend(xs.iter().copied());
        if xs.len() >= 2 {
            prop_assert!(w.sample_variance() >= -1e-9);
        }
        prop_assert!(w.population_variance() >= -1e-9);
    }

    #[test]
    fn welford_merge_associative(xs in finite_vec(100), ys in finite_vec(100)) {
        let mut a = Welford::new();
        a.extend(xs.iter().copied());
        let mut b = Welford::new();
        b.extend(ys.iter().copied());
        let mut merged = a;
        merged.merge(&b);

        let mut whole = Welford::new();
        whole.extend(xs.iter().copied().chain(ys.iter().copied()));
        prop_assert_eq!(merged.count(), whole.count());
        prop_assert!((merged.mean() - whole.mean()).abs() < 1e-6 * (1.0 + whole.mean().abs()));
    }

    #[test]
    fn welford_min_max_bracket_mean(xs in finite_vec(100)) {
        let mut w = Welford::new();
        w.extend(xs.iter().copied());
        prop_assert!(w.min() <= w.mean() + 1e-9);
        prop_assert!(w.mean() <= w.max() + 1e-9);
    }

    #[test]
    fn jain_index_bounds(xs in prop::collection::vec(0.0..1e6f64, 1..50)) {
        let j = jain_index(&xs);
        let n = xs.len() as f64;
        if xs.iter().any(|&x| x > 0.0) {
            prop_assert!(j >= 1.0 / n - 1e-9);
            prop_assert!(j <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn jain_scale_invariant(xs in prop::collection::vec(0.1..1e3f64, 2..30), c in 0.1..100.0f64) {
        let scaled: Vec<f64> = xs.iter().map(|x| x * c).collect();
        let a = jain_index(&xs);
        let b = jain_index(&scaled);
        prop_assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn max_min_ratio_at_least_one(xs in prop::collection::vec(0.001..1e4f64, 1..30)) {
        prop_assert!(max_min_ratio(&xs) >= 1.0 - 1e-12);
    }

    #[test]
    fn cv_non_negative(xs in prop::collection::vec(0.1..1e4f64, 2..50)) {
        let cv = coefficient_of_variation(&xs);
        prop_assert!(cv >= -1e-12);
    }

    #[test]
    fn histogram_conserves_samples(xs in finite_vec(300)) {
        let mut h = Histogram::new(-100.0, 100.0, 32);
        h.extend(xs.iter().copied());
        prop_assert_eq!(h.total(), xs.len() as u64);
        let binned: u64 = h.bins().map(|b| b.count).sum();
        prop_assert_eq!(binned, h.in_range());
    }

    #[test]
    fn histogram_quantiles_monotone(xs in prop::collection::vec(0.0..10.0f64, 10..200)) {
        let mut h = Histogram::new(0.0, 10.0, 50);
        h.extend(xs.iter().copied());
        let q25 = h.quantile(0.25).unwrap();
        let q50 = h.quantile(0.50).unwrap();
        let q75 = h.quantile(0.75).unwrap();
        prop_assert!(q25 <= q50 + 1e-9);
        prop_assert!(q50 <= q75 + 1e-9);
    }

    #[test]
    fn p2_stays_in_sample_range(xs in prop::collection::vec(-1e3..1e3f64, 5..500), q in 0.01..0.99f64) {
        let mut p = P2Quantile::new(q);
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &x in &xs {
            p.push(x);
            min = min.min(x);
            max = max.max(x);
        }
        let est = p.estimate().unwrap();
        prop_assert!(est >= min - 1e-9, "estimate {} below min {}", est, min);
        prop_assert!(est <= max + 1e-9, "estimate {} above max {}", est, max);
    }

    #[test]
    fn p2_median_reasonable_for_uniform(n in 100usize..2000) {
        let mut p = P2Quantile::new(0.5);
        let mut s: u64 = 0x853c49e6748fea9b;
        for _ in 0..n {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            p.push((s >> 11) as f64 / (1u64 << 53) as f64);
        }
        let est = p.estimate().unwrap();
        prop_assert!((est - 0.5).abs() < 0.25);
    }

    #[test]
    fn timeseries_window_subset(ts_points in prop::collection::vec((0.0..1e4f64, finite_f64()), 1..100)) {
        let mut pts = ts_points;
        pts.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let mut ts = TimeSeries::new();
        for &(t, v) in &pts {
            ts.push(t, v);
        }
        let w = ts.window(100.0, 5000.0);
        for s in w {
            prop_assert!(s.t >= 100.0 && s.t < 5000.0);
        }
        prop_assert_eq!(ts.len(), pts.len());
    }

    #[test]
    fn time_weighted_mean_in_value_range(
        steps in prop::collection::vec((0.0..100.0f64, 0.0..50.0f64), 1..40),
        horizon in 101.0..200.0f64,
    ) {
        let mut sorted = steps;
        sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let mut tw = TimeWeighted::new();
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &(t, v) in &sorted {
            tw.set(t, v);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        let m = tw.mean_until(horizon).unwrap();
        prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
    }

    #[test]
    fn t_quantile_above_normal(p in 0.55..0.999f64, df in 3u64..200) {
        // Student-t has heavier tails than the normal distribution.
        prop_assert!(t_quantile(p, df) >= z_quantile(p) - 1e-6);
    }

    #[test]
    fn t_quantile_decreasing_in_df(p in 0.75..0.999f64) {
        let t5 = t_quantile(p, 5);
        let t50 = t_quantile(p, 50);
        let t500 = t_quantile(p, 500);
        prop_assert!(t5 >= t50 - 1e-9);
        prop_assert!(t50 >= t500 - 1e-9);
    }

    #[test]
    fn autocorrelation_bounded(xs in prop::collection::vec(-100.0..100.0f64, 10..200), lag in 1usize..5) {
        let r = autocorrelation(&xs, lag);
        if r.is_finite() {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
        }
    }

    #[test]
    fn batch_means_mean_within_data_range(xs in prop::collection::vec(0.0..100.0f64, 50..400)) {
        let cfg = BatchMeansConfig {
            warmup: 0,
            batch_size: 10,
            min_batches: 2,
            level: 0.95,
            target_relative_half_width: 0.1,
        };
        let mut bm = BatchMeans::new(cfg).unwrap();
        for &x in &xs {
            bm.push(x);
        }
        if bm.batches() > 0 {
            let m = bm.mean();
            prop_assert!((-1e-9..=100.0 + 1e-9).contains(&m));
        }
    }
}
