//! Statistics substrate for the `presence` workspace.
//!
//! The paper ("Are You Still There?", DSN 2005) evaluates its probe protocols
//! with discrete-event simulation analysed through two lenses:
//!
//! * **steady-state** estimation using the *batch means* technique with a
//!   relative confidence-interval stopping rule (confidence interval width
//!   0.1 at level 0.95), and
//! * **transient** plots of per-control-point probe frequencies and device
//!   load over (virtual) time.
//!
//! This crate provides exactly those tools, implemented from first
//! principles so that the whole analysis chain is auditable:
//!
//! * [`Welford`] — numerically stable online mean/variance (and
//!   [`Covariance`] for paired samples),
//! * [`BatchMeans`] — steady-state point estimates with Student-t
//!   confidence intervals and a relative-half-width stopping rule,
//! * [`ConfidenceInterval`] and Student-t quantiles ([`t_quantile`]),
//! * [`Histogram`] — fixed-width binning with quantile queries,
//! * [`P2Quantile`] — constant-memory online quantile estimation,
//! * [`TimeSeries`] — timestamped samples with windowed queries and
//!   resampling (the substrate for reproducing Figures 2–5),
//! * [`TimeWeighted`] — time-weighted averages (e.g. mean buffer
//!   occupancy ≈ 0.004 in the paper's steady-state study),
//! * [`RateMeter`] — event rates over sliding/jumping windows (device
//!   load in probes/second, Figure 5),
//! * fairness metrics ([`jain_index`], [`coefficient_of_variation`]) used to
//!   quantify the unfairness the paper demonstrates graphically,
//! * [`autocorrelation`] and batch-size selection helpers,
//! * [`merge_indexed`] — seed-ordered merging of parallel worker results,
//!   so cross-seed summaries stay bit-identical to a serial fold,
//! * [`slice_windows`] / [`window_slice`] — per-regime-window slicing of
//!   time-stamped series (the scenario lab's sliced metrics).
//!
//! All estimators are plain `f64` state machines with no dependencies, so
//! they can run inside the simulator, inside benches, or inside the
//! wall-clock runtime unchanged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod autocorr;
mod batch_means;
mod ci;
mod fairness;
mod histogram;
mod merge;
mod quantile;
mod rate;
mod slice;
mod summary;
mod timeseries;
mod welford;

pub use autocorr::{autocorrelation, lag1_autocorrelation, suggest_batch_count, von_neumann_ratio};
pub use batch_means::{BatchMeans, BatchMeansConfig, SteadyStateVerdict};
pub use ci::{t_quantile, z_quantile, ConfidenceInterval};
pub use fairness::{coefficient_of_variation, jain_index, max_min_ratio};
pub use histogram::{Histogram, HistogramBin};
pub use merge::merge_indexed;
pub use quantile::P2Quantile;
pub use rate::{JumpingWindowRate, RateMeter};
pub use slice::{merge_boundaries, slice_windows, step_mean, window_mean, window_slice};
pub use summary::{describe, Summary};
pub use timeseries::{Sample, TimeSeries, TimeSeriesSummary, TimeWeighted};
pub use welford::{Covariance, Welford};
