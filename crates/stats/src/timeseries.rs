//! Timestamped sample recording with windowed queries.
//!
//! The paper's Figures 2–4 plot per-CP probe *frequency* (1/δ) against
//! simulated time, and Figure 5 plots device load and population size over a
//! 30-minute window. [`TimeSeries`] is the recorder behind all of those: the
//! simulation pushes `(t, value)` pairs and the experiment harness queries
//! windows, resamples onto a uniform grid for plotting, and computes
//! time-weighted means.

use crate::welford::Welford;
use serde::{Deserialize, Serialize};

/// One timestamped observation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Time of the observation, in seconds.
    pub t: f64,
    /// Observed value.
    pub value: f64,
}

/// Summary statistics over (a window of) a time series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeSeriesSummary {
    /// Number of samples in the window.
    pub count: u64,
    /// Plain (unweighted) mean of the sampled values.
    pub mean: f64,
    /// Unbiased sample variance of the values.
    pub variance: f64,
    /// Smallest value.
    pub min: f64,
    /// Largest value.
    pub max: f64,
}

/// An append-only time series with monotonically non-decreasing timestamps.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    samples: Vec<Sample>,
}

impl TimeSeries {
    /// Creates an empty series.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty series with preallocated capacity.
    #[must_use]
    pub fn with_capacity(n: usize) -> Self {
        Self {
            samples: Vec::with_capacity(n),
        }
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not finite or moves backwards in time — simulation
    /// clocks are monotone, so a violation is a harness bug worth failing
    /// loudly on.
    pub fn push(&mut self, t: f64, value: f64) {
        assert!(t.is_finite(), "timestamp must be finite");
        if let Some(last) = self.samples.last() {
            assert!(
                t >= last.t,
                "timestamps must be non-decreasing: {t} after {}",
                last.t
            );
        }
        self.samples.push(Sample { t, value });
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the series is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// All samples, in time order.
    #[must_use]
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// First timestamp, if any.
    #[must_use]
    pub fn start(&self) -> Option<f64> {
        self.samples.first().map(|s| s.t)
    }

    /// Last timestamp, if any.
    #[must_use]
    pub fn end(&self) -> Option<f64> {
        self.samples.last().map(|s| s.t)
    }

    /// Samples with `from <= t < to`.
    #[must_use]
    pub fn window(&self, from: f64, to: f64) -> &[Sample] {
        let lo = self.samples.partition_point(|s| s.t < from);
        let hi = self.samples.partition_point(|s| s.t < to);
        &self.samples[lo..hi]
    }

    /// Summary over `[from, to)`; `None` when the window is empty.
    #[must_use]
    pub fn summarize(&self, from: f64, to: f64) -> Option<TimeSeriesSummary> {
        let w = self.window(from, to);
        if w.is_empty() {
            return None;
        }
        let mut acc = Welford::new();
        for s in w {
            acc.push(s.value);
        }
        Some(TimeSeriesSummary {
            count: acc.count(),
            mean: acc.mean(),
            variance: acc.sample_variance(),
            min: acc.min(),
            max: acc.max(),
        })
    }

    /// Summary over the whole series.
    ///
    /// Uses an explicit `+∞` upper bound rather than `end + 1.0`: for
    /// timestamps at or above 2^53, `e + 1.0 == e` and a half-open window
    /// ending there would silently drop the last sample.
    #[must_use]
    pub fn summarize_all(&self) -> Option<TimeSeriesSummary> {
        self.start().and_then(|s| self.summarize(s, f64::INFINITY))
    }

    /// Value in effect at time `t` under *sample-and-hold* semantics: the
    /// value of the latest sample with timestamp `<= t`. `None` before the
    /// first sample.
    ///
    /// This is the right interpolation for step signals such as "number of
    /// CPs currently present" (Figure 5's second curve).
    #[must_use]
    pub fn value_at(&self, t: f64) -> Option<f64> {
        let idx = self.samples.partition_point(|s| s.t <= t);
        if idx == 0 {
            None
        } else {
            Some(self.samples[idx - 1].value)
        }
    }

    /// Resamples onto a uniform grid of `points` timestamps spanning
    /// `[from, to]` using sample-and-hold. Entries before the first sample
    /// hold `f64::NAN`.
    ///
    /// This is what the plotting/CSV layer feeds to gnuplot-style output so
    /// that different runs are comparable point-by-point.
    #[must_use]
    pub fn resample(&self, from: f64, to: f64, points: usize) -> Vec<Sample> {
        assert!(points >= 2, "need at least two grid points");
        assert!(to > from, "empty resample interval");
        let step = (to - from) / (points - 1) as f64;
        (0..points)
            .map(|i| {
                let t = from + i as f64 * step;
                Sample {
                    t,
                    value: self.value_at(t).unwrap_or(f64::NAN),
                }
            })
            .collect()
    }

    /// Time-weighted mean of a step signal over `[from, to)`: each sample's
    /// value is weighted by how long it remained the latest sample.
    ///
    /// `None` if no sample is in effect anywhere in the window.
    #[must_use]
    pub fn time_weighted_mean(&self, from: f64, to: f64) -> Option<f64> {
        if to <= from {
            return None;
        }
        let mut acc = 0.0;
        let mut covered = 0.0;
        let mut current = self.value_at(from);
        let mut cursor = from;
        for s in self.window(from, to) {
            if let Some(v) = current {
                acc += v * (s.t - cursor);
                covered += s.t - cursor;
            }
            current = Some(s.value);
            cursor = s.t;
        }
        if let Some(v) = current {
            acc += v * (to - cursor);
            covered += to - cursor;
        }
        if covered > 0.0 {
            Some(acc / covered)
        } else {
            None
        }
    }
}

/// Tracks the time-weighted average of a piecewise-constant signal online,
/// without storing samples.
///
/// The paper reports "the average buffer length is very small (≈ 0.004)";
/// that is a time-weighted average of the buffer-occupancy step signal, and
/// this accumulator computes exactly that in O(1) memory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeWeighted {
    last_t: f64,
    last_v: f64,
    weighted_sum: f64,
    elapsed: f64,
    max: f64,
    started: bool,
}

impl Default for TimeWeighted {
    fn default() -> Self {
        Self::new()
    }
}

impl TimeWeighted {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self {
            last_t: 0.0,
            last_v: 0.0,
            weighted_sum: 0.0,
            elapsed: 0.0,
            max: f64::NEG_INFINITY,
            started: false,
        }
    }

    /// Records that the signal changed to `v` at time `t`.
    ///
    /// # Panics
    ///
    /// Panics if time moves backwards.
    pub fn set(&mut self, t: f64, v: f64) {
        if self.started {
            assert!(t >= self.last_t, "time must not move backwards");
            self.weighted_sum += self.last_v * (t - self.last_t);
            self.elapsed += t - self.last_t;
        }
        self.started = true;
        self.last_t = t;
        self.last_v = v;
        self.max = self.max.max(v);
    }

    /// Finalises the signal up to time `t` and returns the time-weighted
    /// mean so far; `None` if the signal never changed or no time elapsed.
    #[must_use]
    pub fn mean_until(&self, t: f64) -> Option<f64> {
        if !self.started {
            return None;
        }
        let extra = (t - self.last_t).max(0.0);
        let total = self.elapsed + extra;
        if total <= 0.0 {
            return None;
        }
        Some((self.weighted_sum + self.last_v * extra) / total)
    }

    /// Largest value ever set; `−∞` before the first `set`.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Current (latest) value; `None` before the first `set`.
    #[must_use]
    pub fn current(&self) -> Option<f64> {
        self.started.then_some(self.last_v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_window() {
        let mut ts = TimeSeries::new();
        for i in 0..10 {
            ts.push(i as f64, (i * i) as f64);
        }
        let w = ts.window(2.0, 5.0);
        assert_eq!(w.len(), 3);
        assert_eq!(w[0].value, 4.0);
        assert_eq!(w[2].value, 16.0);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn rejects_time_travel() {
        let mut ts = TimeSeries::new();
        ts.push(5.0, 1.0);
        ts.push(4.0, 1.0);
    }

    #[test]
    fn equal_timestamps_allowed() {
        let mut ts = TimeSeries::new();
        ts.push(1.0, 1.0);
        ts.push(1.0, 2.0);
        assert_eq!(ts.len(), 2);
    }

    #[test]
    fn summarize_window() {
        let mut ts = TimeSeries::new();
        ts.push(0.0, 1.0);
        ts.push(1.0, 3.0);
        ts.push(2.0, 5.0);
        let s = ts.summarize(0.0, 3.0).unwrap();
        assert_eq!(s.count, 3);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!(ts.summarize(10.0, 20.0).is_none());
    }

    #[test]
    fn summarize_all_spans_everything() {
        let mut ts = TimeSeries::new();
        ts.push(0.0, 1.0);
        ts.push(1.0, 3.0);
        ts.push(2.0, 5.0);
        let s = ts.summarize_all().unwrap();
        assert_eq!(s.count, 3);
        assert_eq!(s.max, 5.0);
        assert!(TimeSeries::new().summarize_all().is_none());
    }

    #[test]
    fn summarize_all_keeps_huge_timestamps() {
        // Regression: the old `summarize(start, end + 1.0)` upper bound
        // collapses for timestamps >= 2^53 (where `e + 1.0 == e`), silently
        // dropping the last sample from the half-open window.
        let t = 2f64.powi(53);
        assert_eq!(t + 1.0, t); // the precondition that broke the old code
        let mut ts = TimeSeries::new();
        ts.push(0.0, 1.0);
        ts.push(t, 7.0);
        let s = ts.summarize_all().unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.max, 7.0);

        // A series of a single huge-timestamp sample must not vanish.
        let mut ts = TimeSeries::new();
        ts.push(t, 7.0);
        let s = ts.summarize_all().unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 7.0);
    }

    #[test]
    fn value_at_sample_and_hold() {
        let mut ts = TimeSeries::new();
        ts.push(1.0, 10.0);
        ts.push(3.0, 20.0);
        assert_eq!(ts.value_at(0.5), None);
        assert_eq!(ts.value_at(1.0), Some(10.0));
        assert_eq!(ts.value_at(2.9), Some(10.0));
        assert_eq!(ts.value_at(3.0), Some(20.0));
        assert_eq!(ts.value_at(100.0), Some(20.0));
    }

    #[test]
    fn resample_grid() {
        let mut ts = TimeSeries::new();
        ts.push(0.0, 1.0);
        ts.push(5.0, 2.0);
        let grid = ts.resample(0.0, 10.0, 11);
        assert_eq!(grid.len(), 11);
        assert_eq!(grid[0].value, 1.0);
        assert_eq!(grid[4].value, 1.0);
        assert_eq!(grid[5].value, 2.0);
        assert_eq!(grid[10].value, 2.0);
        assert!((grid[10].t - 10.0).abs() < 1e-12);
    }

    #[test]
    fn resample_before_first_sample_is_nan() {
        let mut ts = TimeSeries::new();
        ts.push(5.0, 1.0);
        let grid = ts.resample(0.0, 10.0, 3);
        assert!(grid[0].value.is_nan());
        assert_eq!(grid[2].value, 1.0);
    }

    #[test]
    fn time_weighted_mean_step_signal() {
        let mut ts = TimeSeries::new();
        ts.push(0.0, 0.0);
        ts.push(1.0, 10.0); // 10 for 9 time units out of 10
        let m = ts.time_weighted_mean(0.0, 10.0).unwrap();
        assert!((m - 9.0).abs() < 1e-12, "got {m}");
    }

    #[test]
    fn time_weighted_mean_ignores_uncovered_prefix() {
        let mut ts = TimeSeries::new();
        ts.push(5.0, 4.0);
        // Window [0,10): only [5,10) is covered, value 4 throughout.
        let m = ts.time_weighted_mean(0.0, 10.0).unwrap();
        assert!((m - 4.0).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_accumulator_matches_series() {
        let mut ts = TimeSeries::new();
        let mut tw = TimeWeighted::new();
        let steps = [(0.0, 2.0), (1.0, 4.0), (4.0, 0.0), (6.0, 1.0)];
        for &(t, v) in &steps {
            ts.push(t, v);
            tw.set(t, v);
        }
        let a = ts.time_weighted_mean(0.0, 10.0).unwrap();
        let b = tw.mean_until(10.0).unwrap();
        assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        assert_eq!(tw.max(), 4.0);
        assert_eq!(tw.current(), Some(1.0));
    }

    #[test]
    fn time_weighted_empty() {
        let tw = TimeWeighted::new();
        assert!(tw.mean_until(10.0).is_none());
        assert!(tw.current().is_none());
    }

    #[test]
    fn buffer_occupancy_scenario() {
        // A buffer that is almost always empty, briefly at 2: the paper's
        // "average buffer length ~ 0.004" style of measurement.
        let mut tw = TimeWeighted::new();
        tw.set(0.0, 0.0);
        tw.set(100.0, 2.0);
        tw.set(100.2, 0.0);
        let m = tw.mean_until(1000.0).unwrap();
        assert!((m - 0.0004).abs() < 1e-9, "mean occupancy {m}");
    }
}
