//! Five-number-style descriptive summaries.
//!
//! Experiment reports repeatedly need "describe this batch of numbers";
//! [`describe`] computes the standard summary in one pass over a slice
//! (exact order statistics, not streaming estimates — report-sized inputs
//! are small).

use serde::{Deserialize, Serialize};

/// Descriptive statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of finite samples described.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Unbiased sample standard deviation (`NaN` for fewer than two).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Lower quartile (linear interpolation).
    pub q25: f64,
    /// Median.
    pub median: f64,
    /// Upper quartile.
    pub q75: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Interquartile range.
    #[must_use]
    pub fn iqr(&self) -> f64 {
        self.q75 - self.q25
    }

    /// Renders as a compact single line.
    #[must_use]
    pub fn one_line(&self) -> String {
        format!(
            "n={} mean={:.3} sd={:.3} min={:.3} q25={:.3} med={:.3} q75={:.3} max={:.3}",
            self.count,
            self.mean,
            self.std_dev,
            self.min,
            self.q25,
            self.median,
            self.q75,
            self.max
        )
    }
}

/// Exact quantile of a **sorted** slice with linear interpolation
/// (type-7, the R/NumPy default).
fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Describes a sample, ignoring non-finite values. Returns `None` for an
/// empty (or all-non-finite) input.
#[must_use]
pub fn describe(xs: &[f64]) -> Option<Summary> {
    let mut sorted: Vec<f64> = xs.iter().copied().filter(|x| x.is_finite()).collect();
    if sorted.is_empty() {
        return None;
    }
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let n = sorted.len();
    let mean = sorted.iter().sum::<f64>() / n as f64;
    let std_dev = if n < 2 {
        f64::NAN
    } else {
        (sorted.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64).sqrt()
    };
    Some(Summary {
        count: n,
        mean,
        std_dev,
        min: sorted[0],
        q25: quantile_sorted(&sorted, 0.25),
        median: quantile_sorted(&sorted, 0.50),
        q75: quantile_sorted(&sorted, 0.75),
        max: sorted[n - 1],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_none() {
        assert!(describe(&[]).is_none());
        assert!(describe(&[f64::NAN, f64::INFINITY]).is_none());
    }

    #[test]
    fn single_value() {
        let s = describe(&[7.0]).unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.min, 7.0);
        assert_eq!(s.median, 7.0);
        assert_eq!(s.max, 7.0);
        assert!(s.std_dev.is_nan());
    }

    #[test]
    fn known_quartiles() {
        // 1..=5: q25 = 2, median = 3, q75 = 4 under type-7.
        let s = describe(&[5.0, 1.0, 3.0, 2.0, 4.0]).unwrap();
        assert_eq!(s.q25, 2.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.q75, 4.0);
        assert_eq!(s.iqr(), 2.0);
    }

    #[test]
    fn interpolated_quartiles() {
        // 1..=4: median = 2.5.
        let s = describe(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!((s.median - 2.5).abs() < 1e-12);
        assert!((s.q25 - 1.75).abs() < 1e-12);
        assert!((s.q75 - 3.25).abs() < 1e-12);
    }

    #[test]
    fn ignores_non_finite() {
        let s = describe(&[1.0, f64::NAN, 3.0]).unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.mean, 2.0);
    }

    #[test]
    fn mean_and_sd_match_direct() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s = describe(&xs).unwrap();
        assert!((s.mean - 5.0).abs() < 1e-12);
        // sample sd of this classic set: sqrt(32/7).
        assert!((s.std_dev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn one_line_renders() {
        let s = describe(&[1.0, 2.0, 3.0]).unwrap();
        let line = s.one_line();
        assert!(line.contains("n=3"));
        assert!(line.contains("med=2.000"));
    }
}
