//! Fairness metrics over per-node allocations.
//!
//! The paper demonstrates SAPP's unfairness with plots; to let benches and
//! tests *assert* the finding we quantify it. Jain's fairness index is the
//! standard choice: 1.0 for a perfectly equal allocation, `1/n` when a
//! single node monopolises the resource. Under SAPP, per-CP probe
//! frequencies should score well below DCPP's near-1.0.

/// Jain's fairness index: `(Σxᵢ)² / (n · Σxᵢ²)`.
///
/// Ranges over `[1/n, 1]` for non-negative allocations; returns `NaN` for an
/// empty slice and `1.0` when every allocation is zero (an all-zero
/// allocation is trivially equal).
///
/// # Examples
///
/// ```
/// use presence_stats::jain_index;
///
/// assert!((jain_index(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
/// let skewed = jain_index(&[10.0, 0.0, 0.0]);
/// assert!((skewed - 1.0 / 3.0).abs() < 1e-12);
/// ```
#[must_use]
pub fn jain_index(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let sum: f64 = xs.iter().sum();
    let sq_sum: f64 = xs.iter().map(|x| x * x).sum();
    if sq_sum == 0.0 {
        return 1.0;
    }
    sum * sum / (xs.len() as f64 * sq_sum)
}

/// Coefficient of variation: sample standard deviation divided by mean.
///
/// Returns `NaN` for fewer than two samples or a zero mean.
#[must_use]
pub fn coefficient_of_variation(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return f64::NAN;
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    if mean == 0.0 {
        return f64::NAN;
    }
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt() / mean.abs()
}

/// Ratio of the largest to the smallest allocation; `+∞` when the smallest
/// is zero but the largest is not, `NaN` for empty input or all-zero input.
///
/// The paper's steady-state finding — most CPs at delay ≈ 10 s while two sit
/// at ≈ 0.4 s — corresponds to a max/min frequency ratio of roughly 25.
#[must_use]
pub fn max_min_ratio(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &x in xs {
        if !x.is_finite() {
            continue;
        }
        min = min.min(x);
        max = max.max(x);
    }
    if !max.is_finite() {
        return f64::NAN;
    }
    if min == 0.0 {
        return if max == 0.0 { f64::NAN } else { f64::INFINITY };
    }
    max / min
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jain_equal_allocation_is_one() {
        assert!((jain_index(&[5.0; 20]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jain_monopoly_is_one_over_n() {
        let idx = jain_index(&[0.0, 0.0, 0.0, 8.0]);
        assert!((idx - 0.25).abs() < 1e-12);
    }

    #[test]
    fn jain_empty_is_nan() {
        assert!(jain_index(&[]).is_nan());
    }

    #[test]
    fn jain_all_zero_is_one() {
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn jain_in_bounds() {
        let xs = [0.1, 2.5, 7.0, 0.4, 0.4];
        let j = jain_index(&xs);
        assert!(j >= 1.0 / xs.len() as f64 - 1e-12);
        assert!(j <= 1.0 + 1e-12);
    }

    #[test]
    fn jain_paper_shape_is_unfair() {
        // 18 CPs at frequency 0.1/s, 2 at 2.5/s — the paper's SAPP shape.
        let mut xs = vec![0.1; 18];
        xs.extend([2.5, 2.5]);
        let j = jain_index(&xs);
        assert!(j < 0.4, "expected strong unfairness, got {j}");
    }

    #[test]
    fn cv_zero_for_constant() {
        assert!((coefficient_of_variation(&[3.0, 3.0, 3.0])).abs() < 1e-12);
    }

    #[test]
    fn cv_single_sample_nan() {
        assert!(coefficient_of_variation(&[1.0]).is_nan());
    }

    #[test]
    fn cv_known_value() {
        // mean 2, sample var ((1)^2+(1)^2)/1 = 2, sd sqrt(2), cv = sqrt(2)/2.
        let cv = coefficient_of_variation(&[1.0, 3.0]);
        assert!((cv - std::f64::consts::SQRT_2 / 2.0).abs() < 1e-12);
    }

    #[test]
    fn max_min_basic() {
        assert!((max_min_ratio(&[0.4, 10.0]) - 25.0).abs() < 1e-12);
        assert!(max_min_ratio(&[0.0, 1.0]).is_infinite());
        assert!(max_min_ratio(&[]).is_nan());
        assert!(max_min_ratio(&[0.0, 0.0]).is_nan());
    }
}
