//! Fixed-width histograms with quantile queries.
//!
//! Used by the experiment harness to summarise per-CP probe-delay
//! distributions — the paper's §3 finding is precisely that this
//! distribution is *bimodal* under SAPP (most CPs near δ_max = 10 s, a few
//! near 0.4 s), which a histogram makes directly visible.

use serde::{Deserialize, Serialize};

/// One bin of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HistogramBin {
    /// Inclusive lower edge.
    pub low: f64,
    /// Exclusive upper edge (inclusive for the last bin).
    pub high: f64,
    /// Number of samples that fell in `[low, high)`.
    pub count: u64,
}

/// A histogram over a fixed range with uniform bin width.
///
/// Samples below the range go to an underflow counter, samples above to an
/// overflow counter; both are reported separately so no data is silently
/// lost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    low: f64,
    high: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total_in_range: u64,
}

impl Histogram {
    /// Creates a histogram over `[low, high)` with `bins` uniform bins.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high`, the bounds are not finite, or `bins == 0`.
    #[must_use]
    pub fn new(low: f64, high: f64, bins: usize) -> Self {
        assert!(low.is_finite() && high.is_finite(), "bounds must be finite");
        assert!(low < high, "low must be below high");
        assert!(bins > 0, "need at least one bin");
        Self {
            low,
            high,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
            total_in_range: 0,
        }
    }

    /// Adds one sample. Non-finite samples count as overflow (they are
    /// certainly not in range and must not vanish silently).
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() {
            self.overflow += 1;
            return;
        }
        if x < self.low {
            self.underflow += 1;
            return;
        }
        if x > self.high || (x == self.high && self.high != self.low) {
            // The top edge itself is counted in the last bin.
            if x == self.high {
                *self.counts.last_mut().expect("bins > 0") += 1;
                self.total_in_range += 1;
            } else {
                self.overflow += 1;
            }
            return;
        }
        let width = (self.high - self.low) / self.counts.len() as f64;
        let idx = (((x - self.low) / width) as usize).min(self.counts.len() - 1);
        self.counts[idx] += 1;
        self.total_in_range += 1;
    }

    /// Adds every sample from an iterator.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.record(x);
        }
    }

    /// Number of bins.
    #[must_use]
    pub fn bin_count(&self) -> usize {
        self.counts.len()
    }

    /// Width of each bin.
    #[must_use]
    pub fn bin_width(&self) -> f64 {
        (self.high - self.low) / self.counts.len() as f64
    }

    /// Samples that fell below the range.
    #[must_use]
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples that fell above the range (including non-finite ones).
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Samples inside the range.
    #[must_use]
    pub fn in_range(&self) -> u64 {
        self.total_in_range
    }

    /// Total samples recorded, in and out of range.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total_in_range + self.underflow + self.overflow
    }

    /// Iterates over the bins in ascending order.
    pub fn bins(&self) -> impl Iterator<Item = HistogramBin> + '_ {
        let width = self.bin_width();
        self.counts
            .iter()
            .enumerate()
            .map(move |(i, &count)| HistogramBin {
                low: self.low + i as f64 * width,
                high: self.low + (i + 1) as f64 * width,
                count,
            })
    }

    /// The bin with the most samples (ties broken towards the lower bin);
    /// `None` if the histogram is empty in range.
    #[must_use]
    pub fn mode_bin(&self) -> Option<HistogramBin> {
        if self.total_in_range == 0 {
            return None;
        }
        self.bins().max_by(|a, b| {
            a.count
                .cmp(&b.count)
                .then(b.low.partial_cmp(&a.low).expect("finite"))
        })
    }

    /// Approximate quantile (linear interpolation inside the containing
    /// bin) over the in-range samples. `q` must be in `[0, 1]`.
    ///
    /// Returns `None` when no sample is in range.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.total_in_range == 0 {
            return None;
        }
        let target = q * self.total_in_range as f64;
        let mut acc = 0.0;
        let width = self.bin_width();
        for (i, &c) in self.counts.iter().enumerate() {
            let next = acc + c as f64;
            if next >= target && c > 0 {
                let frac = if c == 0 {
                    0.0
                } else {
                    (target - acc) / c as f64
                };
                return Some(self.low + (i as f64 + frac.clamp(0.0, 1.0)) * width);
            }
            acc = next;
        }
        Some(self.high)
    }

    /// Counts the local maxima ("modes") of the bin counts after collapsing
    /// zero bins; a crude but effective bimodality detector used by the E1
    /// experiment to assert the paper's "two populations of CPs" finding.
    #[must_use]
    pub fn mode_count(&self) -> usize {
        // Collapse to nonzero runs: a mode is a run of nonzero bins separated
        // from other runs by zeros, or a strict local maximum within a run.
        let mut peaks = 0;
        let mut prev: Option<u64> = None;
        let mut rising = true;
        for &c in &self.counts {
            match prev {
                None => {
                    if c > 0 {
                        rising = true;
                    }
                }
                Some(p) => {
                    if c > p {
                        rising = true;
                    } else if c < p {
                        if rising && p > 0 {
                            peaks += 1;
                        }
                        rising = false;
                    }
                }
            }
            prev = Some(c);
        }
        if rising && prev.unwrap_or(0) > 0 {
            peaks += 1;
        }
        peaks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_binning() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.extend([0.5, 1.5, 1.6, 9.9]);
        let bins: Vec<_> = h.bins().collect();
        assert_eq!(bins[0].count, 1);
        assert_eq!(bins[1].count, 2);
        assert_eq!(bins[9].count, 1);
        assert_eq!(h.in_range(), 4);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn top_edge_goes_to_last_bin() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(10.0);
        assert_eq!(h.in_range(), 1);
        assert_eq!(h.bins().last().unwrap().count, 1);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn under_and_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.extend([-0.1, 1.1, f64::NAN, f64::INFINITY, 0.5]);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 3);
        assert_eq!(h.in_range(), 1);
        assert_eq!(h.total(), 5);
    }

    #[test]
    #[should_panic(expected = "low must be below high")]
    fn rejects_inverted_range() {
        let _ = Histogram::new(1.0, 0.0, 4);
    }

    #[test]
    fn quantiles_uniform() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.record(i as f64 + 0.5);
        }
        let median = h.quantile(0.5).unwrap();
        assert!((median - 50.0).abs() <= 1.0, "median {median}");
        let p90 = h.quantile(0.9).unwrap();
        assert!((p90 - 90.0).abs() <= 1.0, "p90 {p90}");
        assert_eq!(h.quantile(0.0).unwrap(), 0.0);
    }

    #[test]
    fn quantile_empty_is_none() {
        let h = Histogram::new(0.0, 1.0, 10);
        assert!(h.quantile(0.5).is_none());
    }

    #[test]
    fn mode_bin_finds_peak() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.extend([3.5, 3.6, 3.7, 8.1]);
        let mode = h.mode_bin().unwrap();
        assert_eq!(mode.count, 3);
        assert!((mode.low - 3.0).abs() < 1e-9);
    }

    #[test]
    fn bimodality_detection() {
        let mut h = Histogram::new(0.0, 10.0, 20);
        // Cluster near 0.4 and cluster near 9.5 — the paper's SAPP shape.
        for _ in 0..10 {
            h.record(0.4);
            h.record(9.5);
        }
        assert_eq!(h.mode_count(), 2);

        let mut uni = Histogram::new(0.0, 10.0, 20);
        for _ in 0..10 {
            uni.record(5.0);
        }
        assert_eq!(uni.mode_count(), 1);
    }

    #[test]
    fn mode_count_empty_is_zero() {
        let h = Histogram::new(0.0, 1.0, 5);
        assert_eq!(h.mode_count(), 0);
    }
}
