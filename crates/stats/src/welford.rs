//! Numerically stable online moment accumulation.
//!
//! Welford's algorithm avoids the catastrophic cancellation of the naive
//! `E[X²] − E[X]²` formula, which matters here because simulation runs push
//! tens of millions of samples whose magnitudes differ wildly (probe delays
//! range from 0.02 s to 10 s in the paper's SAPP configuration).

use serde::{Deserialize, Serialize};

/// Online mean/variance accumulator (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use presence_stats::Welford;
///
/// let mut w = Welford::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     w.push(x);
/// }
/// assert_eq!(w.count(), 8);
/// assert!((w.mean() - 5.0).abs() < 1e-12);
/// assert!((w.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    ///
    /// Non-finite samples are ignored (and not counted); simulation code can
    /// therefore push raw ratios without pre-filtering division-by-zero
    /// artefacts.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Adds every sample from an iterator.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }

    /// Number of (finite) observations pushed so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Returns `true` if no observation has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sample mean; `NaN` when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (`n − 1` denominator); `NaN` for fewer than
    /// two observations.
    #[must_use]
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            f64::NAN
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population variance (`n` denominator); `NaN` when empty.
    #[must_use]
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample standard deviation; `NaN` for fewer than two observations.
    #[must_use]
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Standard error of the mean, `s / √n`.
    #[must_use]
    pub fn std_error(&self) -> f64 {
        self.sample_std_dev() / (self.count as f64).sqrt()
    }

    /// Smallest observation; `+∞` when empty.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; `−∞` when empty.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sum of all observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.mean * self.count as f64
    }

    /// Merges another accumulator into this one (parallel Welford / Chan's
    /// method). The result is identical (up to rounding) to having pushed all
    /// samples into a single accumulator.
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Online covariance accumulator for paired samples `(x, y)`.
///
/// Used by the analysis code to check, e.g., whether a control point's probe
/// delay correlates with its join order (one of the hypotheses raised while
/// reproducing the paper's fairness findings).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Covariance {
    count: u64,
    mean_x: f64,
    mean_y: f64,
    c: f64,
    wx: Welford,
    wy: Welford,
}

impl Covariance {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one paired observation. Pairs with any non-finite coordinate are
    /// ignored.
    pub fn push(&mut self, x: f64, y: f64) {
        if !x.is_finite() || !y.is_finite() {
            return;
        }
        self.count += 1;
        let dx = x - self.mean_x;
        self.mean_x += dx / self.count as f64;
        self.mean_y += (y - self.mean_y) / self.count as f64;
        self.c += dx * (y - self.mean_y);
        self.wx.push(x);
        self.wy.push(y);
    }

    /// Number of pairs recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Unbiased sample covariance; `NaN` for fewer than two pairs.
    #[must_use]
    pub fn sample_covariance(&self) -> f64 {
        if self.count < 2 {
            f64::NAN
        } else {
            self.c / (self.count - 1) as f64
        }
    }

    /// Pearson correlation coefficient in `[-1, 1]`; `NaN` when undefined
    /// (fewer than two pairs or zero variance in either coordinate).
    #[must_use]
    pub fn correlation(&self) -> f64 {
        let sx = self.wx.sample_std_dev();
        let sy = self.wy.sample_std_dev();
        if sx == 0.0 || sy == 0.0 {
            return f64::NAN;
        }
        self.sample_covariance() / (sx * sy)
    }

    /// Marginal accumulator over the `x` coordinates.
    #[must_use]
    pub fn x(&self) -> &Welford {
        &self.wx
    }

    /// Marginal accumulator over the `y` coordinates.
    #[must_use]
    pub fn y(&self) -> &Welford {
        &self.wy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, eps: f64) {
        assert!((a - b).abs() < eps, "{a} !~ {b}");
    }

    #[test]
    fn empty_is_nan() {
        let w = Welford::new();
        assert!(w.mean().is_nan());
        assert!(w.sample_variance().is_nan());
        assert!(w.population_variance().is_nan());
        assert!(w.is_empty());
        assert_eq!(w.count(), 0);
    }

    #[test]
    fn single_sample() {
        let mut w = Welford::new();
        w.push(42.0);
        assert_eq!(w.count(), 1);
        assert_close(w.mean(), 42.0, 1e-12);
        assert_close(w.population_variance(), 0.0, 1e-12);
        assert!(w.sample_variance().is_nan());
        assert_eq!(w.min(), 42.0);
        assert_eq!(w.max(), 42.0);
    }

    #[test]
    fn matches_two_pass_computation() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 10.0 + 3.0).collect();
        let mut w = Welford::new();
        w.extend(xs.iter().copied());
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert_close(w.mean(), mean, 1e-9);
        assert_close(w.sample_variance(), var, 1e-9);
    }

    #[test]
    fn ignores_non_finite() {
        let mut w = Welford::new();
        w.push(1.0);
        w.push(f64::NAN);
        w.push(f64::INFINITY);
        w.push(3.0);
        assert_eq!(w.count(), 2);
        assert_close(w.mean(), 2.0, 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..500).map(|i| (i as f64 * 0.7).cos() * 5.0).collect();
        let (a, b) = xs.split_at(137);
        let mut wa = Welford::new();
        wa.extend(a.iter().copied());
        let mut wb = Welford::new();
        wb.extend(b.iter().copied());
        let mut whole = Welford::new();
        whole.extend(xs.iter().copied());
        wa.merge(&wb);
        assert_eq!(wa.count(), whole.count());
        assert_close(wa.mean(), whole.mean(), 1e-9);
        assert_close(wa.sample_variance(), whole.sample_variance(), 1e-9);
        assert_eq!(wa.min(), whole.min());
        assert_eq!(wa.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut w = Welford::new();
        w.extend([1.0, 2.0, 3.0]);
        let snapshot = w;
        w.merge(&Welford::new());
        assert_eq!(w, snapshot);

        let mut e = Welford::new();
        e.merge(&snapshot);
        assert_eq!(e, snapshot);
    }

    #[test]
    fn numerical_stability_large_offset() {
        // Naive E[X^2]-E[X]^2 fails catastrophically here.
        let offset = 1e9;
        let mut w = Welford::new();
        for i in 0..10_000 {
            w.push(offset + (i % 2) as f64);
        }
        assert_close(w.mean(), offset + 0.5, 1e-3);
        assert_close(w.sample_variance(), 0.25, 1e-3);
    }

    #[test]
    fn covariance_perfect_linear() {
        let mut c = Covariance::new();
        for i in 0..100 {
            let x = i as f64;
            c.push(x, 3.0 * x + 1.0);
        }
        assert_close(c.correlation(), 1.0, 1e-12);
        assert!(c.sample_covariance() > 0.0);
    }

    #[test]
    fn covariance_anticorrelated() {
        let mut c = Covariance::new();
        for i in 0..100 {
            let x = i as f64;
            c.push(x, -2.0 * x);
        }
        assert_close(c.correlation(), -1.0, 1e-12);
    }

    #[test]
    fn covariance_independent_is_near_zero() {
        let mut c = Covariance::new();
        for i in 0..1000 {
            // x cycles fast, y cycles slow: empirically near-uncorrelated.
            c.push((i % 7) as f64, ((i / 7) % 5) as f64);
        }
        assert!(c.correlation().abs() < 0.05, "corr = {}", c.correlation());
    }

    #[test]
    fn covariance_skips_non_finite_pairs() {
        let mut c = Covariance::new();
        c.push(1.0, 1.0);
        c.push(f64::NAN, 2.0);
        c.push(2.0, f64::INFINITY);
        c.push(2.0, 2.0);
        assert_eq!(c.count(), 2);
    }

    #[test]
    fn sum_tracks_total() {
        let mut w = Welford::new();
        w.extend([1.5, 2.5, 6.0]);
        assert_close(w.sum(), 10.0, 1e-12);
    }
}
