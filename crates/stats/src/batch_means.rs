//! Steady-state estimation with the batch-means technique.
//!
//! This mirrors the methodology in §3 of the paper: the MÖBIUS steady-state
//! solver collects a stream of observations, discards an initial warm-up
//! transient, groups the remainder into batches, and treats the batch means
//! as (approximately) i.i.d. normal samples to build a Student-t confidence
//! interval. Simulation stops when the interval's relative half-width drops
//! below a target (the paper uses 0.1 at level 0.95).

use crate::ci::ConfidenceInterval;
use crate::welford::Welford;
use serde::{Deserialize, Serialize};

/// Configuration for a [`BatchMeans`] estimator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchMeansConfig {
    /// Number of initial observations discarded as warm-up transient.
    pub warmup: u64,
    /// Observations per batch.
    pub batch_size: u64,
    /// Minimum number of completed batches before a verdict is attempted.
    /// Must be at least 2 (a t interval needs two batch means); 10–30 is
    /// typical.
    pub min_batches: u64,
    /// Confidence level for the interval, e.g. `0.95`.
    pub level: f64,
    /// Target relative half-width, e.g. `0.1` (the paper's setting).
    pub target_relative_half_width: f64,
}

impl Default for BatchMeansConfig {
    fn default() -> Self {
        // The paper's settings: CI 0.1 at 0.95.
        Self {
            warmup: 1_000,
            batch_size: 1_000,
            min_batches: 20,
            level: 0.95,
            target_relative_half_width: 0.1,
        }
    }
}

impl BatchMeansConfig {
    /// Validates the configuration, returning a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.batch_size == 0 {
            return Err("batch_size must be positive".into());
        }
        if self.min_batches < 2 {
            return Err("min_batches must be at least 2".into());
        }
        if !(self.level > 0.0 && self.level < 1.0) {
            return Err(format!("level must be in (0, 1), got {}", self.level));
        }
        if self.target_relative_half_width <= 0.0 || self.target_relative_half_width.is_nan() {
            return Err("target_relative_half_width must be positive".into());
        }
        Ok(())
    }
}

/// The estimator's answer to "have we simulated long enough?".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SteadyStateVerdict {
    /// Still inside the warm-up transient.
    WarmingUp,
    /// Past warm-up but fewer than `min_batches` complete batches.
    Collecting,
    /// Enough batches, but the interval is still wider than the target.
    NotConverged,
    /// The relative half-width target has been met.
    Converged,
}

/// Online batch-means steady-state estimator.
///
/// # Examples
///
/// ```
/// use presence_stats::{BatchMeans, BatchMeansConfig, SteadyStateVerdict};
///
/// let cfg = BatchMeansConfig {
///     warmup: 100,
///     batch_size: 50,
///     min_batches: 10,
///     level: 0.95,
///     target_relative_half_width: 0.1,
/// };
/// let mut bm = BatchMeans::new(cfg).unwrap();
/// let mut x = 0.6f64;
/// for i in 0..20_000 {
///     // A noisy but stationary sequence.
///     x = 0.9 * x + 0.1 * (0.5 + 0.4 * ((i * 2654435761u64 % 1000) as f64 / 1000.0 - 0.5));
///     bm.push(x);
///     if bm.verdict() == SteadyStateVerdict::Converged {
///         break;
///     }
/// }
/// let ci = bm.interval();
/// assert!(ci.contains(bm.mean()));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchMeans {
    cfg: BatchMeansConfig,
    seen: u64,
    current_batch: Welford,
    batch_means: Welford,
    all_post_warmup: Welford,
    means_history: Vec<f64>,
}

impl BatchMeans {
    /// Creates an estimator; rejects invalid configurations.
    pub fn new(cfg: BatchMeansConfig) -> Result<Self, String> {
        cfg.validate()?;
        Ok(Self {
            cfg,
            seen: 0,
            current_batch: Welford::new(),
            batch_means: Welford::new(),
            all_post_warmup: Welford::new(),
            means_history: Vec::new(),
        })
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.seen += 1;
        if self.seen <= self.cfg.warmup {
            return;
        }
        self.all_post_warmup.push(x);
        self.current_batch.push(x);
        if self.current_batch.count() >= self.cfg.batch_size {
            let m = self.current_batch.mean();
            self.batch_means.push(m);
            self.means_history.push(m);
            self.current_batch = Welford::new();
        }
    }

    /// Total observations seen, including warm-up.
    #[must_use]
    pub fn observations(&self) -> u64 {
        self.seen
    }

    /// Number of completed batches.
    #[must_use]
    pub fn batches(&self) -> u64 {
        self.batch_means.count()
    }

    /// Grand mean over all completed batches (`NaN` if none).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.batch_means.mean()
    }

    /// Variance of the underlying post-warm-up observations (not of the
    /// batch means). This is the quantity the paper reports as, e.g., "the
    /// variance [of the device load is] 20.0".
    #[must_use]
    pub fn observation_variance(&self) -> f64 {
        self.all_post_warmup.sample_variance()
    }

    /// The completed batch means, in order.
    #[must_use]
    pub fn batch_means(&self) -> &[f64] {
        &self.means_history
    }

    /// Current confidence interval over the batch means.
    #[must_use]
    pub fn interval(&self) -> ConfidenceInterval {
        ConfidenceInterval::from_stats(
            self.batch_means.mean(),
            self.batch_means.sample_std_dev(),
            self.batch_means.count(),
            self.cfg.level,
        )
    }

    /// Current stopping-rule verdict.
    #[must_use]
    pub fn verdict(&self) -> SteadyStateVerdict {
        if self.seen <= self.cfg.warmup {
            return SteadyStateVerdict::WarmingUp;
        }
        if self.batch_means.count() < self.cfg.min_batches {
            return SteadyStateVerdict::Collecting;
        }
        if self.interval().relative_half_width() <= self.cfg.target_relative_half_width {
            SteadyStateVerdict::Converged
        } else {
            SteadyStateVerdict::NotConverged
        }
    }

    /// Convenience: `verdict() == Converged`.
    #[must_use]
    pub fn is_converged(&self) -> bool {
        self.verdict() == SteadyStateVerdict::Converged
    }

    /// The configuration this estimator was built with.
    #[must_use]
    pub fn config(&self) -> &BatchMeansConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(warmup: u64, batch: u64, min_batches: u64) -> BatchMeansConfig {
        BatchMeansConfig {
            warmup,
            batch_size: batch,
            min_batches,
            level: 0.95,
            target_relative_half_width: 0.1,
        }
    }

    #[test]
    fn rejects_bad_config() {
        assert!(BatchMeans::new(cfg(0, 0, 10)).is_err());
        assert!(BatchMeans::new(cfg(0, 10, 1)).is_err());
        let mut c = cfg(0, 10, 10);
        c.level = 1.5;
        assert!(BatchMeans::new(c).is_err());
        let mut c = cfg(0, 10, 10);
        c.target_relative_half_width = 0.0;
        assert!(BatchMeans::new(c).is_err());
    }

    #[test]
    fn warmup_is_discarded() {
        let mut bm = BatchMeans::new(cfg(10, 5, 2)).unwrap();
        // Warm-up samples are wildly different from the steady phase.
        for _ in 0..10 {
            bm.push(1_000_000.0);
        }
        assert_eq!(bm.verdict(), SteadyStateVerdict::WarmingUp);
        for _ in 0..100 {
            bm.push(5.0);
        }
        assert!((bm.mean() - 5.0).abs() < 1e-12);
        assert_eq!(bm.batches(), 20);
    }

    #[test]
    fn batching_boundaries_exact() {
        let mut bm = BatchMeans::new(cfg(0, 4, 2)).unwrap();
        for i in 0..12 {
            bm.push(i as f64);
        }
        assert_eq!(bm.batches(), 3);
        let means = bm.batch_means();
        assert_eq!(means, &[1.5, 5.5, 9.5]);
    }

    #[test]
    fn constant_stream_converges() {
        let mut bm = BatchMeans::new(cfg(5, 10, 5)).unwrap();
        for _ in 0..100 {
            bm.push(7.0);
        }
        assert_eq!(bm.verdict(), SteadyStateVerdict::Converged);
        let ci = bm.interval();
        assert!((ci.mean - 7.0).abs() < 1e-12);
        // Zero variance → zero half-width.
        assert!(ci.half_width.abs() < 1e-12);
    }

    #[test]
    fn collecting_before_min_batches() {
        let mut bm = BatchMeans::new(cfg(0, 10, 5)).unwrap();
        for _ in 0..25 {
            bm.push(1.0);
        }
        assert_eq!(bm.batches(), 2);
        assert_eq!(bm.verdict(), SteadyStateVerdict::Collecting);
    }

    #[test]
    fn noisy_stream_eventually_converges() {
        let mut bm = BatchMeans::new(cfg(100, 100, 10)).unwrap();
        // Deterministic pseudo-noise around 10.0.
        let mut state: u64 = 0x9e3779b97f4a7c15;
        let mut n = 0u64;
        while !bm.is_converged() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = (state >> 11) as f64 / (1u64 << 53) as f64;
            bm.push(10.0 + (u - 0.5) * 4.0);
            n += 1;
            assert!(n < 1_000_000, "did not converge");
        }
        let ci = bm.interval();
        assert!(ci.contains(10.0), "interval {:?} should contain 10", ci);
        assert!(ci.relative_half_width() <= 0.1);
    }

    #[test]
    fn observation_variance_matches_direct() {
        let mut bm = BatchMeans::new(cfg(0, 5, 2)).unwrap();
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        for &x in &xs {
            bm.push(x);
        }
        let mean = 5.5;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / 9.0;
        assert!((bm.observation_variance() - var).abs() < 1e-12);
    }

    #[test]
    fn partial_batch_not_counted() {
        let mut bm = BatchMeans::new(cfg(0, 10, 2)).unwrap();
        for _ in 0..19 {
            bm.push(1.0);
        }
        assert_eq!(bm.batches(), 1);
        bm.push(1.0);
        assert_eq!(bm.batches(), 2);
    }
}
