//! Per-window ("regime") slicing of time-stamped series.
//!
//! The scenario lab runs experiments whose network and churn regimes
//! switch at configured sim-time boundaries, and reports metrics *per
//! regime window* — device load while the loss storm raged, fairness
//! after the flash crowd drained, and so on. These helpers turn a set of
//! regime start times into half-open windows and slice time-sorted
//! `(t, value)` series against them. They are plain functions over slices
//! so the same slicing serves simulation output, bench reports, and the
//! wall-clock runtime.

/// Merges several boundary lists (each a set of regime start times in
/// seconds) into one sorted, deduplicated list of window starts over
/// `[0, horizon)`: always begins with `0.0`, drops values outside
/// `(0, horizon)`, and removes exact duplicates (boundaries originate
/// from the same spec values, so bitwise equality is the right notion).
#[must_use]
pub fn merge_boundaries(lists: &[&[f64]], horizon: f64) -> Vec<f64> {
    let mut starts = vec![0.0];
    for list in lists {
        for &t in *list {
            if t > 0.0 && t < horizon {
                starts.push(t);
            }
        }
    }
    starts.sort_by(|a, b| a.partial_cmp(b).expect("boundaries are finite"));
    starts.dedup();
    starts
}

/// Turns sorted window starts into half-open `[start, end)` windows, the
/// last one closing at `horizon`.
///
/// # Panics
///
/// Panics if `starts` is empty, unsorted, or reaches past `horizon`.
#[must_use]
pub fn slice_windows(starts: &[f64], horizon: f64) -> Vec<(f64, f64)> {
    assert!(!starts.is_empty(), "need at least one window start");
    let mut windows = Vec::with_capacity(starts.len());
    for (i, &start) in starts.iter().enumerate() {
        let end = starts.get(i + 1).copied().unwrap_or(horizon);
        assert!(
            start < end,
            "window starts must be sorted below the horizon"
        );
        windows.push((start, end));
    }
    windows
}

/// The contiguous run of samples of a time-sorted `(t, value)` series
/// falling in `[from, to)` — two binary searches, no allocation.
#[must_use]
pub fn window_slice(series: &[(f64, f64)], from: f64, to: f64) -> &[(f64, f64)] {
    let lo = series.partition_point(|&(t, _)| t < from);
    let hi = series.partition_point(|&(t, _)| t < to);
    &series[lo..hi]
}

/// Mean of the values of a `(t, value)` series window; `None` when empty.
#[must_use]
pub fn window_mean(window: &[(f64, f64)]) -> Option<f64> {
    if window.is_empty() {
        return None;
    }
    Some(window.iter().map(|&(_, v)| v).sum::<f64>() / window.len() as f64)
}

/// Time-weighted mean of a *step* series (each sample's value holds until
/// the next sample) over `[from, to)` — the right mean for population
/// curves, where a window between two resamples still has a well-defined
/// population: the last value set before it. `None` only when the series
/// is empty or starts after `to`.
#[must_use]
pub fn step_mean(series: &[(f64, f64)], from: f64, to: f64) -> Option<f64> {
    if to <= from {
        return None;
    }
    // Last sample at or before `from` (the value in force as the window
    // opens), then every sample strictly inside the window.
    let first_inside = series.partition_point(|&(t, _)| t <= from);
    let mut current = first_inside.checked_sub(1).map(|i| series[i].1);
    let mut weighted = 0.0;
    let mut covered = 0.0;
    let mut cursor = from;
    for &(t, v) in &series[first_inside..] {
        if t >= to {
            break;
        }
        if let Some(value) = current {
            weighted += value * (t - cursor);
            covered += t - cursor;
        }
        current = Some(v);
        cursor = t;
    }
    let value = current?;
    weighted += value * (to - cursor);
    covered += to - cursor;
    if covered > 0.0 {
        Some(weighted / covered)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_dedups_sorts_and_anchors_zero() {
        let merged = merge_boundaries(&[&[5.0, 100.0], &[2.0, 5.0], &[]], 50.0);
        assert_eq!(merged, vec![0.0, 2.0, 5.0]);
        assert_eq!(merge_boundaries(&[], 10.0), vec![0.0]);
    }

    #[test]
    fn windows_cover_the_horizon() {
        let w = slice_windows(&[0.0, 2.0, 5.0], 50.0);
        assert_eq!(w, vec![(0.0, 2.0), (2.0, 5.0), (5.0, 50.0)]);
        assert_eq!(slice_windows(&[0.0], 10.0), vec![(0.0, 10.0)]);
    }

    #[test]
    #[should_panic(expected = "sorted below the horizon")]
    fn windows_reject_start_at_horizon() {
        let _ = slice_windows(&[0.0, 10.0], 10.0);
    }

    #[test]
    fn step_mean_carries_the_last_value_into_the_window() {
        let series = [(0.0, 10.0), (4.0, 20.0)];
        // Window entirely between samples: the value set at t = 0 holds.
        assert_eq!(step_mean(&series, 1.0, 3.0), Some(10.0));
        // Window straddling the step: 1 s at 10 + 1 s at 20.
        assert_eq!(step_mean(&series, 3.0, 5.0), Some(15.0));
        // Window after everything: last value holds.
        assert_eq!(step_mean(&series, 10.0, 20.0), Some(20.0));
        // Window before the first sample: nothing is in force yet…
        assert_eq!(step_mean(&series, -2.0, -1.0), None);
        // …and a window opening exactly at the first sample uses it.
        assert_eq!(step_mean(&series, 0.0, 2.0), Some(10.0));
        assert_eq!(step_mean(&[], 0.0, 1.0), None);
    }

    #[test]
    fn window_slice_is_half_open() {
        let series = [(0.0, 1.0), (1.0, 2.0), (2.0, 3.0), (3.0, 4.0)];
        assert_eq!(window_slice(&series, 1.0, 3.0), &series[1..3]);
        assert_eq!(window_slice(&series, 0.5, 0.9), &[] as &[(f64, f64)]);
        assert_eq!(window_slice(&series, 0.0, 100.0), &series[..]);
        assert_eq!(window_mean(window_slice(&series, 1.0, 3.0)), Some(2.5));
        assert_eq!(window_mean(&[]), None);
    }
}
