//! Event-rate measurement over time windows.
//!
//! The central quantity in both protocols is a *load* measured in probes per
//! second: the device's nominal load `L_nom` is 10 probes/s in every paper
//! experiment, and Figure 5 plots the DCPP device's observed load over time.
//! [`RateMeter`] measures such rates with a sliding window; [`JumpingWindowRate`]
//! produces the per-interval series used for plotting.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Sliding-window event-rate meter.
///
/// Records event timestamps and reports the rate over the trailing window.
/// Memory is bounded by the number of events inside the window.
///
/// # Examples
///
/// ```
/// use presence_stats::RateMeter;
///
/// let mut m = RateMeter::new(1.0); // 1-second window
/// for i in 0..10 {
///     m.record(i as f64 * 0.1); // 10 events spread over [0, 0.9]
/// }
/// assert!((m.rate_at(0.9) - 10.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RateMeter {
    window: f64,
    events: VecDeque<f64>,
    total: u64,
    last_t: f64,
}

impl RateMeter {
    /// Creates a meter with the given trailing window length (seconds).
    ///
    /// # Panics
    ///
    /// Panics if `window` is not positive and finite.
    #[must_use]
    pub fn new(window: f64) -> Self {
        assert!(
            window > 0.0 && window.is_finite(),
            "window must be positive"
        );
        Self {
            window,
            events: VecDeque::new(),
            total: 0,
            last_t: f64::NEG_INFINITY,
        }
    }

    /// Records one event at time `t`.
    ///
    /// # Panics
    ///
    /// Panics if time moves backwards.
    pub fn record(&mut self, t: f64) {
        assert!(t >= self.last_t, "time must not move backwards");
        self.last_t = t;
        self.events.push_back(t);
        self.total += 1;
        self.evict(t);
    }

    fn evict(&mut self, now: f64) {
        while let Some(&front) = self.events.front() {
            if front <= now - self.window {
                self.events.pop_front();
            } else {
                break;
            }
        }
    }

    /// Events per second over the window ending at `now`.
    ///
    /// # Panics
    ///
    /// Panics if `now` moves backwards past a previous `record` or
    /// `rate_at` call: eviction is destructive, so querying an earlier
    /// window after a later one would silently under-count.
    pub fn rate_at(&mut self, now: f64) -> f64 {
        assert!(now >= self.last_t, "time must not move backwards");
        self.last_t = now;
        self.evict(now);
        self.events.len() as f64 / self.window
    }

    /// Total events ever recorded.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The window length in seconds.
    #[must_use]
    pub fn window(&self) -> f64 {
        self.window
    }
}

/// Jumping (non-overlapping) window rate series.
///
/// Closes a window every `width` seconds and reports `(window_start, rate)`
/// pairs — exactly the series plotted as "Device Load" in Figure 5.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JumpingWindowRate {
    width: f64,
    origin: f64,
    current_index: u64,
    current_count: u64,
    closed: Vec<(f64, f64)>,
}

impl JumpingWindowRate {
    /// Creates a series with windows `[origin + k·width, origin + (k+1)·width)`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not positive and finite.
    #[must_use]
    pub fn new(origin: f64, width: f64) -> Self {
        Self::with_capacity(origin, width, 0)
    }

    /// [`JumpingWindowRate::new`] with room pre-allocated for `windows`
    /// closed windows — size it as `horizon / width` so long-horizon runs
    /// never regrow the series.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not positive and finite.
    #[must_use]
    pub fn with_capacity(origin: f64, width: f64, windows: usize) -> Self {
        assert!(width > 0.0 && width.is_finite(), "width must be positive");
        Self {
            width,
            origin,
            current_index: 0,
            current_count: 0,
            closed: Vec::with_capacity(windows),
        }
    }

    /// Records one event at time `t ≥ origin`; closes any windows that ended
    /// before `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes the origin or moves backwards past an already
    /// closed window.
    pub fn record(&mut self, t: f64) {
        let idx = self.index_of(t);
        assert!(
            idx >= self.current_index,
            "event at {t} falls in an already-closed window"
        );
        self.close_until(idx);
        self.current_count += 1;
    }

    fn index_of(&self, t: f64) -> u64 {
        assert!(t >= self.origin, "event precedes origin");
        ((t - self.origin) / self.width) as u64
    }

    fn close_until(&mut self, idx: u64) {
        while self.current_index < idx {
            let start = self.origin + self.current_index as f64 * self.width;
            self.closed
                .push((start, self.current_count as f64 / self.width));
            self.current_count = 0;
            self.current_index += 1;
        }
    }

    /// Flushes windows up to (not including) the one containing `t`.
    pub fn advance_to(&mut self, t: f64) {
        let idx = self.index_of(t);
        self.close_until(idx);
    }

    /// Closed `(window_start, events_per_second)` pairs, in time order.
    #[must_use]
    pub fn series(&self) -> &[(f64, f64)] {
        &self.closed
    }

    /// The window width in seconds.
    #[must_use]
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Removes every closed window, yielding each `(window_start, rate)`
    /// pair in time order; the in-progress window is untouched. Streaming
    /// recorders call this after each `record`/`advance_to` to fold closed
    /// windows into a constant-size accumulator instead of retaining the
    /// series, so memory stays flat at any horizon.
    pub fn drain_closed(&mut self, mut f: impl FnMut(f64, f64)) {
        for (start, rate) in self.closed.drain(..) {
            f(start, rate);
        }
    }

    /// Consumes the meter, closing the current window at `end` first.
    ///
    /// The window containing `end` is only emitted when it actually covers
    /// part of the horizon: when `end` falls exactly on a window boundary,
    /// the (empty, zero-length) window `[end, end + width)` is *not*
    /// emitted — unless events were already recorded into it, in which
    /// case dropping them would be worse than the phantom window.
    #[must_use]
    pub fn finish(mut self, end: f64) -> Vec<(f64, f64)> {
        let idx = self.index_of(end);
        self.close_until(idx);
        let start = self.origin + idx as f64 * self.width;
        if end > start || self.current_count > 0 {
            self.close_until(idx.saturating_add(1));
        }
        self.closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sliding_rate_basic() {
        let mut m = RateMeter::new(2.0);
        m.record(0.0);
        m.record(0.5);
        m.record(1.0);
        assert!((m.rate_at(1.0) - 1.5).abs() < 1e-12);
        // At t=2.9, only the event at t=1.0 is within (0.9, 2.9].
        assert!((m.rate_at(2.9) - 0.5).abs() < 1e-12);
        // At t=3.0 the event at 1.0 sits exactly on the (excluded) boundary.
        assert_eq!(m.rate_at(3.0), 0.0);
        // Far in the future everything expired.
        assert_eq!(m.rate_at(100.0), 0.0);
        assert_eq!(m.total(), 3);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn sliding_rejects_backwards_time() {
        let mut m = RateMeter::new(1.0);
        m.record(2.0);
        m.record(1.0);
    }

    #[test]
    fn sliding_rate_eviction_boundary() {
        let mut m = RateMeter::new(1.0);
        m.record(0.0);
        // An event exactly window-old is evicted (half-open window).
        assert_eq!(m.rate_at(1.0), 0.0);
    }

    #[test]
    fn jumping_windows_close_in_order() {
        let mut j = JumpingWindowRate::new(0.0, 1.0);
        j.record(0.1);
        j.record(0.9);
        j.record(2.5); // skips window [1,2): closed with rate 0
        let s = j.series();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0], (0.0, 2.0));
        assert_eq!(s[1], (1.0, 0.0));
        let all = j.finish(2.5);
        assert_eq!(all.len(), 3);
        assert_eq!(all[2], (2.0, 1.0));
    }

    #[test]
    fn jumping_window_advance_flushes_empties() {
        let mut j = JumpingWindowRate::new(10.0, 2.0);
        j.advance_to(16.0);
        assert_eq!(j.series().len(), 3);
        assert!(j.series().iter().all(|&(_, r)| r == 0.0));
    }

    #[test]
    #[should_panic(expected = "precedes origin")]
    fn jumping_rejects_pre_origin() {
        let mut j = JumpingWindowRate::new(5.0, 1.0);
        j.record(4.0);
    }

    #[test]
    fn jumping_rate_values() {
        let mut j = JumpingWindowRate::new(0.0, 0.5);
        for i in 0..10 {
            j.record(i as f64 * 0.1); // 10 events in [0, 1)
        }
        let s = j.finish(1.0);
        // Two windows of width 0.5 with 5 events each → rate 10/s. The
        // horizon ends exactly on a window boundary, so no third (empty)
        // window `[1.0, 1.5)` is emitted.
        assert_eq!(s.len(), 2);
        assert!((s[0].1 - 10.0).abs() < 1e-12);
        assert!((s[1].1 - 10.0).abs() < 1e-12);
    }

    #[test]
    fn finish_on_boundary_emits_no_phantom_window() {
        // Regression: `finish(end)` with `end` exactly on a window boundary
        // used to emit a spurious zero-rate window `[end, end + width)`.
        let mut j = JumpingWindowRate::new(0.0, 0.5);
        j.record(0.2);
        let s = j.finish(1.0);
        assert_eq!(s, vec![(0.0, 2.0), (0.5, 0.0)]);

        // Earlier-window events still flush even when the final window at
        // the boundary is empty.
        let mut j = JumpingWindowRate::new(0.0, 0.5);
        j.record(0.2);
        let s = j.finish(0.5);
        assert_eq!(s, vec![(0.0, 2.0)]);
    }

    #[test]
    fn finish_mid_window_still_closes_it() {
        // `end` strictly inside a window → that window is closed as before.
        let mut j = JumpingWindowRate::new(0.0, 0.5);
        j.record(0.6);
        let s = j.finish(0.75);
        assert_eq!(s, vec![(0.0, 0.0), (0.5, 2.0)]);
    }

    #[test]
    fn finish_on_boundary_keeps_recorded_events() {
        // An event recorded exactly at the boundary belongs to the window
        // starting there; `finish` at that same boundary must not drop it.
        let mut j = JumpingWindowRate::new(0.0, 0.5);
        j.record(0.5);
        let s = j.finish(0.5);
        assert_eq!(s, vec![(0.0, 0.0), (0.5, 2.0)]);
    }

    #[test]
    fn drain_closed_yields_and_empties() {
        let mut j = JumpingWindowRate::new(0.0, 1.0);
        j.record(0.5);
        j.record(2.5); // closes [0,1) and [1,2)
        let mut got = Vec::new();
        j.drain_closed(|s, r| got.push((s, r)));
        assert_eq!(got, vec![(0.0, 1.0), (1.0, 0.0)]);
        assert!(j.series().is_empty(), "drained");
        // The in-progress window survives the drain.
        j.advance_to(3.0);
        assert_eq!(j.series(), &[(2.0, 1.0)]);
        assert_eq!(j.width(), 1.0);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn rate_at_rejects_backwards_time() {
        // Regression: a non-monotone `rate_at` used to destructively evict
        // events that were still inside the earlier window.
        let mut m = RateMeter::new(1.0);
        m.record(0.0);
        m.record(5.0);
        let _ = m.rate_at(1.0);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn rate_at_then_earlier_record_rejected() {
        let mut m = RateMeter::new(1.0);
        m.record(0.0);
        let _ = m.rate_at(5.0);
        m.record(1.0);
    }
}
