//! Constant-memory online quantile estimation (the P² algorithm).
//!
//! Long transient runs (20 000 simulated seconds, millions of probe cycles)
//! would be expensive to summarise by storing every sample. P² (Jain &
//! Chlamtac, 1985) tracks a single quantile with five markers and O(1)
//! update cost, which is plenty for the harness's p50/p95/p99 summaries.

use serde::{Deserialize, Serialize};

/// Online estimator of a single quantile using the P² algorithm.
///
/// # Examples
///
/// ```
/// use presence_stats::P2Quantile;
///
/// let mut p95 = P2Quantile::new(0.95);
/// for i in 1..=1000 {
///     p95.push(i as f64);
/// }
/// let est = p95.estimate().unwrap();
/// assert!((est - 950.0).abs() < 15.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights.
    heights: [f64; 5],
    /// Marker positions (1-based as in the original paper).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired position increments per observation.
    increments: [f64; 5],
    /// Number of samples seen; below 5 we buffer into `heights` directly.
    count: usize,
}

impl P2Quantile {
    /// Creates an estimator for quantile `q ∈ (0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not strictly between 0 and 1.
    #[must_use]
    pub fn new(q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "quantile must be in (0, 1), got {q}");
        Self {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
        }
    }

    /// The quantile this estimator tracks.
    #[must_use]
    pub fn quantile(&self) -> f64 {
        self.q
    }

    /// Number of samples pushed.
    #[must_use]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Adds one observation. Non-finite samples are ignored.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        if self.count < 5 {
            self.heights[self.count] = x;
            self.count += 1;
            if self.count == 5 {
                self.heights
                    .sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            }
            return;
        }
        self.count += 1;

        // Find the cell k such that heights[k] <= x < heights[k+1].
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            let mut k = 0;
            for i in 0..4 {
                if x >= self.heights[i] && x < self.heights[i + 1] {
                    k = i;
                    break;
                }
            }
            k
        };

        for p in self.positions.iter_mut().skip(k + 1) {
            *p += 1.0;
        }
        for (d, inc) in self.desired.iter_mut().zip(self.increments) {
            *d += inc;
        }

        // Adjust the interior markers.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right_gap = self.positions[i + 1] - self.positions[i];
            let left_gap = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right_gap > 1.0) || (d <= -1.0 && left_gap < -1.0) {
                let d = d.signum();
                let candidate = self.parabolic(i, d);
                self.heights[i] =
                    if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                        candidate
                    } else {
                        self.linear(i, d)
                    };
                self.positions[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let q = &self.heights;
        let n = &self.positions;
        q[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let q = &self.heights;
        let n = &self.positions;
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        q[i] + d * (q[j] - q[i]) / (n[j] - n[i])
    }

    /// Current estimate; `None` before any sample has been seen.
    ///
    /// With fewer than five samples the estimate falls back to the exact
    /// order statistic of the buffered samples.
    #[must_use]
    pub fn estimate(&self) -> Option<f64> {
        match self.count {
            0 => None,
            n @ 1..=4 => {
                let mut buf: Vec<f64> = self.heights[..n].to_vec();
                buf.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                let idx = ((self.q * n as f64).ceil() as usize).clamp(1, n) - 1;
                Some(buf[idx])
            }
            _ => Some(self.heights[2]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift for reproducible pseudo-random streams.
    fn xorshift_stream(seed: u64, n: usize) -> Vec<f64> {
        let mut s = seed.max(1);
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect()
    }

    #[test]
    fn empty_estimate_is_none() {
        let p = P2Quantile::new(0.5);
        assert!(p.estimate().is_none());
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn rejects_invalid_quantile() {
        let _ = P2Quantile::new(1.0);
    }

    #[test]
    fn small_counts_use_exact_order_statistics() {
        let mut p = P2Quantile::new(0.5);
        p.push(3.0);
        assert_eq!(p.estimate(), Some(3.0));
        p.push(1.0);
        p.push(2.0);
        // Median of {1,2,3} = 2.
        assert_eq!(p.estimate(), Some(2.0));
    }

    #[test]
    fn median_of_uniform() {
        let mut p = P2Quantile::new(0.5);
        for x in xorshift_stream(42, 50_000) {
            p.push(x);
        }
        let est = p.estimate().unwrap();
        assert!((est - 0.5).abs() < 0.02, "median estimate {est}");
    }

    #[test]
    fn p99_of_uniform() {
        let mut p = P2Quantile::new(0.99);
        for x in xorshift_stream(7, 100_000) {
            p.push(x);
        }
        let est = p.estimate().unwrap();
        assert!((est - 0.99).abs() < 0.02, "p99 estimate {est}");
    }

    #[test]
    fn monotone_stream() {
        let mut p = P2Quantile::new(0.9);
        for i in 0..10_000 {
            p.push(i as f64);
        }
        let est = p.estimate().unwrap();
        assert!((est - 9_000.0).abs() < 200.0, "p90 estimate {est}");
    }

    #[test]
    fn ignores_non_finite() {
        let mut p = P2Quantile::new(0.5);
        for x in [1.0, f64::NAN, 2.0, f64::NEG_INFINITY, 3.0] {
            p.push(x);
        }
        assert_eq!(p.count(), 3);
    }

    #[test]
    fn bimodal_median_sits_between_modes() {
        let mut p = P2Quantile::new(0.5);
        for i in 0..20_000 {
            p.push(if i % 2 == 0 { 0.4 } else { 10.0 });
        }
        let est = p.estimate().unwrap();
        assert!(est > 0.3 && est < 10.1, "bimodal median {est}");
    }
}
