//! Autocorrelation diagnostics for batch-size selection.
//!
//! The batch-means method assumes batch means are (approximately)
//! independent. Choosing the batch size requires knowing how correlated
//! consecutive observations are; these helpers estimate lag autocorrelation
//! and suggest a batch count following the usual rule of thumb (grow batches
//! until lag-1 autocorrelation of the batch means is negligible).

/// Sample autocorrelation of `xs` at the given `lag`.
///
/// Uses the biased (1/n) normalisation, which is standard for stationarity
/// diagnostics. Returns `NaN` when `lag >= xs.len()`, fewer than two samples
/// remain, or the series has zero variance.
#[must_use]
pub fn autocorrelation(xs: &[f64], lag: usize) -> f64 {
    let n = xs.len();
    if lag >= n || n < 2 {
        return f64::NAN;
    }
    let mean = xs.iter().sum::<f64>() / n as f64;
    let denom: f64 = xs.iter().map(|x| (x - mean).powi(2)).sum();
    if denom == 0.0 {
        return f64::NAN;
    }
    let num: f64 = (0..n - lag)
        .map(|i| (xs[i] - mean) * (xs[i + lag] - mean))
        .sum();
    num / denom
}

/// Convenience wrapper: lag-1 autocorrelation.
#[must_use]
pub fn lag1_autocorrelation(xs: &[f64]) -> f64 {
    autocorrelation(xs, 1)
}

/// Von Neumann ratio of successive differences, `Σ(xᵢ₊₁−xᵢ)² / Σ(xᵢ−x̄)²`.
///
/// For i.i.d. samples its expected value is ≈ 2; values well below 2 signal
/// positive serial correlation (batches too small), values above 2 signal
/// negative correlation. Returns `NaN` for fewer than two samples or zero
/// variance.
#[must_use]
pub fn von_neumann_ratio(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n < 2 {
        return f64::NAN;
    }
    let mean = xs.iter().sum::<f64>() / n as f64;
    let denom: f64 = xs.iter().map(|x| (x - mean).powi(2)).sum();
    if denom == 0.0 {
        return f64::NAN;
    }
    let num: f64 = xs.windows(2).map(|w| (w[1] - w[0]).powi(2)).sum();
    num / denom
}

/// Suggests how many batches to split `n` observations into so that batch
/// means are near-independent, given the observations' lag-1 autocorrelation
/// `rho1`.
///
/// Heuristic: with autocorrelation time `τ ≈ (1 + ρ)/(1 − ρ)`, a batch
/// should span at least `10 τ` observations; the result is clamped to
/// `[2, 64]` batches (more batches than 64 buys little for a t interval, and
/// fewer than 2 is meaningless).
#[must_use]
pub fn suggest_batch_count(n: u64, rho1: f64) -> u64 {
    if n < 4 {
        return 2;
    }
    let rho = if rho1.is_finite() {
        rho1.clamp(0.0, 0.99)
    } else {
        0.0
    };
    let tau = (1.0 + rho) / (1.0 - rho);
    let min_batch = (10.0 * tau).ceil().max(1.0) as u64;
    (n / min_batch).clamp(2, 64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iid_like_series_low_autocorr() {
        // A full-period LCG stream behaves like white noise at lag 1.
        let mut s: u64 = 0x4d595df4d0f33173;
        let xs: Vec<f64> = (0..10_000)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (s >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect();
        let r = lag1_autocorrelation(&xs);
        assert!(r.abs() < 0.05, "lag-1 autocorr {r}");
        let vn = von_neumann_ratio(&xs);
        assert!((vn - 2.0).abs() < 0.3, "von Neumann ratio {vn}");
    }

    #[test]
    fn ar1_series_high_autocorr() {
        let mut xs = Vec::with_capacity(10_000);
        let mut x = 0.0f64;
        let mut s: u64 = 88172645463325252;
        for _ in 0..10_000 {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let noise = (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
            x = 0.95 * x + noise;
            xs.push(x);
        }
        let r = lag1_autocorrelation(&xs);
        assert!(r > 0.85, "lag-1 autocorr of AR(1) 0.95: {r}");
        assert!(von_neumann_ratio(&xs) < 1.0);
    }

    #[test]
    fn alternating_series_negative_autocorr() {
        let xs: Vec<f64> = (0..1000)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let r = lag1_autocorrelation(&xs);
        assert!(r < -0.9, "alternating lag-1 autocorr {r}");
        assert!(von_neumann_ratio(&xs) > 3.0);
    }

    #[test]
    fn degenerate_cases() {
        assert!(autocorrelation(&[], 1).is_nan());
        assert!(autocorrelation(&[1.0], 0).is_nan());
        assert!(autocorrelation(&[1.0, 2.0], 5).is_nan());
        assert!(autocorrelation(&[3.0, 3.0, 3.0], 1).is_nan());
        assert!(von_neumann_ratio(&[1.0]).is_nan());
    }

    #[test]
    fn lag_zero_is_one() {
        let xs = [1.0, 5.0, 2.0, 8.0];
        assert!((autocorrelation(&xs, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn batch_count_suggestions() {
        // Uncorrelated data: batch of ~10 observations.
        assert_eq!(suggest_batch_count(1_000, 0.0), 64);
        // Strong correlation shrinks the batch count.
        let heavy = suggest_batch_count(1_000, 0.9);
        assert!(heavy < 10, "got {heavy}");
        // Tiny run still returns the minimum.
        assert_eq!(suggest_batch_count(3, 0.0), 2);
        // NaN tolerated.
        assert!(suggest_batch_count(100, f64::NAN) >= 2);
    }

    #[test]
    fn batch_count_bounds() {
        for n in [10u64, 100, 10_000] {
            for rho in [-0.5, 0.0, 0.5, 0.99, 2.0] {
                let b = suggest_batch_count(n, rho);
                assert!((2..=64).contains(&b));
            }
        }
    }
}
