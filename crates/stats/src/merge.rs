//! Deterministic merging of out-of-order worker results.
//!
//! The parallel replication engine dispatches `(index, task)` pairs to a
//! worker pool and receives results in completion order, which depends on
//! scheduling. Statistical summaries, however, must be **bit-identical** to
//! a serial run, and floating-point accumulation is order-sensitive — so
//! results are first restored to dispatch order with [`merge_indexed`] and
//! only then folded. (Merging per-worker accumulators instead — e.g. Chan's
//! parallel variance — would change the rounding and break replay.)

/// Restores dispatch order to results tagged with their dispatch index.
///
/// Accepts the `(index, value)` pairs in any order and returns the values
/// sorted by index — the seed-ordered merge the replication engine uses.
///
/// # Panics
///
/// Panics if the indices are not exactly `0..pairs.len()` (a duplicate or
/// missing index means a worker double-reported or was lost; silently
/// continuing would corrupt the study).
///
/// # Examples
///
/// ```
/// use presence_stats::merge_indexed;
///
/// let out_of_order = vec![(2, "c"), (0, "a"), (1, "b")];
/// assert_eq!(merge_indexed(out_of_order), vec!["a", "b", "c"]);
/// ```
#[must_use]
pub fn merge_indexed<T>(mut pairs: Vec<(usize, T)>) -> Vec<T> {
    pairs.sort_by_key(|&(index, _)| index);
    for (position, &(index, _)) in pairs.iter().enumerate() {
        assert_eq!(
            position,
            index,
            "worker results are not a permutation of 0..{}: saw index {index} at position \
             {position} (duplicate or missing result)",
            pairs.len()
        );
    }
    pairs.into_iter().map(|(_, value)| value).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn restores_dispatch_order() {
        let pairs = vec![(3, 30), (1, 10), (0, 0), (2, 20)];
        assert_eq!(merge_indexed(pairs), vec![0, 10, 20, 30]);
    }

    #[test]
    fn empty_is_fine() {
        assert_eq!(merge_indexed(Vec::<(usize, u8)>::new()), Vec::<u8>::new());
    }

    #[test]
    fn already_ordered_is_identity() {
        let pairs: Vec<(usize, usize)> = (0..100).map(|i| (i, i * i)).collect();
        let merged = merge_indexed(pairs);
        assert_eq!(merged.len(), 100);
        assert_eq!(merged[7], 49);
    }

    #[test]
    #[should_panic(expected = "duplicate or missing result")]
    fn duplicate_index_panics() {
        let _ = merge_indexed(vec![(0, 'a'), (0, 'b')]);
    }

    #[test]
    #[should_panic(expected = "duplicate or missing result")]
    fn missing_index_panics() {
        let _ = merge_indexed(vec![(0, 'a'), (2, 'c')]);
    }
}
