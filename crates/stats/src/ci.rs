//! Confidence intervals and Student-t / normal quantiles.
//!
//! The paper's steady-state study uses batch means with a confidence interval
//! of width 0.1 at confidence level 0.95. Computing that interval requires
//! the Student-t quantile for `n − 1` degrees of freedom; we implement it via
//! the classic Cornish–Fisher-style expansion from the normal quantile
//! (Abramowitz & Stegun 26.7.5), which is accurate to well below the noise
//! floor of any simulation estimate for `df ≥ 1`.

use serde::{Deserialize, Serialize};

/// Quantile function (inverse CDF) of the standard normal distribution.
///
/// Uses Acklam's rational approximation (relative error < 1.15e−9 over the
/// full open interval) — orders of magnitude more accurate than any
/// simulation estimate it will ever be multiplied with.
///
/// # Panics
///
/// Panics if `p` is not strictly inside `(0, 1)`.
#[must_use]
pub fn z_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "probability must be in (0, 1), got {p}");

    // Acklam's coefficients.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Quantile function of Student's t distribution with `df` degrees of
/// freedom.
///
/// For small `df` the exact closed forms are used (`df = 1`: Cauchy,
/// `df = 2`: algebraic); otherwise the Cornish–Fisher expansion around the
/// normal quantile (Abramowitz & Stegun 26.7.5), which is accurate to a few
/// units in the fourth decimal for `df ≥ 3` — far below simulation noise.
///
/// # Panics
///
/// Panics if `p ∉ (0, 1)` or `df == 0`.
#[must_use]
pub fn t_quantile(p: f64, df: u64) -> f64 {
    assert!(df > 0, "degrees of freedom must be positive");
    assert!(p > 0.0 && p < 1.0, "probability must be in (0, 1), got {p}");

    match df {
        1 => (std::f64::consts::PI * (p - 0.5)).tan(),
        2 => {
            // F(t) = 1/2 + t / (2 √(2 + t²))  ⇒  t = u √(2 / (1 − u²)), u = 2p − 1.
            let u = 2.0 * p - 1.0;
            u * (2.0 / (1.0 - u * u)).sqrt()
        }
        _ => {
            let z = z_quantile(p);
            let n = df as f64;
            let g1 = (z.powi(3) + z) / 4.0;
            let g2 = (5.0 * z.powi(5) + 16.0 * z.powi(3) + 3.0 * z) / 96.0;
            let g3 = (3.0 * z.powi(7) + 19.0 * z.powi(5) + 17.0 * z.powi(3) - 15.0 * z) / 384.0;
            let g4 = (79.0 * z.powi(9) + 776.0 * z.powi(7) + 1482.0 * z.powi(5)
                - 1920.0 * z.powi(3)
                - 945.0 * z)
                / 92160.0;
            z + g1 / n + g2 / n.powi(2) + g3 / n.powi(3) + g4 / n.powi(4)
        }
    }
}

/// A two-sided confidence interval around a point estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// Point estimate (sample mean).
    pub mean: f64,
    /// Half-width of the interval: the interval is `mean ± half_width`.
    pub half_width: f64,
    /// Confidence level the interval was computed at, e.g. `0.95`.
    pub level: f64,
}

impl ConfidenceInterval {
    /// Builds a Student-t confidence interval from summary statistics.
    ///
    /// `n` is the number of (batch) means, `std_dev` their sample standard
    /// deviation. Returns an interval with infinite half-width when `n < 2`
    /// so callers can use "is the interval narrow enough yet?" uniformly as
    /// a stopping rule.
    #[must_use]
    pub fn from_stats(mean: f64, std_dev: f64, n: u64, level: f64) -> Self {
        assert!(level > 0.0 && level < 1.0, "level must be in (0, 1)");
        let half_width = if n < 2 || !std_dev.is_finite() {
            f64::INFINITY
        } else {
            let t = t_quantile(0.5 + level / 2.0, n - 1);
            t * std_dev / (n as f64).sqrt()
        };
        Self {
            mean,
            half_width,
            level,
        }
    }

    /// Lower bound of the interval.
    #[must_use]
    pub fn low(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper bound of the interval.
    #[must_use]
    pub fn high(&self) -> f64 {
        self.mean + self.half_width
    }

    /// Relative half-width `half_width / |mean|`; `+∞` when the mean is zero.
    ///
    /// The paper's stopping rule "confidence interval 0.1" is interpreted, as
    /// is conventional for MÖBIUS, as *relative* half-width ≤ 0.1.
    #[must_use]
    pub fn relative_half_width(&self) -> f64 {
        if self.mean == 0.0 {
            f64::INFINITY
        } else {
            self.half_width / self.mean.abs()
        }
    }

    /// Whether the interval contains `x`.
    #[must_use]
    pub fn contains(&self, x: f64) -> bool {
        x >= self.low() && x <= self.high()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, eps: f64) {
        assert!((a - b).abs() < eps, "{a} !~ {b} (eps {eps})");
    }

    #[test]
    fn normal_quantile_reference_values() {
        // Reference values from standard tables.
        assert_close(z_quantile(0.5), 0.0, 1e-9);
        assert_close(z_quantile(0.975), 1.959_963_985, 1e-8);
        assert_close(z_quantile(0.95), 1.644_853_627, 1e-8);
        assert_close(z_quantile(0.99), 2.326_347_874, 1e-8);
        assert_close(z_quantile(0.999), 3.090_232_306, 1e-7);
        assert_close(z_quantile(0.025), -1.959_963_985, 1e-8);
        assert_close(z_quantile(1e-6), -4.753_424_309, 1e-6);
    }

    #[test]
    fn normal_quantile_symmetry() {
        for &p in &[0.01, 0.1, 0.25, 0.4, 0.49] {
            assert_close(z_quantile(p), -z_quantile(1.0 - p), 1e-10);
        }
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn normal_quantile_rejects_zero() {
        let _ = z_quantile(0.0);
    }

    #[test]
    fn t_quantile_reference_values() {
        // Two-sided 95% => p = 0.975. Reference: standard t tables.
        assert_close(t_quantile(0.975, 1), 12.706, 2e-3);
        assert_close(t_quantile(0.975, 2), 4.303, 2e-3);
        assert_close(t_quantile(0.975, 5), 2.571, 2e-3);
        assert_close(t_quantile(0.975, 10), 2.228, 2e-3);
        assert_close(t_quantile(0.975, 30), 2.042, 2e-3);
        assert_close(t_quantile(0.975, 120), 1.980, 2e-3);
        assert_close(t_quantile(0.95, 10), 1.812, 2e-3);
        assert_close(t_quantile(0.99, 20), 2.528, 3e-3);
    }

    #[test]
    fn t_quantile_approaches_normal() {
        let t = t_quantile(0.975, 100_000);
        assert_close(t, z_quantile(0.975), 1e-4);
    }

    #[test]
    fn t_quantile_median_is_zero() {
        for df in [1, 2, 3, 10, 50] {
            assert_close(t_quantile(0.5, df), 0.0, 1e-9);
        }
    }

    #[test]
    fn t_quantile_symmetry() {
        for df in [1u64, 2, 3, 7, 25] {
            for &p in &[0.9, 0.95, 0.99] {
                assert_close(t_quantile(p, df), -t_quantile(1.0 - p, df), 1e-6);
            }
        }
    }

    #[test]
    #[should_panic(expected = "degrees of freedom")]
    fn t_quantile_rejects_zero_df() {
        let _ = t_quantile(0.5, 0);
    }

    #[test]
    fn ci_basic() {
        // 10 batch means with mean 5, sd 1 → half width = t(.975, 9)/sqrt(10).
        let ci = ConfidenceInterval::from_stats(5.0, 1.0, 10, 0.95);
        let expected = t_quantile(0.975, 9) / 10f64.sqrt();
        assert_close(ci.half_width, expected, 1e-6);
        assert!(ci.contains(5.0));
        assert!(ci.contains(ci.low()));
        assert!(!ci.contains(ci.high() + 1e-9));
        assert_close(ci.relative_half_width(), expected / 5.0, 1e-9);
    }

    #[test]
    fn ci_insufficient_samples_is_infinite() {
        let ci = ConfidenceInterval::from_stats(5.0, 1.0, 1, 0.95);
        assert!(ci.half_width.is_infinite());
        assert!(ci.relative_half_width().is_infinite());
    }

    #[test]
    fn ci_zero_mean_relative_width_infinite() {
        let ci = ConfidenceInterval::from_stats(0.0, 1.0, 10, 0.95);
        assert!(ci.relative_half_width().is_infinite());
    }
}
