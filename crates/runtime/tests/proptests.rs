//! Property-based tests for the wire codec: every representable message
//! round-trips, and no byte mangling can cause a panic (only an error or a
//! wrong-but-well-formed message).

use presence_core::{Bye, CpId, DeviceId, LeaveNotice, Probe, Reply, ReplyBody, WireMessage};
use presence_des::SimDuration;
use presence_runtime::codec::{
    decode, decode_datagram, encode, encode_addressed, Datagram, MAX_DATAGRAM,
};
use proptest::prelude::*;

fn any_prober() -> impl Strategy<Value = Option<CpId>> {
    prop_oneof![
        Just(None),
        // CpId(u32::MAX) is reserved: it would collide with the +1 "none"
        // encoding (the codec encodes it as "no prober"). Every other id,
        // including CpId(u32::MAX - 1) which encodes as u32::MAX, must
        // round-trip.
        (0u32..u32::MAX).prop_map(|v| Some(CpId(v))),
    ]
}

fn any_message() -> impl Strategy<Value = WireMessage> {
    prop_oneof![
        (any::<u32>(), any::<u64>())
            .prop_map(|(cp, seq)| { WireMessage::Probe(Probe { cp: CpId(cp), seq }) }),
        (
            any::<u32>(),
            any::<u64>(),
            any::<u32>(),
            any::<u64>(),
            any_prober(),
            any_prober(),
        )
            .prop_map(|(cp, seq, dev, pc, p0, p1)| {
                WireMessage::Reply(Reply {
                    probe: Probe { cp: CpId(cp), seq },
                    device: DeviceId(dev),
                    body: ReplyBody::Sapp {
                        pc,
                        last_probers: [p0, p1],
                    },
                })
            }),
        (any::<u32>(), any::<u64>(), any::<u32>(), any::<u64>()).prop_map(
            |(cp, seq, dev, wait)| {
                WireMessage::Reply(Reply {
                    probe: Probe { cp: CpId(cp), seq },
                    device: DeviceId(dev),
                    body: ReplyBody::Dcpp {
                        wait: SimDuration::from_nanos(wait),
                    },
                })
            }
        ),
        any::<u32>().prop_map(|d| WireMessage::Bye(Bye {
            device: DeviceId(d)
        })),
        (any::<u32>(), any::<u32>()).prop_map(|(d, r)| {
            WireMessage::LeaveNotice(LeaveNotice {
                device: DeviceId(d),
                reporter: CpId(r),
            })
        }),
    ]
}

proptest! {
    /// encode → decode is the identity for every representable message.
    #[test]
    fn roundtrip(msg in any_message()) {
        let bytes = encode(&msg);
        let back = decode(&bytes).expect("decode");
        prop_assert_eq!(back, msg);
    }

    /// Decoding arbitrary bytes never panics.
    #[test]
    fn decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let _ = decode(&bytes);
    }

    /// Every strict prefix of a valid encoding is rejected as truncated
    /// (no partial message is ever accepted as complete).
    #[test]
    fn prefixes_rejected(msg in any_message()) {
        let bytes = encode(&msg);
        for n in 0..bytes.len() {
            prop_assert!(decode(&bytes[..n]).is_err(), "prefix {n} accepted");
        }
    }

    /// Trailing garbage after a complete message is ignored (datagram
    /// framing supplies the length; extra bytes must not corrupt the
    /// decoded value).
    #[test]
    fn trailing_bytes_ignored(msg in any_message(), extra in prop::collection::vec(any::<u8>(), 1..16)) {
        let mut bytes = encode(&msg).to_vec();
        bytes.extend(extra);
        let back = decode(&bytes).expect("decode with trailing bytes");
        prop_assert_eq!(back, msg);
    }

    /// Encodings have exactly the documented fixed width per variant
    /// (module docs: probes 13 bytes, replies at most 33).
    #[test]
    fn encoding_length_matches_layout(msg in any_message()) {
        let expected = match &msg {
            WireMessage::Probe(_) => 13,
            WireMessage::Reply(r) => match r.body {
                ReplyBody::Sapp { .. } => 33,
                ReplyBody::Dcpp { .. } => 25,
            },
            WireMessage::Bye(_) => 5,
            WireMessage::LeaveNotice(_) => 9,
        };
        prop_assert_eq!(encode(&msg).len(), expected);
    }

    /// Flipping any single byte of a valid encoding never panics the
    /// decoder: the result is an error or a (possibly different) message.
    #[test]
    fn single_byte_corruption_never_panics(msg in any_message(), pos in any::<u64>(), flip in 1u8..=255) {
        let mut bytes = encode(&msg).to_vec();
        let idx = (pos % bytes.len() as u64) as usize;
        bytes[idx] ^= flip;
        let _ = decode(&bytes);
    }

    /// Encoding is injective: two messages that differ produce different
    /// byte strings (otherwise decode could not be the identity).
    #[test]
    fn encode_is_injective(a in any_message(), b in any_message()) {
        if a != b {
            prop_assert_ne!(encode(&a), encode(&b));
        }
    }

    /// Every encoding this codec can produce — bare or wrapped in the
    /// device-addressed host frame — fits in the `MAX_DATAGRAM` receive
    /// buffer every transport allocates. A violation would truncate the
    /// datagram on receive, where it vanishes as a silent decode error.
    #[test]
    fn every_encoding_fits_the_receive_buffer(msg in any_message(), dev in any::<u32>()) {
        prop_assert!(encode(&msg).len() <= MAX_DATAGRAM);
        prop_assert!(encode_addressed(DeviceId(dev), &msg).len() <= MAX_DATAGRAM);
    }

    /// The addressed host frame round-trips for every message and target
    /// device.
    #[test]
    fn addressed_frame_roundtrips(msg in any_message(), dev in any::<u32>()) {
        let bytes = encode_addressed(DeviceId(dev), &msg);
        let back = decode_datagram(&bytes).expect("decode addressed");
        prop_assert_eq!(back, Datagram::Addressed(DeviceId(dev), msg));
    }
}
