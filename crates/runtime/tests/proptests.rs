//! Property-based tests for the wire codec: every representable message
//! round-trips, and no byte mangling can cause a panic (only an error or a
//! wrong-but-well-formed message).

use presence_core::{Bye, CpId, DeviceId, LeaveNotice, Probe, Reply, ReplyBody, WireMessage};
use presence_des::SimDuration;
use presence_runtime::codec::{decode, encode};
use proptest::prelude::*;

fn any_prober() -> impl Strategy<Value = Option<CpId>> {
    prop_oneof![
        Just(None),
        // u32::MAX would collide with the +1 encoding; the protocol never
        // allocates it (CP ids are small), and the codec documents the
        // reserved value implicitly via this bound.
        (0u32..u32::MAX - 1).prop_map(|v| Some(CpId(v))),
    ]
}

fn any_message() -> impl Strategy<Value = WireMessage> {
    prop_oneof![
        (any::<u32>(), any::<u64>()).prop_map(|(cp, seq)| {
            WireMessage::Probe(Probe { cp: CpId(cp), seq })
        }),
        (
            any::<u32>(),
            any::<u64>(),
            any::<u32>(),
            any::<u64>(),
            any_prober(),
            any_prober(),
        )
            .prop_map(|(cp, seq, dev, pc, p0, p1)| {
                WireMessage::Reply(Reply {
                    probe: Probe { cp: CpId(cp), seq },
                    device: DeviceId(dev),
                    body: ReplyBody::Sapp {
                        pc,
                        last_probers: [p0, p1],
                    },
                })
            }),
        (any::<u32>(), any::<u64>(), any::<u32>(), any::<u64>()).prop_map(
            |(cp, seq, dev, wait)| {
                WireMessage::Reply(Reply {
                    probe: Probe { cp: CpId(cp), seq },
                    device: DeviceId(dev),
                    body: ReplyBody::Dcpp {
                        wait: SimDuration::from_nanos(wait),
                    },
                })
            }
        ),
        any::<u32>().prop_map(|d| WireMessage::Bye(Bye { device: DeviceId(d) })),
        (any::<u32>(), any::<u32>()).prop_map(|(d, r)| {
            WireMessage::LeaveNotice(LeaveNotice {
                device: DeviceId(d),
                reporter: CpId(r),
            })
        }),
    ]
}

proptest! {
    /// encode → decode is the identity for every representable message.
    #[test]
    fn roundtrip(msg in any_message()) {
        let bytes = encode(&msg);
        let back = decode(&bytes).expect("decode");
        prop_assert_eq!(back, msg);
    }

    /// Decoding arbitrary bytes never panics.
    #[test]
    fn decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let _ = decode(&bytes);
    }

    /// Every strict prefix of a valid encoding is rejected as truncated
    /// (no partial message is ever accepted as complete).
    #[test]
    fn prefixes_rejected(msg in any_message()) {
        let bytes = encode(&msg);
        for n in 0..bytes.len() {
            prop_assert!(decode(&bytes[..n]).is_err(), "prefix {n} accepted");
        }
    }

    /// Trailing garbage after a complete message is ignored (datagram
    /// framing supplies the length; extra bytes must not corrupt the
    /// decoded value).
    #[test]
    fn trailing_bytes_ignored(msg in any_message(), extra in prop::collection::vec(any::<u8>(), 1..16)) {
        let mut bytes = encode(&msg).to_vec();
        bytes.extend(extra);
        let back = decode(&bytes).expect("decode with trailing bytes");
        prop_assert_eq!(back, msg);
    }
}
