//! Threaded hosts that drive the sans-io machines against a [`Transport`]
//! and a [`Clock`].
//!
//! The device host is a serve loop: receive probe → answer. The CP host is
//! an event loop with a timer wheel: it executes every [`CpAction`] the
//! prober emits, sleeping no longer than the next timer deadline. Both
//! respect a shared stop flag for graceful shutdown.

use crate::clock::Clock;
use crate::transport::Transport;
use crate::wheel::TimerWheel;
use presence_core::{
    AbsenceReason, CpAction, DcppConfig, DcppDevice, DeviceId, Probe, Prober, Reply, TimerToken,
    WireMessage,
};
use presence_core::{SappDevice, SappDeviceConfig};
use presence_des::SimTime;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Cooperative shutdown flag shared between hosts and their controller.
#[derive(Debug, Clone, Default)]
pub struct StopFlag(Arc<AtomicBool>);

impl StopFlag {
    /// Creates an unset flag.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests shutdown.
    pub fn stop(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown was requested.
    #[must_use]
    pub fn is_stopped(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// The device machine a [`run_device`] host serves.
pub enum DeviceHost {
    /// A SAPP device.
    Sapp(SappDevice),
    /// A DCPP device.
    Dcpp(DcppDevice),
}

impl DeviceHost {
    /// A DCPP device with paper-default configuration.
    #[must_use]
    pub fn dcpp_paper(id: DeviceId) -> Self {
        DeviceHost::Dcpp(DcppDevice::new(id, DcppConfig::paper_default()))
    }

    /// A SAPP device with paper-default configuration.
    #[must_use]
    pub fn sapp_paper(id: DeviceId) -> Self {
        DeviceHost::Sapp(SappDevice::new(id, SappDeviceConfig::paper_default()))
    }

    /// Probes answered so far.
    #[must_use]
    pub fn probes_received(&self) -> u64 {
        match self {
            DeviceHost::Sapp(d) => d.probes_received(),
            DeviceHost::Dcpp(d) => d.probes_received(),
        }
    }

    /// The device's identity.
    #[must_use]
    pub fn id(&self) -> DeviceId {
        match self {
            DeviceHost::Sapp(d) => d.id(),
            DeviceHost::Dcpp(d) => d.id(),
        }
    }

    /// Answers one probe, whichever protocol the device speaks.
    pub fn on_probe(&mut self, now: SimTime, probe: Probe) -> Reply {
        match self {
            DeviceHost::Sapp(d) => d.on_probe(now, probe),
            DeviceHost::Dcpp(d) => d.on_probe(now, probe),
        }
    }
}

/// Serves probes until the stop flag is raised. Returns the device (with
/// its final state) for inspection.
pub fn run_device<T: Transport>(
    mut device: DeviceHost,
    mut transport: T,
    clock: &dyn Clock,
    stop: &StopFlag,
) -> DeviceHost {
    while !stop.is_stopped() {
        match transport.recv(Duration::from_millis(50)) {
            Ok(Some(WireMessage::Probe(probe))) => {
                let now = clock.now();
                let reply = match &mut device {
                    DeviceHost::Sapp(d) => d.on_probe(now, probe),
                    DeviceHost::Dcpp(d) => d.on_probe(now, probe),
                };
                // Best-effort: a vanished peer is the prober's problem.
                let _ = transport.send(&WireMessage::Reply(reply));
            }
            Ok(Some(_)) | Ok(None) => {}
            Err(_) => break,
        }
    }
    device
}

/// What happened during a CP host run.
#[derive(Debug, Clone, PartialEq)]
pub struct CpOutcome {
    /// Whether (and when, on the runtime clock) the device was declared
    /// absent.
    pub device_absent_at: Option<SimTime>,
    /// Why, if it was.
    pub reason: Option<AbsenceReason>,
    /// Successful probe cycles completed.
    pub cycles_succeeded: u64,
    /// Probes sent (including retransmissions).
    pub probes_sent: u64,
}

/// Drives a [`Prober`] until it stops (device declared absent) or the stop
/// flag is raised.
pub fn run_cp<T: Transport, P: Prober>(
    mut prober: P,
    mut transport: T,
    clock: &dyn Clock,
    stop: &StopFlag,
) -> CpOutcome {
    let mut timers: TimerWheel<TimerToken> = TimerWheel::new();
    let mut outcome = CpOutcome {
        device_absent_at: None,
        reason: None,
        cycles_succeeded: 0,
        probes_sent: 0,
    };
    let mut actions = Vec::new();
    // The instant the prober last observed. Timers arm relative to THIS,
    // not to a fresh clock read at drain time: the prober computed its
    // deadlines against the `now` it was called with, and re-reading the
    // clock after a slow send (or under load) would drift every deadline
    // late by the handling latency.
    let mut emitted_at = clock.now();
    prober.start(emitted_at, &mut actions);

    loop {
        // Execute pending actions.
        for action in actions.drain(..) {
            match action {
                CpAction::SendProbe(p) => {
                    let _ = transport.send(&WireMessage::Probe(p));
                }
                CpAction::StartTimer { token, after } => {
                    timers.insert(token, emitted_at + after);
                }
                CpAction::CancelTimer { token } => {
                    timers.cancel(token);
                }
                CpAction::DeviceAbsent { at, reason } => {
                    outcome.device_absent_at = Some(at);
                    outcome.reason = Some(reason);
                }
            }
        }
        if outcome.device_absent_at.is_some() || stop.is_stopped() {
            break;
        }

        // Fire due timers.
        let now = clock.now();
        let mut fired = false;
        while let Some((token, _)) = timers.pop_due(now) {
            emitted_at = now;
            prober.on_timer(now, token, &mut actions);
            fired = true;
        }
        if fired {
            continue; // execute the new actions before sleeping
        }

        // Sleep until the next deadline (bounded so the stop flag is
        // observed promptly) while listening for messages.
        let wait = match timers.next_deadline() {
            Some(at) => {
                let gap = at.saturating_since(now).as_secs_f64();
                Duration::from_secs_f64(gap.clamp(0.0, 0.05))
            }
            None => Duration::from_millis(50),
        };
        match transport.recv(wait) {
            Ok(Some(WireMessage::Reply(reply))) => {
                emitted_at = clock.now();
                prober.on_reply(emitted_at, &reply, &mut actions);
            }
            Ok(Some(WireMessage::Bye(_))) => {
                emitted_at = clock.now();
                prober.on_bye(emitted_at, &mut actions);
            }
            Ok(Some(WireMessage::LeaveNotice(_))) => {
                emitted_at = clock.now();
                prober.on_leave_notice(emitted_at, &mut actions);
            }
            Ok(Some(WireMessage::Probe(_))) | Ok(None) => {}
            Err(_) => break,
        }
    }

    let stats = prober.stats();
    outcome.cycles_succeeded = stats.cycles_succeeded;
    outcome.probes_sent = stats.probes_sent;
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SystemClock;
    use crate::transport::InMemoryTransport;
    use presence_core::{CpId, DcppCp};
    use std::thread;

    // NOTE: the old `dcpp_over_in_memory_transport` test (sleep 400 ms of
    // wall time, hope for ≥ 3 cycles) lived here; it was inherently flaky
    // under CI load. Its deflaked successor runs on the conformance
    // harness's virtual clock: see `dcpp_runtime_cycles_are_exact_on_
    // virtual_clock` in the workspace-root `tests/conformance.rs`.

    #[test]
    fn run_device_answers_probes_in_memory() {
        // Deterministic replacement for the transport-level half of the
        // old test: a device host must answer exactly what it is sent,
        // with no wall-clock cycle-count assumptions.
        let (mut cp_side, dev_side) = InMemoryTransport::pair();
        let stop = StopFlag::new();
        let dev_stop = stop.clone();
        let device = thread::spawn(move || {
            run_device(
                DeviceHost::dcpp_paper(DeviceId(0)),
                dev_side,
                &SystemClock::new(),
                &dev_stop,
            )
        });
        for seq in 0..5u64 {
            cp_side
                .send(&WireMessage::Probe(presence_core::Probe {
                    cp: CpId(1),
                    seq,
                }))
                .unwrap();
            let got = cp_side
                .recv(Duration::from_secs(5))
                .unwrap()
                .expect("device did not answer");
            match got {
                WireMessage::Reply(r) => assert_eq!(r.probe.seq, seq),
                other => panic!("unexpected message {other:?}"),
            }
        }
        stop.stop();
        let device = device.join().unwrap();
        assert_eq!(device.probes_received(), 5);
    }

    /// A clock that advances by a fixed step on every read — models a
    /// heavily loaded host where real time passes between the prober
    /// emitting an action and the loop draining it.
    struct TickingClock {
        now: std::sync::Mutex<SimTime>,
        step: presence_des::SimDuration,
    }

    impl TickingClock {
        fn new(step_ms: u64) -> Self {
            Self {
                now: std::sync::Mutex::new(SimTime::ZERO),
                step: presence_des::SimDuration::from_millis(step_ms),
            }
        }
    }

    impl Clock for TickingClock {
        fn now(&self) -> SimTime {
            let mut now = self.now.lock().unwrap();
            *now += self.step;
            *now
        }
    }

    /// A transport that never delivers and never blocks.
    struct NullTransport;

    impl Transport for NullTransport {
        fn send(&mut self, _msg: &WireMessage) -> std::io::Result<()> {
            Ok(())
        }
        fn recv(&mut self, _timeout: Duration) -> std::io::Result<Option<WireMessage>> {
            Ok(None)
        }
    }

    /// A prober that arms one 100 ms timer at start and declares absence
    /// the instant it fires — exposing exactly when the driver fired it.
    struct OneShotProber {
        started_at: Option<SimTime>,
        stats: presence_core::CpStats,
    }

    impl Prober for OneShotProber {
        fn cp(&self) -> presence_core::CpId {
            presence_core::CpId(0)
        }
        fn start(&mut self, now: SimTime, out: &mut Vec<CpAction>) {
            self.started_at = Some(now);
            out.push(CpAction::StartTimer {
                token: TimerToken(1),
                after: presence_des::SimDuration::from_millis(100),
            });
        }
        fn on_reply(&mut self, _: SimTime, _: &presence_core::Reply, _: &mut Vec<CpAction>) {}
        fn on_timer(&mut self, now: SimTime, token: TimerToken, out: &mut Vec<CpAction>) {
            assert_eq!(token, TimerToken(1));
            out.push(CpAction::DeviceAbsent {
                at: now,
                reason: AbsenceReason::ProbeTimeout,
            });
        }
        fn on_bye(&mut self, _: SimTime, _: &mut Vec<CpAction>) {}
        fn on_leave_notice(&mut self, _: SimTime, _: &mut Vec<CpAction>) {}
        fn stats(&self) -> &presence_core::CpStats {
            &self.stats
        }
        fn is_stopped(&self) -> bool {
            false
        }
        fn verdict(&self) -> Option<presence_core::Verdict> {
            None
        }
        fn current_delay(&self) -> Option<presence_des::SimDuration> {
            None
        }
    }

    #[test]
    fn timers_arm_at_emission_instant_not_drain_instant() {
        // Regression: with a 5 ms-per-read clock, arming at `clock.now() +
        // after` during the drain (one read later than the prober's `now`)
        // would fire the timer at start + 105 ms. The deadline must be
        // pinned to the emission instant: start + 100 ms exactly (the
        // driver polls the clock in 5 ms steps, and 100 is a multiple).
        let clock = TickingClock::new(5);
        let stop = StopFlag::new();
        let prober = OneShotProber {
            started_at: None,
            stats: presence_core::CpStats::default(),
        };
        let outcome = run_cp(prober, NullTransport, &clock, &stop);
        let fired_at = outcome.device_absent_at.expect("timer never fired");
        // start() saw the first clock read (5 ms); the deadline is 105 ms
        // on the absolute axis and the due-poll lands on it exactly.
        assert_eq!(
            fired_at,
            SimTime::from_nanos(105 * 1_000_000),
            "deadline drifted: fired at {} s",
            fired_at.as_secs_f64()
        );
    }

    #[test]
    fn cp_declares_absent_when_device_silent() {
        // No device at all: the CP must reach the verdict in TOF + 3 TOS.
        let (cp_side, _dev_side) = InMemoryTransport::pair();
        let stop = StopFlag::new();
        let clock = SystemClock::new();
        let prober = DcppCp::new(CpId(1), DcppConfig::paper_default());
        let outcome = run_cp(prober, cp_side, &clock, &stop);
        assert!(outcome.device_absent_at.is_some());
        assert_eq!(outcome.reason, Some(AbsenceReason::ProbeTimeout));
        assert_eq!(outcome.probes_sent, 4, "initial probe + 3 retransmissions");
        let at = outcome.device_absent_at.unwrap().as_secs_f64();
        assert!(
            (0.085..0.5).contains(&at),
            "verdict at {at}s, expected shortly after 85 ms"
        );
    }

    #[test]
    fn stop_flag_interrupts_cp() {
        let (cp_side, dev_side) = InMemoryTransport::pair();
        let stop = StopFlag::new();
        let clock = SystemClock::new();
        // Keep the device silent but alive so no verdict occurs… actually
        // without replies the CP would conclude absence; stop it first.
        stop.stop();
        let prober = DcppCp::new(CpId(1), DcppConfig::paper_default());
        let outcome = run_cp(prober, cp_side, &clock, &stop);
        assert!(outcome.device_absent_at.is_none());
        drop(dev_side);
    }
}
