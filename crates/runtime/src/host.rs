//! Threaded hosts that drive the sans-io machines against a [`Transport`]
//! and a [`Clock`].
//!
//! The device host is a serve loop: receive probe → answer. The CP host is
//! an event loop with a timer wheel: it executes every [`CpAction`] the
//! prober emits, sleeping no longer than the next timer deadline. Both
//! respect a shared stop flag for graceful shutdown.

use crate::clock::Clock;
use crate::transport::Transport;
use presence_core::{
    AbsenceReason, CpAction, DcppConfig, DcppDevice, DeviceId, Prober, TimerToken, WireMessage,
};
use presence_core::{SappDevice, SappDeviceConfig};
use presence_des::SimTime;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Cooperative shutdown flag shared between hosts and their controller.
#[derive(Debug, Clone, Default)]
pub struct StopFlag(Arc<AtomicBool>);

impl StopFlag {
    /// Creates an unset flag.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests shutdown.
    pub fn stop(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown was requested.
    #[must_use]
    pub fn is_stopped(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// The device machine a [`run_device`] host serves.
pub enum DeviceHost {
    /// A SAPP device.
    Sapp(SappDevice),
    /// A DCPP device.
    Dcpp(DcppDevice),
}

impl DeviceHost {
    /// A DCPP device with paper-default configuration.
    #[must_use]
    pub fn dcpp_paper(id: DeviceId) -> Self {
        DeviceHost::Dcpp(DcppDevice::new(id, DcppConfig::paper_default()))
    }

    /// A SAPP device with paper-default configuration.
    #[must_use]
    pub fn sapp_paper(id: DeviceId) -> Self {
        DeviceHost::Sapp(SappDevice::new(id, SappDeviceConfig::paper_default()))
    }

    /// Probes answered so far.
    #[must_use]
    pub fn probes_received(&self) -> u64 {
        match self {
            DeviceHost::Sapp(d) => d.probes_received(),
            DeviceHost::Dcpp(d) => d.probes_received(),
        }
    }
}

/// Serves probes until the stop flag is raised. Returns the device (with
/// its final state) for inspection.
pub fn run_device<T: Transport>(
    mut device: DeviceHost,
    mut transport: T,
    clock: &dyn Clock,
    stop: &StopFlag,
) -> DeviceHost {
    while !stop.is_stopped() {
        match transport.recv(Duration::from_millis(50)) {
            Ok(Some(WireMessage::Probe(probe))) => {
                let now = clock.now();
                let reply = match &mut device {
                    DeviceHost::Sapp(d) => d.on_probe(now, probe),
                    DeviceHost::Dcpp(d) => d.on_probe(now, probe),
                };
                // Best-effort: a vanished peer is the prober's problem.
                let _ = transport.send(&WireMessage::Reply(reply));
            }
            Ok(Some(_)) | Ok(None) => {}
            Err(_) => break,
        }
    }
    device
}

/// What happened during a CP host run.
#[derive(Debug, Clone, PartialEq)]
pub struct CpOutcome {
    /// Whether (and when, on the runtime clock) the device was declared
    /// absent.
    pub device_absent_at: Option<SimTime>,
    /// Why, if it was.
    pub reason: Option<AbsenceReason>,
    /// Successful probe cycles completed.
    pub cycles_succeeded: u64,
    /// Probes sent (including retransmissions).
    pub probes_sent: u64,
}

/// Drives a [`Prober`] until it stops (device declared absent) or the stop
/// flag is raised.
pub fn run_cp<T: Transport, P: Prober>(
    mut prober: P,
    mut transport: T,
    clock: &dyn Clock,
    stop: &StopFlag,
) -> CpOutcome {
    let mut timers: BTreeMap<TimerToken, SimTime> = BTreeMap::new();
    let mut outcome = CpOutcome {
        device_absent_at: None,
        reason: None,
        cycles_succeeded: 0,
        probes_sent: 0,
    };
    let mut actions = Vec::new();
    prober.start(clock.now(), &mut actions);

    loop {
        // Execute pending actions.
        for action in actions.drain(..) {
            match action {
                CpAction::SendProbe(p) => {
                    let _ = transport.send(&WireMessage::Probe(p));
                }
                CpAction::StartTimer { token, after } => {
                    timers.insert(token, clock.now() + after);
                }
                CpAction::CancelTimer { token } => {
                    timers.remove(&token);
                }
                CpAction::DeviceAbsent { at, reason } => {
                    outcome.device_absent_at = Some(at);
                    outcome.reason = Some(reason);
                }
            }
        }
        if outcome.device_absent_at.is_some() || stop.is_stopped() {
            break;
        }

        // Fire due timers.
        let now = clock.now();
        let due: Vec<TimerToken> = timers
            .iter()
            .filter(|&(_, &at)| at <= now)
            .map(|(&t, _)| t)
            .collect();
        let mut fired = false;
        for token in due {
            timers.remove(&token);
            prober.on_timer(now, token, &mut actions);
            fired = true;
        }
        if fired {
            continue; // execute the new actions before sleeping
        }

        // Sleep until the next deadline (bounded so the stop flag is
        // observed promptly) while listening for messages.
        let next_deadline = timers.values().min().copied();
        let wait = match next_deadline {
            Some(at) => {
                let gap = at.saturating_since(now).as_secs_f64();
                Duration::from_secs_f64(gap.clamp(0.0, 0.05))
            }
            None => Duration::from_millis(50),
        };
        match transport.recv(wait) {
            Ok(Some(WireMessage::Reply(reply))) => {
                prober.on_reply(clock.now(), &reply, &mut actions);
            }
            Ok(Some(WireMessage::Bye(_))) => {
                prober.on_bye(clock.now(), &mut actions);
            }
            Ok(Some(WireMessage::LeaveNotice(_))) => {
                prober.on_leave_notice(clock.now(), &mut actions);
            }
            Ok(Some(WireMessage::Probe(_))) | Ok(None) => {}
            Err(_) => break,
        }
    }

    let stats = prober.stats();
    outcome.cycles_succeeded = stats.cycles_succeeded;
    outcome.probes_sent = stats.probes_sent;
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SystemClock;
    use crate::transport::InMemoryTransport;
    use presence_core::{CpId, DcppCp};
    use std::thread;

    #[test]
    fn dcpp_over_in_memory_transport() {
        let (cp_side, dev_side) = InMemoryTransport::pair();
        let stop = StopFlag::new();
        let clock = SystemClock::new();

        // The wait is DEVICE-controlled, so both sides need the tightened
        // config for the test to run many cycles in little wall time.
        let mut cfg = DcppConfig::paper_default();
        cfg.delta_min = presence_des::SimDuration::from_millis(5);
        cfg.d_min = presence_des::SimDuration::from_millis(20);

        let dev_stop = stop.clone();
        let dev_clock = clock.clone();
        let device = thread::spawn(move || {
            run_device(
                DeviceHost::Dcpp(presence_core::DcppDevice::new(DeviceId(0), cfg)),
                dev_side,
                &dev_clock,
                &dev_stop,
            )
        });

        let prober = DcppCp::new(CpId(1), cfg);

        let cp_stop = stop.clone();
        let cp_clock = clock.clone();
        let cp = thread::spawn(move || run_cp(prober, cp_side, &cp_clock, &cp_stop));

        thread::sleep(Duration::from_millis(400));
        stop.stop();
        let outcome = cp.join().unwrap();
        let device = device.join().unwrap();

        assert!(
            outcome.cycles_succeeded >= 3,
            "only {} cycles in 400 ms",
            outcome.cycles_succeeded
        );
        assert!(outcome.device_absent_at.is_none(), "false absence verdict");
        assert_eq!(device.probes_received(), outcome.probes_sent);
    }

    #[test]
    fn cp_declares_absent_when_device_silent() {
        // No device at all: the CP must reach the verdict in TOF + 3 TOS.
        let (cp_side, _dev_side) = InMemoryTransport::pair();
        let stop = StopFlag::new();
        let clock = SystemClock::new();
        let prober = DcppCp::new(CpId(1), DcppConfig::paper_default());
        let outcome = run_cp(prober, cp_side, &clock, &stop);
        assert!(outcome.device_absent_at.is_some());
        assert_eq!(outcome.reason, Some(AbsenceReason::ProbeTimeout));
        assert_eq!(outcome.probes_sent, 4, "initial probe + 3 retransmissions");
        let at = outcome.device_absent_at.unwrap().as_secs_f64();
        assert!(
            (0.085..0.5).contains(&at),
            "verdict at {at}s, expected shortly after 85 ms"
        );
    }

    #[test]
    fn stop_flag_interrupts_cp() {
        let (cp_side, dev_side) = InMemoryTransport::pair();
        let stop = StopFlag::new();
        let clock = SystemClock::new();
        // Keep the device silent but alive so no verdict occurs… actually
        // without replies the CP would conclude absence; stop it first.
        stop.stop();
        let prober = DcppCp::new(CpId(1), DcppConfig::paper_default());
        let outcome = run_cp(prober, cp_side, &clock, &stop);
        assert!(outcome.device_absent_at.is_none());
        drop(dev_side);
    }
}
