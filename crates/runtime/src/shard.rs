//! The sharded presence host: a multi-socket UDP event loop serving many
//! device and prober machines from a fixed pool of worker threads.
//!
//! [`run_device`]/[`run_cp`] host *one* machine per thread — fine for a
//! demo, hopeless for the paper's deployment target of thousands of
//! devices. [`ShardedHost`] hashes machines across `RUNTIME_SHARDS` worker
//! threads. Each shard owns exactly one UDP socket (no cross-thread socket
//! contention), a [`TimerWheel`] keyed by `(machine, token)`, and a batch
//! buffer: per loop iteration it fires every due timer, drains up to a
//! batch of datagrams non-blockingly, routes each through the
//! [`codec`](crate::codec), flushes queued sends, republishes its earliest
//! deadline, and only sleeps when a full iteration found no work.
//!
//! Routing on a shared socket:
//!
//! * probes travel in the device-addressed `0x06` frame
//!   ([`crate::codec::encode_addressed`]) — the shard looks the target
//!   device up by id;
//! * replies travel bare and route by `reply.probe.cp`;
//! * `Bye`/`LeaveNotice` route to every hosted prober watching the named
//!   device.
//!
//! Everything the host drops is counted ([`ShardCounters`]), never
//! silently lost, mirroring `FabricStats` in the simulator's network
//! fabric. The counters double as the conformance controller's quiescence
//! instrument: `loop_iterations` proves a shard completed full
//! drain-and-fire passes, `activity()` proves those passes found nothing
//! to do.
//!
//! [`run_device`]: crate::run_device
//! [`run_cp`]: crate::run_cp

use crate::clock::Clock;
use crate::codec::{decode_datagram, encode, encode_addressed, Datagram, MAX_DATAGRAM};
use crate::host::{DeviceHost, StopFlag};
use crate::stats::{ShardCounters, ShardStats, NO_DEADLINE};
use crate::wheel::TimerWheel;
use presence_core::{CpAction, CpId, CpStats, DeviceId, Prober, TimerToken, Verdict, WireMessage};
use presence_des::SimTime;
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Configuration of a [`ShardedHost`].
#[derive(Debug, Clone)]
pub struct HostConfig {
    /// Worker threads (= sockets). Machines are hashed across shards by
    /// id.
    pub shards: usize,
    /// Bind address for every shard socket (use port `0` to let the OS
    /// pick distinct ports).
    pub bind: String,
    /// Maximum datagrams drained from the socket per loop iteration.
    pub recv_batch: usize,
    /// Sleep when an iteration finds no work. Bounds both timer-firing
    /// latency and stop-flag reaction time.
    pub poll_interval: Duration,
}

impl HostConfig {
    /// Loopback defaults: shard count from the `RUNTIME_SHARDS`
    /// environment variable (falling back to available parallelism,
    /// capped at 4), OS-assigned ports.
    #[must_use]
    pub fn default_loopback() -> Self {
        Self {
            shards: shards_from_env(),
            bind: "127.0.0.1:0".to_string(),
            recv_batch: 64,
            poll_interval: Duration::from_millis(1),
        }
    }

    /// Like [`HostConfig::default_loopback`] with an explicit shard
    /// count.
    #[must_use]
    pub fn loopback(shards: usize) -> Self {
        Self {
            shards: shards.max(1),
            ..Self::default_loopback()
        }
    }
}

/// The shard count the environment asks for: `RUNTIME_SHARDS` if set and
/// parseable, else available parallelism capped at 4.
#[must_use]
pub fn shards_from_env() -> usize {
    std::env::var("RUNTIME_SHARDS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            thread::available_parallelism()
                .map(|n| n.get().min(4))
                .unwrap_or(1)
        })
}

/// Timer-wheel key for one shard: which machine, which timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum WheelKey {
    /// Start the prober with this CP id.
    StartProber(u32),
    /// A protocol timer armed by the prober with this CP id.
    ProberTimer(u32, TimerToken),
    /// Silence (depart) the device with this id.
    SilenceDevice(u32),
}

struct DeviceSlot {
    host: DeviceHost,
    /// A silenced device models departure: probes to it are dropped.
    silenced: bool,
}

struct ProberSlot {
    prober: Box<dyn Prober + Send>,
    /// Where this prober's target device is served.
    peer: SocketAddr,
    /// The device the prober watches (for the addressed probe frame).
    target: DeviceId,
    started: bool,
}

/// Final state of one hosted prober.
#[derive(Debug, Clone)]
pub struct ProberReport {
    /// The prober's identity.
    pub cp: CpId,
    /// Terminal absence verdict, if reached.
    pub verdict: Option<Verdict>,
    /// Probe-cycle statistics.
    pub stats: CpStats,
}

/// Final state of one hosted device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceReport {
    /// The device's identity.
    pub device: DeviceId,
    /// Probes it answered.
    pub probes_received: u64,
}

/// Everything a finished host hands back.
#[derive(Debug, Clone)]
pub struct HostReport {
    /// Hosted probers, sorted by CP id.
    pub probers: Vec<ProberReport>,
    /// Hosted devices, sorted by device id.
    pub devices: Vec<DeviceReport>,
    /// Summed counters across shards.
    pub stats: ShardStats,
    /// Per-shard counters.
    pub per_shard: Vec<ShardStats>,
}

/// One worker: socket, machines, wheel, counters.
struct Shard {
    socket: UdpSocket,
    counters: Arc<ShardCounters>,
    devices: HashMap<u32, DeviceSlot>,
    probers: HashMap<u32, ProberSlot>,
    wheel: TimerWheel<WheelKey>,
    recv_batch: usize,
    poll_interval: Duration,
}

impl Shard {
    fn publish_deadline(&mut self) {
        let nanos = self
            .wheel
            .next_deadline()
            .map_or(NO_DEADLINE, SimTime::as_nanos);
        self.counters
            .next_deadline_nanos
            .store(nanos, Ordering::Release);
    }

    /// Executes one prober's pending actions. `emitted_at` is the instant
    /// the machine was called with — timers arm relative to it, not to a
    /// fresh clock read (see `run_cp`'s emission-instant rule).
    fn execute(
        &mut self,
        cp: u32,
        emitted_at: SimTime,
        actions: &mut Vec<CpAction>,
        sends: &mut Vec<(SocketAddr, Vec<u8>)>,
    ) {
        for action in actions.drain(..) {
            match action {
                CpAction::SendProbe(p) => {
                    let slot = &self.probers[&cp];
                    sends.push((
                        slot.peer,
                        encode_addressed(slot.target, &WireMessage::Probe(p)),
                    ));
                }
                CpAction::StartTimer { token, after } => {
                    self.wheel
                        .insert(WheelKey::ProberTimer(cp, token), emitted_at + after);
                }
                CpAction::CancelTimer { token } => {
                    self.wheel.cancel(WheelKey::ProberTimer(cp, token));
                }
                // Verdicts are read back from `Prober::verdict()` at
                // report time.
                CpAction::DeviceAbsent { .. } => {}
            }
        }
    }

    fn fire_due(&mut self, now: SimTime, sends: &mut Vec<(SocketAddr, Vec<u8>)>) -> u64 {
        let mut fired = 0;
        let mut actions = Vec::new();
        while let Some((key, _at)) = self.wheel.pop_due(now) {
            fired += 1;
            match key {
                WheelKey::StartProber(cp) => {
                    if let Some(slot) = self.probers.get_mut(&cp) {
                        slot.started = true;
                        slot.prober.start(now, &mut actions);
                        self.execute(cp, now, &mut actions, sends);
                    }
                }
                WheelKey::ProberTimer(cp, token) => {
                    if let Some(slot) = self.probers.get_mut(&cp) {
                        if !slot.prober.is_stopped() {
                            slot.prober.on_timer(now, token, &mut actions);
                            self.execute(cp, now, &mut actions, sends);
                        }
                    }
                }
                WheelKey::SilenceDevice(dev) => {
                    if let Some(slot) = self.devices.get_mut(&dev) {
                        slot.silenced = true;
                    }
                }
            }
        }
        self.counters
            .timers_fired
            .fetch_add(fired, Ordering::Release);
        fired
    }

    fn handle_datagram(
        &mut self,
        now: SimTime,
        buf: &[u8],
        from: SocketAddr,
        sends: &mut Vec<(SocketAddr, Vec<u8>)>,
    ) {
        let datagram = match decode_datagram(buf) {
            Ok(d) => d,
            Err(_) => {
                self.counters.decode_errors.fetch_add(1, Ordering::Release);
                return;
            }
        };
        self.counters
            .datagrams_received
            .fetch_add(1, Ordering::Release);
        let mut actions = Vec::new();
        match datagram {
            Datagram::Addressed(device, WireMessage::Probe(probe)) => {
                match self.devices.get_mut(&device.0) {
                    Some(slot) if slot.silenced => {
                        self.counters
                            .dropped_departed
                            .fetch_add(1, Ordering::Release);
                    }
                    Some(slot) => {
                        let reply = slot.host.on_probe(now, probe);
                        sends.push((from, encode(&WireMessage::Reply(reply))));
                    }
                    None => {
                        self.counters.unroutable.fetch_add(1, Ordering::Release);
                    }
                }
            }
            Datagram::Direct(WireMessage::Reply(reply)) => {
                let cp = reply.probe.cp.0;
                match self.probers.get_mut(&cp) {
                    Some(slot) if slot.started && !slot.prober.is_stopped() => {
                        slot.prober.on_reply(now, &reply, &mut actions);
                        self.execute(cp, now, &mut actions, sends);
                    }
                    Some(_) => {}
                    None => {
                        self.counters.unroutable.fetch_add(1, Ordering::Release);
                    }
                }
            }
            Datagram::Direct(WireMessage::Bye(bye))
            | Datagram::Addressed(_, WireMessage::Bye(bye)) => {
                let watching: Vec<u32> = self
                    .probers
                    .iter()
                    .filter(|(_, s)| s.target == bye.device && s.started && !s.prober.is_stopped())
                    .map(|(&cp, _)| cp)
                    .collect();
                for cp in watching {
                    if let Some(slot) = self.probers.get_mut(&cp) {
                        slot.prober.on_bye(now, &mut actions);
                    }
                    self.execute(cp, now, &mut actions, sends);
                }
            }
            Datagram::Direct(WireMessage::LeaveNotice(notice))
            | Datagram::Addressed(_, WireMessage::LeaveNotice(notice)) => {
                let watching: Vec<u32> = self
                    .probers
                    .iter()
                    .filter(|(_, s)| {
                        s.target == notice.device && s.started && !s.prober.is_stopped()
                    })
                    .map(|(&cp, _)| cp)
                    .collect();
                for cp in watching {
                    if let Some(slot) = self.probers.get_mut(&cp) {
                        slot.prober.on_leave_notice(now, &mut actions);
                    }
                    self.execute(cp, now, &mut actions, sends);
                }
            }
            // A bare probe has no target on a shared socket; an addressed
            // reply makes no sense either.
            Datagram::Direct(WireMessage::Probe(_)) | Datagram::Addressed(_, _) => {
                self.counters.unroutable.fetch_add(1, Ordering::Release);
            }
        }
    }

    fn flush(&mut self, sends: &mut Vec<(SocketAddr, Vec<u8>)>) {
        for (dest, bytes) in sends.drain(..) {
            match self.socket.send_to(&bytes, dest) {
                Ok(_) => {
                    self.counters.datagrams_sent.fetch_add(1, Ordering::Release);
                }
                Err(_) => {
                    self.counters
                        .dropped_sendpressure
                        .fetch_add(1, Ordering::Release);
                }
            }
        }
    }

    fn run(
        mut self,
        clock: Arc<dyn Clock>,
        stop: StopFlag,
    ) -> (Vec<ProberReport>, Vec<DeviceReport>) {
        let mut buf = [0u8; MAX_DATAGRAM];
        let mut sends: Vec<(SocketAddr, Vec<u8>)> = Vec::new();
        while !stop.is_stopped() {
            let mut work = 0u64;
            let now = clock.now();
            work += self.fire_due(now, &mut sends);

            for _ in 0..self.recv_batch {
                match self.socket.recv_from(&mut buf) {
                    Ok((n, from)) => {
                        work += 1;
                        let now = clock.now();
                        // Split borrow: copy out the datagram so handle_
                        // datagram can take &mut self.
                        let bytes = buf[..n].to_vec();
                        self.handle_datagram(now, &bytes, from, &mut sends);
                    }
                    Err(e)
                        if e.kind() == io::ErrorKind::WouldBlock
                            || e.kind() == io::ErrorKind::TimedOut =>
                    {
                        break;
                    }
                    Err(_) => break,
                }
            }

            work += sends.len() as u64;
            self.flush(&mut sends);
            self.publish_deadline();
            self.counters
                .loop_iterations
                .fetch_add(1, Ordering::Release);

            if work == 0 {
                thread::sleep(self.poll_interval);
            }
        }

        let mut probers: Vec<ProberReport> = self
            .probers
            .into_values()
            .map(|s| ProberReport {
                cp: s.prober.cp(),
                verdict: s.prober.verdict(),
                stats: *s.prober.stats(),
            })
            .collect();
        probers.sort_by_key(|r| r.cp.0);
        let mut devices: Vec<DeviceReport> = self
            .devices
            .into_values()
            .map(|s| DeviceReport {
                device: s.host.id(),
                probes_received: s.host.probes_received(),
            })
            .collect();
        devices.sort_by_key(|r| r.device.0);
        (probers, devices)
    }
}

/// A multi-socket sharded UDP host, configured between [`bind`] and
/// [`start`].
///
/// [`bind`]: ShardedHost::bind
/// [`start`]: ShardedHost::start
pub struct ShardedHost {
    shards: Vec<Shard>,
    addrs: Vec<SocketAddr>,
    counters: Vec<Arc<ShardCounters>>,
}

impl ShardedHost {
    /// Binds one non-blocking UDP socket per shard.
    pub fn bind(config: &HostConfig) -> io::Result<Self> {
        let n = config.shards.max(1);
        let mut shards = Vec::with_capacity(n);
        let mut addrs = Vec::with_capacity(n);
        let mut counters = Vec::with_capacity(n);
        for _ in 0..n {
            let socket = UdpSocket::bind(&config.bind)?;
            socket.set_nonblocking(true)?;
            addrs.push(socket.local_addr()?);
            let c = Arc::new(ShardCounters::new());
            counters.push(Arc::clone(&c));
            shards.push(Shard {
                socket,
                counters: c,
                devices: HashMap::new(),
                probers: HashMap::new(),
                wheel: TimerWheel::new(),
                recv_batch: config.recv_batch.max(1),
                poll_interval: config.poll_interval,
            });
        }
        Ok(Self {
            shards,
            addrs,
            counters,
        })
    }

    fn shard_of_device(&self, device: DeviceId) -> usize {
        device.0 as usize % self.shards.len()
    }

    fn shard_of_cp(&self, cp: CpId) -> usize {
        cp.0 as usize % self.shards.len()
    }

    /// Adds a device machine, optionally scheduling the instant it goes
    /// silent (models departure without deregistration).
    pub fn add_device(&mut self, host: DeviceHost, silence_at: Option<SimTime>) {
        let id = host.id();
        let idx = self.shard_of_device(id);
        let shard = &mut self.shards[idx];
        if let Some(at) = silence_at {
            shard.wheel.insert(WheelKey::SilenceDevice(id.0), at);
        }
        shard.devices.insert(
            id.0,
            DeviceSlot {
                host,
                silenced: false,
            },
        );
    }

    /// Adds a prober watching the device `target` served at `peer`,
    /// starting at `start_at` on the host clock.
    pub fn add_prober(
        &mut self,
        prober: Box<dyn Prober + Send>,
        peer: SocketAddr,
        target: DeviceId,
        start_at: SimTime,
    ) {
        let cp = prober.cp();
        let idx = self.shard_of_cp(cp);
        let shard = &mut self.shards[idx];
        shard.wheel.insert(WheelKey::StartProber(cp.0), start_at);
        shard.probers.insert(
            cp.0,
            ProberSlot {
                prober,
                peer,
                target,
                started: false,
            },
        );
    }

    /// The socket address serving `device` (valid once the device is
    /// added; stable across [`start`](ShardedHost::start)).
    #[must_use]
    pub fn addr_of(&self, device: DeviceId) -> SocketAddr {
        self.addrs[self.shard_of_device(device)]
    }

    /// All shard socket addresses, in shard order.
    #[must_use]
    pub fn local_addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }

    /// Spawns the shard threads. The host serves until
    /// [`HostHandle::stop`].
    #[must_use]
    pub fn start(mut self, clock: Arc<dyn Clock>) -> HostHandle {
        let stop = StopFlag::new();
        // Publish each shard's seeded deadline BEFORE its thread exists,
        // so a controller sampling immediately after `start` never sees
        // an empty wheel that is about to become non-empty.
        for shard in &mut self.shards {
            shard.publish_deadline();
        }
        let threads = self
            .shards
            .into_iter()
            .enumerate()
            .map(|(i, shard)| {
                let clock = Arc::clone(&clock);
                let stop = stop.clone();
                thread::Builder::new()
                    .name(format!("presence-shard-{i}"))
                    .spawn(move || shard.run(clock, stop))
                    .expect("spawn shard thread")
            })
            .collect();
        HostHandle {
            threads,
            counters: self.counters,
            addrs: self.addrs,
            stop,
        }
    }
}

/// A running [`ShardedHost`]: live counters, shutdown, and the final
/// report.
pub struct HostHandle {
    threads: Vec<JoinHandle<(Vec<ProberReport>, Vec<DeviceReport>)>>,
    counters: Vec<Arc<ShardCounters>>,
    addrs: Vec<SocketAddr>,
    stop: StopFlag,
}

impl HostHandle {
    /// The socket address serving `device`.
    #[must_use]
    pub fn addr_of(&self, device: DeviceId) -> SocketAddr {
        self.addrs[device.0 as usize % self.addrs.len()]
    }

    /// Summed live counters across shards.
    #[must_use]
    pub fn stats(&self) -> ShardStats {
        self.counters
            .iter()
            .fold(ShardStats::default(), |acc, c| acc.merged(c.snapshot()))
    }

    /// Summed activity across shards (see [`ShardCounters::activity`]).
    #[must_use]
    pub fn activity(&self) -> u64 {
        self.counters.iter().map(|c| c.activity()).sum()
    }

    /// Completed loop iterations, per shard.
    #[must_use]
    pub fn iterations(&self) -> Vec<u64> {
        self.counters
            .iter()
            .map(|c| c.loop_iterations.load(Ordering::Acquire))
            .collect()
    }

    /// Earliest armed timer deadline across shards.
    #[must_use]
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.counters
            .iter()
            .map(|c| c.next_deadline_nanos.load(Ordering::Acquire))
            .min()
            .filter(|&n| n != NO_DEADLINE)
            .map(SimTime::from_nanos)
    }

    /// Requests shutdown (idempotent).
    pub fn stop(&self) {
        self.stop.stop();
    }

    /// Stops the host and collects the final report.
    #[must_use]
    pub fn join(self) -> HostReport {
        self.stop.stop();
        let mut probers = Vec::new();
        let mut devices = Vec::new();
        for t in self.threads {
            let (p, d) = t.join().expect("shard thread panicked");
            probers.extend(p);
            devices.extend(d);
        }
        probers.sort_by_key(|r| r.cp.0);
        devices.sort_by_key(|r| r.device.0);
        let per_shard: Vec<ShardStats> = self.counters.iter().map(|c| c.snapshot()).collect();
        let stats = per_shard
            .iter()
            .fold(ShardStats::default(), |acc, s| acc.merged(*s));
        HostReport {
            probers,
            devices,
            stats,
            per_shard,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SystemClock;
    use presence_core::{DcppConfig, DcppCp, DcppDevice};

    #[test]
    fn sharded_host_serves_dcpp_pairs_over_loopback() {
        // 8 devices on a 2-shard device host, 8 probers on a 2-shard CP
        // host, real clock, tightened waits so cycles complete quickly.
        let mut cfg = DcppConfig::paper_default();
        cfg.delta_min = presence_des::SimDuration::from_millis(5);
        cfg.d_min = presence_des::SimDuration::from_millis(10);

        let clock: Arc<dyn Clock> = Arc::new(SystemClock::new());
        let mut devices = ShardedHost::bind(&HostConfig::loopback(2)).unwrap();
        for d in 0..8u32 {
            devices.add_device(DeviceHost::Dcpp(DcppDevice::new(DeviceId(d), cfg)), None);
        }
        let mut cps = ShardedHost::bind(&HostConfig::loopback(2)).unwrap();
        for d in 0..8u32 {
            cps.add_prober(
                Box::new(DcppCp::new(CpId(d), cfg)),
                devices.addr_of(DeviceId(d)),
                DeviceId(d),
                SimTime::from_nanos(u64::from(d) * 1_000_000),
            );
        }
        let dev_handle = devices.start(Arc::clone(&clock));
        let cp_handle = cps.start(Arc::clone(&clock));

        std::thread::sleep(Duration::from_millis(300));
        // Stop the probers first, then let the device side drain whatever
        // is still in flight before counting.
        let cp_report = cp_handle.join();
        let settle = std::time::Instant::now() + Duration::from_secs(2);
        let mut last = dev_handle.activity();
        loop {
            std::thread::sleep(Duration::from_millis(20));
            let now = dev_handle.activity();
            if now == last || std::time::Instant::now() > settle {
                break;
            }
            last = now;
        }
        let dev_report = dev_handle.join();

        let total_probes: u64 = cp_report.probers.iter().map(|p| p.stats.probes_sent).sum();
        let total_received: u64 = dev_report.devices.iter().map(|d| d.probes_received).sum();
        assert!(total_probes >= 8, "probers barely ran: {total_probes}");
        assert_eq!(total_received, total_probes, "probes lost on loopback");
        for p in &cp_report.probers {
            assert!(p.verdict.is_none(), "false absence verdict for {:?}", p.cp);
            assert!(p.stats.cycles_succeeded >= 2, "{:?} too slow", p.cp);
        }
        assert_eq!(cp_report.stats.dropped(), 0);
        assert_eq!(dev_report.stats.dropped(), 0);
        assert_eq!(dev_report.stats.unroutable, 0);
    }

    #[test]
    fn silenced_device_drops_probes_and_cp_concludes_absence() {
        let cfg = DcppConfig::paper_default();
        let clock: Arc<dyn Clock> = Arc::new(SystemClock::new());
        let mut devices = ShardedHost::bind(&HostConfig::loopback(1)).unwrap();
        // Silent from the very start.
        devices.add_device(
            DeviceHost::Dcpp(DcppDevice::new(DeviceId(0), cfg)),
            Some(SimTime::ZERO),
        );
        let mut cps = ShardedHost::bind(&HostConfig::loopback(1)).unwrap();
        cps.add_prober(
            Box::new(DcppCp::new(CpId(0), cfg)),
            devices.addr_of(DeviceId(0)),
            DeviceId(0),
            SimTime::ZERO,
        );
        let dev_handle = devices.start(Arc::clone(&clock));
        let cp_handle = cps.start(Arc::clone(&clock));

        // TOF + 3·TOS = 85 ms with paper defaults; give it slack.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            std::thread::sleep(Duration::from_millis(10));
            let r = cp_handle.stats();
            if r.datagrams_sent >= 4 || std::time::Instant::now() > deadline {
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(50));
        let cp_report = cp_handle.join();
        let dev_report = dev_handle.join();

        let p = &cp_report.probers[0];
        let v = p.verdict.expect("CP never concluded absence");
        assert_eq!(
            v.reason,
            presence_core::AbsenceReason::ProbeTimeout,
            "wrong reason"
        );
        assert_eq!(p.stats.probes_sent, 4, "initial probe + 3 retransmissions");
        assert_eq!(dev_report.stats.dropped_departed, 4);
        assert_eq!(dev_report.devices[0].probes_received, 0);
    }

    #[test]
    fn unroutable_and_garbage_datagrams_are_counted() {
        let clock: Arc<dyn Clock> = Arc::new(SystemClock::new());
        let mut host = ShardedHost::bind(&HostConfig::loopback(1)).unwrap();
        host.add_device(DeviceHost::dcpp_paper(DeviceId(0)), None);
        let addr = host.addr_of(DeviceId(0));
        let handle = host.start(clock);

        let sock = UdpSocket::bind("127.0.0.1:0").unwrap();
        // Garbage.
        sock.send_to(&[0xff, 0x00], addr).unwrap();
        // Probe addressed to a device this host does not serve.
        let stray = encode_addressed(
            DeviceId(99),
            &WireMessage::Probe(presence_core::Probe {
                cp: CpId(1),
                seq: 1,
            }),
        );
        sock.send_to(&stray, addr).unwrap();

        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while std::time::Instant::now() < deadline {
            let s = handle.stats();
            if s.decode_errors >= 1 && s.unroutable >= 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        let report = handle.join();
        assert_eq!(report.stats.decode_errors, 1);
        assert_eq!(report.stats.unroutable, 1);
        assert_eq!(report.stats.dropped(), 0);
    }
}
