//! Binary wire codec for [`WireMessage`].
//!
//! A compact, explicit little-endian format (no serde reflection on the
//! wire): every datagram starts with a one-byte message tag, followed by
//! fixed-width fields. Probes are 13 bytes, replies at most 32 — small
//! enough that even the paper's PDAs-and-mobile-phones deployment target
//! would not blink.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! Probe        = 0x01 cp:u32 seq:u64
//! Reply(SAPP)  = 0x02 cp:u32 seq:u64 device:u32 pc:u64 p0:u32 p1:u32
//!                 (p0/p1 = last probers + 1; 0 encodes None)
//! Reply(DCPP)  = 0x03 cp:u32 seq:u64 device:u32 wait_nanos:u64
//! Bye          = 0x04 device:u32
//! LeaveNotice  = 0x05 device:u32 reporter:u32
//! Addressed    = 0x06 device:u32 <any of the above>
//! ```
//!
//! The `Addressed` frame exists for the sharded presence host
//! ([`crate::ShardedHost`]): a plain [`Probe`] does not name its target
//! device (point-to-point transports address by socket), but a host
//! serving thousands of devices behind one socket per shard needs the
//! destination in the datagram. Replies travel back unwrapped — the
//! `probe.cp` field already identifies the prober on a shared socket.

use presence_core::{Bye, CpId, DeviceId, LeaveNotice, Probe, Reply, ReplyBody, WireMessage};
use presence_des::SimDuration;
use std::error::Error;
use std::fmt;

const TAG_PROBE: u8 = 0x01;
const TAG_REPLY_SAPP: u8 = 0x02;
const TAG_REPLY_DCPP: u8 = 0x03;
const TAG_BYE: u8 = 0x04;
const TAG_NOTICE: u8 = 0x05;
const TAG_ADDRESSED: u8 = 0x06;

/// Receive-buffer size every transport allocates. Every encoding this
/// module can produce — including the 5-byte [`encode_addressed`] envelope
/// — fits with generous headroom (pinned by a proptest), so no datagram is
/// ever truncated on receive (a truncated datagram would vanish silently
/// as a decode error).
pub const MAX_DATAGRAM: usize = 256;

/// A datagram could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer was shorter than the message layout requires.
    Truncated,
    /// The leading tag byte is not a known message type.
    UnknownTag(u8),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "datagram truncated"),
            DecodeError::UnknownTag(t) => write!(f, "unknown message tag 0x{t:02x}"),
        }
    }
}

impl Error for DecodeError {}

/// Little-endian reader over a byte slice (replaces the `bytes` crate's
/// `Buf` so the runtime stays dependency-free).
struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn get_u8(&mut self) -> Result<u8, DecodeError> {
        let (&b, rest) = self.buf.split_first().ok_or(DecodeError::Truncated)?;
        self.buf = rest;
        Ok(b)
    }

    fn get_u32_le(&mut self) -> Result<u32, DecodeError> {
        if self.buf.len() < 4 {
            return Err(DecodeError::Truncated);
        }
        let (head, rest) = self.buf.split_at(4);
        self.buf = rest;
        Ok(u32::from_le_bytes(head.try_into().expect("4 bytes")))
    }

    fn get_u64_le(&mut self) -> Result<u64, DecodeError> {
        if self.buf.len() < 8 {
            return Err(DecodeError::Truncated);
        }
        let (head, rest) = self.buf.split_at(8);
        self.buf = rest;
        Ok(u64::from_le_bytes(head.try_into().expect("8 bytes")))
    }
}

fn put_prober(buf: &mut Vec<u8>, p: Option<CpId>) {
    // The wire format shifts ids by one so 0 can mean "no prober", which
    // reserves CpId(u32::MAX): the protocol never allocates it (CP ids are
    // small). Encoding it anyway degrades to "none" in release builds, but
    // is a caught invariant violation under test.
    debug_assert!(
        p.is_none_or(|c| c.0 != u32::MAX),
        "CpId(u32::MAX) is reserved by the wire format"
    );
    let encoded = p.and_then(|c| c.0.checked_add(1)).unwrap_or(0);
    buf.extend_from_slice(&encoded.to_le_bytes());
}

fn get_prober(v: u32) -> Option<CpId> {
    v.checked_sub(1).map(CpId)
}

/// Encodes a message into a fresh buffer.
#[must_use]
pub fn encode(msg: &WireMessage) -> Vec<u8> {
    let mut buf = Vec::with_capacity(33);
    match msg {
        WireMessage::Probe(p) => {
            buf.push(TAG_PROBE);
            buf.extend_from_slice(&p.cp.0.to_le_bytes());
            buf.extend_from_slice(&p.seq.to_le_bytes());
        }
        WireMessage::Reply(r) => match r.body {
            ReplyBody::Sapp { pc, last_probers } => {
                buf.push(TAG_REPLY_SAPP);
                buf.extend_from_slice(&r.probe.cp.0.to_le_bytes());
                buf.extend_from_slice(&r.probe.seq.to_le_bytes());
                buf.extend_from_slice(&r.device.0.to_le_bytes());
                buf.extend_from_slice(&pc.to_le_bytes());
                put_prober(&mut buf, last_probers[0]);
                put_prober(&mut buf, last_probers[1]);
            }
            ReplyBody::Dcpp { wait } => {
                buf.push(TAG_REPLY_DCPP);
                buf.extend_from_slice(&r.probe.cp.0.to_le_bytes());
                buf.extend_from_slice(&r.probe.seq.to_le_bytes());
                buf.extend_from_slice(&r.device.0.to_le_bytes());
                buf.extend_from_slice(&wait.as_nanos().to_le_bytes());
            }
        },
        WireMessage::Bye(b) => {
            buf.push(TAG_BYE);
            buf.extend_from_slice(&b.device.0.to_le_bytes());
        }
        WireMessage::LeaveNotice(n) => {
            buf.push(TAG_NOTICE);
            buf.extend_from_slice(&n.device.0.to_le_bytes());
            buf.extend_from_slice(&n.reporter.0.to_le_bytes());
        }
    }
    buf
}

/// Encodes a message wrapped in the device-addressed host frame.
#[must_use]
pub fn encode_addressed(device: DeviceId, msg: &WireMessage) -> Vec<u8> {
    let inner = encode(msg);
    let mut buf = Vec::with_capacity(5 + inner.len());
    buf.push(TAG_ADDRESSED);
    buf.extend_from_slice(&device.0.to_le_bytes());
    buf.extend_from_slice(&inner);
    buf
}

/// One datagram as a shard socket sees it: either a plain wire message or
/// one wrapped in the device-addressed host frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Datagram {
    /// A bare wire message (point-to-point transports, replies).
    Direct(WireMessage),
    /// A message addressed to one hosted device.
    Addressed(DeviceId, WireMessage),
}

/// Decodes one datagram, accepting both bare messages and the
/// device-addressed host frame.
pub fn decode_datagram(buf: &[u8]) -> Result<Datagram, DecodeError> {
    match buf.first() {
        Some(&TAG_ADDRESSED) => {
            let mut r = Reader { buf: &buf[1..] };
            let device = DeviceId(r.get_u32_le()?);
            Ok(Datagram::Addressed(device, decode(r.buf)?))
        }
        _ => Ok(Datagram::Direct(decode(buf)?)),
    }
}

/// Decodes one datagram.
pub fn decode(buf: &[u8]) -> Result<WireMessage, DecodeError> {
    let mut r = Reader { buf };
    let tag = r.get_u8()?;
    match tag {
        TAG_PROBE => Ok(WireMessage::Probe(Probe {
            cp: CpId(r.get_u32_le()?),
            seq: r.get_u64_le()?,
        })),
        TAG_REPLY_SAPP => {
            let cp = CpId(r.get_u32_le()?);
            let seq = r.get_u64_le()?;
            let device = DeviceId(r.get_u32_le()?);
            let pc = r.get_u64_le()?;
            let p0 = get_prober(r.get_u32_le()?);
            let p1 = get_prober(r.get_u32_le()?);
            Ok(WireMessage::Reply(Reply {
                probe: Probe { cp, seq },
                device,
                body: ReplyBody::Sapp {
                    pc,
                    last_probers: [p0, p1],
                },
            }))
        }
        TAG_REPLY_DCPP => {
            let cp = CpId(r.get_u32_le()?);
            let seq = r.get_u64_le()?;
            let device = DeviceId(r.get_u32_le()?);
            let wait = SimDuration::from_nanos(r.get_u64_le()?);
            Ok(WireMessage::Reply(Reply {
                probe: Probe { cp, seq },
                device,
                body: ReplyBody::Dcpp { wait },
            }))
        }
        TAG_BYE => Ok(WireMessage::Bye(Bye {
            device: DeviceId(r.get_u32_le()?),
        })),
        TAG_NOTICE => Ok(WireMessage::LeaveNotice(LeaveNotice {
            device: DeviceId(r.get_u32_le()?),
            reporter: CpId(r.get_u32_le()?),
        })),
        other => Err(DecodeError::UnknownTag(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: WireMessage) {
        let bytes = encode(&msg);
        let back = decode(&bytes).expect("decode");
        assert_eq!(back, msg, "roundtrip mismatch");
    }

    #[test]
    fn probe_roundtrip() {
        roundtrip(WireMessage::Probe(Probe {
            cp: CpId(7),
            seq: u64::MAX,
        }));
    }

    #[test]
    fn sapp_reply_roundtrip() {
        roundtrip(WireMessage::Reply(Reply {
            probe: Probe {
                cp: CpId(0),
                seq: 42,
            },
            device: DeviceId(3),
            body: ReplyBody::Sapp {
                pc: 123_456_789_000,
                last_probers: [Some(CpId(0)), None],
            },
        }));
        roundtrip(WireMessage::Reply(Reply {
            probe: Probe {
                cp: CpId(9),
                seq: 0,
            },
            device: DeviceId(0),
            body: ReplyBody::Sapp {
                pc: 0,
                last_probers: [None, None],
            },
        }));
    }

    #[test]
    fn dcpp_reply_roundtrip() {
        roundtrip(WireMessage::Reply(Reply {
            probe: Probe {
                cp: CpId(1),
                seq: 2,
            },
            device: DeviceId(0),
            body: ReplyBody::Dcpp {
                wait: SimDuration::from_millis(500),
            },
        }));
    }

    #[test]
    fn bye_and_notice_roundtrip() {
        roundtrip(WireMessage::Bye(Bye {
            device: DeviceId(5),
        }));
        roundtrip(WireMessage::LeaveNotice(LeaveNotice {
            device: DeviceId(5),
            reporter: CpId(2),
        }));
    }

    #[test]
    fn prober_zero_id_distinct_from_none() {
        // CpId(0) must decode as Some(CpId(0)), not None.
        let msg = WireMessage::Reply(Reply {
            probe: Probe {
                cp: CpId(1),
                seq: 1,
            },
            device: DeviceId(0),
            body: ReplyBody::Sapp {
                pc: 1,
                last_probers: [Some(CpId(0)), Some(CpId(0))],
            },
        });
        roundtrip(msg);
    }

    #[test]
    fn truncated_rejected() {
        let bytes = encode(&WireMessage::Probe(Probe {
            cp: CpId(1),
            seq: 1,
        }));
        for n in 0..bytes.len() {
            assert_eq!(
                decode(&bytes[..n]),
                Err(DecodeError::Truncated),
                "prefix of {n} bytes accepted"
            );
        }
    }

    #[test]
    fn unknown_tag_rejected() {
        assert_eq!(decode(&[0xff, 0, 0, 0]), Err(DecodeError::UnknownTag(0xff)));
    }

    #[test]
    fn probe_is_13_bytes() {
        let bytes = encode(&WireMessage::Probe(Probe {
            cp: CpId(1),
            seq: 1,
        }));
        assert_eq!(bytes.len(), 13);
    }

    #[test]
    fn addressed_frame_roundtrip() {
        let msg = WireMessage::Probe(Probe {
            cp: CpId(3),
            seq: 77,
        });
        let bytes = encode_addressed(DeviceId(42), &msg);
        assert_eq!(bytes.len(), 5 + 13);
        assert_eq!(
            decode_datagram(&bytes).unwrap(),
            Datagram::Addressed(DeviceId(42), msg)
        );
        // Bare messages pass through decode_datagram unchanged.
        assert_eq!(
            decode_datagram(&encode(&msg)).unwrap(),
            Datagram::Direct(msg)
        );
    }

    #[test]
    fn addressed_frame_truncations_rejected() {
        let bytes = encode_addressed(
            DeviceId(1),
            &WireMessage::Probe(Probe {
                cp: CpId(1),
                seq: 1,
            }),
        );
        for n in 0..bytes.len() {
            assert!(decode_datagram(&bytes[..n]).is_err(), "prefix {n} accepted");
        }
    }

    #[test]
    fn error_displays() {
        assert_eq!(DecodeError::Truncated.to_string(), "datagram truncated");
        assert!(DecodeError::UnknownTag(0xab).to_string().contains("0xab"));
    }
}
