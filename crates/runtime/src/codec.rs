//! Binary wire codec for [`WireMessage`].
//!
//! A compact, explicit little-endian format (no serde reflection on the
//! wire): every datagram starts with a one-byte message tag, followed by
//! fixed-width fields. Probes are 13 bytes, replies at most 32 — small
//! enough that even the paper's PDAs-and-mobile-phones deployment target
//! would not blink.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! Probe        = 0x01 cp:u32 seq:u64
//! Reply(SAPP)  = 0x02 cp:u32 seq:u64 device:u32 pc:u64 p0:u32 p1:u32
//!                 (p0/p1 = last probers + 1; 0 encodes None)
//! Reply(DCPP)  = 0x03 cp:u32 seq:u64 device:u32 wait_nanos:u64
//! Bye          = 0x04 device:u32
//! LeaveNotice  = 0x05 device:u32 reporter:u32
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};
use presence_core::{
    Bye, CpId, DeviceId, LeaveNotice, Probe, Reply, ReplyBody, WireMessage,
};
use presence_des::SimDuration;
use std::error::Error;
use std::fmt;

const TAG_PROBE: u8 = 0x01;
const TAG_REPLY_SAPP: u8 = 0x02;
const TAG_REPLY_DCPP: u8 = 0x03;
const TAG_BYE: u8 = 0x04;
const TAG_NOTICE: u8 = 0x05;

/// A datagram could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer was shorter than the message layout requires.
    Truncated,
    /// The leading tag byte is not a known message type.
    UnknownTag(u8),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "datagram truncated"),
            DecodeError::UnknownTag(t) => write!(f, "unknown message tag 0x{t:02x}"),
        }
    }
}

impl Error for DecodeError {}

fn put_prober(buf: &mut BytesMut, p: Option<CpId>) {
    buf.put_u32_le(p.map_or(0, |c| c.0 + 1));
}

fn get_prober(v: u32) -> Option<CpId> {
    v.checked_sub(1).map(CpId)
}

/// Encodes a message into a fresh buffer.
#[must_use]
pub fn encode(msg: &WireMessage) -> Bytes {
    let mut buf = BytesMut::with_capacity(33);
    match msg {
        WireMessage::Probe(p) => {
            buf.put_u8(TAG_PROBE);
            buf.put_u32_le(p.cp.0);
            buf.put_u64_le(p.seq);
        }
        WireMessage::Reply(r) => match r.body {
            ReplyBody::Sapp { pc, last_probers } => {
                buf.put_u8(TAG_REPLY_SAPP);
                buf.put_u32_le(r.probe.cp.0);
                buf.put_u64_le(r.probe.seq);
                buf.put_u32_le(r.device.0);
                buf.put_u64_le(pc);
                put_prober(&mut buf, last_probers[0]);
                put_prober(&mut buf, last_probers[1]);
            }
            ReplyBody::Dcpp { wait } => {
                buf.put_u8(TAG_REPLY_DCPP);
                buf.put_u32_le(r.probe.cp.0);
                buf.put_u64_le(r.probe.seq);
                buf.put_u32_le(r.device.0);
                buf.put_u64_le(wait.as_nanos());
            }
        },
        WireMessage::Bye(b) => {
            buf.put_u8(TAG_BYE);
            buf.put_u32_le(b.device.0);
        }
        WireMessage::LeaveNotice(n) => {
            buf.put_u8(TAG_NOTICE);
            buf.put_u32_le(n.device.0);
            buf.put_u32_le(n.reporter.0);
        }
    }
    buf.freeze()
}

macro_rules! need {
    ($buf:expr, $n:expr) => {
        if $buf.remaining() < $n {
            return Err(DecodeError::Truncated);
        }
    };
}

/// Decodes one datagram.
pub fn decode(mut buf: &[u8]) -> Result<WireMessage, DecodeError> {
    need!(buf, 1);
    let tag = buf.get_u8();
    match tag {
        TAG_PROBE => {
            need!(buf, 12);
            Ok(WireMessage::Probe(Probe {
                cp: CpId(buf.get_u32_le()),
                seq: buf.get_u64_le(),
            }))
        }
        TAG_REPLY_SAPP => {
            need!(buf, 32);
            let cp = CpId(buf.get_u32_le());
            let seq = buf.get_u64_le();
            let device = DeviceId(buf.get_u32_le());
            let pc = buf.get_u64_le();
            let p0 = get_prober(buf.get_u32_le());
            let p1 = get_prober(buf.get_u32_le());
            Ok(WireMessage::Reply(Reply {
                probe: Probe { cp, seq },
                device,
                body: ReplyBody::Sapp {
                    pc,
                    last_probers: [p0, p1],
                },
            }))
        }
        TAG_REPLY_DCPP => {
            need!(buf, 24);
            let cp = CpId(buf.get_u32_le());
            let seq = buf.get_u64_le();
            let device = DeviceId(buf.get_u32_le());
            let wait = SimDuration::from_nanos(buf.get_u64_le());
            Ok(WireMessage::Reply(Reply {
                probe: Probe { cp, seq },
                device,
                body: ReplyBody::Dcpp { wait },
            }))
        }
        TAG_BYE => {
            need!(buf, 4);
            Ok(WireMessage::Bye(Bye {
                device: DeviceId(buf.get_u32_le()),
            }))
        }
        TAG_NOTICE => {
            need!(buf, 8);
            Ok(WireMessage::LeaveNotice(LeaveNotice {
                device: DeviceId(buf.get_u32_le()),
                reporter: CpId(buf.get_u32_le()),
            }))
        }
        other => Err(DecodeError::UnknownTag(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: WireMessage) {
        let bytes = encode(&msg);
        let back = decode(&bytes).expect("decode");
        assert_eq!(back, msg, "roundtrip mismatch");
    }

    #[test]
    fn probe_roundtrip() {
        roundtrip(WireMessage::Probe(Probe {
            cp: CpId(7),
            seq: u64::MAX,
        }));
    }

    #[test]
    fn sapp_reply_roundtrip() {
        roundtrip(WireMessage::Reply(Reply {
            probe: Probe { cp: CpId(0), seq: 42 },
            device: DeviceId(3),
            body: ReplyBody::Sapp {
                pc: 123_456_789_000,
                last_probers: [Some(CpId(0)), None],
            },
        }));
        roundtrip(WireMessage::Reply(Reply {
            probe: Probe { cp: CpId(9), seq: 0 },
            device: DeviceId(0),
            body: ReplyBody::Sapp {
                pc: 0,
                last_probers: [None, None],
            },
        }));
    }

    #[test]
    fn dcpp_reply_roundtrip() {
        roundtrip(WireMessage::Reply(Reply {
            probe: Probe { cp: CpId(1), seq: 2 },
            device: DeviceId(0),
            body: ReplyBody::Dcpp {
                wait: SimDuration::from_millis(500),
            },
        }));
    }

    #[test]
    fn bye_and_notice_roundtrip() {
        roundtrip(WireMessage::Bye(Bye { device: DeviceId(5) }));
        roundtrip(WireMessage::LeaveNotice(LeaveNotice {
            device: DeviceId(5),
            reporter: CpId(2),
        }));
    }

    #[test]
    fn prober_zero_id_distinct_from_none() {
        // CpId(0) must decode as Some(CpId(0)), not None.
        let msg = WireMessage::Reply(Reply {
            probe: Probe { cp: CpId(1), seq: 1 },
            device: DeviceId(0),
            body: ReplyBody::Sapp {
                pc: 1,
                last_probers: [Some(CpId(0)), Some(CpId(0))],
            },
        });
        roundtrip(msg);
    }

    #[test]
    fn truncated_rejected() {
        let bytes = encode(&WireMessage::Probe(Probe { cp: CpId(1), seq: 1 }));
        for n in 0..bytes.len() {
            assert_eq!(
                decode(&bytes[..n]),
                Err(DecodeError::Truncated),
                "prefix of {n} bytes accepted"
            );
        }
    }

    #[test]
    fn unknown_tag_rejected() {
        assert_eq!(decode(&[0xff, 0, 0, 0]), Err(DecodeError::UnknownTag(0xff)));
    }

    #[test]
    fn probe_is_13_bytes() {
        let bytes = encode(&WireMessage::Probe(Probe { cp: CpId(1), seq: 1 }));
        assert_eq!(bytes.len(), 13);
    }

    #[test]
    fn error_displays() {
        assert_eq!(DecodeError::Truncated.to_string(), "datagram truncated");
        assert!(DecodeError::UnknownTag(0xab).to_string().contains("0xab"));
    }
}
