//! Shard-level counters for the sharded presence host.
//!
//! Mirrors the shape of `presence_net::FabricStats`: monotone counters a
//! controller can sample live (each shard thread updates its own
//! [`ShardCounters`] through an `Arc`) and a plain snapshot struct
//! ([`ShardStats`]) for reports. Backpressure is explicit — a datagram the
//! host could not route or send is *counted*, never silently lost.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sentinel stored in [`ShardCounters::next_deadline_nanos`] when the
/// shard's timer wheel is empty.
pub const NO_DEADLINE: u64 = u64::MAX;

/// Live counters owned by one shard thread, sampled by controllers.
///
/// All counters are monotone except `next_deadline_nanos` (the shard's
/// earliest armed timer deadline, republished every loop iteration) and
/// `loop_iterations` (monotone, but a liveness signal rather than a
/// traffic counter: it proves the shard completed full
/// drain-fire-publish iterations, which the conformance controller uses
/// for its quiescence proof).
#[derive(Debug, Default)]
pub struct ShardCounters {
    /// Datagrams received and decoded.
    pub datagrams_received: AtomicU64,
    /// Datagrams handed to the kernel.
    pub datagrams_sent: AtomicU64,
    /// Datagrams that failed to decode (garbage, truncation).
    pub decode_errors: AtomicU64,
    /// Decoded datagrams with no hosted device or prober to route to.
    pub unroutable: AtomicU64,
    /// Datagrams addressed to a device that has gone silent (departed).
    pub dropped_departed: AtomicU64,
    /// Outbound datagrams dropped because the kernel would not accept
    /// them (send buffer full) or the send errored.
    pub dropped_sendpressure: AtomicU64,
    /// Timer-wheel entries fired.
    pub timers_fired: AtomicU64,
    /// Completed shard-loop iterations (drain + fire + publish).
    pub loop_iterations: AtomicU64,
    /// Earliest armed deadline in nanoseconds, or [`NO_DEADLINE`].
    pub next_deadline_nanos: AtomicU64,
}

impl ShardCounters {
    /// Creates zeroed counters with no published deadline.
    #[must_use]
    pub fn new() -> Self {
        let c = Self::default();
        c.next_deadline_nanos.store(NO_DEADLINE, Ordering::Release);
        c
    }

    /// Sum of all traffic-and-work counters — changes if and only if the
    /// shard did *anything* (received, sent, dropped, fired). Quiescence
    /// detectors compare successive samples of this.
    #[must_use]
    pub fn activity(&self) -> u64 {
        self.datagrams_received.load(Ordering::Acquire)
            + self.datagrams_sent.load(Ordering::Acquire)
            + self.decode_errors.load(Ordering::Acquire)
            + self.unroutable.load(Ordering::Acquire)
            + self.dropped_departed.load(Ordering::Acquire)
            + self.dropped_sendpressure.load(Ordering::Acquire)
            + self.timers_fired.load(Ordering::Acquire)
    }

    /// A plain-value snapshot of the counters.
    #[must_use]
    pub fn snapshot(&self) -> ShardStats {
        ShardStats {
            datagrams_received: self.datagrams_received.load(Ordering::Acquire),
            datagrams_sent: self.datagrams_sent.load(Ordering::Acquire),
            decode_errors: self.decode_errors.load(Ordering::Acquire),
            unroutable: self.unroutable.load(Ordering::Acquire),
            dropped_departed: self.dropped_departed.load(Ordering::Acquire),
            dropped_sendpressure: self.dropped_sendpressure.load(Ordering::Acquire),
            timers_fired: self.timers_fired.load(Ordering::Acquire),
        }
    }
}

/// Point-in-time snapshot of one shard's counters (or, summed, a whole
/// host's).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Datagrams received and decoded.
    pub datagrams_received: u64,
    /// Datagrams handed to the kernel.
    pub datagrams_sent: u64,
    /// Datagrams that failed to decode.
    pub decode_errors: u64,
    /// Decoded datagrams with no hosted device or prober.
    pub unroutable: u64,
    /// Datagrams addressed to a departed (silenced) device.
    pub dropped_departed: u64,
    /// Outbound datagrams the kernel refused.
    pub dropped_sendpressure: u64,
    /// Timer-wheel entries fired.
    pub timers_fired: u64,
}

impl ShardStats {
    /// Backpressure drops: datagrams lost to the host's own limits (as
    /// opposed to protocol-intended drops like departed devices).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped_sendpressure
    }

    /// Component-wise sum.
    #[must_use]
    pub fn merged(self, other: ShardStats) -> ShardStats {
        ShardStats {
            datagrams_received: self.datagrams_received + other.datagrams_received,
            datagrams_sent: self.datagrams_sent + other.datagrams_sent,
            decode_errors: self.decode_errors + other.decode_errors,
            unroutable: self.unroutable + other.unroutable,
            dropped_departed: self.dropped_departed + other.dropped_departed,
            dropped_sendpressure: self.dropped_sendpressure + other.dropped_sendpressure,
            timers_fired: self.timers_fired + other.timers_fired,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activity_tracks_every_counter() {
        let c = ShardCounters::new();
        assert_eq!(c.activity(), 0);
        c.datagrams_received.fetch_add(2, Ordering::Release);
        c.dropped_sendpressure.fetch_add(1, Ordering::Release);
        c.timers_fired.fetch_add(3, Ordering::Release);
        assert_eq!(c.activity(), 6);
        // loop_iterations is liveness, not activity.
        c.loop_iterations.fetch_add(10, Ordering::Release);
        assert_eq!(c.activity(), 6);
    }

    #[test]
    fn snapshot_and_merge() {
        let c = ShardCounters::new();
        c.datagrams_sent.fetch_add(4, Ordering::Release);
        c.unroutable.fetch_add(1, Ordering::Release);
        let a = c.snapshot();
        let b = ShardStats {
            datagrams_sent: 1,
            dropped_sendpressure: 2,
            ..ShardStats::default()
        };
        let m = a.merged(b);
        assert_eq!(m.datagrams_sent, 5);
        assert_eq!(m.unroutable, 1);
        assert_eq!(m.dropped(), 2);
    }
}
