//! Wall-clock time mapped onto the protocol time axis.
//!
//! The sans-io machines in `presence-core` speak [`SimTime`] — nanoseconds
//! since an epoch. Under the simulator that epoch is virtual; here it is
//! the moment the runtime started. A trait keeps hosts testable with a
//! hand-cranked clock.

use presence_des::SimTime;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A source of protocol time.
pub trait Clock: Send + Sync {
    /// Nanoseconds since this runtime's epoch.
    fn now(&self) -> SimTime;
}

/// The real wall clock, anchored at construction.
#[derive(Debug, Clone)]
pub struct SystemClock {
    origin: Instant,
}

impl SystemClock {
    /// Creates a clock whose epoch is *now*.
    #[must_use]
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn now(&self) -> SimTime {
        let elapsed = self.origin.elapsed();
        SimTime::from_nanos(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX))
    }
}

/// A manually advanced clock for tests.
#[derive(Debug, Clone, Default)]
pub struct ManualClock {
    now: Arc<Mutex<SimTime>>,
}

impl ManualClock {
    /// Creates a clock at `t = 0`.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Moves the clock to `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the current time.
    pub fn set(&self, t: SimTime) {
        let mut now = self.now.lock().expect("clock lock poisoned");
        assert!(t >= *now, "manual clock moved backwards");
        *now = t;
    }

    /// Advances the clock by `secs` seconds.
    pub fn advance_secs(&self, secs: f64) {
        let mut now = self.now.lock().expect("clock lock poisoned");
        *now += presence_des::SimDuration::from_secs_f64(secs);
    }
}

impl Clock for ManualClock {
    fn now(&self) -> SimTime {
        *self.now.lock().expect("clock lock poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_monotone() {
        let c = SystemClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_advances() {
        let c = ManualClock::new();
        assert_eq!(c.now(), SimTime::ZERO);
        c.advance_secs(1.5);
        assert_eq!(c.now(), SimTime::from_secs_f64(1.5));
        c.set(SimTime::from_secs_f64(2.0));
        assert_eq!(c.now(), SimTime::from_secs_f64(2.0));
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn manual_clock_rejects_time_travel() {
        let c = ManualClock::new();
        c.set(SimTime::from_secs_f64(5.0));
        c.set(SimTime::from_secs_f64(1.0));
    }
}
