//! Message transports: real UDP and an in-memory channel pair.
//!
//! Hosts are generic over [`Transport`], so the same device/CP loops run on
//! loopback UDP (the `udp_live_demo` example), across real networks, or
//! entirely in memory (tests).

use crate::codec::{decode, encode, MAX_DATAGRAM};
use presence_core::WireMessage;
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::time::Duration;

/// A way to exchange wire messages with one peer (or a set of peers, for
/// the device side).
pub trait Transport: Send {
    /// Sends a message. For UDP this is a single datagram.
    fn send(&mut self, msg: &WireMessage) -> io::Result<()>;

    /// Waits up to `timeout` for the next message. `Ok(None)` means the
    /// timeout elapsed; undecodable datagrams are skipped silently (a real
    /// network may deliver garbage).
    fn recv(&mut self, timeout: Duration) -> io::Result<Option<WireMessage>>;
}

/// UDP transport bound to a local socket, sending to a fixed peer unless
/// the message itself implies a destination (device replies go back to the
/// probe's source address).
pub struct UdpTransport {
    socket: UdpSocket,
    /// Destination for outgoing messages.
    peer: Option<SocketAddr>,
    /// Remember the source of the last received datagram so a device can
    /// answer whoever probed it.
    reply_to_last_sender: bool,
    last_sender: Option<SocketAddr>,
    /// The read timeout currently programmed into the socket, so the hot
    /// receive loop only pays the `set_read_timeout` syscall when the
    /// deadline actually changes.
    read_timeout: Option<Duration>,
    buf: [u8; MAX_DATAGRAM],
}

impl UdpTransport {
    /// Binds a CP-style transport: talks to exactly one device at `peer`.
    pub fn client(bind: &str, peer: SocketAddr) -> io::Result<Self> {
        let socket = UdpSocket::bind(bind)?;
        Ok(Self {
            socket,
            peer: Some(peer),
            reply_to_last_sender: false,
            last_sender: None,
            read_timeout: None,
            buf: [0; MAX_DATAGRAM],
        })
    }

    /// Binds a device-style transport: replies to whoever sent the last
    /// datagram.
    pub fn server(bind: &str) -> io::Result<Self> {
        let socket = UdpSocket::bind(bind)?;
        Ok(Self {
            socket,
            peer: None,
            reply_to_last_sender: true,
            last_sender: None,
            read_timeout: None,
            buf: [0; MAX_DATAGRAM],
        })
    }

    /// The local address the socket bound to (useful with port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.socket.local_addr()
    }
}

impl Transport for UdpTransport {
    fn send(&mut self, msg: &WireMessage) -> io::Result<()> {
        let dest = if self.reply_to_last_sender {
            self.last_sender.or(self.peer)
        } else {
            self.peer
        };
        let Some(dest) = dest else {
            return Err(io::Error::new(
                io::ErrorKind::NotConnected,
                "no destination known yet",
            ));
        };
        let bytes = encode(msg);
        self.socket.send_to(&bytes, dest)?;
        Ok(())
    }

    fn recv(&mut self, timeout: Duration) -> io::Result<Option<WireMessage>> {
        let timeout = timeout.max(Duration::from_micros(1));
        if self.read_timeout != Some(timeout) {
            self.socket.set_read_timeout(Some(timeout))?;
            self.read_timeout = Some(timeout);
        }
        match self.socket.recv_from(&mut self.buf) {
            Ok((n, from)) => {
                match decode(&self.buf[..n]) {
                    // Only a datagram that decodes counts as "the peer":
                    // recording the sender before decoding would let one
                    // garbage/spoofed packet silently redirect every
                    // subsequent reply to the spoofer.
                    Ok(msg) => {
                        self.last_sender = Some(from);
                        Ok(Some(msg))
                    }
                    Err(_) => Ok(None), // garbage datagram: drop
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }
}

/// One end of an in-memory duplex link.
pub struct InMemoryTransport {
    tx: Sender<WireMessage>,
    rx: Receiver<WireMessage>,
}

impl InMemoryTransport {
    /// Creates a connected pair of transports.
    #[must_use]
    pub fn pair() -> (InMemoryTransport, InMemoryTransport) {
        let (a_tx, a_rx) = channel();
        let (b_tx, b_rx) = channel();
        (
            InMemoryTransport { tx: a_tx, rx: b_rx },
            InMemoryTransport { tx: b_tx, rx: a_rx },
        )
    }
}

impl Transport for InMemoryTransport {
    fn send(&mut self, msg: &WireMessage) -> io::Result<()> {
        self.tx
            .send(*msg)
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "peer dropped"))
    }

    fn recv(&mut self, timeout: Duration) -> io::Result<Option<WireMessage>> {
        match self.rx.recv_timeout(timeout) {
            Ok(msg) => Ok(Some(msg)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => {
                Err(io::Error::new(io::ErrorKind::BrokenPipe, "peer dropped"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presence_core::{CpId, Probe};

    fn probe(seq: u64) -> WireMessage {
        WireMessage::Probe(Probe { cp: CpId(1), seq })
    }

    #[test]
    fn in_memory_roundtrip() {
        let (mut a, mut b) = InMemoryTransport::pair();
        a.send(&probe(1)).unwrap();
        let got = b.recv(Duration::from_millis(100)).unwrap();
        assert_eq!(got, Some(probe(1)));
        // And the other direction.
        b.send(&probe(2)).unwrap();
        assert_eq!(a.recv(Duration::from_millis(100)).unwrap(), Some(probe(2)));
    }

    #[test]
    fn in_memory_timeout() {
        let (mut a, _b) = InMemoryTransport::pair();
        let got = a.recv(Duration::from_millis(10)).unwrap();
        assert_eq!(got, None);
    }

    #[test]
    fn in_memory_peer_drop_is_error() {
        let (mut a, b) = InMemoryTransport::pair();
        drop(b);
        assert!(a.recv(Duration::from_millis(1)).is_err());
    }

    #[test]
    fn udp_loopback_roundtrip() {
        let mut server = UdpTransport::server("127.0.0.1:0").unwrap();
        let server_addr = server.local_addr().unwrap();
        let mut client = UdpTransport::client("127.0.0.1:0", server_addr).unwrap();

        client.send(&probe(7)).unwrap();
        let got = server.recv(Duration::from_millis(500)).unwrap();
        assert_eq!(got, Some(probe(7)));

        // The server replies to the last sender without knowing its address
        // in advance.
        server.send(&probe(8)).unwrap();
        let back = client.recv(Duration::from_millis(500)).unwrap();
        assert_eq!(back, Some(probe(8)));
    }

    #[test]
    fn udp_server_without_sender_cannot_send() {
        let mut server = UdpTransport::server("127.0.0.1:0").unwrap();
        assert!(server.send(&probe(1)).is_err());
    }

    #[test]
    fn garbage_datagram_does_not_hijack_reply_routing() {
        // Regression: a garbage (undecodable) datagram must NOT update the
        // server's last-sender, or one spoofed packet would redirect every
        // subsequent reply to the spoofer.
        let mut server = UdpTransport::server("127.0.0.1:0").unwrap();
        let server_addr = server.local_addr().unwrap();
        let mut client = UdpTransport::client("127.0.0.1:0", server_addr).unwrap();
        let client_addr = client.local_addr().unwrap();

        // A real probe establishes the client as the peer…
        client.send(&probe(1)).unwrap();
        assert_eq!(
            server.recv(Duration::from_millis(500)).unwrap(),
            Some(probe(1))
        );

        // …then a spoofer sprays garbage from a different socket.
        let spoofer = std::net::UdpSocket::bind("127.0.0.1:0").unwrap();
        spoofer.send_to(&[0xff, 0xee, 0xdd], server_addr).unwrap();
        assert_eq!(
            server.recv(Duration::from_millis(500)).unwrap(),
            None,
            "garbage must be dropped"
        );

        // The server's reply must still go to the real client.
        server.send(&probe(2)).unwrap();
        assert_eq!(
            client.recv(Duration::from_millis(500)).unwrap(),
            Some(probe(2)),
            "reply was redirected away from {client_addr}"
        );
    }

    #[test]
    fn read_timeout_syscall_is_cached() {
        // Two receives with the same timeout must not error, and the cached
        // deadline must still be re-programmed when it changes (observable
        // behaviourally: both a short and a long timeout elapse correctly).
        let mut t = UdpTransport::server("127.0.0.1:0").unwrap();
        let start = std::time::Instant::now();
        assert_eq!(t.recv(Duration::from_millis(10)).unwrap(), None);
        assert_eq!(t.recv(Duration::from_millis(10)).unwrap(), None);
        assert_eq!(t.read_timeout, Some(Duration::from_millis(10)));
        assert_eq!(t.recv(Duration::from_millis(30)).unwrap(), None);
        assert_eq!(t.read_timeout, Some(Duration::from_millis(30)));
        assert!(start.elapsed() >= Duration::from_millis(50));
    }

    #[test]
    fn udp_recv_times_out() {
        let mut server = UdpTransport::server("127.0.0.1:0").unwrap();
        let got = server.recv(Duration::from_millis(20)).unwrap();
        assert_eq!(got, None);
    }
}
