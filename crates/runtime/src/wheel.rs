//! A lazily-reconciled timer wheel for the wall-clock hosts.
//!
//! `run_cp`'s original timer store was a `BTreeMap<TimerToken, SimTime>`
//! scanned in full on every loop iteration — fine for one prober with two
//! timers, hopeless for a shard hosting thousands. [`TimerWheel`] follows
//! the `TimerSlots` philosophy from the simulator: the *authoritative*
//! state is a plain map from key to deadline, and the ordered structure is
//! only a schedule cache that is reconciled lazily.
//!
//! * `insert` / `cancel` are O(1) map operations plus (for insert) a heap
//!   push; `cancel` never touches the heap.
//! * `pop_due` / `next_deadline` pop heap entries and validate each
//!   against the authoritative map — entries whose key was cancelled or
//!   re-armed since are stale and discarded. Every armed timer creates
//!   exactly one heap entry, so stale entries are bounded by the number of
//!   `insert` calls and each is discarded exactly once: amortised
//!   O(log n) per armed timer, no tombstone leak.
//!
//! Keys are generic so one wheel serves both the single-prober [`run_cp`]
//! loop (keys are [`presence_core::TimerToken`]) and a shard loop (keys
//! are `(slot, token)` pairs).
//!
//! [`run_cp`]: crate::run_cp

use presence_des::SimTime;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::hash::Hash;

/// A map from timer keys to deadlines with an efficient
/// earliest-deadline-first drain.
#[derive(Debug)]
pub struct TimerWheel<K> {
    /// The truth: live deadline and arming generation per key.
    live: HashMap<K, (SimTime, u64)>,
    /// The schedule cache: every arming pushes `(deadline, generation,
    /// key)`; entries are validated against `live` when popped.
    heap: BinaryHeap<Reverse<(SimTime, u64, K)>>,
    /// Arming generation counter — distinguishes a live entry from a
    /// stale one even when a key is re-armed at the same deadline.
    generation: u64,
}

impl<K: Copy + Eq + Hash + Ord> Default for TimerWheel<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Copy + Eq + Hash + Ord> TimerWheel<K> {
    /// Creates an empty wheel.
    #[must_use]
    pub fn new() -> Self {
        Self {
            live: HashMap::new(),
            heap: BinaryHeap::new(),
            generation: 0,
        }
    }

    /// Number of live timers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Whether no timers are live.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Arms (or re-arms) the timer under `key` to fire at `at`. Returns
    /// the previous deadline if the key was already armed.
    pub fn insert(&mut self, key: K, at: SimTime) -> Option<SimTime> {
        self.generation += 1;
        let prev = self.live.insert(key, (at, self.generation));
        self.heap.push(Reverse((at, self.generation, key)));
        prev.map(|(t, _)| t)
    }

    /// Disarms the timer under `key`. Returns its deadline if it was live.
    /// The stale schedule-cache entry is discarded lazily.
    pub fn cancel(&mut self, key: K) -> Option<SimTime> {
        self.live.remove(&key).map(|(t, _)| t)
    }

    /// The deadline armed under `key`, if live.
    #[must_use]
    pub fn deadline_of(&self, key: K) -> Option<SimTime> {
        self.live.get(&key).map(|&(t, _)| t)
    }

    /// Discards stale heap entries until the top is live (or the heap is
    /// empty).
    fn reconcile(&mut self) {
        while let Some(Reverse((at, generation, key))) = self.heap.peek() {
            match self.live.get(key) {
                Some(&(live_at, live_generation))
                    if live_at == *at && live_generation == *generation =>
                {
                    return;
                }
                _ => {
                    self.heap.pop();
                }
            }
        }
    }

    /// The earliest live deadline.
    #[must_use]
    pub fn next_deadline(&mut self) -> Option<SimTime> {
        self.reconcile();
        self.heap.peek().map(|Reverse((at, _, _))| *at)
    }

    /// Removes and returns the earliest live timer if its deadline is at
    /// or before `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<(K, SimTime)> {
        self.reconcile();
        let Reverse((at, _, key)) = self.heap.peek().copied()?;
        if at > now {
            return None;
        }
        self.heap.pop();
        self.live.remove(&key);
        Some((key, at))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_nanos(ms * 1_000_000)
    }

    #[test]
    fn fires_in_deadline_order() {
        let mut w: TimerWheel<u32> = TimerWheel::new();
        w.insert(1, t(30));
        w.insert(2, t(10));
        w.insert(3, t(20));
        assert_eq!(w.next_deadline(), Some(t(10)));
        assert_eq!(w.pop_due(t(25)), Some((2, t(10))));
        assert_eq!(w.pop_due(t(25)), Some((3, t(20))));
        assert_eq!(w.pop_due(t(25)), None, "deadline 30 not due at 25");
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn cancel_is_lazy_but_authoritative() {
        let mut w: TimerWheel<u32> = TimerWheel::new();
        w.insert(1, t(10));
        w.insert(2, t(20));
        assert_eq!(w.cancel(1), Some(t(10)));
        assert_eq!(w.cancel(1), None);
        assert_eq!(w.next_deadline(), Some(t(20)), "stale entry skipped");
        assert_eq!(w.pop_due(t(100)), Some((2, t(20))));
        assert!(w.is_empty());
        assert_eq!(w.pop_due(t(100)), None);
    }

    #[test]
    fn rearm_supersedes_even_at_same_deadline() {
        let mut w: TimerWheel<u32> = TimerWheel::new();
        w.insert(1, t(10));
        // Cancel + re-arm at the SAME deadline: the generation counter
        // must keep the stale cache entry from double-firing the key.
        assert_eq!(w.cancel(1), Some(t(10)));
        w.insert(1, t(10));
        assert_eq!(w.pop_due(t(10)), Some((1, t(10))));
        assert_eq!(w.pop_due(t(10)), None, "stale duplicate fired");
        assert!(w.is_empty());
    }

    #[test]
    fn rearm_to_later_deadline() {
        let mut w: TimerWheel<u32> = TimerWheel::new();
        assert_eq!(w.insert(1, t(10)), None);
        assert_eq!(w.insert(1, t(50)), Some(t(10)));
        assert_eq!(w.pop_due(t(20)), None, "superseded deadline fired");
        assert_eq!(w.pop_due(t(50)), Some((1, t(50))));
    }

    #[test]
    fn model_check_against_btreemap() {
        // Drive wheel and a reference BTreeMap through a deterministic
        // pseudo-random op sequence; drain order must match.
        use std::collections::BTreeMap;
        let mut w: TimerWheel<u32> = TimerWheel::new();
        let mut reference: BTreeMap<u32, SimTime> = BTreeMap::new();
        let mut x: u64 = 0x243f_6a88_85a3_08d3;
        for step in 0..2000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = (x >> 33) as u32 % 16;
            let op = (x >> 60) % 4;
            match op {
                0 | 1 => {
                    let at = t(step % 97);
                    assert_eq!(w.insert(key, at), reference.insert(key, at));
                }
                2 => assert_eq!(w.cancel(key), reference.remove(&key)),
                _ => {
                    assert_eq!(w.deadline_of(key), reference.get(&key).copied());
                    assert_eq!(
                        w.next_deadline(),
                        reference.values().min().copied(),
                        "min deadline diverged at step {step}"
                    );
                }
            }
            assert_eq!(w.len(), reference.len());
        }
        // Drain everything due; order must be deadline-sorted and the set
        // must equal the reference's.
        let mut drained = Vec::new();
        while let Some((k, at)) = w.pop_due(SimTime::MAX) {
            drained.push((at, k));
        }
        assert!(drained.windows(2).all(|p| p[0].0 <= p[1].0), "unsorted");
        let mut expect: Vec<(SimTime, u32)> =
            reference.into_iter().map(|(k, at)| (at, k)).collect();
        expect.sort();
        let mut got = drained.clone();
        got.sort();
        assert_eq!(got, expect);
    }
}
