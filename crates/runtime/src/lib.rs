//! # presence-runtime
//!
//! Wall-clock runtime for the presence protocols. The *same* sans-io state
//! machines that the simulator drives (`presence-core`) run here against
//! real time and real sockets:
//!
//! * [`codec`] — a compact binary wire format (13-byte probes);
//! * [`Transport`] — UDP ([`UdpTransport`]) and in-memory
//!   ([`InMemoryTransport`]) message transports;
//! * [`Clock`] — wall-clock ([`SystemClock`]) or hand-cranked
//!   ([`ManualClock`]) time sources;
//! * [`run_device`] / [`run_cp`] — serve loops hosting a device machine or
//!   a [`presence_core::Prober`].
//!
//! Because simulation and deployment share one protocol implementation,
//! the behaviours measured in `presence-sim`'s experiments are the
//! behaviours of the deployable code — the property the paper's
//! MODEST-based methodology argues for ("a trustworthy analysis chain").
//!
//! ```no_run
//! use presence_core::DeviceId;
//! use presence_runtime::{run_device, DeviceHost, StopFlag, SystemClock, UdpTransport};
//!
//! // Device side (one thread / process):
//! let transport = UdpTransport::server("127.0.0.1:7878").unwrap();
//! let stop = StopFlag::new();
//! run_device(
//!     DeviceHost::dcpp_paper(DeviceId(0)),
//!     transport,
//!     &SystemClock::new(),
//!     &stop,
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod conformance;

mod clock;
mod host;
mod shard;
mod stats;
mod transport;
mod wheel;

pub use clock::{Clock, ManualClock, SystemClock};
pub use host::{run_cp, run_device, CpOutcome, DeviceHost, StopFlag};
pub use shard::{
    shards_from_env, DeviceReport, HostConfig, HostHandle, HostReport, ProberReport, ShardedHost,
};
pub use stats::{ShardCounters, ShardStats, NO_DEADLINE};
pub use transport::{InMemoryTransport, Transport, UdpTransport};
pub use wheel::TimerWheel;
