//! Sim/runtime conformance: the DES as an oracle for the UDP host.
//!
//! The repo's central claim is that the *same* sans-io machines run under
//! the simulator and under the wall-clock runtime. This module turns that
//! claim into a checkable property: drive identical machine populations
//!
//! 1. through the discrete-event engine with a zero-delay network
//!    ([`run_oracle`]), and
//! 2. through real loopback UDP sockets under a [`ManualClock`]
//!    ([`run_udp`]),
//!
//! and require verdict-for-verdict agreement — absence reasons, verdict
//! instants, cycle counts, probes sent, probes answered.
//!
//! # Why the two paths must agree exactly
//!
//! The UDP run holds virtual time frozen while datagrams fly: the
//! controller advances the [`ManualClock`] to the next armed timer
//! deadline only once both hosts are provably quiescent, so every
//! message exchange completes "instantaneously" on the virtual time
//! axis — exactly the semantics of the oracle's zero-delay network.
//! With identical inputs at identical virtual instants, the machines
//! (which are deterministic) must produce identical outputs; any
//! disagreement is a runtime bug (mis-armed timer, mis-routed datagram,
//! dropped message), not noise.
//!
//! # The quiescence proof
//!
//! Sampling "no traffic for a while" would race a descheduled shard
//! thread. Instead the controller uses the shards' own counters for a
//! timing-free proof: a host is quiescent once, over two consecutive
//! observation windows, **every** shard completed at least one full
//! loop iteration (socket drained, due timers fired) while the summed
//! activity counters did not move. Any datagram still in a kernel
//! buffer would have been drained by one of those iterations and
//! counted; any due timer would have fired. Three such windows in a row
//! are required for margin.

use crate::clock::{Clock, ManualClock};
use crate::host::DeviceHost;
use crate::shard::{HostConfig, HostHandle, ShardedHost};
use presence_core::{
    CpAction, CpId, CpStats, DcppConfig, DcppCp, DcppDevice, DeviceId, Prober, SappConfig, SappCp,
    SappDevice, SappDeviceConfig, TimerToken, Verdict, WireMessage,
};
use presence_des::{Actor, ActorId, Context, EventHandle, SimDuration, SimTime, Simulation};
use std::collections::HashMap;
use std::io;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Which probing protocol a CP speaks.
#[derive(Debug, Clone, Copy)]
pub enum CpKind {
    /// A DCPP control point.
    Dcpp(DcppConfig),
    /// A SAPP control point.
    Sapp(SappConfig),
}

/// Which protocol a device speaks.
#[derive(Debug, Clone, Copy)]
pub enum DeviceKind {
    /// A DCPP device.
    Dcpp(DcppConfig),
    /// A SAPP device.
    Sapp(SappDeviceConfig),
}

/// One control point in a conformance scenario.
#[derive(Debug, Clone, Copy)]
pub struct CpSpec {
    /// Its identity.
    pub id: CpId,
    /// Its protocol and configuration.
    pub kind: CpKind,
    /// The device it watches.
    pub target: DeviceId,
    /// When it starts probing (virtual time).
    pub start_at: SimTime,
}

/// One device in a conformance scenario.
#[derive(Debug, Clone, Copy)]
pub struct DeviceSpec {
    /// Its identity.
    pub id: DeviceId,
    /// Its protocol and configuration.
    pub kind: DeviceKind,
    /// When it goes silent (departs without a Bye), if ever.
    pub silence_at: Option<SimTime>,
}

/// A population of CPs and devices plus a virtual-time horizon.
#[derive(Debug, Clone)]
pub struct ConformanceScenario {
    /// Scenario name (for reports).
    pub name: &'static str,
    /// The control points.
    pub cps: Vec<CpSpec>,
    /// The devices.
    pub devices: Vec<DeviceSpec>,
    /// Virtual end time: timers with deadlines `≤ horizon` fire, matching
    /// `Simulation::run_until`.
    pub horizon: SimTime,
}

/// Final state of one CP, comparable across the two execution paths.
#[derive(Debug, Clone, PartialEq)]
pub struct CpConformance {
    /// The CP.
    pub cp: CpId,
    /// Terminal absence verdict (instant and reason), if reached.
    pub verdict: Option<Verdict>,
    /// Full cycle statistics.
    pub stats: CpStats,
}

/// Final state of one device, comparable across the two execution paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceConformance {
    /// The device.
    pub device: DeviceId,
    /// Probes it answered.
    pub probes_received: u64,
}

/// Everything one execution path reports, sorted by id so reports from
/// the two paths compare with `==`.
#[derive(Debug, Clone, PartialEq)]
pub struct ConformanceReport {
    /// Per-CP outcomes.
    pub cps: Vec<CpConformance>,
    /// Per-device outcomes.
    pub devices: Vec<DeviceConformance>,
}

fn make_prober(spec: &CpSpec) -> Box<dyn Prober + Send> {
    match spec.kind {
        CpKind::Dcpp(cfg) => Box::new(DcppCp::new(spec.id, cfg)),
        CpKind::Sapp(cfg) => Box::new(SappCp::new(spec.id, cfg)),
    }
}

fn make_device(spec: &DeviceSpec) -> DeviceHost {
    match spec.kind {
        DeviceKind::Dcpp(cfg) => DeviceHost::Dcpp(DcppDevice::new(spec.id, cfg)),
        DeviceKind::Sapp(cfg) => DeviceHost::Sapp(SappDevice::new(spec.id, cfg)),
    }
}

// ---------------------------------------------------------------------
// Oracle path: the DES with a zero-delay network.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum OracleEvent {
    /// Start the CP machine.
    StartCp,
    /// A protocol timer armed by the CP fires.
    CpTimer(TimerToken),
    /// A wire message arrives (zero network delay).
    Net(WireMessage),
    /// The device departs silently.
    Silence,
}

struct OracleCp {
    prober: Box<dyn Prober + Send>,
    device_actor: ActorId,
    timers: HashMap<TimerToken, EventHandle>,
}

impl OracleCp {
    fn execute(&mut self, ctx: &mut Context<'_, OracleEvent>, actions: &mut Vec<CpAction>) {
        for action in actions.drain(..) {
            match action {
                CpAction::SendProbe(p) => {
                    ctx.send_now(self.device_actor, OracleEvent::Net(WireMessage::Probe(p)));
                }
                CpAction::StartTimer { token, after } => {
                    let handle = ctx.set_timer(after, OracleEvent::CpTimer(token));
                    if let Some(old) = self.timers.insert(token, handle) {
                        ctx.cancel(old);
                    }
                }
                CpAction::CancelTimer { token } => {
                    if let Some(handle) = self.timers.remove(&token) {
                        ctx.cancel(handle);
                    }
                }
                CpAction::DeviceAbsent { .. } => {} // read via Prober::verdict
            }
        }
    }
}

impl Actor<OracleEvent> for OracleCp {
    fn on_event(&mut self, ctx: &mut Context<'_, OracleEvent>, event: OracleEvent) {
        let now = ctx.now();
        let mut actions = Vec::new();
        match event {
            OracleEvent::StartCp => self.prober.start(now, &mut actions),
            OracleEvent::CpTimer(token) => {
                self.timers.remove(&token);
                if !self.prober.is_stopped() {
                    self.prober.on_timer(now, token, &mut actions);
                }
            }
            OracleEvent::Net(WireMessage::Reply(reply)) if !self.prober.is_stopped() => {
                self.prober.on_reply(now, &reply, &mut actions);
            }
            OracleEvent::Net(WireMessage::Bye(_)) if !self.prober.is_stopped() => {
                self.prober.on_bye(now, &mut actions);
            }
            OracleEvent::Net(WireMessage::LeaveNotice(_)) if !self.prober.is_stopped() => {
                self.prober.on_leave_notice(now, &mut actions);
            }
            OracleEvent::Net(_) | OracleEvent::Silence => {}
        }
        self.execute(ctx, &mut actions);
    }
}

struct OracleDevice {
    host: DeviceHost,
    silenced: bool,
    /// CP id → CP actor, filled after all actors are spawned (read only
    /// during the run, which starts later).
    route: Arc<Mutex<HashMap<u32, ActorId>>>,
}

impl Actor<OracleEvent> for OracleDevice {
    fn on_event(&mut self, ctx: &mut Context<'_, OracleEvent>, event: OracleEvent) {
        match event {
            OracleEvent::Silence => self.silenced = true,
            OracleEvent::Net(WireMessage::Probe(probe)) if !self.silenced => {
                let reply = self.host.on_probe(ctx.now(), probe);
                let target = self.route.lock().expect("route lock")[&probe.cp.0];
                ctx.send_now(target, OracleEvent::Net(WireMessage::Reply(reply)));
            }
            _ => {}
        }
    }
}

/// Runs the scenario through the discrete-event engine with a zero-delay
/// network. This is the reference semantics.
#[must_use]
pub fn run_oracle(scenario: &ConformanceScenario) -> ConformanceReport {
    let mut sim: Simulation<OracleEvent> = Simulation::new(0);
    let route = Arc::new(Mutex::new(HashMap::new()));

    let mut device_actors: Vec<(DeviceId, ActorId)> = Vec::new();
    let mut by_device: HashMap<u32, ActorId> = HashMap::new();
    for spec in &scenario.devices {
        let id = sim.add_actor(OracleDevice {
            host: make_device(spec),
            silenced: false,
            route: Arc::clone(&route),
        });
        by_device.insert(spec.id.0, id);
        device_actors.push((spec.id, id));
        if let Some(at) = spec.silence_at {
            sim.schedule_at(at, id, OracleEvent::Silence);
        }
    }

    let mut cp_actors: Vec<(CpId, ActorId)> = Vec::new();
    for spec in &scenario.cps {
        let device_actor = by_device[&spec.target.0];
        let id = sim.add_actor(OracleCp {
            prober: make_prober(spec),
            device_actor,
            timers: HashMap::new(),
        });
        route.lock().expect("route lock").insert(spec.id.0, id);
        sim.schedule_at(spec.start_at, id, OracleEvent::StartCp);
        cp_actors.push((spec.id, id));
    }

    sim.run_until(scenario.horizon);

    let mut cps: Vec<CpConformance> = cp_actors
        .iter()
        .map(|&(cp, id)| {
            let actor: &OracleCp = sim.actor(id).expect("cp actor");
            CpConformance {
                cp,
                verdict: actor.prober.verdict(),
                stats: *actor.prober.stats(),
            }
        })
        .collect();
    cps.sort_by_key(|c| c.cp.0);
    let mut devices: Vec<DeviceConformance> = device_actors
        .iter()
        .map(|&(device, id)| {
            let actor: &OracleDevice = sim.actor(id).expect("device actor");
            DeviceConformance {
                device,
                probes_received: actor.host.probes_received(),
            }
        })
        .collect();
    devices.sort_by_key(|d| d.device.0);
    ConformanceReport { cps, devices }
}

// ---------------------------------------------------------------------
// UDP path: real sockets, lockstep virtual clock.
// ---------------------------------------------------------------------

/// Waits until every shard of every host has completed, in each of three
/// consecutive observation windows, at least one full loop iteration with
/// zero activity across all hosts (see the module docs for why this
/// proves no datagram is in flight and no timer is due).
fn wait_quiescent(hosts: &[&HostHandle], guard: Instant) {
    let sample = |hosts: &[&HostHandle]| -> (Vec<Vec<u64>>, u64) {
        (
            hosts.iter().map(|h| h.iterations()).collect(),
            hosts.iter().map(|h| h.activity()).sum(),
        )
    };
    let (mut prev_iters, mut prev_activity) = sample(hosts);
    let mut silent_windows = 0;
    while silent_windows < 3 {
        assert!(
            Instant::now() < guard,
            "conformance controller stalled waiting for quiescence \
             (activity {prev_activity})"
        );
        std::thread::sleep(Duration::from_micros(300));
        let (iters, activity) = sample(hosts);
        let advanced = iters
            .iter()
            .zip(&prev_iters)
            .all(|(now, before)| now.iter().zip(before).all(|(n, b)| n > b));
        if advanced && activity == prev_activity {
            silent_windows += 1;
        } else {
            silent_windows = 0;
        }
        prev_iters = iters;
        prev_activity = activity;
    }
}

/// Advances the shared [`ManualClock`] deadline-by-deadline until every
/// armed timer past `horizon` (or no timers remain).
fn lockstep(clock: &ManualClock, hosts: &[&HostHandle], horizon: SimTime) {
    // Generous wall-clock guard: a conformance run is hundreds of
    // quiescence rounds of a few milliseconds each.
    let guard = Instant::now() + Duration::from_secs(120);
    loop {
        wait_quiescent(hosts, guard);
        let Some(next) = hosts.iter().filter_map(|h| h.next_deadline()).min() else {
            break;
        };
        if next > horizon {
            break;
        }
        // Due entries would have fired (and counted as activity) before
        // quiescence was provable, so the published minimum is strictly
        // in the future.
        assert!(
            next > clock.now(),
            "quiescent host still publishes a due deadline"
        );
        clock.set(next);
    }
}

/// Runs the scenario over real loopback UDP: devices on one sharded host,
/// CPs on another, both on a shared [`ManualClock`] advanced in lockstep
/// with the armed timer deadlines.
pub fn run_udp(scenario: &ConformanceScenario, shards: usize) -> io::Result<ConformanceReport> {
    let config = HostConfig {
        shards,
        bind: "127.0.0.1:0".to_string(),
        recv_batch: 64,
        // Aggressive polling: the controller's quiescence windows wait on
        // full loop iterations, so idle sleeps bound the per-step latency.
        poll_interval: Duration::from_micros(200),
    };
    let clock = ManualClock::new();
    let shared: Arc<dyn Clock> = Arc::new(clock.clone());

    let mut devices = ShardedHost::bind(&config)?;
    for spec in &scenario.devices {
        devices.add_device(make_device(spec), spec.silence_at);
    }
    let mut cps = ShardedHost::bind(&config)?;
    for spec in &scenario.cps {
        cps.add_prober(
            make_prober(spec),
            devices.addr_of(spec.target),
            spec.target,
            spec.start_at,
        );
    }

    let device_handle = devices.start(Arc::clone(&shared));
    let cp_handle = cps.start(Arc::clone(&shared));

    lockstep(&clock, &[&device_handle, &cp_handle], scenario.horizon);

    let cp_report = cp_handle.join();
    let device_report = device_handle.join();

    let mut cps: Vec<CpConformance> = cp_report
        .probers
        .iter()
        .map(|p| CpConformance {
            cp: p.cp,
            verdict: p.verdict,
            stats: p.stats,
        })
        .collect();
    cps.sort_by_key(|c| c.cp.0);
    let mut devices: Vec<DeviceConformance> = device_report
        .devices
        .iter()
        .map(|d| DeviceConformance {
            device: d.device,
            probes_received: d.probes_received,
        })
        .collect();
    devices.sort_by_key(|d| d.device.0);
    Ok(ConformanceReport { cps, devices })
}

// ---------------------------------------------------------------------
// Standard scenarios.
// ---------------------------------------------------------------------

fn ms(v: u64) -> SimDuration {
    SimDuration::from_millis(v)
}

fn at_ms(v: u64) -> SimTime {
    SimTime::ZERO + ms(v)
}

/// One DCPP CP probing one present device.
#[must_use]
pub fn dcpp_pair() -> ConformanceScenario {
    let mut cfg = DcppConfig::paper_default();
    cfg.delta_min = ms(20);
    cfg.d_min = ms(100);
    ConformanceScenario {
        name: "dcpp-pair",
        cps: vec![CpSpec {
            id: CpId(0),
            kind: CpKind::Dcpp(cfg),
            target: DeviceId(0),
            start_at: SimTime::ZERO,
        }],
        devices: vec![DeviceSpec {
            id: DeviceId(0),
            kind: DeviceKind::Dcpp(cfg),
            silence_at: None,
        }],
        horizon: at_ms(5_000),
    }
}

/// A DCPP fleet with staggered starts and one device departing silently
/// mid-run, so both the steady-state and the timeout-cascade paths are
/// compared.
#[must_use]
pub fn dcpp_fleet(pairs: u32) -> ConformanceScenario {
    let mut cfg = DcppConfig::paper_default();
    cfg.delta_min = ms(20);
    cfg.d_min = ms(100);
    let devices = (0..pairs)
        .map(|d| DeviceSpec {
            id: DeviceId(d),
            kind: DeviceKind::Dcpp(cfg),
            // The last device departs halfway through.
            silence_at: (d == pairs - 1).then(|| at_ms(1_500)),
        })
        .collect();
    let cps = (0..pairs)
        .map(|d| CpSpec {
            id: CpId(d),
            kind: CpKind::Dcpp(cfg),
            target: DeviceId(d),
            start_at: at_ms(u64::from(d) * 7),
        })
        .collect();
    ConformanceScenario {
        name: "dcpp-fleet",
        cps,
        devices,
        horizon: at_ms(3_000),
    }
}

/// One SAPP CP adapting against one SAPP device.
#[must_use]
pub fn sapp_pair() -> ConformanceScenario {
    let cp = SappConfig::paper_default();
    let device = SappDeviceConfig::paper_default();
    ConformanceScenario {
        name: "sapp-pair",
        cps: vec![CpSpec {
            id: CpId(0),
            kind: CpKind::Sapp(cp),
            target: DeviceId(0),
            start_at: SimTime::ZERO,
        }],
        devices: vec![DeviceSpec {
            id: DeviceId(0),
            kind: DeviceKind::Sapp(device),
            silence_at: None,
        }],
        horizon: at_ms(2_000),
    }
}

/// DCPP and SAPP pairs sharing the same two sharded hosts, including a
/// SAPP device that departs.
#[must_use]
pub fn mixed_fleet() -> ConformanceScenario {
    let mut dcpp = DcppConfig::paper_default();
    dcpp.delta_min = ms(20);
    dcpp.d_min = ms(100);
    let sapp_cp = SappConfig::paper_default();
    let sapp_dev = SappDeviceConfig::paper_default();
    ConformanceScenario {
        name: "mixed-fleet",
        cps: vec![
            CpSpec {
                id: CpId(0),
                kind: CpKind::Dcpp(dcpp),
                target: DeviceId(0),
                start_at: SimTime::ZERO,
            },
            CpSpec {
                id: CpId(1),
                kind: CpKind::Sapp(sapp_cp),
                target: DeviceId(1),
                start_at: at_ms(3),
            },
            CpSpec {
                id: CpId(2),
                kind: CpKind::Sapp(sapp_cp),
                target: DeviceId(2),
                start_at: at_ms(6),
            },
        ],
        devices: vec![
            DeviceSpec {
                id: DeviceId(0),
                kind: DeviceKind::Dcpp(dcpp),
                silence_at: None,
            },
            DeviceSpec {
                id: DeviceId(1),
                kind: DeviceKind::Sapp(sapp_dev),
                silence_at: None,
            },
            DeviceSpec {
                id: DeviceId(2),
                kind: DeviceKind::Sapp(sapp_dev),
                silence_at: Some(at_ms(900)),
            },
        ],
        horizon: at_ms(2_000),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presence_core::AbsenceReason;

    #[test]
    fn oracle_dcpp_pair_steady_state() {
        let report = run_oracle(&dcpp_pair());
        let cp = &report.cps[0];
        assert!(cp.verdict.is_none(), "false verdict: {:?}", cp.verdict);
        // d_min = 100 ms over a 5 s horizon: roughly one cycle per 100 ms.
        assert!(
            (40..=52).contains(&cp.stats.cycles_succeeded),
            "unexpected cycle count {}",
            cp.stats.cycles_succeeded
        );
        assert_eq!(cp.stats.retransmissions, 0);
        assert_eq!(report.devices[0].probes_received, cp.stats.probes_sent);
    }

    #[test]
    fn oracle_detects_departed_device() {
        let report = run_oracle(&dcpp_fleet(4));
        let departed = report.cps.last().unwrap();
        let v = departed.verdict.expect("departed device never detected");
        assert_eq!(v.reason, AbsenceReason::ProbeTimeout);
        assert!(v.at > at_ms(1_500), "verdict before the device departed");
        assert_eq!(departed.stats.retransmissions, 3);
        for cp in &report.cps[..report.cps.len() - 1] {
            assert!(cp.verdict.is_none(), "false verdict for {:?}", cp.cp);
        }
    }

    #[test]
    fn oracle_sapp_pair_adapts_without_verdict() {
        let report = run_oracle(&sapp_pair());
        let cp = &report.cps[0];
        assert!(cp.verdict.is_none());
        assert!(cp.stats.cycles_succeeded > 5, "SAPP barely cycled");
    }
}
