//! Sim-layer integration tests for the regioned engine: hub collapse,
//! one-network-per-region cross-delivery, and the sharded mega path.

use presence_core::{CpId, DeviceId, Probe, WireMessage};
use presence_des::WindowPolicy;
use presence_des::{ActorId, RegionSim, SimDuration, SimTime, Simulation};
use presence_net::{ConstantDelay, Fabric, NoLoss};
use presence_sim::{
    golden_trio, run_mega_sharded, shard_configs, Addr, CollectorActor, DecomposedScenario,
    MegaConfig, MegaScenario, NetworkActor, PresenceActorSet, PresenceSim, Protocol, Scenario,
    ScenarioConfig, SimEvent,
};

/// The trio scenarios are hub-coupled: any multi-region request must
/// collapse to one effective region via the zero-lookahead validator —
/// never run unsound, never deadlock.
#[test]
fn hub_scenarios_collapse_to_one_region() {
    let cfg = ScenarioConfig::paper_defaults(Protocol::dcpp_paper(), 5, 10.0, 42);
    let scenario = Scenario::build(cfg);
    for requested in [2usize, 4, 8] {
        let plan = scenario.region_plan_for(requested);
        assert_eq!(plan.requested, requested);
        assert_eq!(plan.effective, 1, "{}", plan.reason);
        assert!(
            plan.reason.contains("zero minimum delay"),
            "collapse must come from the validator, got: {}",
            plan.reason
        );
    }
    let single = scenario.region_plan_for(1);
    assert_eq!(single.effective, 1);
}

const LINK_DELAY: SimDuration = SimDuration::from_millis(2);

fn probe(seq: u64) -> WireMessage {
    WireMessage::Probe(Probe { cp: CpId(0), seq })
}

fn fabric() -> Fabric {
    Fabric::new(1024, Box::new(ConstantDelay(LINK_DELAY)), Box::new(NoLoss))
}

/// Builds the two-hub population in fixed membership order; `add` places
/// each member (hub A, collector A, hub B, collector B) in its region and
/// returns its id. Ids come out identical on both engines because the
/// join order is identical.
fn build_two_hubs<F>(mut add: F) -> [ActorId; 4]
where
    F: FnMut(usize, PresenceActorSet) -> ActorId,
{
    let net_a = add(0, NetworkActor::new(fabric()).into());
    let col_a = add(0, CollectorActor::new().into());
    let net_b = add(1, NetworkActor::new(fabric()).into());
    let col_b = add(1, CollectorActor::new().into());
    [net_a, col_a, net_b, col_b]
}

fn inject_sends<S>(mut schedule: S, net_a: ActorId, net_b: ActorId)
where
    S: FnMut(SimTime, ActorId, SimEvent),
{
    for i in 0..40u32 {
        let t = SimTime::from_nanos(u64::from(i) * 137_000 + 13);
        let target = if i % 3 == 0 { net_b } else { net_a };
        schedule(
            t,
            target,
            SimEvent::Send {
                to: Addr::Device(DeviceId(0)),
                msg: probe(u64::from(i)),
            },
        );
    }
}

const END: SimTime = SimTime::from_nanos(100_000_000);

/// Sequential reference: both hubs and collectors on one engine.
fn run_two_hub_sequential() -> (String, u64) {
    let mut sim: PresenceSim = Simulation::with_actor_set(7);
    let [net_a, col_a, net_b, col_b] = build_two_hubs(|_, m| sim.add_member(m));
    // Hub A delivers into B's half and vice versa.
    sim.actor_mut::<NetworkActor>(net_a)
        .unwrap()
        .register(Addr::Device(DeviceId(0)), col_b);
    sim.actor_mut::<NetworkActor>(net_b)
        .unwrap()
        .register(Addr::Device(DeviceId(0)), col_a);
    inject_sends(
        |t, target, ev| {
            sim.schedule_at(t, target, ev);
        },
        net_a,
        net_b,
    );
    sim.run_until(END);
    let log = format!(
        "{:?} / {:?}",
        sim.actor::<CollectorActor>(col_a).unwrap().events(),
        sim.actor::<CollectorActor>(col_b).unwrap().events()
    );
    (log, sim.events_processed())
}

fn run_two_hub_regioned(workers: usize) -> (String, u64) {
    let mut reg: RegionSim<SimEvent, PresenceActorSet> = RegionSim::new(7, 2, LINK_DELAY);
    reg.set_workers(workers);
    let [net_a, col_a, net_b, col_b] = build_two_hubs(|r, m| reg.add_member(r, m));
    reg.actor_mut::<NetworkActor>(net_a)
        .unwrap()
        .register(Addr::Device(DeviceId(0)), col_b);
    reg.actor_mut::<NetworkActor>(net_b)
        .unwrap()
        .register(Addr::Device(DeviceId(0)), col_a);
    inject_sends(|t, target, ev| reg.schedule_at(t, target, ev), net_a, net_b);
    reg.run_until(END);
    let log = format!(
        "{:?} / {:?}",
        reg.actor::<CollectorActor>(col_a).unwrap().events(),
        reg.actor::<CollectorActor>(col_b).unwrap().events()
    );
    (log, reg.events_processed())
}

/// One `NetworkActor` per region, every delivery routed into the *other*
/// region: the fabric's constant delay equals the declared lookahead, so
/// each delivery lands exactly on a window boundary — and the regioned
/// run must still match the sequential engine bit-for-bit, at any worker
/// count.
#[test]
fn network_per_region_cross_delivery_matches_sequential() {
    let expected = run_two_hub_sequential();
    assert!(expected.1 > 40, "stimuli produced no deliveries");
    for workers in [1usize, 4] {
        let got = run_two_hub_regioned(workers);
        assert_eq!(got, expected, "workers={workers}");
    }
}

/// `run_mega_sharded` with one shard is byte-for-byte a plain
/// [`MegaScenario`] run: same root seed, same stream 0, same calendar
/// queue profile.
#[test]
fn single_shard_equals_plain_mega_scenario() {
    let cfg = MegaConfig::defaults(40, 3, 2.0, 9);
    let sharded = run_mega_sharded(&cfg, 1, 1);
    let mut sc = MegaScenario::build(cfg);
    sc.run();
    let plain = sc.collect();
    assert_eq!(
        serde_json::to_string(&sharded).unwrap(),
        serde_json::to_string(&vec![plain]).unwrap()
    );
}

/// The shard-per-region fan-out is thread-schedule independent: serial
/// and threaded execution serialise to identical JSON.
#[test]
fn sharded_serial_and_threaded_are_byte_identical() {
    let cfg = MegaConfig::defaults(64, 4, 2.0, 11);
    let serial = run_mega_sharded(&cfg, 4, 1);
    let threaded = run_mega_sharded(&cfg, 4, 4);
    assert_eq!(serial.len(), 4);
    assert!(
        serial.iter().all(|r| r.events_processed > 0),
        "every shard must have run"
    );
    assert_eq!(
        serde_json::to_string(&serial).unwrap(),
        serde_json::to_string(&threaded).unwrap(),
        "worker count must not perturb results"
    );
}

/// The tentpole acceptance: under the decomposed topology the paper trio
/// genuinely partitions — every scenario plans ≥ 2 effective regions with
/// a positive lookahead, instead of collapsing like the hub.
#[test]
fn decomposed_trio_plans_multiple_regions() {
    for (name, cfg) in golden_trio() {
        for requested in [2usize, 4, 8] {
            let scenario = DecomposedScenario::build(cfg, requested);
            let plan = scenario.region_plan();
            assert_eq!(plan.requested, requested, "{name}");
            assert!(
                plan.effective >= 2,
                "{name} collapsed at requested={requested}: {}",
                plan.reason
            );
            assert!(
                plan.reason.contains("lookahead"),
                "{name} plan must state the lookahead: {}",
                plan.reason
            );
        }
    }
}

/// Decomposed runs are bit-identical across region counts, worker counts,
/// and window policies: regions {2, 4} × policies on the windowed engine
/// must reproduce the sequential (regions = 1) trajectory exactly.
#[test]
fn decomposed_runs_match_sequential_across_regions() {
    let mut cfg = ScenarioConfig::paper_defaults(Protocol::dcpp_paper(), 12, 30.0, 42);
    cfg.load_window = 2.0;
    let mut reference = DecomposedScenario::build(cfg, 1);
    assert!(reference.region_counters().is_none());
    reference.run();
    let expected = serde_json::to_string(&reference.collect()).unwrap();
    assert!(reference.relays_forwarded() > 0, "no cross-plane traffic");

    for regions in [2usize, 4] {
        for policy in [WindowPolicy::Adaptive, WindowPolicy::Static] {
            let mut sc = DecomposedScenario::build(cfg, regions);
            sc.set_workers(regions);
            sc.set_window_policy(policy);
            sc.run();
            let got = serde_json::to_string(&sc.collect()).unwrap();
            assert_eq!(
                got, expected,
                "regions={regions} policy={policy:?} diverged from sequential"
            );
            let (windows, exchanges, _) = sc.region_counters().expect("windowed engine");
            assert!(windows > 0, "regions={regions}: no windows executed");
            assert!(
                exchanges > 0,
                "regions={regions}: no cross-region events exchanged"
            );
        }
    }
}

/// Adaptive windows never barrier more than static ones on the same
/// decomposed run (the tentpole's efficiency claim, on a real scenario).
#[test]
fn decomposed_adaptive_windows_at_most_static() {
    let mut cfg = ScenarioConfig::paper_defaults(Protocol::sapp_paper(), 10, 20.0, 11);
    cfg.load_window = 2.0;
    let windows = |policy: WindowPolicy| {
        let mut sc = DecomposedScenario::build(cfg, 4);
        sc.set_workers(1);
        sc.set_window_policy(policy);
        sc.run();
        sc.region_counters().expect("windowed engine").0
    };
    let adaptive = windows(WindowPolicy::Adaptive);
    let static_ = windows(WindowPolicy::Static);
    assert!(
        adaptive <= static_,
        "adaptive executed {adaptive} windows, static {static_}"
    );
}

/// The churn scenario exercises cross-region membership notifications
/// (the churn driver lives in region 0, its CPs everywhere): it must run
/// to completion and stay engine-invariant too.
#[test]
fn decomposed_churn_scenario_matches_sequential() {
    let mut cfg = ScenarioConfig::paper_defaults(Protocol::dcpp_paper(), 16, 60.0, 21);
    cfg.initially_active = 6;
    cfg.churn = presence_sim::ChurnModel::paper_fig5();
    cfg.load_window = 5.0;
    let mut reference = DecomposedScenario::build(cfg, 1);
    reference.run();
    let expected = serde_json::to_string(&reference.collect()).unwrap();
    let mut sc = DecomposedScenario::build(cfg, 4);
    sc.set_workers(2);
    sc.run();
    let got = serde_json::to_string(&sc.collect()).unwrap();
    assert_eq!(got, expected, "churn trajectory diverged across engines");
}

/// The population split is even, total-preserving, and clamps the shard
/// count at the device count.
#[test]
fn shard_configs_split_preserves_population() {
    let cfg = MegaConfig::defaults(10, 5, 1.0, 1);
    let cfgs = shard_configs(&cfg, 4);
    assert_eq!(cfgs.len(), 4);
    assert_eq!(cfgs.iter().map(|c| c.devices).sum::<u32>(), 10);
    assert!(cfgs.iter().all(|c| c.cps >= 1));
    let few = shard_configs(&MegaConfig::defaults(2, 1, 1.0, 1), 8);
    assert_eq!(few.len(), 2);
}
