//! Property-based tests over randomly generated scenarios: the invariants
//! that must hold for *any* configuration, not just the paper's points.

use presence_sim::{ChurnModel, LossKind, Protocol, Scenario, ScenarioConfig};
use proptest::prelude::*;

/// Small scenario space that stays fast enough for property testing.
fn any_protocol() -> impl Strategy<Value = Protocol> {
    prop_oneof![
        Just(Protocol::sapp_paper()),
        Just(Protocol::dcpp_paper()),
        Just(Protocol::FixedRate {
            cycle: presence_core::ProbeCycleConfig::paper_default(),
            period: 0.5,
        }),
    ]
}

fn any_loss() -> impl Strategy<Value = LossKind> {
    prop_oneof![
        Just(LossKind::None),
        (0.001..0.1f64).prop_map(LossKind::Bernoulli),
        (0.01..0.1f64).prop_map(LossKind::Bursty),
    ]
}

fn any_churn(max_pool: u32) -> impl Strategy<Value = ChurnModel> {
    prop_oneof![
        Just(ChurnModel::Static),
        (10.0..40.0f64, 1..max_pool)
            .prop_map(|(at, leavers)| ChurnModel::BurstLeave { at, leavers }),
        (0.02..0.2f64).prop_map(move |rate| ChurnModel::UniformResample {
            min: 1,
            max: max_pool,
            rate,
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// No scenario configuration panics, and basic accounting invariants
    /// hold: cycles succeeded ≤ probes sent; the device answers at most
    /// the number of probes admitted to the network.
    #[test]
    fn scenario_accounting_invariants(
        protocol in any_protocol(),
        loss in any_loss(),
        pool in 2u32..12,
        seed in 0u64..1_000,
    ) {
        let mut cfg = ScenarioConfig::paper_defaults(protocol, pool, 60.0, seed);
        cfg.loss = loss;
        let mut scenario = Scenario::build(cfg);
        scenario.run();
        let r = scenario.collect();

        let probes_sent: u64 = r.cps.iter().map(|c| c.probes_sent).sum();
        let cycles: u64 = r.cps.iter().map(|c| c.cycles_succeeded).sum();
        prop_assert!(cycles <= probes_sent, "more successes than probes");
        prop_assert!(
            r.device_probes <= probes_sent,
            "device answered {} of {} probes sent",
            r.device_probes,
            probes_sent
        );
        prop_assert!(r.messages_offered >= probes_sent);
        // Load series values are non-negative and finite.
        for &(_, v) in &r.load_series {
            prop_assert!(v >= 0.0 && v.is_finite());
        }
    }

    /// DCPP's device budget holds under ANY churn and loss: no settled
    /// measurement window may exceed L_nom by more than the join-burst
    /// allowance the paper describes.
    #[test]
    fn dcpp_load_cap_universal(
        loss in any_loss(),
        churn in any_churn(12),
        pool in 2u32..12,
        seed in 0u64..1_000,
    ) {
        let mut cfg = ScenarioConfig::paper_defaults(Protocol::dcpp_paper(), pool, 120.0, seed);
        cfg.loss = loss;
        cfg.churn = churn;
        cfg.load_window = 5.0;
        let mut scenario = Scenario::build(cfg);
        scenario.run();
        let r = scenario.collect();
        // A 5 s window can absorb one join burst of ≤ pool first-probes on
        // top of the L_nom budget.
        let cap = 10.0 + f64::from(pool) / 5.0 + 1.0;
        for &(t, v) in &r.load_series {
            if t < 5.0 {
                continue; // initial joins
            }
            prop_assert!(
                v <= cap,
                "window at t={t} carried {v} probes/s (cap {cap})"
            );
        }
    }

    /// Determinism holds for every configuration: same seed, same result.
    #[test]
    fn any_scenario_is_deterministic(
        protocol in any_protocol(),
        loss in any_loss(),
        pool in 2u32..8,
        seed in 0u64..1_000,
    ) {
        let run = || {
            let mut cfg = ScenarioConfig::paper_defaults(protocol, pool, 30.0, seed);
            cfg.loss = loss;
            let mut scenario = Scenario::build(cfg);
            scenario.run();
            let r = scenario.collect();
            (r.events_processed, r.device_probes, r.load_series)
        };
        prop_assert_eq!(run(), run());
    }

    /// A device crash is detected by every CP active at the time, under
    /// lossless networks, for every protocol.
    #[test]
    fn crash_always_detected_lossless(
        protocol in any_protocol(),
        pool in 2u32..8,
        seed in 0u64..1_000,
        crash_at in 20.0..40.0f64,
    ) {
        let cfg = ScenarioConfig::paper_defaults(protocol, pool, crash_at + 60.0, seed);
        let mut scenario = Scenario::build(cfg);
        scenario.crash_device_at(crash_at);
        scenario.run();
        let r = scenario.collect();
        for cp in r.active_cps() {
            let at = cp.detected_absent_at;
            prop_assert!(
                at.is_some(),
                "cp{:02} never detected the crash at {crash_at}",
                cp.id.0
            );
            let at = at.unwrap();
            prop_assert!(at >= crash_at, "verdict {at} precedes crash {crash_at}");
            // Generous universal bound: one maximal probing interval
            // (δ_max = 10 for SAPP) + verdict time + slack.
            prop_assert!(at - crash_at < 12.0, "detection took {}", at - crash_at);
        }
    }

    /// The fabric conserves messages: offered = admitted + dropped, and
    /// under no loss, nothing is dropped unless the buffer overflows
    /// (which the paper-sized buffer never does at these scales).
    #[test]
    fn lossless_network_drops_nothing(
        protocol in any_protocol(),
        pool in 2u32..10,
        seed in 0u64..1_000,
    ) {
        let cfg = ScenarioConfig::paper_defaults(protocol, pool, 60.0, seed);
        let mut scenario = Scenario::build(cfg);
        scenario.run();
        let r = scenario.collect();
        prop_assert_eq!(r.messages_dropped_loss, 0);
        prop_assert_eq!(r.messages_dropped_overflow, 0);
    }
}
