//! Property-based tests over randomly generated scenarios: the invariants
//! that must hold for *any* configuration, not just the paper's points.

use presence_sim::{
    ChurnModel, ChurnPhase, DelayKind, DelayPhase, LossKind, LossPhase, Protocol, Scenario,
    ScenarioConfig, ScenarioSpec,
};
use proptest::prelude::*;

/// Small scenario space that stays fast enough for property testing.
fn any_protocol() -> impl Strategy<Value = Protocol> {
    prop_oneof![
        Just(Protocol::sapp_paper()),
        Just(Protocol::dcpp_paper()),
        Just(Protocol::FixedRate {
            cycle: presence_core::ProbeCycleConfig::paper_default(),
            period: 0.5,
        }),
    ]
}

fn any_loss() -> impl Strategy<Value = LossKind> {
    prop_oneof![
        Just(LossKind::None),
        (0.001..0.1f64).prop_map(LossKind::Bernoulli),
        (0.01..0.1f64).prop_map(LossKind::Bursty),
    ]
}

fn any_churn(max_pool: u32) -> impl Strategy<Value = ChurnModel> {
    prop_oneof![
        Just(ChurnModel::Static),
        (10.0..40.0f64, 1..max_pool)
            .prop_map(|(at, leavers)| ChurnModel::BurstLeave { at, leavers }),
        (0.02..0.2f64).prop_map(move |rate| ChurnModel::UniformResample {
            min: 1,
            max: max_pool,
            rate,
        }),
        (5.0..30.0f64, 2..max_pool.max(3), 1.0..20.0f64, 0.0..20.0f64).prop_map(
            |(at, peak, ramp, hold)| ChurnModel::FlashCrowd {
                at,
                peak,
                ramp,
                hold,
            }
        ),
        (20.0..200.0f64, 0.05..0.5f64).prop_map(move |(period, rate)| ChurnModel::Diurnal {
            period,
            min: 1,
            max: max_pool,
            rate,
        }),
    ]
}

fn any_delay_kind() -> impl Strategy<Value = DelayKind> {
    prop_oneof![
        Just(DelayKind::ThreeModePaper),
        (0.0001..0.01f64).prop_map(DelayKind::Constant),
        (0.0001..0.001f64, 0.001..0.01f64).prop_map(|(lo, hi)| DelayKind::Uniform(lo, hi)),
        (0.0001..0.002f64, 0.005..0.05f64)
            .prop_map(|(mean, cap)| DelayKind::Exponential { mean, cap }),
    ]
}

/// A random multi-phase spec whose phase starts are strictly increasing
/// inside the horizon — the whole authorable surface of the scenario lab.
fn any_spec() -> impl Strategy<Value = ScenarioSpec> {
    let phases = (
        prop::collection::vec(any_delay_kind(), 1..4),
        prop::collection::vec(any_loss(), 1..4),
        prop::collection::vec(any_churn(8), 1..4),
    );
    (
        any_protocol(),
        2..10u32,
        phases,
        any::<u64>(),
        prop_oneof![Just(None), (10.0..90.0f64).prop_map(Some)],
    )
        .prop_map(
            |(protocol, pool, (delays, losses, churns), seed, crash_at)| {
                let mut cfg = ScenarioConfig::paper_defaults(protocol, pool, 100.0, seed);
                cfg.load_window = 5.0;
                let mut spec = ScenarioSpec::from_config("prop-spec", "random lab spec", cfg);
                // Spread phase k at 100·k/n seconds: strictly increasing,
                // first at 0, all inside the horizon.
                spec.delay = delays
                    .into_iter()
                    .enumerate()
                    .map(|(k, delay)| DelayPhase {
                        start: 100.0 * k as f64 / 4.0,
                        delay,
                    })
                    .collect();
                spec.loss = losses
                    .into_iter()
                    .enumerate()
                    .map(|(k, loss)| LossPhase {
                        start: 100.0 * k as f64 / 4.0,
                        loss,
                    })
                    .collect();
                spec.churn = churns
                    .into_iter()
                    .enumerate()
                    .map(|(k, churn)| ChurnPhase {
                        start: 100.0 * k as f64 / 4.0,
                        churn,
                    })
                    .collect();
                spec.crash_at = crash_at;
                spec
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any valid spec serialises to JSON and parses back **losslessly** —
    /// the catalog's round-trip guarantee, over the whole authorable
    /// surface (every model kind, multi-phase timelines, optional crash).
    #[test]
    fn scenario_spec_round_trips_losslessly(spec in any_spec()) {
        prop_assert!(spec.validate().is_ok(), "generated spec must be valid");
        let json = spec.to_json();
        let back = ScenarioSpec::from_json(&json)
            .map_err(|e| TestCaseError::fail(format!("reparse: {e}")))?;
        prop_assert_eq!(&back, &spec, "round-trip must be lossless");
        // And serialisation is deterministic: a second trip is identical.
        prop_assert_eq!(back.to_json(), json);
    }

    /// Any valid spec *runs*: the lowering produces a live scenario whose
    /// regime windows tile the horizon.
    #[test]
    fn any_spec_builds_and_slices(spec in any_spec()) {
        let windows = spec.regime_windows();
        prop_assert_eq!(windows[0].0, 0.0);
        prop_assert_eq!(windows[windows.len() - 1].1, spec.duration);
        for pair in windows.windows(2) {
            prop_assert_eq!(pair[0].1, pair[1].0, "windows must tile");
        }
        let report = presence_sim::run_lab(&spec, &[spec.seed], 1)
            .map_err(|e| TestCaseError::fail(format!("run: {e}")))?;
        prop_assert_eq!(report.per_seed.len(), 1);
        prop_assert!(report.per_seed[0].events_processed > 0);
    }

    /// No scenario configuration panics, and basic accounting invariants
    /// hold: cycles succeeded ≤ probes sent; the device answers at most
    /// the number of probes admitted to the network.
    #[test]
    fn scenario_accounting_invariants(
        protocol in any_protocol(),
        loss in any_loss(),
        pool in 2u32..12,
        seed in 0u64..1_000,
    ) {
        let mut cfg = ScenarioConfig::paper_defaults(protocol, pool, 60.0, seed);
        cfg.loss = loss;
        let mut scenario = Scenario::build(cfg);
        scenario.run();
        let r = scenario.collect();

        let probes_sent: u64 = r.cps.iter().map(|c| c.probes_sent).sum();
        let cycles: u64 = r.cps.iter().map(|c| c.cycles_succeeded).sum();
        prop_assert!(cycles <= probes_sent, "more successes than probes");
        prop_assert!(
            r.device_probes <= probes_sent,
            "device answered {} of {} probes sent",
            r.device_probes,
            probes_sent
        );
        prop_assert!(r.messages_offered >= probes_sent);
        // Load series values are non-negative and finite.
        for &(_, v) in &r.load_series {
            prop_assert!(v >= 0.0 && v.is_finite());
        }
    }

    /// DCPP's device budget holds under ANY churn and loss: no settled
    /// measurement window may exceed L_nom by more than the join-burst
    /// allowance the paper describes.
    #[test]
    fn dcpp_load_cap_universal(
        loss in any_loss(),
        churn in any_churn(12),
        pool in 2u32..12,
        seed in 0u64..1_000,
    ) {
        let mut cfg = ScenarioConfig::paper_defaults(Protocol::dcpp_paper(), pool, 120.0, seed);
        cfg.loss = loss;
        cfg.churn = churn;
        cfg.load_window = 5.0;
        let mut scenario = Scenario::build(cfg);
        scenario.run();
        let r = scenario.collect();
        // A 5 s window can absorb one join burst of ≤ pool first-probes on
        // top of the L_nom budget.
        let cap = 10.0 + f64::from(pool) / 5.0 + 1.0;
        for &(t, v) in &r.load_series {
            if t < 5.0 {
                continue; // initial joins
            }
            prop_assert!(
                v <= cap,
                "window at t={t} carried {v} probes/s (cap {cap})"
            );
        }
    }

    /// Determinism holds for every configuration: same seed, same result.
    #[test]
    fn any_scenario_is_deterministic(
        protocol in any_protocol(),
        loss in any_loss(),
        pool in 2u32..8,
        seed in 0u64..1_000,
    ) {
        let run = || {
            let mut cfg = ScenarioConfig::paper_defaults(protocol, pool, 30.0, seed);
            cfg.loss = loss;
            let mut scenario = Scenario::build(cfg);
            scenario.run();
            let r = scenario.collect();
            (r.events_processed, r.device_probes, r.load_series)
        };
        prop_assert_eq!(run(), run());
    }

    /// A device crash is detected by every CP active at the time, under
    /// lossless networks, for every protocol.
    #[test]
    fn crash_always_detected_lossless(
        protocol in any_protocol(),
        pool in 2u32..8,
        seed in 0u64..1_000,
        crash_at in 20.0..40.0f64,
    ) {
        let cfg = ScenarioConfig::paper_defaults(protocol, pool, crash_at + 60.0, seed);
        let mut scenario = Scenario::build(cfg);
        scenario.crash_device_at(crash_at);
        scenario.run();
        let r = scenario.collect();
        for cp in r.active_cps() {
            let at = cp.detected_absent_at;
            prop_assert!(
                at.is_some(),
                "cp{:02} never detected the crash at {crash_at}",
                cp.id.0
            );
            let at = at.unwrap();
            prop_assert!(at >= crash_at, "verdict {at} precedes crash {crash_at}");
            // Generous universal bound: one maximal probing interval
            // (δ_max = 10 for SAPP) + verdict time + slack.
            prop_assert!(at - crash_at < 12.0, "detection took {}", at - crash_at);
        }
    }

    /// The fabric conserves messages: offered = admitted + dropped, and
    /// under no loss, nothing is dropped unless the buffer overflows
    /// (which the paper-sized buffer never does at these scales).
    #[test]
    fn lossless_network_drops_nothing(
        protocol in any_protocol(),
        pool in 2u32..10,
        seed in 0u64..1_000,
    ) {
        let cfg = ScenarioConfig::paper_defaults(protocol, pool, 60.0, seed);
        let mut scenario = Scenario::build(cfg);
        scenario.run();
        let r = scenario.collect();
        prop_assert_eq!(r.messages_dropped_loss, 0);
        prop_assert_eq!(r.messages_dropped_overflow, 0);
    }
}
