//! Worker-pool plumbing for seed- and parameter-parallel studies.
//!
//! The paper's evidence is statistical: SAPP's unfairness claim rests on
//! many independent replications, and each replication is an independent
//! pure function of its `ScenarioConfig` (see `presence-des`'s determinism
//! guarantees). That makes cross-seed and cross-parameter studies
//! embarrassingly parallel — this module fans them out over
//! `std::thread::scope` workers while keeping every result **bit-identical**
//! to the serial run:
//!
//! * work items are dispatched to workers through an atomic cursor
//!   (work-stealing, so long seeds don't straggle behind short ones);
//! * results come back tagged with their dispatch index and are restored to
//!   dispatch order with [`presence_stats::merge_indexed`] before any
//!   order-sensitive (floating-point) folding happens;
//! * with one worker (or one item) everything runs inline on the calling
//!   thread — `PRESENCE_JOBS=1` is *exactly* the serial engine.
//!
//! The worker count comes from the `PRESENCE_JOBS` environment variable
//! (or the `--jobs` flag in the experiment binaries, which overrides it)
//! and defaults to the machine's available parallelism.

use presence_stats::merge_indexed;
use std::collections::BTreeMap;
use std::env;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::thread;

/// Resolves the worker count: `PRESENCE_JOBS` if set, otherwise the
/// machine's available parallelism (1 if that cannot be determined).
///
/// # Panics
///
/// Panics if `PRESENCE_JOBS` is set to anything but a positive integer, so
/// a typo cannot silently serialise (or explode) a study.
#[must_use]
pub fn job_count() -> usize {
    parse_jobs(env::var("PRESENCE_JOBS").ok().as_deref())
}

/// Pure core of [`job_count`]: interprets an optional `PRESENCE_JOBS`
/// value.
///
/// # Panics
///
/// Panics on a non-numeric or zero value.
#[must_use]
pub fn parse_jobs(var: Option<&str>) -> usize {
    match var {
        // `PRESENCE_JOBS= cmd` is the shell idiom for clearing a variable
        // for one command; treat it as unset, not as a typo.
        Some(raw) if !raw.trim().is_empty() => match raw.trim().parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => panic!("PRESENCE_JOBS must be a positive integer, got {raw:?}"),
        },
        _ => thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1),
    }
}

/// Spawns the shared work-stealing loop: `jobs.min(n)` workers pull
/// indices from `cursor` and send `(index, task(index))` down `tx`. The
/// caller owns the drain strategy (collect-then-merge, or streamed).
fn spawn_workers<'scope, T, F>(
    scope: &'scope thread::Scope<'scope, '_>,
    n: usize,
    jobs: usize,
    cursor: &'scope AtomicUsize,
    tx: &mpsc::Sender<(usize, T)>,
    task: &'scope F,
) where
    T: Send + 'scope,
    F: Fn(usize) -> T + Sync,
{
    for _ in 0..jobs.min(n) {
        let tx = tx.clone();
        scope.spawn(move || loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            // A send only fails when the receiver is gone, i.e. the caller
            // is already unwinding from another worker's panic.
            if tx.send((i, task(i))).is_err() {
                break;
            }
        });
    }
}

/// Runs `task(0..n)` across `jobs` workers and returns the results in
/// index order.
///
/// Each call of `task(i)` must be independent of every other (our tasks
/// are: one fully self-contained simulation per index). Scheduling can
/// interleave calls arbitrarily, but the returned `Vec` is always
/// `[task(0), task(1), …]` — callers can fold it exactly as a serial loop
/// would. A panicking task propagates to the caller.
///
/// # Panics
///
/// Panics if `jobs == 0`, or if any task panics.
#[must_use]
pub fn run_indexed<T, F>(n: usize, jobs: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    assert!(jobs > 0, "need at least one worker");
    if jobs == 1 || n <= 1 {
        // Inline serial path: no threads, no channels — byte-for-byte the
        // behaviour every determinism test pins.
        return (0..n).map(task).collect();
    }
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel();
    thread::scope(|scope| spawn_workers(scope, n, jobs, &cursor, &tx, &task));
    drop(tx);
    merge_indexed(rx.into_iter().collect())
}

/// Like [`run_indexed`], but streams: `consume(i, result)` runs on the
/// calling thread, in index order, as soon as the in-order prefix is
/// available — result `0` is delivered the moment it completes, not after
/// the whole batch. Out-of-order completions are buffered until their
/// turn. Use this when results should reach the user incrementally (e.g.
/// printing experiment reports); use [`run_indexed`] when the whole batch
/// is folded at once.
///
/// # Panics
///
/// Panics if `jobs == 0`, or if any task panics.
pub fn for_each_indexed<T, F, C>(n: usize, jobs: usize, task: F, mut consume: C)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    C: FnMut(usize, T),
{
    assert!(jobs > 0, "need at least one worker");
    if jobs == 1 || n <= 1 {
        for i in 0..n {
            let result = task(i);
            consume(i, result);
        }
        return;
    }
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel();
    let mut next = 0usize;
    thread::scope(|scope| {
        spawn_workers(scope, n, jobs, &cursor, &tx, &task);
        drop(tx);
        // Drain inside the scope so delivery overlaps the workers. If a
        // worker panics, the channel just closes early here and the scope
        // re-raises the worker's panic on exit.
        let mut parked: BTreeMap<usize, T> = BTreeMap::new();
        for (i, result) in rx {
            parked.insert(i, result);
            while let Some(result) = parked.remove(&next) {
                consume(next, result);
                next += 1;
            }
        }
    });
    // Only reachable when every worker exited cleanly, so every index must
    // have been delivered exactly once.
    assert_eq!(next, n, "worker pool lost results");
}

/// Runs a `(parameter × seed)` grid through the worker pool.
///
/// Experiments like the A1 sensitivity sweep evaluate a grid of parameter
/// points, each potentially under several seeds. `ParamSweep` flattens the
/// grid, dispatches every `(parameter, seed)` cell to the pool, and
/// regroups the results per parameter point (seeds in input order within
/// each group) — so a sweep's report is independent of the worker count.
///
/// # Examples
///
/// ```
/// use presence_sim::ParamSweep;
///
/// let groups = ParamSweep::with_jobs(2).run(&[10, 20], &[1, 2, 3], |&p, seed| p + seed);
/// assert_eq!(groups, vec![vec![11, 12, 13], vec![21, 22, 23]]);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ParamSweep {
    jobs: usize,
}

impl Default for ParamSweep {
    fn default() -> Self {
        Self::new()
    }
}

impl ParamSweep {
    /// A sweep using [`job_count`] workers (`PRESENCE_JOBS` / machine
    /// parallelism).
    #[must_use]
    pub fn new() -> Self {
        Self { jobs: job_count() }
    }

    /// A sweep with an explicit worker count (the `--jobs` flag).
    ///
    /// # Panics
    ///
    /// Panics if `jobs == 0`.
    #[must_use]
    pub fn with_jobs(jobs: usize) -> Self {
        assert!(jobs > 0, "need at least one worker");
        Self { jobs }
    }

    /// The worker count this sweep will use.
    #[must_use]
    pub fn jobs(self) -> usize {
        self.jobs
    }

    /// Evaluates `task(param, seed)` for every grid cell, returning one
    /// group per parameter point (in input order), each holding the
    /// results for `seeds` (in input order).
    pub fn run<P, R, F>(self, params: &[P], seeds: &[u64], task: F) -> Vec<Vec<R>>
    where
        P: Sync,
        R: Send,
        F: Fn(&P, u64) -> R + Sync,
    {
        if params.is_empty() || seeds.is_empty() {
            return params.iter().map(|_| Vec::new()).collect();
        }
        let per_param = seeds.len();
        let flat = run_indexed(params.len() * per_param, self.jobs, |i| {
            task(&params[i / per_param], seeds[i % per_param])
        });
        let mut grouped = Vec::with_capacity(params.len());
        let mut results = flat.into_iter();
        for _ in 0..params.len() {
            grouped.push(results.by_ref().take(per_param).collect());
        }
        grouped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree() {
        let serial = run_indexed(37, 1, |i| i * i);
        let parallel = run_indexed(37, 4, |i| i * i);
        assert_eq!(serial, parallel);
        assert_eq!(serial[6], 36);
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        assert_eq!(run_indexed(2, 16, |i| i), vec![0, 1]);
        assert_eq!(run_indexed(0, 4, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn results_come_back_in_dispatch_order_despite_skew() {
        // Make early indices the slowest so completion order inverts
        // dispatch order with >1 worker.
        let out = run_indexed(8, 4, |i| {
            std::thread::sleep(std::time::Duration::from_millis(8 - i as u64));
            i
        });
        assert_eq!(out, (0..8).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "scoped thread panicked")]
    fn worker_panics_propagate() {
        let _ = run_indexed(4, 2, |i| {
            if i == 3 {
                panic!("boom");
            }
            i
        });
    }

    #[test]
    fn for_each_streams_in_index_order() {
        // Invert completion order; delivery must still be 0, 1, 2, …
        let mut seen = Vec::new();
        for_each_indexed(
            6,
            3,
            |i| {
                std::thread::sleep(std::time::Duration::from_millis(6 - i as u64));
                i * 10
            },
            |i, r| seen.push((i, r)),
        );
        assert_eq!(seen, (0..6).map(|i| (i, i * 10)).collect::<Vec<_>>());
    }

    #[test]
    fn for_each_serial_path_streams_too() {
        let mut seen = Vec::new();
        for_each_indexed(4, 1, |i| i, |i, r| seen.push((i, r)));
        assert_eq!(seen, vec![(0, 0), (1, 1), (2, 2), (3, 3)]);
    }

    #[test]
    fn param_sweep_groups_by_param() {
        let groups =
            ParamSweep::with_jobs(3).run(&["a", "b"], &[10, 20, 30], |p, s| format!("{p}{s}"));
        assert_eq!(
            groups,
            vec![
                vec!["a10".to_string(), "a20".into(), "a30".into()],
                vec!["b10".to_string(), "b20".into(), "b30".into()],
            ]
        );
    }

    #[test]
    fn param_sweep_empty_edges() {
        let none: Vec<Vec<u64>> = ParamSweep::with_jobs(2).run(&[] as &[u32], &[1], |_, s| s);
        assert!(none.is_empty());
        let empty_seeds = ParamSweep::with_jobs(2).run(&[1u32, 2], &[], |&p, _| p);
        assert_eq!(empty_seeds, vec![Vec::<u32>::new(), Vec::new()]);
    }

    #[test]
    fn parse_jobs_resolves_env_values() {
        assert_eq!(parse_jobs(Some("3")), 3);
        assert_eq!(parse_jobs(Some(" 8 ")), 8);
        assert!(parse_jobs(None) >= 1);
        // `PRESENCE_JOBS= cmd` clears the variable: same as unset.
        assert_eq!(parse_jobs(Some("")), parse_jobs(None));
        assert_eq!(parse_jobs(Some("  ")), parse_jobs(None));
    }

    #[test]
    #[should_panic(expected = "positive integer")]
    fn parse_jobs_rejects_zero() {
        let _ = parse_jobs(Some("0"));
    }

    #[test]
    #[should_panic(expected = "positive integer")]
    fn parse_jobs_rejects_garbage() {
        let _ = parse_jobs(Some("many"));
    }
}
