//! Recorder granularity: full per-sample series or constant-memory streams.
//!
//! Every figure in the paper is plotted from a per-sample series (probe
//! arrivals, per-cycle frequencies, load windows), so the default recorders
//! retain everything. At mega-scale populations — or any horizon long
//! enough that the series themselves dominate memory — the same scenarios
//! can run with streaming recorders that fold each sample into
//! constant-size accumulators (Welford moments, P² quantiles, drained
//! window rates) the moment it lands. The simulated trajectory is
//! bit-identical either way; only what is *retained* changes.

/// How much per-sample history a scenario's actors keep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecorderMode {
    /// Keep every series the paper's figures plot (the default).
    #[default]
    Full,
    /// Keep only constant-size aggregates: memory stays flat at any
    /// horizon or population size. Series-valued result fields come back
    /// empty; scalar summaries (means, variances, counts) are still
    /// reported, computed from the streamed accumulators.
    Streaming,
}

impl RecorderMode {
    /// Whether per-sample series are retained.
    #[must_use]
    pub fn retains_series(self) -> bool {
        matches!(self, RecorderMode::Full)
    }
}
