//! Shared test-configuration helper: one switch for how long the
//! long-horizon scenario tests run.
//!
//! The paper's headline experiments use horizons of 10 000–20 000 virtual
//! seconds and multi-replication studies. Those are cheap enough in release
//! mode but dominate `cargo test` wall-clock in debug builds, so the test
//! pyramid routes every long horizon through [`horizon`] (and replication
//! counts through [`replications`]):
//!
//! * profile **full** — the paper's numbers, exactly;
//! * profile **ci** — a reduced horizon/count *chosen per test site* such
//!   that every assertion still holds (the caller supplies both values;
//!   this module only picks which one applies). Assertions are never
//!   scaled — only runtime is.
//!
//! Select with `PRESENCE_TEST_PROFILE=full|ci`; the default is `ci`.

use std::env;

/// Which test profile is in force.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// Paper-exact horizons and replication counts.
    Full,
    /// Reduced (but assertion-preserving) horizons for fast CI.
    Ci,
}

/// Reads `PRESENCE_TEST_PROFILE` (default: [`Profile::Ci`]).
///
/// # Panics
///
/// Panics on an unrecognised profile name, so a typo cannot silently
/// select the wrong profile.
#[must_use]
pub fn current() -> Profile {
    match env::var("PRESENCE_TEST_PROFILE") {
        Ok(v) if v.eq_ignore_ascii_case("full") => Profile::Full,
        Ok(v) if v.eq_ignore_ascii_case("ci") => Profile::Ci,
        Ok(other) => panic!("PRESENCE_TEST_PROFILE must be `full` or `ci`, got {other:?}"),
        Err(_) => Profile::Ci,
    }
}

/// Picks the scenario horizon for the current profile. `ci` must be chosen
/// by the test author so the test's assertions hold under it too.
#[must_use]
pub fn horizon(ci: f64, full: f64) -> f64 {
    match current() {
        Profile::Full => full,
        Profile::Ci => ci,
    }
}

/// Picks a replication count for the current profile.
#[must_use]
pub fn replications(ci: u32, full: u32) -> u32 {
    match current() {
        Profile::Full => full,
        Profile::Ci => ci,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_ci() {
        // The test environment does not set the variable.
        if env::var("PRESENCE_TEST_PROFILE").is_err() {
            assert_eq!(current(), Profile::Ci);
            assert_eq!(horizon(100.0, 20_000.0), 100.0);
            assert_eq!(replications(3, 30), 3);
        }
    }
}
