//! The closed actor set of a presence simulation: typed engine dispatch.
//!
//! A presence scenario is built from a closed set of actor kinds. Naming them
//! in one enum lets [`presence_des::Simulation`] store members inline and
//! dispatch each event through a direct `match` — no `Box<dyn Actor>` per
//! node, no vtable call per event, no downcast on the per-event path. The
//! engine keeps its dynamic storage ([`presence_des::DynActorSet`]) as the
//! default for unit tests and examples; everything scenario-shaped in this
//! crate runs on [`PresenceActorSet`] via the [`PresenceSim`] alias.
//!
//! Every actor kind gets a `From` impl (so assembly reads
//! `sim.add_member(actor.into())`) and a [`ProjectActor`] impl (so
//! `sim.actor::<CpActor>(id)` keeps working, now as a variant match
//! instead of an `Any`-downcast).

use crate::churn::ChurnActor;
use crate::cp_actor::CpActor;
use crate::device_actor::DeviceActor;
use crate::event::SimEvent;
use crate::mega::MegaDcppShard;
use crate::network_actor::NetworkActor;
use crate::regime::RegimeActor;
use presence_des::{Actor, Context, ProjectActor, SimTime, Simulation};

/// A presence simulation with typed actor storage: the hot-path variant of
/// `Simulation<SimEvent>` every scenario runs on.
pub type PresenceSim = Simulation<SimEvent, PresenceActorSet>;

/// A passive recorder node: logs every event delivered to it, with its
/// timestamp. Tests and diagnostics register one as an extra network
/// route (or schedule events at it directly) to observe traffic without
/// defining one-off sink actors — the monitor member of the actor set.
#[derive(Debug, Default)]
pub struct CollectorActor {
    events: Vec<(SimTime, SimEvent)>,
}

impl CollectorActor {
    /// Creates an empty collector.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Everything received so far, in firing order.
    #[must_use]
    pub fn events(&self) -> &[(SimTime, SimEvent)] {
        &self.events
    }

    /// How many [`SimEvent::Deliver`] events arrived (the network-traffic
    /// count a monitor route usually wants).
    #[must_use]
    pub fn deliveries(&self) -> usize {
        self.events
            .iter()
            .filter(|(_, e)| matches!(e, SimEvent::Deliver(_)))
            .count()
    }
}

impl Actor<SimEvent> for CollectorActor {
    fn on_event(&mut self, ctx: &mut Context<'_, SimEvent>, event: SimEvent) {
        self.events.push((ctx.now(), event));
    }
}

/// The actor kinds a presence simulation is built from, as an inline
/// engine member type (see the [module docs](self)).
#[allow(clippy::large_enum_variant)] // members live in a Vec, one per node
pub enum PresenceActorSet {
    /// A control point (prober).
    Cp(CpActor),
    /// The probed device.
    Device(DeviceActor),
    /// The network fabric router.
    Network(NetworkActor),
    /// The churn driver.
    Churn(ChurnActor),
    /// The regime-switch scheduler.
    Regime(RegimeActor),
    /// The passive recorder/monitor.
    Collector(CollectorActor),
    /// A mega-scale DCPP population shard (millions of pairs, one member).
    /// Boxed: the shard's aggregate recorders would otherwise inflate
    /// every member slot of every scenario past the next-largest variant.
    Mega(Box<MegaDcppShard>),
}

impl Actor<SimEvent> for PresenceActorSet {
    fn on_start(&mut self, ctx: &mut Context<'_, SimEvent>) {
        match self {
            PresenceActorSet::Cp(a) => a.on_start(ctx),
            PresenceActorSet::Device(a) => a.on_start(ctx),
            PresenceActorSet::Network(a) => a.on_start(ctx),
            PresenceActorSet::Churn(a) => a.on_start(ctx),
            PresenceActorSet::Regime(a) => a.on_start(ctx),
            PresenceActorSet::Collector(a) => a.on_start(ctx),
            PresenceActorSet::Mega(a) => a.on_start(ctx),
        }
    }

    fn on_event(&mut self, ctx: &mut Context<'_, SimEvent>, event: SimEvent) {
        match self {
            PresenceActorSet::Cp(a) => a.on_event(ctx, event),
            PresenceActorSet::Device(a) => a.on_event(ctx, event),
            PresenceActorSet::Network(a) => a.on_event(ctx, event),
            PresenceActorSet::Churn(a) => a.on_event(ctx, event),
            PresenceActorSet::Regime(a) => a.on_event(ctx, event),
            PresenceActorSet::Collector(a) => a.on_event(ctx, event),
            PresenceActorSet::Mega(a) => a.on_event(ctx, event),
        }
    }
}

/// Wires one actor kind into the set: `From<Kind>` plus the
/// [`ProjectActor`] accessor projection.
macro_rules! set_member {
    ($variant:ident, $kind:ty) => {
        impl From<$kind> for PresenceActorSet {
            fn from(actor: $kind) -> Self {
                PresenceActorSet::$variant(actor)
            }
        }

        impl ProjectActor<$kind> for PresenceActorSet {
            fn project(&self) -> Option<&$kind> {
                match self {
                    PresenceActorSet::$variant(a) => Some(a),
                    _ => None,
                }
            }
            fn project_mut(&mut self) -> Option<&mut $kind> {
                match self {
                    PresenceActorSet::$variant(a) => Some(a),
                    _ => None,
                }
            }
        }
    };
}

set_member!(Cp, CpActor);
set_member!(Device, DeviceActor);
set_member!(Network, NetworkActor);
set_member!(Churn, ChurnActor);
set_member!(Regime, RegimeActor);
set_member!(Collector, CollectorActor);
// The Mega member is boxed, so the macro's direct wrapping doesn't apply.
impl From<MegaDcppShard> for PresenceActorSet {
    fn from(actor: MegaDcppShard) -> Self {
        PresenceActorSet::Mega(Box::new(actor))
    }
}

impl ProjectActor<MegaDcppShard> for PresenceActorSet {
    fn project(&self) -> Option<&MegaDcppShard> {
        match self {
            PresenceActorSet::Mega(a) => Some(a),
            _ => None,
        }
    }
    fn project_mut(&mut self) -> Option<&mut MegaDcppShard> {
        match self {
            PresenceActorSet::Mega(a) => Some(a),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Addr;
    use presence_core::{CpId, Probe, WireMessage};
    use presence_net::Fabric;

    #[test]
    fn projection_matches_variant_and_rejects_others() {
        let mut sim: PresenceSim = Simulation::with_actor_set(1);
        let c = sim.add_member(CollectorActor::new().into());
        let n = sim.add_member(NetworkActor::new(Fabric::paper_default()).into());
        assert!(sim.actor::<CollectorActor>(c).is_some());
        assert!(sim.actor::<NetworkActor>(c).is_none(), "wrong kind");
        assert!(sim.actor::<NetworkActor>(n).is_some());
        assert!(sim.actor_mut::<CollectorActor>(n).is_none());
    }

    #[test]
    fn collector_records_deliveries_through_the_network() {
        let mut sim: PresenceSim = Simulation::with_actor_set(1);
        let network = sim.add_member(NetworkActor::new(Fabric::paper_default()).into());
        let monitor = sim.add_member(CollectorActor::new().into());
        sim.actor_mut::<NetworkActor>(network)
            .expect("network actor")
            .register(Addr::Cp(CpId(0)), monitor);
        sim.schedule_at(
            SimTime::ZERO,
            network,
            SimEvent::Send {
                to: Addr::Cp(CpId(0)),
                msg: WireMessage::Probe(Probe {
                    cp: CpId(0),
                    seq: 1,
                }),
            },
        );
        sim.run_until_idle();
        let mon = sim.actor::<CollectorActor>(monitor).expect("collector");
        assert_eq!(mon.deliveries(), 1);
        assert_eq!(mon.events().len(), 1);
    }
}
