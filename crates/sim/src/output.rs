//! Rendering helpers: CSV series export (gnuplot-compatible, matching the
//! paper's `cp_XX_delay.txt` files) and quick ASCII charts for terminal
//! inspection.

use std::fmt::Write as _;

/// Renders one `(x, y)` series as two-column whitespace-separated text —
/// the same shape as the paper's `cp_01_delay.txt` gnuplot inputs.
#[must_use]
pub fn series_to_columns(series: &[(f64, f64)]) -> String {
    let mut s = String::with_capacity(series.len() * 24);
    for &(x, y) in series {
        let _ = writeln!(s, "{x:.6} {y:.6}");
    }
    s
}

/// Renders several aligned series as CSV with the given header names.
/// Series may have different lengths; missing cells are left empty.
#[must_use]
pub fn series_to_csv(names: &[&str], series: &[Vec<(f64, f64)>]) -> String {
    assert_eq!(names.len(), series.len(), "one name per series");
    let mut s = String::new();
    let mut header = String::from("t");
    for n in names {
        let _ = write!(header, ",{n}");
    }
    let _ = writeln!(s, "{header}");
    let rows = series.iter().map(Vec::len).max().unwrap_or(0);
    for i in 0..rows {
        // Use the first series that has this row for the time column.
        let t = series
            .iter()
            .find_map(|v| v.get(i).map(|&(t, _)| t))
            .unwrap_or(f64::NAN);
        let mut row = format!("{t:.6}");
        for v in series {
            match v.get(i) {
                Some(&(_, y)) => {
                    let _ = write!(row, ",{y:.6}");
                }
                None => row.push(','),
            }
        }
        let _ = writeln!(s, "{row}");
    }
    s
}

/// A quick ASCII line chart of a series, `width`×`height` characters.
///
/// Good enough to eyeball the Figure 2 starvation or the Figure 5 spikes
/// in a terminal without leaving the bench harness.
#[must_use]
pub fn ascii_chart(title: &str, series: &[(f64, f64)], width: usize, height: usize) -> String {
    assert!(width >= 8 && height >= 2, "chart too small");
    if series.is_empty() {
        return format!("{title}\n(empty series)\n");
    }
    let (mut xmin, mut xmax) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut ymin, mut ymax) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in series {
        if x.is_finite() {
            xmin = xmin.min(x);
            xmax = xmax.max(x);
        }
        if y.is_finite() {
            ymin = ymin.min(y);
            ymax = ymax.max(y);
        }
    }
    if !xmin.is_finite() || !ymin.is_finite() {
        return format!("{title}\n(no finite points)\n");
    }
    if (xmax - xmin).abs() < f64::EPSILON {
        xmax = xmin + 1.0;
    }
    if (ymax - ymin).abs() < f64::EPSILON {
        ymax = ymin + 1.0;
    }
    let mut grid = vec![vec![b' '; width]; height];
    for &(x, y) in series {
        if !x.is_finite() || !y.is_finite() {
            continue;
        }
        let col = (((x - xmin) / (xmax - xmin)) * (width - 1) as f64).round() as usize;
        let row = (((y - ymin) / (ymax - ymin)) * (height - 1) as f64).round() as usize;
        let r = height - 1 - row.min(height - 1);
        grid[r][col.min(width - 1)] = b'*';
    }
    let mut s = String::new();
    let _ = writeln!(s, "{title}");
    let _ = writeln!(s, "y: [{ymin:.3}, {ymax:.3}]  x: [{xmin:.3}, {xmax:.3}]");
    for row in grid {
        let _ = writeln!(s, "|{}|", String::from_utf8_lossy(&row));
    }
    s
}

/// Formats a simple aligned two-column table of labelled values.
#[must_use]
pub fn kv_table(rows: &[(&str, String)]) -> String {
    let key_width = rows.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
    let mut s = String::new();
    for (k, v) in rows {
        let _ = writeln!(s, "  {k:<key_width$}  {v}");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columns_format() {
        let out = series_to_columns(&[(0.0, 1.0), (1.5, 2.25)]);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], "0.000000 1.000000");
        assert_eq!(lines[1], "1.500000 2.250000");
    }

    #[test]
    fn csv_ragged_series() {
        let a = vec![(0.0, 1.0), (1.0, 2.0)];
        let b = vec![(0.0, 9.0)];
        let out = series_to_csv(&["a", "b"], &[a, b]);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "t,a,b");
        assert!(lines[1].starts_with("0.000000,1.000000,9.000000"));
        assert!(lines[2].ends_with(","), "missing cell must be empty");
    }

    #[test]
    #[should_panic(expected = "one name per series")]
    fn csv_name_mismatch_panics() {
        let _ = series_to_csv(&["a"], &[vec![], vec![]]);
    }

    #[test]
    fn ascii_chart_renders() {
        let series: Vec<(f64, f64)> = (0..100)
            .map(|i| (i as f64, (i as f64 * 0.2).sin()))
            .collect();
        let chart = ascii_chart("sine", &series, 60, 10);
        assert!(chart.contains("sine"));
        assert!(chart.contains('*'));
        assert_eq!(chart.lines().count(), 12);
    }

    #[test]
    fn ascii_chart_handles_empty_and_flat() {
        assert!(ascii_chart("e", &[], 20, 5).contains("empty"));
        let flat = ascii_chart("f", &[(0.0, 3.0), (1.0, 3.0)], 20, 5);
        assert!(flat.contains('*'));
    }

    #[test]
    fn kv_table_aligns() {
        let t = kv_table(&[("short", "1".into()), ("much longer key", "2".into())]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 2);
        let c1 = lines[0].find('1').unwrap();
        let c2 = lines[1].find('2').unwrap();
        assert_eq!(c1, c2, "values must align");
    }
}
