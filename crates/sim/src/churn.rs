//! Churn workloads: how the CP population evolves over a run.
//!
//! The paper's scenarios map onto these models:
//!
//! * §3 steady-state and Figures 2–3: [`ChurnModel::Static`] — `k` CPs
//!   present throughout.
//! * Figure 4: [`ChurnModel::BurstLeave`] — 18 of 20 CPs leave at once.
//! * Figure 5 / §5: [`ChurnModel::UniformResample`] — the active population
//!   is redrawn from `U{min..max}` at exponentially distributed intervals
//!   ("this choice is repeated every X time-units, where X is exponentially
//!   distributed with rate 0.05").
//!
//! The scenario lab adds the workloads the paper only conjectures about
//! (§5: populations that surge and drain rather than resample uniformly):
//!
//! * [`ChurnModel::FlashCrowd`] — a join wave ramping the population up to
//!   a peak, holding, then draining back down (joins and leaves spread
//!   evenly over the ramp, not lock-stepped);
//! * [`ChurnModel::Diurnal`] — a sinusoid-modulated MMPP: the population
//!   tracks a day-shaped sinusoid between `min` and `max`, resampled at
//!   exponentially distributed instants whose rate is itself modulated by
//!   the sinusoid (churn is busiest near the peak).
//!
//! Models can be **switched mid-run**: the regime scheduler (see
//! [`crate::RegimeActor`]) sends [`crate::SimEvent::SetChurn`] at
//! configured boundaries, and the churn actor re-arms under the new model
//! deterministically.

use crate::event::SimEvent;
use crate::trace::ChurnTrace;
use presence_des::{Actor, ActorId, Context, EventHandle, SimDuration, SimTime};
use presence_stats::TimeSeries;
use serde::{Deserialize, Serialize};

/// A population workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ChurnModel {
    /// All initially active CPs stay for the whole run.
    Static,
    /// At time `at`, `leavers` CPs (the highest-indexed active ones) leave
    /// simultaneously — the Figure 4 workload with `leavers = 18`.
    BurstLeave {
        /// When the burst happens (seconds).
        at: f64,
        /// How many CPs leave.
        leavers: u32,
    },
    /// Redraw the target population uniformly from `[min, max]` at
    /// exponentially distributed intervals with the given `rate` — the
    /// Figure 5 workload with `min = 1`, `max = 60`, `rate = 0.05`.
    UniformResample {
        /// Smallest population.
        min: u32,
        /// Largest population.
        max: u32,
        /// Rate of the exponential inter-resample time (1/mean).
        rate: f64,
    },
    /// A flash crowd: at time `at`, the population ramps up to `peak` with
    /// joins spread evenly over `ramp` seconds, holds for `hold` seconds,
    /// then drains back to the pre-surge population with leaves spread
    /// over another `ramp` seconds. `ramp = 0` degenerates to a lock-step
    /// spike (the adversarial variant of the paper's join-spike worry).
    FlashCrowd {
        /// When the up-ramp starts (seconds).
        at: f64,
        /// Target population at the top of the wave.
        peak: u32,
        /// Width of each ramp (seconds).
        ramp: f64,
        /// How long the crowd stays at the peak (seconds).
        hold: f64,
    },
    /// A sinusoid-modulated MMPP: the mean population follows
    /// `min + (max − min)·(1 − cos(2πt/period))/2` (troughs at t = 0 and
    /// every full period), resampled at exponentially distributed instants
    /// whose rate is `rate · (0.5 + 1.5·s(t))` — churn activity surges
    /// with the population. Each resample draws the target uniformly from
    /// a ±⅛-range band around the sinusoid mean.
    Diurnal {
        /// Length of one day (seconds).
        period: f64,
        /// Trough population.
        min: u32,
        /// Peak population.
        max: u32,
        /// Baseline resample rate (1/mean seconds).
        rate: f64,
    },
}

impl ChurnModel {
    /// The Figure 5 workload.
    #[must_use]
    pub fn paper_fig5() -> Self {
        ChurnModel::UniformResample {
            min: 1,
            max: 60,
            rate: 0.05,
        }
    }

    /// The Figure 4 workload (given 20 CPs initially active).
    #[must_use]
    pub fn paper_fig4() -> Self {
        // The paper shows the leave within the first half of the run; the
        // exact instant is immaterial as the CPs never recover regardless.
        ChurnModel::BurstLeave {
            at: 2_000.0,
            leavers: 18,
        }
    }

    /// The normalised sinusoid `s(t) = (1 − cos(2πt/period))/2 ∈ [0, 1]`
    /// shared by the [`ChurnModel::Diurnal`] population mean and resample
    /// rate.
    #[must_use]
    pub fn diurnal_phase(period: f64, t: f64) -> f64 {
        (1.0 - (2.0 * std::f64::consts::PI * t / period).cos()) / 2.0
    }
}

/// The actor that drives joins and leaves according to a [`ChurnModel`].
pub struct ChurnActor {
    model: ChurnModel,
    cps: Vec<ActorId>,
    active: Vec<bool>,
    /// `(t, population)` step series — Figure 5's second curve.
    population: TimeSeries,
    /// How far to stagger the initial joins (avoids the artificial
    /// lock-step of all CPs starting at exactly t = 0).
    join_stagger: SimDuration,
    initially_active: u32,
    /// The next scheduled self-event (resample / wave step), cancelled on
    /// a model switch so stale events from the old regime never fire.
    pending_self: Option<EventHandle>,
    /// Staggered wave steps ([`SimEvent::ChurnWave`] self-events) not yet
    /// fired. Membership flags and the population series only move when a
    /// step fires, so a model switch simply cancels the pending ones —
    /// bookkeeping always matches what the CPs actually experienced.
    wave: Vec<EventHandle>,
    /// Flash-crowd state machine: 0 = waiting for the up-ramp, 1 = at the
    /// peak waiting for the drain.
    flash_step: u8,
    /// Population before the flash-crowd up-ramp (the drain target).
    flash_baseline: u32,
    /// How many mid-run model switches have been applied (lab
    /// diagnostics; see [`ChurnActor::switches_applied`]).
    switches: u64,
    /// Wire time between the churn driver and the CPs it notifies. Zero
    /// (the default) keeps the instantaneous `send_now` membership paths
    /// of the hub topology; a decomposed topology sets it to the
    /// inter-plane leg so every `Join`/`Leave` crosses region cuts with
    /// positive lookahead (see [`ChurnActor::set_notify_delay`]).
    notify_delay: SimDuration,
    /// Regime-switch trace buffer; `None` (one predictable branch per
    /// switch) unless [`ChurnActor::set_trace`] armed it.
    trace: Option<Box<ChurnTrace>>,
}

impl ChurnActor {
    /// Creates the churn driver for `cps`, of which the first
    /// `initially_active` join at start (staggered uniformly over
    /// `join_stagger`). `horizon` is the configured run length (seconds),
    /// used to pre-size the population series for the expected number of
    /// resamples.
    ///
    /// # Panics
    ///
    /// Panics if `initially_active` exceeds the CP pool.
    #[must_use]
    pub fn new(
        model: ChurnModel,
        cps: Vec<ActorId>,
        initially_active: u32,
        join_stagger: SimDuration,
        horizon: f64,
    ) -> Self {
        assert!(
            (initially_active as usize) <= cps.len(),
            "more initially active CPs than the pool holds"
        );
        let active = vec![false; cps.len()];
        let samples_hint = Self::samples_hint(model, horizon);
        Self {
            model,
            cps,
            active,
            population: TimeSeries::with_capacity(samples_hint),
            join_stagger,
            initially_active,
            pending_self: None,
            wave: Vec::new(),
            flash_step: 0,
            flash_baseline: 0,
            switches: 0,
            notify_delay: SimDuration::ZERO,
            trace: None,
        }
    }

    /// Arms regime-switch tracing up to `until_ns` (virtual nanoseconds).
    pub fn set_trace(&mut self, until_ns: u64) {
        self.trace = Some(Box::new(ChurnTrace::new(until_ns)));
    }

    /// Takes the trace buffer accumulated since [`ChurnActor::set_trace`].
    pub fn take_trace(&mut self) -> Option<Box<ChurnTrace>> {
        self.trace.take()
    }

    /// Makes every membership notification (`Join`/`Leave`, wave steps,
    /// the initial staggered joins) travel `delay` of wire time instead of
    /// arriving instantaneously. A decomposed scenario sets this to the
    /// inter-plane leg: the churn driver lives in one region while its CPs
    /// are spread across all of them, and a zero-delay cross-region event
    /// would (correctly) trip the engine's lookahead check. Zero keeps the
    /// hub's exact legacy trajectories.
    pub fn set_notify_delay(&mut self, delay: SimDuration) {
        self.notify_delay = delay;
    }

    /// One sample at start plus one per resample; 1.5× headroom keeps an
    /// unlucky exponential draw sequence from forcing a regrow.
    fn samples_hint(model: ChurnModel, horizon: f64) -> usize {
        match model {
            ChurnModel::Static => 1,
            ChurnModel::BurstLeave { .. } => 2,
            ChurnModel::FlashCrowd { .. } => 3,
            ChurnModel::UniformResample { rate, .. } => {
                (horizon * rate * 1.5).min(4e6) as usize + 2
            }
            // Peak resample rate is 2·rate; size for the mean ~1·rate
            // with the same headroom.
            ChurnModel::Diurnal { rate, .. } => (horizon * rate * 1.5).min(4e6) as usize + 2,
        }
    }

    /// The `(t, population)` series recorded so far.
    #[must_use]
    pub fn population_series(&self) -> &TimeSeries {
        &self.population
    }

    /// The model currently driving the population.
    #[must_use]
    pub fn model(&self) -> ChurnModel {
        self.model
    }

    /// How many mid-run model switches this actor has applied.
    #[must_use]
    pub fn switches_applied(&self) -> u64 {
        self.switches
    }

    fn active_count(&self) -> u32 {
        self.active.iter().filter(|&&a| a).count() as u32
    }

    fn record_population(&mut self, now: SimTime) {
        self.population
            .push(now.as_secs_f64(), f64::from(self.active_count()));
    }

    /// Moves the active population to `target` by joining inactive CPs (in
    /// index order) or leaving active ones (highest index first — matching
    /// the "18 of 20 leave, CPs 1–2 stay" reading of Figure 4).
    ///
    /// All changes of one resample go out as a **single batched engine
    /// event** per direction ([`Context::send_now_batch`]) instead of one
    /// event per membership change — same delivery order, k − 1 fewer
    /// queue operations (ROADMAP open item (d)). A single-change step (the
    /// common diurnal case) skips the batch and its allocation: a batch of
    /// one and a plain `send_now` consume one sequence number each, so the
    /// two paths are trajectory-identical.
    fn drive_to(&mut self, ctx: &mut Context<'_, SimEvent>, target: u32) {
        let current = self.active_count();
        if current < target {
            let mut changed = Vec::with_capacity((target - current) as usize);
            let mut current = current;
            while current < target {
                let Some(idx) = self.active.iter().position(|&a| !a) else {
                    break;
                };
                self.active[idx] = true;
                changed.push(self.cps[idx]);
                current += 1;
            }
            self.send_membership(ctx, changed, SimEvent::Join);
        } else if current > target {
            let mut changed = Vec::with_capacity((current - target) as usize);
            let mut current = current;
            while current > target {
                let Some(idx) = self.active.iter().rposition(|&a| a) else {
                    break;
                };
                self.active[idx] = false;
                changed.push(self.cps[idx]);
                current -= 1;
            }
            self.send_membership(ctx, changed, SimEvent::Leave);
        }
        self.record_population(ctx.now());
    }

    /// One membership event for the whole change set: nothing for an
    /// empty set, a plain `send_now` for a single CP, a batch otherwise.
    /// With a nonzero [`notify_delay`](ChurnActor::set_notify_delay) the
    /// batch fast path is skipped, and the k-th change is skewed by k
    /// extra nanoseconds: a same-instant mass join would otherwise make
    /// every newly joined CP's first probe relay into the device's plane
    /// at one identical nanosecond, and simultaneous arrivals minted in
    /// *different* regions are the one case where barrier merge order is
    /// not the sequential mint order. One ns of skew per member keeps the
    /// decomposed trajectory engine-invariant and is far below the wire
    /// delays' microsecond scale.
    fn send_membership(
        &self,
        ctx: &mut Context<'_, SimEvent>,
        changed: Vec<ActorId>,
        event: SimEvent,
    ) {
        if self.notify_delay > SimDuration::ZERO {
            for (k, cp) in changed.into_iter().enumerate() {
                let skew = SimDuration::from_nanos(k as u64);
                ctx.schedule_in(self.notify_delay + skew, cp, event.clone());
            }
            return;
        }
        match changed.len() {
            0 => {}
            1 => {
                ctx.send_now(changed[0], event);
            }
            _ => {
                ctx.send_now_batch(changed, event);
            }
        }
    }

    /// Schedules the next self-event the current model needs (if any).
    /// Draw order matches the pre-switchable actor exactly, so seeded
    /// trajectories are unchanged for the paper's three models.
    fn arm(&mut self, ctx: &mut Context<'_, SimEvent>) {
        let me = ctx.me();
        self.pending_self = match self.model {
            ChurnModel::Static => None,
            ChurnModel::BurstLeave { at, .. } => {
                let at = SimTime::from_secs_f64(at).max(ctx.now());
                Some(ctx.schedule_at(at, me, SimEvent::ResampleChurn))
            }
            ChurnModel::UniformResample { rate, .. } => {
                let wait = ctx.rng().exponential(rate);
                Some(ctx.schedule_in(
                    SimDuration::from_secs_f64(wait),
                    me,
                    SimEvent::ResampleChurn,
                ))
            }
            ChurnModel::FlashCrowd { at, .. } => {
                self.flash_step = 0;
                let at = SimTime::from_secs_f64(at).max(ctx.now());
                Some(ctx.schedule_at(at, me, SimEvent::ResampleChurn))
            }
            ChurnModel::Diurnal { period, rate, .. } => {
                let lambda = Self::diurnal_rate(rate, period, ctx.now().as_secs_f64());
                let wait = ctx.rng().exponential(lambda);
                Some(ctx.schedule_in(
                    SimDuration::from_secs_f64(wait),
                    me,
                    SimEvent::ResampleChurn,
                ))
            }
        };
    }

    /// The sinusoid-modulated resample rate: `rate · (0.5 + 1.5·s(t))`,
    /// between 0.5× (trough) and 2× (peak) the baseline.
    fn diurnal_rate(rate: f64, period: f64, t: f64) -> f64 {
        rate * (0.5 + 1.5 * ChurnModel::diurnal_phase(period, t))
    }

    /// Schedules a staggered wave of joins or leaves: `targets` CP indices
    /// change membership spread evenly over `ramp` seconds (the k-th at
    /// `ramp·(k+1)/n`). Each step is a [`SimEvent::ChurnWave`] self-event:
    /// the membership flag, the forwarded `Join`/`Leave`, and the
    /// population sample all happen when the step *fires*, so the recorded
    /// population ramps with reality instead of leading it, and a model
    /// switch mid-wave only has to cancel the un-fired steps (costs one
    /// extra engine event per wave member; waves are rare).
    fn schedule_wave(
        &mut self,
        ctx: &mut Context<'_, SimEvent>,
        targets: Vec<usize>,
        is_join: bool,
        ramp: f64,
    ) {
        let n = targets.len();
        let me = ctx.me();
        self.wave.retain(|&h| ctx.is_pending(h));
        for (k, idx) in targets.into_iter().enumerate() {
            let offset = SimDuration::from_secs_f64(ramp * (k + 1) as f64 / n as f64);
            let handle = ctx.schedule_in(
                offset,
                me,
                SimEvent::ChurnWave {
                    index: idx as u32,
                    join: is_join,
                },
            );
            self.wave.push(handle);
        }
    }

    /// One step of the flash-crowd machine.
    fn flash_fire(&mut self, ctx: &mut Context<'_, SimEvent>) {
        let ChurnModel::FlashCrowd {
            peak, ramp, hold, ..
        } = self.model
        else {
            unreachable!("flash step outside FlashCrowd model");
        };
        match self.flash_step {
            0 => {
                self.flash_baseline = self.active_count();
                let want = peak.min(self.cps.len() as u32);
                let need = want.saturating_sub(self.flash_baseline) as usize;
                // Lowest-index inactive CPs join, flags flipping as each
                // wave step fires.
                let joiners: Vec<usize> = self
                    .active
                    .iter()
                    .enumerate()
                    .filter(|&(_, &a)| !a)
                    .map(|(i, _)| i)
                    .take(need)
                    .collect();
                if !joiners.is_empty() {
                    self.schedule_wave(ctx, joiners, true, ramp);
                }
                self.flash_step = 1;
                let me = ctx.me();
                let drain_at = ctx.now() + SimDuration::from_secs_f64(ramp + hold);
                self.pending_self = Some(ctx.schedule_at(drain_at, me, SimEvent::ResampleChurn));
            }
            _ => {
                let need = self.active_count().saturating_sub(self.flash_baseline) as usize;
                // Highest-index active CPs drain first (the Figure 4
                // convention).
                let leavers: Vec<usize> = self
                    .active
                    .iter()
                    .enumerate()
                    .rev()
                    .filter(|&(_, &a)| a)
                    .map(|(i, _)| i)
                    .take(need)
                    .collect();
                if !leavers.is_empty() {
                    self.schedule_wave(ctx, leavers, false, ramp);
                }
                // The wave is over; the model goes quiet (no more
                // self-events) until a regime switch replaces it.
                self.pending_self = None;
                self.flash_step = 2;
            }
        }
    }
}

impl Actor<SimEvent> for ChurnActor {
    fn on_start(&mut self, ctx: &mut Context<'_, SimEvent>) {
        // Stagger the initial joins.
        let n = self.initially_active;
        for i in 0..n {
            let idx = i as usize;
            let offset = if self.join_stagger == SimDuration::ZERO {
                SimDuration::ZERO
            } else {
                SimDuration::from_nanos(
                    ctx.rng().uniform(0.0, self.join_stagger.as_nanos() as f64) as u64
                )
            };
            self.active[idx] = true;
            // With a notify delay the join still counts from its staggered
            // instant; the delay is pure wire time on top.
            ctx.schedule_in(offset + self.notify_delay, self.cps[idx], SimEvent::Join);
        }
        self.record_population(ctx.now());
        self.arm(ctx);
    }

    fn on_event(&mut self, ctx: &mut Context<'_, SimEvent>, event: SimEvent) {
        match event {
            SimEvent::ResampleChurn => match self.model {
                ChurnModel::Static => {}
                ChurnModel::BurstLeave { leavers, .. } => {
                    self.pending_self = None;
                    let target = self.active_count().saturating_sub(leavers);
                    self.drive_to(ctx, target);
                }
                ChurnModel::UniformResample { min, max, rate } => {
                    let target = ctx
                        .rng()
                        .uniform_inclusive_u64(u64::from(min), u64::from(max))
                        as u32;
                    self.drive_to(ctx, target.min(self.cps.len() as u32));
                    let wait = ctx.rng().exponential(rate);
                    let me = ctx.me();
                    self.pending_self = Some(ctx.schedule_in(
                        SimDuration::from_secs_f64(wait),
                        me,
                        SimEvent::ResampleChurn,
                    ));
                }
                ChurnModel::FlashCrowd { .. } => self.flash_fire(ctx),
                ChurnModel::Diurnal {
                    period,
                    min,
                    max,
                    rate,
                } => {
                    let t = ctx.now().as_secs_f64();
                    let span = f64::from(max.saturating_sub(min));
                    let mean = f64::from(min) + span * ChurnModel::diurnal_phase(period, t);
                    let band = (span / 8.0).max(1.0);
                    let lo = (mean - band).max(f64::from(min)).round() as u64;
                    let hi = (mean + band).min(f64::from(max)).round() as u64;
                    let target = ctx.rng().uniform_inclusive_u64(lo, hi.max(lo)) as u32;
                    self.drive_to(ctx, target.min(self.cps.len() as u32));
                    let lambda = Self::diurnal_rate(rate, period, t);
                    let wait = ctx.rng().exponential(lambda);
                    let me = ctx.me();
                    self.pending_self = Some(ctx.schedule_in(
                        SimDuration::from_secs_f64(wait),
                        me,
                        SimEvent::ResampleChurn,
                    ));
                }
            },
            SimEvent::ChurnWave { index, join } => {
                let idx = index as usize;
                self.active[idx] = join;
                let event = if join {
                    SimEvent::Join
                } else {
                    SimEvent::Leave
                };
                if self.notify_delay > SimDuration::ZERO {
                    ctx.schedule_in(self.notify_delay, self.cps[idx], event);
                } else {
                    ctx.send_now(self.cps[idx], event);
                }
                self.record_population(ctx.now());
                self.wave.retain(|&h| ctx.is_pending(h));
            }
            SimEvent::SetChurn(model) => {
                if let Some(handle) = self.pending_self.take() {
                    ctx.cancel(handle);
                }
                // Cancel wave steps that have not fired yet; flags and the
                // population series only move at fire time, so there is
                // nothing to unwind beyond the events themselves.
                for handle in std::mem::take(&mut self.wave) {
                    ctx.cancel(handle);
                }
                self.model = model;
                self.switches += 1;
                if let Some(t) = self.trace.as_deref_mut() {
                    t.switch(ctx.now().as_nanos(), self.switches);
                }
                self.arm(ctx);
            }
            other => {
                debug_assert!(false, "churn actor got unexpected event {other:?}");
            }
        }
    }
}
