//! Churn workloads: how the CP population evolves over a run.
//!
//! The paper's scenarios map onto these models:
//!
//! * §3 steady-state and Figures 2–3: [`ChurnModel::Static`] — `k` CPs
//!   present throughout.
//! * Figure 4: [`ChurnModel::BurstLeave`] — 18 of 20 CPs leave at once.
//! * Figure 5 / §5: [`ChurnModel::UniformResample`] — the active population
//!   is redrawn from `U{min..max}` at exponentially distributed intervals
//!   ("this choice is repeated every X time-units, where X is exponentially
//!   distributed with rate 0.05").

use crate::event::SimEvent;
use presence_des::{Actor, ActorId, Context, SimDuration, SimTime};
use presence_stats::TimeSeries;
use serde::{Deserialize, Serialize};

/// A population workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ChurnModel {
    /// All initially active CPs stay for the whole run.
    Static,
    /// At time `at`, `leavers` CPs (the highest-indexed active ones) leave
    /// simultaneously — the Figure 4 workload with `leavers = 18`.
    BurstLeave {
        /// When the burst happens (seconds).
        at: f64,
        /// How many CPs leave.
        leavers: u32,
    },
    /// Redraw the target population uniformly from `[min, max]` at
    /// exponentially distributed intervals with the given `rate` — the
    /// Figure 5 workload with `min = 1`, `max = 60`, `rate = 0.05`.
    UniformResample {
        /// Smallest population.
        min: u32,
        /// Largest population.
        max: u32,
        /// Rate of the exponential inter-resample time (1/mean).
        rate: f64,
    },
}

impl ChurnModel {
    /// The Figure 5 workload.
    #[must_use]
    pub fn paper_fig5() -> Self {
        ChurnModel::UniformResample {
            min: 1,
            max: 60,
            rate: 0.05,
        }
    }

    /// The Figure 4 workload (given 20 CPs initially active).
    #[must_use]
    pub fn paper_fig4() -> Self {
        // The paper shows the leave within the first half of the run; the
        // exact instant is immaterial as the CPs never recover regardless.
        ChurnModel::BurstLeave {
            at: 2_000.0,
            leavers: 18,
        }
    }
}

/// The actor that drives joins and leaves according to a [`ChurnModel`].
pub struct ChurnActor {
    model: ChurnModel,
    cps: Vec<ActorId>,
    active: Vec<bool>,
    /// `(t, population)` step series — Figure 5's second curve.
    population: TimeSeries,
    /// How far to stagger the initial joins (avoids the artificial
    /// lock-step of all CPs starting at exactly t = 0).
    join_stagger: SimDuration,
    initially_active: u32,
}

impl ChurnActor {
    /// Creates the churn driver for `cps`, of which the first
    /// `initially_active` join at start (staggered uniformly over
    /// `join_stagger`). `horizon` is the configured run length (seconds),
    /// used to pre-size the population series for the expected number of
    /// resamples.
    ///
    /// # Panics
    ///
    /// Panics if `initially_active` exceeds the CP pool.
    #[must_use]
    pub fn new(
        model: ChurnModel,
        cps: Vec<ActorId>,
        initially_active: u32,
        join_stagger: SimDuration,
        horizon: f64,
    ) -> Self {
        assert!(
            (initially_active as usize) <= cps.len(),
            "more initially active CPs than the pool holds"
        );
        let active = vec![false; cps.len()];
        // One sample at start plus one per resample; 1.5× headroom keeps
        // an unlucky exponential draw sequence from forcing a regrow.
        let samples_hint = match model {
            ChurnModel::Static => 1,
            ChurnModel::BurstLeave { .. } => 2,
            ChurnModel::UniformResample { rate, .. } => {
                (horizon * rate * 1.5).min(4e6) as usize + 2
            }
        };
        Self {
            model,
            cps,
            active,
            population: TimeSeries::with_capacity(samples_hint),
            join_stagger,
            initially_active,
        }
    }

    /// The `(t, population)` series recorded so far.
    #[must_use]
    pub fn population_series(&self) -> &TimeSeries {
        &self.population
    }

    fn active_count(&self) -> u32 {
        self.active.iter().filter(|&&a| a).count() as u32
    }

    fn record_population(&mut self, now: SimTime) {
        self.population
            .push(now.as_secs_f64(), f64::from(self.active_count()));
    }

    /// Moves the active population to `target` by joining inactive CPs (in
    /// index order) or leaving active ones (highest index first — matching
    /// the "18 of 20 leave, CPs 1–2 stay" reading of Figure 4).
    fn drive_to(&mut self, ctx: &mut Context<'_, SimEvent>, target: u32) {
        let mut current = self.active_count();
        while current < target {
            let Some(idx) = self.active.iter().position(|&a| !a) else {
                break;
            };
            self.active[idx] = true;
            ctx.send_now(self.cps[idx], SimEvent::Join);
            current += 1;
        }
        while current > target {
            let Some(idx) = self.active.iter().rposition(|&a| a) else {
                break;
            };
            self.active[idx] = false;
            ctx.send_now(self.cps[idx], SimEvent::Leave);
            current -= 1;
        }
        self.record_population(ctx.now());
    }
}

impl Actor<SimEvent> for ChurnActor {
    fn on_start(&mut self, ctx: &mut Context<'_, SimEvent>) {
        // Stagger the initial joins.
        let n = self.initially_active;
        for i in 0..n {
            let idx = i as usize;
            let offset = if self.join_stagger == SimDuration::ZERO {
                SimDuration::ZERO
            } else {
                SimDuration::from_nanos(
                    ctx.rng().uniform(0.0, self.join_stagger.as_nanos() as f64) as u64
                )
            };
            self.active[idx] = true;
            ctx.schedule_in(offset, self.cps[idx], SimEvent::Join);
        }
        self.record_population(ctx.now());

        match self.model {
            ChurnModel::Static => {}
            ChurnModel::BurstLeave { at, .. } => {
                let me = ctx.me();
                ctx.schedule_at(SimTime::from_secs_f64(at), me, SimEvent::ResampleChurn);
            }
            ChurnModel::UniformResample { rate, .. } => {
                let wait = ctx.rng().exponential(rate);
                let me = ctx.me();
                ctx.schedule_in(
                    SimDuration::from_secs_f64(wait),
                    me,
                    SimEvent::ResampleChurn,
                );
            }
        }
    }

    fn on_event(&mut self, ctx: &mut Context<'_, SimEvent>, event: SimEvent) {
        match event {
            SimEvent::ResampleChurn => match self.model {
                ChurnModel::Static => {}
                ChurnModel::BurstLeave { leavers, .. } => {
                    let target = self.active_count().saturating_sub(leavers);
                    self.drive_to(ctx, target);
                }
                ChurnModel::UniformResample { min, max, rate } => {
                    let target = ctx
                        .rng()
                        .uniform_inclusive_u64(u64::from(min), u64::from(max))
                        as u32;
                    self.drive_to(ctx, target.min(self.cps.len() as u32));
                    let wait = ctx.rng().exponential(rate);
                    let me = ctx.me();
                    ctx.schedule_in(
                        SimDuration::from_secs_f64(wait),
                        me,
                        SimEvent::ResampleChurn,
                    );
                }
            },
            other => {
                debug_assert!(false, "churn actor got unexpected event {other:?}");
            }
        }
    }
}
