//! Independent replications across seeds.
//!
//! Single simulation runs — the paper's and ours — are one draw from a
//! random process; SAPP's outcomes in particular are seed-sensitive (which
//! frozen unfair configuration a run lands in). This module runs the same
//! scenario under several seeds and reports Student-t confidence intervals
//! over the replication means, the standard methodology the paper's
//! batch-means machinery approximates within a single long run.
//!
//! Replications are independent by construction (each builds its own
//! `Simulation` from its own seed), so [`replicate`] fans them out across
//! a [`crate::parallel`] worker pool — `PRESENCE_JOBS` workers, or the
//! `--jobs` flag via [`replicate_with_jobs`] — and merges the per-seed
//! points back **in seed order** before folding the summary statistics.
//! The resulting [`ReplicationSummary`] is bit-identical to a serial run
//! at any worker count.

use crate::parallel::{job_count, run_indexed};
use crate::{Scenario, ScenarioConfig, ScenarioResult};
use presence_stats::{ConfidenceInterval, Welford};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Per-seed observations retained by a replication study.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReplicationPoint {
    /// Seed of this replication.
    pub seed: u64,
    /// Mean device load.
    pub load_mean: f64,
    /// Jain fairness index.
    pub fairness_jain: f64,
    /// Max/min per-CP frequency ratio.
    pub frequency_spread: f64,
}

/// Cross-seed summary with confidence intervals.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplicationSummary {
    /// One point per seed.
    pub points: Vec<ReplicationPoint>,
    /// CI over the per-seed load means.
    pub load: ConfidenceInterval,
    /// CI over the per-seed fairness indices.
    pub fairness: ConfidenceInterval,
    /// CI over the per-seed frequency spreads.
    pub spread: ConfidenceInterval,
}

impl fmt::Display for ReplicationSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "replications: n = {}", self.points.len())?;
        writeln!(
            f,
            "  device load  {:.2} ± {:.2} probes/s",
            self.load.mean, self.load.half_width
        )?;
        writeln!(
            f,
            "  fairness     {:.3} ± {:.3}",
            self.fairness.mean, self.fairness.half_width
        )?;
        writeln!(
            f,
            "  freq spread  {:.2} ± {:.2}×",
            self.spread.mean, self.spread.half_width
        )
    }
}

/// Runs one replication: `base` with its seed overridden. Borrows the base
/// configuration — the only per-seed copy is the `Copy`-cheap config value
/// handed to [`Scenario::build`]; nothing heap-allocated is cloned per
/// seed.
fn run_one(base: &ScenarioConfig, seed: u64) -> ReplicationPoint {
    let mut cfg = *base;
    cfg.seed = seed;
    let mut scenario = Scenario::build(cfg);
    scenario.run();
    let result: ScenarioResult = scenario.collect();
    ReplicationPoint {
        seed,
        load_mean: result.load_mean,
        fairness_jain: result.fairness_jain,
        frequency_spread: result.frequency_spread(),
    }
}

/// Runs `base` under each seed (overriding `base.seed`) and summarises,
/// using [`job_count`] workers (`PRESENCE_JOBS`, default: machine
/// parallelism).
///
/// # Panics
///
/// Panics if `seeds` is empty or `base` is invalid.
#[must_use]
pub fn replicate(base: &ScenarioConfig, seeds: &[u64], level: f64) -> ReplicationSummary {
    replicate_with_jobs(base, seeds, level, job_count())
}

/// [`replicate`] with an explicit worker count (the binaries' `--jobs N`).
///
/// The summary is **bit-identical for every `jobs` value**: replications
/// are independent simulations, and the per-seed points are merged back in
/// seed order before the (order-sensitive) statistics are folded.
///
/// # Panics
///
/// Panics if `seeds` is empty, `jobs` is zero, or `base` is invalid — the
/// configuration is validated once here, not once per seed inside the
/// worker pool.
#[must_use]
pub fn replicate_with_jobs(
    base: &ScenarioConfig,
    seeds: &[u64],
    level: f64,
    jobs: usize,
) -> ReplicationSummary {
    assert!(!seeds.is_empty(), "need at least one seed");
    base.validate();
    let points = run_indexed(seeds.len(), jobs, |i| run_one(base, seeds[i]));
    let mut load = Welford::new();
    let mut fairness = Welford::new();
    let mut spread = Welford::new();
    for point in &points {
        load.push(point.load_mean);
        fairness.push(point.fairness_jain);
        spread.push(point.frequency_spread);
    }
    let ci = |w: &Welford| {
        ConfidenceInterval::from_stats(w.mean(), w.sample_std_dev(), w.count(), level)
    };
    ReplicationSummary {
        load: ci(&load),
        fairness: ci(&fairness),
        spread: ci(&spread),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Protocol;

    #[test]
    fn dcpp_replications_are_tight() {
        let base = ScenarioConfig::paper_defaults(Protocol::dcpp_paper(), 10, 200.0, 0);
        let summary = replicate(&base, &[1, 2, 3, 4, 5], 0.95);
        assert_eq!(summary.points.len(), 5);
        // DCPP is deterministic-by-design: seed-to-seed variation is tiny.
        assert!(
            summary.load.half_width < 0.5,
            "DCPP load CI ± {}",
            summary.load.half_width
        );
        assert!(summary.fairness.mean > 0.99);
    }

    #[test]
    fn sapp_replications_show_spread_above_one() {
        let base = ScenarioConfig::paper_defaults(Protocol::sapp_paper(), 5, 3_000.0, 0);
        let summary = replicate(&base, &[1, 3, 7], 0.95);
        assert!(summary.spread.mean >= 1.0);
        assert!(summary.load.mean > 3.0 && summary.load.mean < 25.0);
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn empty_seeds_rejected() {
        let base = ScenarioConfig::paper_defaults(Protocol::dcpp_paper(), 2, 10.0, 0);
        let _ = replicate(&base, &[], 0.95);
    }

    #[test]
    #[should_panic(expected = "at least one CP")]
    fn invalid_base_rejected_before_any_worker_runs() {
        let mut base = ScenarioConfig::paper_defaults(Protocol::dcpp_paper(), 2, 10.0, 0);
        base.cp_pool = 0;
        // Validation is hoisted out of the per-seed loop: this panics on
        // the calling thread, not inside a worker.
        let _ = replicate_with_jobs(&base, &[1, 2, 3], 0.95, 4);
    }

    #[test]
    fn worker_count_does_not_change_the_summary() {
        let base = ScenarioConfig::paper_defaults(Protocol::dcpp_paper(), 4, 60.0, 0);
        let seeds = [5, 6, 7, 8, 9];
        let serial = replicate_with_jobs(&base, &seeds, 0.95, 1);
        let parallel = replicate_with_jobs(&base, &seeds, 0.95, 3);
        let json = |s: &ReplicationSummary| serde_json::to_string(s).expect("serialises");
        assert_eq!(
            json(&serial),
            json(&parallel),
            "jobs must not perturb results"
        );
        assert_eq!(
            parallel.points.iter().map(|p| p.seed).collect::<Vec<_>>(),
            seeds,
            "points must come back in seed order"
        );
    }

    #[test]
    fn summary_renders() {
        let base = ScenarioConfig::paper_defaults(Protocol::dcpp_paper(), 3, 50.0, 0);
        let summary = replicate(&base, &[1, 2], 0.95);
        let text = summary.to_string();
        assert!(text.contains("replications: n = 2"));
    }
}
