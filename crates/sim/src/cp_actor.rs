//! The control-point actor: wraps a [`Prober`] state machine, executes its
//! actions against the simulated network and timer service, records the
//! per-CP delay/frequency series behind Figures 2–4, and (optionally) runs
//! the overlay dissemination of leave notices.

use crate::event::{Addr, SimEvent};
use crate::recorder::RecorderMode;
use crate::trace::CpTrace;
use presence_core::{
    CpAction, CpId, CpStats, DcppConfig, DcppCp, Disseminator, FixedRateCp, LeaveNotice,
    NoticeDisposition, OverlayView, ProbeCycleConfig, Prober, Reply, ReplyBody, SappConfig, SappCp,
    TimerToken, WireMessage,
};
use presence_des::{Actor, ActorId, Context, EventHandle, SimDuration, SimTime, TimerSlots};
use presence_stats::{TimeSeries, Welford};

/// Factory for the prober machine a CP (re-)creates each time it joins.
#[derive(Debug, Clone)]
pub enum ProberFactory {
    /// Build SAPP CPs with this configuration.
    Sapp(SappConfig),
    /// Build DCPP CPs with this configuration.
    Dcpp(DcppConfig),
    /// Build fixed-rate baseline CPs with this cycle config and period.
    FixedRate(ProbeCycleConfig, SimDuration),
}

impl ProberFactory {
    fn build(&self, id: CpId) -> Box<dyn Prober + Send> {
        match self {
            ProberFactory::Sapp(cfg) => Box::new(SappCp::new(id, *cfg)),
            ProberFactory::Dcpp(cfg) => Box::new(DcppCp::new(id, *cfg)),
            ProberFactory::FixedRate(cycle, period) => {
                Box::new(FixedRateCp::new(id, *cycle, *period))
            }
        }
    }
}

/// Everything a finished run wants to know about one CP.
#[derive(Debug, Clone)]
pub struct CpRecord {
    /// The CP's identity.
    pub id: CpId,
    /// `(t, 1/δ)` samples — one per completed probe cycle (the exact series
    /// plotted in Figures 2–4). Empty under
    /// [`RecorderMode::Streaming`], where only `freq_stats` accumulates.
    pub frequency_series: TimeSeries,
    /// Welford accumulator over the per-cycle delay δ (seconds).
    pub delay_stats: Welford,
    /// Welford accumulator over the `1/δ` frequency samples — the
    /// constant-memory companion of `frequency_series`, maintained in both
    /// recorder modes.
    pub freq_stats: Welford,
    /// Probe-cycle statistics accumulated over all sessions.
    pub stats: CpStats,
    /// When this CP declared the device absent, if it did.
    pub detected_absent_at: Option<SimTime>,
    /// Number of times this CP joined the network.
    pub joins: u64,
    /// Leave notices forwarded by this CP.
    pub notices_forwarded: u64,
}

/// The simulated control-point node.
pub struct CpActor {
    id: CpId,
    factory: ProberFactory,
    network: ActorId,
    device: presence_core::DeviceId,
    prober: Option<Box<dyn Prober + Send>>,
    /// Live protocol timers. A CP arms at most two at once (cycle timer +
    /// timeout), so the two inline slots make this allocation-free and
    /// hash-free on the steady-state path; a hypothetical third timer
    /// spills safely (ROADMAP hot path (c)).
    timers: TimerSlots<TimerToken>,
    /// A timer handle freed by a `CancelTimer` earlier in the current
    /// action batch, kept alive so a following `StartTimer` can rearm it
    /// in place ([`Context::rearm_timer`]) instead of paying a queue
    /// remove + insert. Flushed (actually cancelled) at the end of the
    /// batch if nothing reuses it.
    rearm_slot: Option<EventHandle>,
    /// Scratch buffer for prober action batches, reused across events so
    /// the steady-state probe loop allocates nothing (ROADMAP open item
    /// (b)). Taken out of `self` while a batch executes, then put back
    /// with its capacity intact.
    scratch: Vec<CpAction>,
    /// Dissemination state (only consulted when `disseminate` is set).
    disseminate: bool,
    overlay: OverlayView,
    gossip: Disseminator,
    record: CpRecord,
    active: bool,
    /// Recorder granularity; streaming skips the frequency series.
    mode: RecorderMode,
    /// Lifecycle trace buffer; `None` (a single predictable branch per
    /// emission point) unless [`CpActor::set_trace`] armed it.
    trace: Option<Box<CpTrace>>,
}

impl CpActor {
    /// Creates an (initially inactive) CP actor. Send it [`SimEvent::Join`]
    /// to bring it online. `samples_hint` pre-sizes the per-cycle frequency
    /// series (one sample per completed probe cycle) so long-horizon runs
    /// don't regrow it.
    #[must_use]
    pub fn new(
        id: CpId,
        factory: ProberFactory,
        network: ActorId,
        device: presence_core::DeviceId,
        disseminate: bool,
        samples_hint: usize,
    ) -> Self {
        Self {
            id,
            factory,
            network,
            device,
            prober: None,
            timers: TimerSlots::new(),
            rearm_slot: None,
            scratch: Vec::new(),
            disseminate,
            overlay: OverlayView::new(id),
            gossip: Disseminator::new(id),
            record: CpRecord {
                id,
                frequency_series: TimeSeries::with_capacity(samples_hint),
                delay_stats: Welford::new(),
                freq_stats: Welford::new(),
                stats: CpStats::default(),
                detected_absent_at: None,
                joins: 0,
                notices_forwarded: 0,
            },
            active: false,
            mode: RecorderMode::Full,
            trace: None,
        }
    }

    /// Arms lifecycle tracing up to `until_ns` (virtual nanoseconds).
    pub fn set_trace(&mut self, until_ns: u64) {
        self.trace = Some(Box::new(CpTrace::new(until_ns)));
    }

    /// Takes the trace buffer accumulated since [`CpActor::set_trace`].
    pub fn take_trace(&mut self) -> Option<Box<CpTrace>> {
        self.trace.take()
    }

    /// Switches the recorder granularity. Call before the first event:
    /// streaming mode drops the pre-sized frequency-series storage and
    /// keeps only the Welford accumulators.
    pub fn set_recorder_mode(&mut self, mode: RecorderMode) {
        self.mode = mode;
        if mode == RecorderMode::Streaming {
            self.record.frequency_series = TimeSeries::new();
        }
    }

    /// The CP's identity.
    #[must_use]
    pub fn id(&self) -> CpId {
        self.id
    }

    /// Whether the CP is currently probing.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// A snapshot of the per-CP record, including the statistics of the
    /// session currently in progress (if any).
    #[must_use]
    pub fn record_snapshot(&self) -> CpRecord {
        let mut rec = self.record.clone();
        if let Some(p) = &self.prober {
            let s = p.stats();
            rec.stats.probes_sent += s.probes_sent;
            rec.stats.cycles_started += s.cycles_started;
            rec.stats.cycles_succeeded += s.cycles_succeeded;
            rec.stats.cycles_failed += s.cycles_failed;
            rec.stats.stale_replies += s.stale_replies;
            rec.stats.retransmissions += s.retransmissions;
        }
        rec
    }

    /// The overlay view (peers learned from replies).
    #[must_use]
    pub fn overlay(&self) -> &OverlayView {
        &self.overlay
    }

    fn accumulate_session_stats(&mut self) {
        if let Some(p) = &self.prober {
            let s = p.stats();
            self.record.stats.probes_sent += s.probes_sent;
            self.record.stats.cycles_started += s.cycles_started;
            self.record.stats.cycles_succeeded += s.cycles_succeeded;
            self.record.stats.cycles_failed += s.cycles_failed;
            self.record.stats.stale_replies += s.stale_replies;
            self.record.stats.retransmissions += s.retransmissions;
        }
    }

    /// Executes one prober action batch, draining `actions` in place (the
    /// caller hands back the scratch buffer afterwards so its capacity is
    /// reused by the next event).
    fn execute(&mut self, ctx: &mut Context<'_, SimEvent>, actions: &mut Vec<CpAction>) {
        debug_assert!(
            self.rearm_slot.is_none(),
            "rearm slot leaked across batches"
        );
        for action in actions.drain(..) {
            match action {
                CpAction::SendProbe(probe) => {
                    if let Some(t) = self.trace.as_deref_mut() {
                        t.probe_send(ctx.now().as_nanos(), probe.cp, probe.seq);
                    }
                    let device = self.device;
                    ctx.send_now(
                        self.network,
                        SimEvent::Send {
                            to: Addr::Device(device),
                            msg: WireMessage::Probe(probe),
                        },
                    );
                }
                CpAction::StartTimer { token, after } => {
                    // Cancel-then-rearm fast path: when this batch just
                    // freed a timer, move its queued event in place and
                    // rewrite the payload with the fresh token. Rearming
                    // mints the same sequence number a fresh schedule
                    // would, so the trajectory is identical either way.
                    let rearmed = self
                        .rearm_slot
                        .take()
                        .and_then(|h| ctx.rearm_timer(h, after, SimEvent::Timer(token)));
                    let handle = match rearmed {
                        Some(handle) => handle,
                        None => {
                            let me = ctx.me();
                            ctx.schedule_in(after, me, SimEvent::Timer(token))
                        }
                    };
                    self.timers.insert(token, handle);
                }
                CpAction::CancelTimer { token } => {
                    if let Some(handle) = self.timers.remove(token) {
                        // Defer: a StartTimer later in this batch usually
                        // rearms the same queue slot in place.
                        if let Some(stale) = self.rearm_slot.replace(handle) {
                            ctx.cancel(stale);
                        }
                    }
                }
                CpAction::DeviceAbsent { at, .. } => {
                    if let Some(t) = self.trace.as_deref_mut() {
                        t.absent(at.as_nanos());
                    }
                    if self.record.detected_absent_at.is_none() {
                        self.record.detected_absent_at = Some(at);
                    }
                    if self.disseminate {
                        let device = self.device;
                        let notices = self.gossip.on_local_detection(device, &self.overlay);
                        self.record.notices_forwarded += notices.len() as u64;
                        for (peer, notice) in notices {
                            ctx.send_now(
                                self.network,
                                SimEvent::Send {
                                    to: Addr::Cp(peer),
                                    msg: WireMessage::LeaveNotice(notice),
                                },
                            );
                        }
                    }
                }
            }
        }
        // No StartTimer claimed the freed slot: finish the deferred cancel.
        if let Some(stale) = self.rearm_slot.take() {
            ctx.cancel(stale);
        }
    }

    fn sample_delay(&mut self, now: SimTime) {
        if let Some(p) = &self.prober {
            if let Some(delay) = p.current_delay() {
                let d = delay.as_secs_f64();
                if self.mode.retains_series() {
                    self.record
                        .frequency_series
                        .push(now.as_secs_f64(), 1.0 / d);
                }
                self.record.freq_stats.push(1.0 / d);
                self.record.delay_stats.push(d);
            }
        }
    }

    fn on_reply(&mut self, ctx: &mut Context<'_, SimEvent>, reply: Reply) {
        let Some(prober) = self.prober.as_mut() else {
            return;
        };
        if let Some(t) = self.trace.as_deref_mut() {
            t.reply_recv(ctx.now().as_nanos(), reply.probe.cp, reply.probe.seq);
        }
        if let ReplyBody::Sapp { last_probers, .. } = reply.body {
            self.overlay.observe(last_probers);
        }
        let mut out = std::mem::take(&mut self.scratch);
        let before = prober.stats().cycles_succeeded;
        prober.on_reply(ctx.now(), &reply, &mut out);
        let completed = prober.stats().cycles_succeeded > before;
        self.execute(ctx, &mut out);
        self.scratch = out;
        if completed {
            self.sample_delay(ctx.now());
        }
    }

    fn on_notice(&mut self, ctx: &mut Context<'_, SimEvent>, notice: LeaveNotice) {
        let disposition = self.gossip.on_notice(notice, &self.overlay);
        if let NoticeDisposition::Fresh { forward_to } = disposition {
            if let Some(prober) = self.prober.as_mut() {
                let mut out = std::mem::take(&mut self.scratch);
                prober.on_leave_notice(ctx.now(), &mut out);
                self.execute(ctx, &mut out);
                self.scratch = out;
            }
            if self.disseminate {
                let restamped = LeaveNotice {
                    device: notice.device,
                    reporter: self.id,
                };
                self.record.notices_forwarded += forward_to.len() as u64;
                for peer in forward_to {
                    ctx.send_now(
                        self.network,
                        SimEvent::Send {
                            to: Addr::Cp(peer),
                            msg: WireMessage::LeaveNotice(restamped),
                        },
                    );
                }
            }
        }
    }

    fn leave(&mut self, ctx: &mut Context<'_, SimEvent>) {
        self.accumulate_session_stats();
        self.prober = None;
        self.active = false;
        // Cancel order is slot order (cancels commute; no trajectory
        // impact — see `TimerSlots::drain`).
        self.timers.drain(|_, handle| {
            ctx.cancel(handle);
        });
    }
}

impl Actor<SimEvent> for CpActor {
    fn on_event(&mut self, ctx: &mut Context<'_, SimEvent>, event: SimEvent) {
        match event {
            SimEvent::Join => {
                if self.active {
                    return;
                }
                self.active = true;
                self.record.joins += 1;
                let mut prober = self.factory.build(self.id);
                let mut out = std::mem::take(&mut self.scratch);
                prober.start(ctx.now(), &mut out);
                self.prober = Some(prober);
                self.execute(ctx, &mut out);
                self.scratch = out;
                // SAPP and fixed-rate CPs know their delay from the start;
                // record it so the frequency series covers the whole session.
                self.sample_delay(ctx.now());
            }
            SimEvent::Leave => {
                if self.active {
                    self.leave(ctx);
                }
            }
            SimEvent::Timer(token) => {
                // A timer for a past session may fire after a leave/join;
                // only current-session timers are in the slots.
                if self.timers.remove(token).is_none() {
                    return;
                }
                let Some(prober) = self.prober.as_mut() else {
                    return;
                };
                let mut out = std::mem::take(&mut self.scratch);
                prober.on_timer(ctx.now(), token, &mut out);
                self.execute(ctx, &mut out);
                self.scratch = out;
            }
            SimEvent::Deliver(WireMessage::Reply(reply)) => {
                self.on_reply(ctx, reply);
            }
            SimEvent::Deliver(WireMessage::Bye(_)) => {
                if let Some(prober) = self.prober.as_mut() {
                    let mut out = std::mem::take(&mut self.scratch);
                    prober.on_bye(ctx.now(), &mut out);
                    self.execute(ctx, &mut out);
                    self.scratch = out;
                }
            }
            SimEvent::Deliver(WireMessage::LeaveNotice(notice)) => {
                self.on_notice(ctx, notice);
            }
            SimEvent::Deliver(WireMessage::Probe(_)) => {
                // CPs are not probed; ignore.
            }
            other => {
                debug_assert!(false, "cp actor got unexpected event {other:?}");
            }
        }
    }
}
