//! Per-actor trace capture behind the `presence-trace` layer.
//!
//! Every actor that participates in a probe lifecycle owns an
//! `Option<Box<…Trace>>` buffer, `None` by default: the steady-state loop
//! pays exactly one predictable branch per emission point and allocates
//! nothing while tracing is off (the PR 5 alloc gate runs with tracing
//! disabled and stays green). [`crate::Scenario::enable_trace`] installs
//! the buffers; `collect_trace` drains them into a
//! [`presence_trace::TraceModel`] in global actor-id order, which is what
//! makes the assembled model — and the serialised Chrome JSON —
//! bit-identical across region counts (per-actor trajectories are
//! region-invariant, and each buffer is filled by exactly one actor).
//!
//! All buffers share an `until_ns` horizon so a `--trace-until` cap bounds
//! trace size uniformly: an event past the horizon is dropped by every
//! recorder, never by just some of them (no orphan flow steps).

use crate::metrics::ScenarioResult;
use presence_core::CpId;
use presence_des::{BarrierMark, EngineEvent};
use presence_trace::{FlowPhase, PointKind, TraceModel};
use std::collections::BTreeSet;

/// Nanoseconds per fabric-counter sampling bucket: the network recorders
/// keep at most one sample per simulated millisecond so counter tracks
/// stay bounded on message-heavy runs.
const SAMPLE_BUCKET_NS: u64 = 1_000_000;

/// The flow id stitching one probe cycle across CP → network → device →
/// network → CP: the CP's identity in the high bits, the per-session
/// cycle sequence number in the low 40. Both endpoints of the lifecycle
/// can compute it locally (the probe carries `cp` and `seq` on the wire).
#[must_use]
pub fn flow_id(cp: CpId, seq: u64) -> u64 {
    (u64::from(cp.0) << 40) | (seq & 0xFF_FFFF_FFFF)
}

/// CP-side lifecycle recorder: probe sends, reply receipts, absence
/// verdicts.
#[derive(Debug)]
pub struct CpTrace {
    until_ns: u64,
    /// `(time_ns, flow id, phase)` in emission (= time) order.
    pub flows: Vec<(u64, u64, FlowPhase)>,
    /// Absence-verdict instants (ns).
    pub absents: Vec<u64>,
    /// Sequence numbers whose flow start was recorded. A retransmission
    /// reuses its cycle's `seq`, and a re-joined CP's fresh prober restarts
    /// the sequence — both would duplicate a flow start, which the trace
    /// format forbids; only the first send per seq opens the flow.
    started: BTreeSet<u64>,
    /// Sequence numbers whose flow finish was recorded (a stale reply must
    /// not finish a flow twice).
    done: BTreeSet<u64>,
}

impl CpTrace {
    pub(crate) fn new(until_ns: u64) -> Self {
        Self {
            until_ns,
            flows: Vec::new(),
            absents: Vec::new(),
            started: BTreeSet::new(),
            done: BTreeSet::new(),
        }
    }

    pub(crate) fn probe_send(&mut self, time_ns: u64, cp: CpId, seq: u64) {
        if time_ns <= self.until_ns && self.started.insert(seq) {
            self.flows
                .push((time_ns, flow_id(cp, seq), FlowPhase::ProbeSend));
        }
    }

    pub(crate) fn reply_recv(&mut self, time_ns: u64, cp: CpId, seq: u64) {
        if time_ns <= self.until_ns && self.started.contains(&seq) && self.done.insert(seq) {
            self.flows
                .push((time_ns, flow_id(cp, seq), FlowPhase::ReplyRecv));
        }
    }

    pub(crate) fn absent(&mut self, time_ns: u64) {
        if time_ns <= self.until_ns {
            self.absents.push(time_ns);
        }
    }
}

/// Device-side lifecycle recorder: probe receipts and (scheduled) reply
/// departures. No dedup is needed — repeated processing of a retransmitted
/// probe records extra flow *steps*, which the format allows.
#[derive(Debug)]
pub struct DeviceTrace {
    until_ns: u64,
    /// `(time_ns, flow id, phase)`; `ReplySend` entries are pushed out of
    /// time order (the departure lies one processing delay in the future),
    /// so the collector sorts this buffer once before building the model.
    pub flows: Vec<(u64, u64, FlowPhase)>,
}

impl DeviceTrace {
    pub(crate) fn new(until_ns: u64) -> Self {
        Self {
            until_ns,
            flows: Vec::new(),
        }
    }

    pub(crate) fn probe(&mut self, recv_ns: u64, send_ns: u64, cp: CpId, seq: u64) {
        let id = flow_id(cp, seq);
        if recv_ns <= self.until_ns {
            self.flows.push((recv_ns, id, FlowPhase::ProbeRecv));
        }
        if send_ns <= self.until_ns {
            self.flows.push((send_ns, id, FlowPhase::ReplySend));
        }
    }

    pub(crate) fn sorted_flows(mut self) -> Vec<(u64, u64, FlowPhase)> {
        self.flows
            .sort_by_key(|&(t, id, phase)| (t, id, matches!(phase, FlowPhase::ReplySend)));
        self.flows
    }
}

/// Network-plane recorder: in-flight and relay counter samples, at most
/// one per [`SAMPLE_BUCKET_NS`] of simulated time.
#[derive(Debug)]
pub struct NetTrace {
    until_ns: u64,
    last_bucket: Option<u64>,
    /// `(time_ns, fabric in-flight count)`.
    pub in_flight: Vec<(u64, f64)>,
    /// `(time_ns, cumulative relays forwarded)`.
    pub relays: Vec<(u64, f64)>,
}

impl NetTrace {
    pub(crate) fn new(until_ns: u64) -> Self {
        Self {
            until_ns,
            last_bucket: None,
            in_flight: Vec::new(),
            relays: Vec::new(),
        }
    }

    /// Whether a sample should be taken at `time_ns` (claims the bucket).
    pub(crate) fn wants_sample(&mut self, time_ns: u64) -> bool {
        if time_ns > self.until_ns {
            return false;
        }
        let bucket = time_ns / SAMPLE_BUCKET_NS;
        if self.last_bucket == Some(bucket) {
            return false;
        }
        self.last_bucket = Some(bucket);
        true
    }

    #[allow(clippy::cast_precision_loss)]
    pub(crate) fn sample(&mut self, time_ns: u64, in_flight: usize, relays: u64) {
        self.in_flight.push((time_ns, in_flight as f64));
        self.relays.push((time_ns, relays as f64));
    }
}

/// Churn-driver recorder: regime-switch instants.
#[derive(Debug)]
pub struct ChurnTrace {
    until_ns: u64,
    /// `(time_ns, switch ordinal)`.
    pub switches: Vec<(u64, u64)>,
}

impl ChurnTrace {
    pub(crate) fn new(until_ns: u64) -> Self {
        Self {
            until_ns,
            switches: Vec::new(),
        }
    }

    pub(crate) fn switch(&mut self, time_ns: u64, ordinal: u64) {
        if time_ns <= self.until_ns {
            self.switches.push((time_ns, ordinal));
        }
    }
}

/// Everything a scenario drains out of its actors and engine after a
/// traced run, keyed by global actor index so track assembly is identical
/// at every region count.
pub(crate) struct TraceCapture {
    pub(crate) until_ns: u64,
    /// `(actor index, buffer)` per network plane, in plane order.
    pub(crate) nets: Vec<(usize, Option<Box<NetTrace>>)>,
    pub(crate) device: (usize, Option<Box<DeviceTrace>>),
    /// `(actor index, buffer)` per CP, in `CpId` order.
    pub(crate) cps: Vec<(usize, Option<Box<CpTrace>>)>,
    pub(crate) churn: (usize, Option<Box<ChurnTrace>>),
    pub(crate) engine: Vec<EngineEvent>,
    pub(crate) barriers: Vec<BarrierMark>,
}

/// Seconds → virtual nanoseconds, for series recorded in float seconds.
#[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
fn secs_ns(t: f64) -> u64 {
    (t * 1e9).round().max(0.0) as u64
}

impl TraceCapture {
    /// Assembles the final [`TraceModel`]: one track per actor, lifecycle
    /// points from the live buffers, counter tracks synthesised from the
    /// collected result's series (which are region-invariant by
    /// construction), and the engine/barrier streams capped at the trace
    /// horizon.
    pub(crate) fn into_model(self, result: &ScenarioResult) -> TraceModel {
        let cap = self.until_ns;
        let mut model = TraceModel::default();
        for (p, &(actor, _)) in self.nets.iter().enumerate() {
            model.add_track(format!("net{p}"), Some(actor));
        }
        let device_track = model.add_track("device", Some(self.device.0));
        let mut cp_tracks = Vec::with_capacity(self.cps.len());
        for (i, &(actor, _)) in self.cps.iter().enumerate() {
            cp_tracks.push(model.add_track(format!("cp{i}"), Some(actor)));
        }
        let churn_track = model.add_track("churn", Some(self.churn.0));

        if let Some(dev) = self.device.1 {
            for (t, id, phase) in dev.sorted_flows() {
                model.push_point(t, device_track, PointKind::Flow { id, phase });
            }
        }
        for ((_, buf), &track) in self.cps.into_iter().zip(&cp_tracks) {
            let Some(buf) = buf else { continue };
            for &(t, id, phase) in &buf.flows {
                model.push_point(t, track, PointKind::Flow { id, phase });
            }
            for &t in &buf.absents {
                model.push_point(t, track, PointKind::Absent);
            }
        }
        if let Some(churn) = self.churn.1 {
            for &(t, switch) in &churn.switches {
                model.push_point(t, churn_track, PointKind::RegimeSwitch { switch });
            }
        }

        for (p, (_, buf)) in self.nets.into_iter().enumerate() {
            let Some(buf) = buf else { continue };
            if !buf.in_flight.is_empty() {
                model.add_counter(format!("net{p}.in_flight"), buf.in_flight);
            }
            if !buf.relays.is_empty() {
                model.add_counter(format!("net{p}.relays"), buf.relays);
            }
        }
        let capped = |series: &[(f64, f64)]| -> Vec<(u64, f64)> {
            series
                .iter()
                .map(|&(t, v)| (secs_ns(t), v))
                .filter(|&(t, _)| t <= cap)
                .collect()
        };
        let load = capped(&result.load_series);
        if !load.is_empty() {
            model.add_counter("device.load", load);
        }
        for (i, cp) in result.cps.iter().enumerate() {
            let freq = capped(&cp.frequency_series);
            if !freq.is_empty() {
                model.add_counter(format!("cp{i}.frequency"), freq);
            }
        }
        let population = capped(&result.population_series);
        if !population.is_empty() {
            model.add_counter("population", population);
        }

        model.engine = self
            .engine
            .into_iter()
            .filter(|e| e.time.as_nanos() <= cap)
            .collect();
        model.barriers = self
            .barriers
            .into_iter()
            .filter(|b| b.time.as_nanos() <= cap)
            .collect();
        model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_id_packs_cp_and_seq() {
        assert_eq!(flow_id(CpId(0), 0), 0);
        assert_eq!(flow_id(CpId(1), 0), 1 << 40);
        assert_eq!(flow_id(CpId(3), 7), (3 << 40) | 7);
        // Sequence numbers beyond 40 bits wrap into the cp-local space
        // instead of corrupting the cp bits.
        assert_eq!(flow_id(CpId(2), 1 << 41), 2 << 40);
    }

    #[test]
    fn cp_trace_dedups_restarts_and_stale_replies() {
        let mut t = CpTrace::new(u64::MAX);
        t.probe_send(10, CpId(0), 1);
        t.probe_send(20, CpId(0), 1); // retransmission: step elsewhere, no new start
        t.reply_recv(30, CpId(0), 1);
        t.reply_recv(40, CpId(0), 1); // stale duplicate reply
        t.reply_recv(50, CpId(0), 2); // reply for an unrecorded cycle
        assert_eq!(
            t.flows,
            vec![
                (10, flow_id(CpId(0), 1), FlowPhase::ProbeSend),
                (30, flow_id(CpId(0), 1), FlowPhase::ReplyRecv),
            ]
        );
    }

    #[test]
    fn until_cap_drops_late_events_everywhere() {
        let mut cp = CpTrace::new(100);
        cp.probe_send(101, CpId(0), 1);
        cp.absent(101);
        assert!(cp.flows.is_empty() && cp.absents.is_empty());
        let mut dev = DeviceTrace::new(100);
        dev.probe(99, 101, CpId(0), 1);
        assert_eq!(dev.flows.len(), 1, "recv kept, capped reply send dropped");
        let mut net = NetTrace::new(100);
        assert!(!net.wants_sample(101));
        let mut churn = ChurnTrace::new(100);
        churn.switch(101, 1);
        assert!(churn.switches.is_empty());
    }

    #[test]
    fn net_trace_buckets_samples_per_millisecond() {
        let mut net = NetTrace::new(u64::MAX);
        assert!(net.wants_sample(0));
        assert!(!net.wants_sample(999_999));
        assert!(net.wants_sample(1_000_000));
        net.sample(1_000_000, 3, 2);
        assert_eq!(net.in_flight, vec![(1_000_000, 3.0)]);
        assert_eq!(net.relays, vec![(1_000_000, 2.0)]);
    }
}
