//! Scenario configuration and construction.
//!
//! A [`ScenarioConfig`] is a complete, serialisable description of one
//! simulation run: protocol, population, network, churn, and seed.
//! [`Scenario::build`] wires the actors together; [`Scenario::run_for`]
//! executes and [`Scenario::collect`] extracts a [`ScenarioResult`].

use crate::actor_set::{PresenceActorSet, PresenceSim};
use crate::churn::{ChurnActor, ChurnModel};
use crate::cp_actor::{CpActor, ProberFactory};
use crate::device_actor::{DeviceActor, DeviceMachine, ProcessingModel};
use crate::event::{Addr, SimEvent};
use crate::metrics::{CpSummary, ScenarioResult};
use crate::network_actor::{NetworkActor, PlaneTopology};
use crate::recorder::RecorderMode;
use crate::region::{plan_partitioned, RegionPartition, RegionPlan};
use crate::trace::TraceCapture;
use presence_core::{
    AutoTuneConfig, AutoTuner, CpId, DcppConfig, DcppDevice, DeviceId, ProbeCycleConfig,
    SappConfig, SappDevice, SappDeviceConfig,
};
use presence_des::{
    ActorId, ProjectActor, RegionSim, SimDuration, SimTime, Simulation, WindowPolicy,
};
use presence_net::{
    BernoulliLoss, ConstantDelay, DelayModel, ExponentialDelay, Fabric, FlooredDelay,
    GilbertElliott, LossModel, NoLoss, ThreeMode, UniformDelay,
};
use presence_stats::jain_index;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Serialisable choice of one-way network delay model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DelayKind {
    /// Fixed delay (seconds).
    Constant(f64),
    /// Uniform over `[low, high]` seconds.
    Uniform(f64, f64),
    /// The paper's three-mode model with its default constants.
    ThreeModePaper,
    /// Exponential with the given mean, truncated at `cap` (seconds).
    Exponential {
        /// Mean one-way delay.
        mean: f64,
        /// Hard cap.
        cap: f64,
    },
}

impl DelayKind {
    pub(crate) fn build(self) -> Box<dyn DelayModel> {
        match self {
            DelayKind::Constant(s) => Box::new(ConstantDelay(SimDuration::from_secs_f64(s))),
            DelayKind::Uniform(lo, hi) => Box::new(UniformDelay::new(
                SimDuration::from_secs_f64(lo),
                SimDuration::from_secs_f64(hi),
            )),
            DelayKind::ThreeModePaper => Box::new(ThreeMode::paper_default()),
            DelayKind::Exponential { mean, cap } => {
                Box::new(ExponentialDelay::new(mean, SimDuration::from_secs_f64(cap)))
            }
        }
    }
}

/// Serialisable choice of loss model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LossKind {
    /// No loss (the paper's Figure 5 assumption).
    None,
    /// Independent loss with this probability.
    Bernoulli(f64),
    /// Bursty (Gilbert–Elliott) loss with this long-run average rate.
    Bursty(f64),
}

impl LossKind {
    pub(crate) fn build(self) -> Box<dyn LossModel> {
        match self {
            LossKind::None => Box::new(NoLoss),
            LossKind::Bernoulli(p) => Box::new(BernoulliLoss::new(p)),
            LossKind::Bursty(r) => Box::new(GilbertElliott::bursty(r)),
        }
    }
}

/// Which protocol the scenario runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Protocol {
    /// SAPP with the given CP and device configurations.
    Sapp {
        /// CP-side configuration.
        cp: SappConfig,
        /// Device-side configuration.
        device: SappDeviceConfig,
    },
    /// DCPP with the given (shared) configuration.
    Dcpp {
        /// Protocol configuration.
        cfg: DcppConfig,
    },
    /// The naive fixed-rate baseline.
    FixedRate {
        /// Probe-cycle timing.
        cycle: ProbeCycleConfig,
        /// Fixed inter-cycle period (seconds).
        period: f64,
    },
}

impl Protocol {
    /// SAPP with all paper-default constants.
    #[must_use]
    pub fn sapp_paper() -> Self {
        Protocol::Sapp {
            cp: SappConfig::paper_default(),
            device: SappDeviceConfig::paper_default(),
        }
    }

    /// DCPP with all paper-default constants.
    #[must_use]
    pub fn dcpp_paper() -> Self {
        Protocol::Dcpp {
            cfg: DcppConfig::paper_default(),
        }
    }
}

/// A complete description of one simulation run.
///
/// The config is `Copy`: every field is a plain value (model *choices*,
/// not model *state*), so replication workers can stamp out per-seed
/// variants from a borrowed base without cloning anything heap-allocated.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Protocol under test.
    pub protocol: Protocol,
    /// Size of the CP pool (upper bound on the population).
    pub cp_pool: u32,
    /// How many CPs are active from the start.
    pub initially_active: u32,
    /// Network buffer capacity (the paper: 20 000).
    pub buffer_capacity: usize,
    /// One-way delay model.
    pub delay: DelayKind,
    /// Loss model.
    pub loss: LossKind,
    /// Churn workload.
    pub churn: ChurnModel,
    /// Device processing time bounds (seconds): `(min, max)`.
    pub processing: (f64, f64),
    /// Stagger window for initial joins (seconds).
    pub join_stagger: f64,
    /// Width of the device-load measurement windows (seconds).
    pub load_window: f64,
    /// Run SAPP's overlay dissemination of leave notices.
    pub disseminate: bool,
    /// Install the device-side Δ auto-tuner (SAPP protocol only).
    pub sapp_auto_tune: Option<AutoTuneConfig>,
    /// Root seed.
    pub seed: u64,
    /// Virtual run length (seconds).
    pub duration: f64,
}

impl ScenarioConfig {
    /// A paper-faithful configuration: three-mode network, 20 000-element
    /// buffer, no loss, 1–20 ms device processing, 1 s join stagger.
    #[must_use]
    pub fn paper_defaults(protocol: Protocol, cps: u32, duration: f64, seed: u64) -> Self {
        Self {
            protocol,
            cp_pool: cps,
            initially_active: cps,
            buffer_capacity: 20_000,
            delay: DelayKind::ThreeModePaper,
            loss: LossKind::None,
            churn: ChurnModel::Static,
            processing: (0.001, 0.020),
            join_stagger: 1.0,
            load_window: 5.0,
            disseminate: false,
            sapp_auto_tune: None,
            seed,
            duration,
        }
    }

    /// Checks the structural invariants a runnable configuration must
    /// satisfy. [`Scenario::build`] calls this; batch runners (replication
    /// studies, parameter sweeps) call it once up front so an invalid base
    /// fails fast on the calling thread instead of once per worker.
    ///
    /// # Panics
    ///
    /// Panics on the first violated invariant.
    pub fn validate(&self) {
        assert!(self.cp_pool > 0, "need at least one CP");
        assert!(
            self.initially_active <= self.cp_pool,
            "initially_active exceeds the pool"
        );
        assert!(self.duration > 0.0, "duration must be positive");
    }
}

/// The three scenarios pinned by the golden-equivalence suite: one SAPP,
/// one DCPP (the paper-default 30-CP configuration the events-per-message
/// acceptance gate measures), and one Figure-5 churn run. The recorded
/// fixtures live in `tests/golden/` and are regenerated with the
/// `golden_fixtures` bin; the golden test asserts that engine refactors
/// preserve every `ScenarioResult` metric except `events_processed`.
#[must_use]
pub fn golden_trio() -> [(&'static str, ScenarioConfig); 3] {
    let sapp = ScenarioConfig::paper_defaults(Protocol::sapp_paper(), 10, 200.0, 11);
    let dcpp = ScenarioConfig::paper_defaults(Protocol::dcpp_paper(), 30, 300.0, 7);
    let mut churn = ScenarioConfig::paper_defaults(Protocol::dcpp_paper(), 60, 600.0, 21);
    churn.initially_active = 20;
    churn.churn = ChurnModel::paper_fig5();
    [("sapp", sapp), ("dcpp", dcpp), ("churn", churn)]
}

/// A built, runnable scenario.
///
/// Runs on the typed actor set ([`crate::PresenceSim`]): every node is an
/// inline [`crate::PresenceActorSet`] member and the engine dispatches
/// events through a direct variant match — the hot path carries no boxed
/// trait objects.
pub struct Scenario {
    sim: PresenceSim,
    cfg: ScenarioConfig,
    mode: RecorderMode,
    device: ActorId,
    network: ActorId,
    churn: ActorId,
    cps: Vec<ActorId>,
    /// Trace horizon (ns) when [`Scenario::enable_trace`] armed tracing.
    trace_until_ns: Option<u64>,
}

impl Scenario {
    /// Wires up all actors for `cfg`.
    #[must_use]
    pub fn build(cfg: ScenarioConfig) -> Self {
        Self::assemble(cfg, cfg.delay.build(), cfg.loss.build(), &[])
    }

    /// [`Scenario::build`] with an explicit recorder granularity. Under
    /// [`RecorderMode::Streaming`] the actors keep constant-size
    /// accumulators instead of per-sample series: the simulated trajectory
    /// (and every scalar metric) is unchanged, but the series fields of
    /// the collected [`ScenarioResult`] come back empty and memory stays
    /// flat at any horizon.
    #[must_use]
    pub fn build_with_recorder(cfg: ScenarioConfig, mode: RecorderMode) -> Self {
        Self::assemble_with_recorder(cfg, cfg.delay.build(), cfg.loss.build(), &[], mode)
    }

    /// [`Scenario::build`] with explicit (possibly time-varying) network
    /// models and mid-run churn regime switches — the scenario-lab entry
    /// point. `cfg.delay`/`cfg.loss` are ignored in favour of the passed
    /// models; `churn_switches` (absolute seconds, ascending) are driven
    /// by a [`crate::RegimeActor`] spawned only when the list is
    /// non-empty, so a switch-free scenario is actor-for-actor identical
    /// to [`Scenario::build`].
    #[must_use]
    pub fn assemble(
        cfg: ScenarioConfig,
        delay: Box<dyn DelayModel>,
        loss: Box<dyn LossModel>,
        churn_switches: &[(f64, ChurnModel)],
    ) -> Self {
        Self::assemble_with_recorder(cfg, delay, loss, churn_switches, RecorderMode::Full)
    }

    /// [`Scenario::assemble`] with an explicit recorder granularity (see
    /// [`Scenario::build_with_recorder`]).
    #[must_use]
    pub fn assemble_with_recorder(
        cfg: ScenarioConfig,
        delay: Box<dyn DelayModel>,
        loss: Box<dyn LossModel>,
        churn_switches: &[(f64, ChurnModel)],
        mode: RecorderMode,
    ) -> Self {
        cfg.validate();

        let mut sim: PresenceSim = Simulation::with_actor_set(cfg.seed);

        let fabric = Fabric::new(cfg.buffer_capacity, delay, loss);
        let network = sim.add_member(NetworkActor::new(fabric).into());

        let device_id = DeviceId(0);
        let machine = match cfg.protocol {
            Protocol::Sapp { device, .. } => {
                DeviceMachine::Sapp(SappDevice::new(device_id, device))
            }
            Protocol::Dcpp { cfg: c } => DeviceMachine::Dcpp(DcppDevice::new(device_id, c)),
            // The fixed-rate baseline probes a DCPP device (any responder
            // works; the baseline ignores reply payloads).
            Protocol::FixedRate { .. } => {
                DeviceMachine::Dcpp(DcppDevice::new(device_id, DcppConfig::paper_default()))
            }
        };
        let processing = ProcessingModel {
            min: SimDuration::from_secs_f64(cfg.processing.0),
            max: SimDuration::from_secs_f64(cfg.processing.1),
        };
        let mut device_actor =
            DeviceActor::new(machine, network, processing, cfg.load_window, cfg.duration);
        if let (
            Some(tune),
            Protocol::Sapp {
                device: dev_cfg, ..
            },
        ) = (cfg.sapp_auto_tune, cfg.protocol)
        {
            device_actor.set_tuner(AutoTuner::new(tune, dev_cfg.l_nom));
        }
        device_actor.set_recorder_mode(mode);
        let device = sim.add_member(device_actor.into());

        let factory = match cfg.protocol {
            Protocol::Sapp { cp, .. } => ProberFactory::Sapp(cp),
            Protocol::Dcpp { cfg: c } => ProberFactory::Dcpp(c),
            Protocol::FixedRate { cycle, period } => {
                ProberFactory::FixedRate(cycle, SimDuration::from_secs_f64(period))
            }
        };

        // One frequency sample lands per completed cycle; the protocols
        // hold the device near L_nom = 10 cycles/s shared across the pool,
        // so this hint is the fair-share expectation with 2× headroom for
        // the unfair (SAPP) trajectories.
        let samples_hint =
            ((cfg.duration * 20.0 / f64::from(cfg.cp_pool)).min(4e6) as usize).max(16);
        let mut cps = Vec::with_capacity(cfg.cp_pool as usize);
        for i in 0..cfg.cp_pool {
            let id = CpId(i);
            let mut cp_actor = CpActor::new(
                id,
                factory.clone(),
                network,
                device_id,
                cfg.disseminate,
                samples_hint,
            );
            cp_actor.set_recorder_mode(mode);
            let actor = sim.add_member(cp_actor.into());
            cps.push(actor);
        }

        // Register routes.
        {
            let net = sim
                .actor_mut::<NetworkActor>(network)
                .expect("network actor");
            net.register(Addr::Device(device_id), device);
            for (i, &actor) in cps.iter().enumerate() {
                net.register(Addr::Cp(CpId(i as u32)), actor);
            }
        }

        let churn = sim.add_member(
            ChurnActor::new(
                cfg.churn,
                cps.clone(),
                cfg.initially_active,
                SimDuration::from_secs_f64(cfg.join_stagger),
                cfg.duration,
            )
            .into(),
        );

        if !churn_switches.is_empty() {
            sim.add_member(crate::RegimeActor::new(churn, churn_switches.to_vec()).into());
        }

        Self {
            sim,
            cfg,
            mode,
            device,
            network,
            churn,
            cps,
            trace_until_ns: None,
        }
    }

    /// Arms presence tracing on every actor (and, when `engine` is set,
    /// the structured engine event stream). `until` caps the horizon in
    /// virtual seconds (`None` = the whole run). Call before [`Scenario::run`];
    /// drain with [`Scenario::collect_trace`]. The simulated trajectory is
    /// unchanged — tracing only buffers observations.
    pub fn enable_trace(&mut self, until: Option<f64>, engine: bool) {
        let until_ns = until.map_or(u64::MAX, |s| SimTime::from_secs_f64(s).as_nanos());
        self.trace_until_ns = Some(until_ns);
        if engine {
            self.sim.enable_engine_trace();
        }
        let network = self.network;
        self.sim
            .actor_mut::<NetworkActor>(network)
            .expect("network actor")
            .set_trace(until_ns);
        let device = self.device;
        self.sim
            .actor_mut::<DeviceActor>(device)
            .expect("device actor")
            .set_trace(until_ns);
        for &cp in &self.cps.clone() {
            self.sim
                .actor_mut::<CpActor>(cp)
                .expect("cp actor")
                .set_trace(until_ns);
        }
        let churn = self.churn;
        self.sim
            .actor_mut::<ChurnActor>(churn)
            .expect("churn actor")
            .set_trace(until_ns);
    }

    /// Drains the trace buffers into a [`presence_trace::TraceModel`]
    /// (counter tracks are synthesised from `result`'s series, so pass the
    /// [`Scenario::collect`] output of the same run).
    ///
    /// # Panics
    ///
    /// Panics if [`Scenario::enable_trace`] was not called.
    #[must_use]
    pub fn collect_trace(&mut self, result: &ScenarioResult) -> presence_trace::TraceModel {
        let until_ns = self
            .trace_until_ns
            .expect("enable_trace before collect_trace");
        let network = self.network;
        let device = self.device;
        let churn = self.churn;
        let nets = vec![(
            network.index(),
            self.sim
                .actor_mut::<NetworkActor>(network)
                .expect("network actor")
                .take_trace(),
        )];
        let device_buf = self
            .sim
            .actor_mut::<DeviceActor>(device)
            .expect("device actor")
            .take_trace();
        let mut cps = Vec::with_capacity(self.cps.len());
        for &cp in &self.cps.clone() {
            cps.push((
                cp.index(),
                self.sim
                    .actor_mut::<CpActor>(cp)
                    .expect("cp actor")
                    .take_trace(),
            ));
        }
        let churn_buf = self
            .sim
            .actor_mut::<ChurnActor>(churn)
            .expect("churn actor")
            .take_trace();
        TraceCapture {
            until_ns,
            nets,
            device: (device.index(), device_buf),
            cps,
            churn: (churn.index(), churn_buf),
            engine: self.sim.take_engine_trace(),
            barriers: Vec::new(),
        }
        .into_model(result)
    }

    /// The configuration this scenario was built from.
    #[must_use]
    pub fn config(&self) -> &ScenarioConfig {
        &self.cfg
    }

    /// The underlying simulation (for custom interventions: crashes,
    /// Δ-retuning, extra probes).
    pub fn sim_mut(&mut self) -> &mut PresenceSim {
        &mut self.sim
    }

    /// Actor id of the device.
    #[must_use]
    pub fn device_actor(&self) -> ActorId {
        self.device
    }

    /// Actor ids of the CP pool.
    #[must_use]
    pub fn cp_actors(&self) -> &[ActorId] {
        &self.cps
    }

    /// Actor id of the churn driver.
    #[must_use]
    pub fn churn_actor(&self) -> ActorId {
        self.churn
    }

    /// Schedules a device crash (silent leave) at `at` seconds.
    pub fn crash_device_at(&mut self, at: f64) {
        let device = self.device;
        self.sim
            .schedule_at(SimTime::from_secs_f64(at), device, SimEvent::Crash);
    }

    /// Schedules a graceful device leave (Bye broadcast) at `at` seconds.
    pub fn device_bye_at(&mut self, at: f64) {
        let device = self.device;
        self.sim
            .schedule_at(SimTime::from_secs_f64(at), device, SimEvent::GracefulLeave);
    }

    /// Schedules a SAPP device Δ-doubling at `at` seconds (A2 ablation).
    pub fn double_delta_at(&mut self, at: f64) {
        let device = self.device;
        self.sim
            .schedule_at(SimTime::from_secs_f64(at), device, SimEvent::DoubleDelta);
    }

    /// Plans the region split a `PRESENCE_REGIONS` request would produce
    /// for this scenario, by running the partition validator over the
    /// actual actor topology.
    ///
    /// The trio scenarios are hub-coupled: every CP and the device reach
    /// each other through the single [`NetworkActor`], and the
    /// participant→hub leg is a same-instant `send_now` (zero lookahead).
    /// Any cut separating a participant from the hub therefore fails
    /// validation and the plan collapses to one effective region — which
    /// is also why the golden fixtures replay byte-for-byte at any
    /// `PRESENCE_REGIONS` setting. Single-run parallelism needs hub-free
    /// topologies (independent shards, or one hub per region); see
    /// [`crate::run_mega_sharded`].
    ///
    /// # Panics
    ///
    /// Panics if `PRESENCE_REGIONS` is set to a non-positive or
    /// non-numeric value (same contract as `PRESENCE_JOBS`).
    #[must_use]
    pub fn region_plan(&self) -> crate::RegionPlan {
        self.region_plan_for(crate::region_count())
    }

    /// [`Scenario::region_plan`] for an explicit request (the `--regions`
    /// flag path; also lets tests exercise the planner without touching
    /// the process environment).
    #[must_use]
    pub fn region_plan_for(&self, requested: usize) -> crate::RegionPlan {
        let hub = self.network.index();
        let fabric_min = self
            .sim
            .actor::<NetworkActor>(self.network)
            .expect("network actor")
            .min_delay();
        let mut routes: Vec<(usize, usize, SimDuration)> = Vec::new();
        // Participant → hub: probes and replies are same-instant offers.
        routes.push((self.device.index(), hub, SimDuration::ZERO));
        // Hub → participant: deliveries carry at least the fabric's
        // minimum delay.
        routes.push((hub, self.device.index(), fabric_min));
        for &cp in &self.cps {
            routes.push((cp.index(), hub, SimDuration::ZERO));
            routes.push((hub, cp.index(), fabric_min));
        }
        // Churn flips CP membership instantly.
        for &cp in &self.cps {
            routes.push((self.churn.index(), cp.index(), SimDuration::ZERO));
        }
        crate::region::plan(requested, self.sim.actor_count(), &routes)
    }

    /// Runs the scenario for its configured duration.
    ///
    /// Consults [`Scenario::region_plan`] first, so a malformed
    /// `PRESENCE_REGIONS` fails loudly and the collapse decision is made
    /// by the validator, never assumed: hub scenarios always plan one
    /// effective region, i.e. exactly the sequential engine.
    pub fn run(&mut self) {
        let plan = self.region_plan();
        assert_eq!(
            plan.effective, 1,
            "hub scenarios must collapse to one region (got: {})",
            plan.reason
        );
        let end = SimTime::from_secs_f64(self.cfg.duration);
        self.sim.run_until(end);
    }

    /// Runs until the given virtual time (may be called repeatedly for
    /// checkpointed collection).
    pub fn run_until(&mut self, at: f64) {
        self.sim.run_until(SimTime::from_secs_f64(at));
    }

    /// Extracts the results accumulated so far.
    #[must_use]
    pub fn collect(&mut self) -> ScenarioResult {
        let now = self.sim.now();

        let (load_series, load_mean, load_variance) = {
            let dev = self
                .sim
                .actor_mut::<DeviceActor>(self.device)
                .expect("device actor");
            match self.mode {
                RecorderMode::Full => {
                    let series = dev.load_series_until(now);
                    // Load over the steady part (skip the first window).
                    let mut acc = presence_stats::Welford::new();
                    for &(_, rate) in series.iter().skip(1) {
                        acc.push(rate);
                    }
                    (series, acc.mean(), acc.sample_variance())
                }
                RecorderMode::Streaming => {
                    let (mean, variance) = dev.streaming_load_stats(now);
                    (Vec::new(), mean, variance)
                }
            }
        };

        let device_probes = self
            .sim
            .actor::<DeviceActor>(self.device)
            .expect("device actor")
            .probes_received();

        let (fabric_stats, mean_buffer_occupancy) = {
            // Mutable: the fabric settles delivery deadlines ≤ now before
            // reporting (lazy delivery accounting).
            let net = self
                .sim
                .actor_mut::<NetworkActor>(self.network)
                .expect("network actor");
            (net.fabric_stats(now), net.mean_occupancy(now))
        };

        let population_series: Vec<(f64, f64)> = self
            .sim
            .actor::<ChurnActor>(self.churn)
            .expect("churn actor")
            .population_series()
            .samples()
            .iter()
            .map(|s| (s.t, s.value))
            .collect();

        let mut cps = Vec::with_capacity(self.cps.len());
        for &actor in &self.cps {
            let cp = self.sim.actor::<CpActor>(actor).expect("cp actor");
            let rec = cp.record_snapshot();
            cps.push(CpSummary::from_record(&rec, now.as_secs_f64()));
        }

        // Fairness over CPs that ever probed.
        let freqs: Vec<f64> = cps
            .iter()
            .filter(|c| c.cycles_succeeded > 0)
            .map(|c| c.mean_frequency)
            .collect();
        let fairness = jain_index(&freqs);

        ScenarioResult {
            duration: now.as_secs_f64(),
            events_processed: self.sim.events_processed(),
            device_probes,
            load_series,
            load_mean,
            load_variance,
            mean_buffer_occupancy,
            messages_offered: fabric_stats.offered,
            messages_delivered: fabric_stats.delivered,
            messages_dropped_overflow: fabric_stats.dropped_overflow,
            messages_dropped_loss: fabric_stats.dropped_loss,
            messages_unroutable: fabric_stats.unroutable,
            population_series,
            cps,
            fairness_jain: fairness,
        }
    }
}

/// Number of network planes a decomposed topology always builds. Fixed
/// (rather than one per region) so the actor-id layout — and with it
/// every RNG stream — is identical at every region count: regions only
/// re-*group* the same planes, which is what makes decomposed runs
/// bit-identical across `regions ∈ {1, 2, 4, 8}`.
pub const DECOMPOSED_PLANES: usize = 8;

/// WAN-leg delay floor layered under delay models whose own minimum is
/// zero (`FlooredDelay`): an inter-plane leg must carry real wire time
/// or the region cut has no lookahead. Models with a positive minimum
/// (the paper's three-mode network: 100 µs fast mode) are left
/// untouched, so their delivery distributions are exactly the hub's.
pub const WAN_LEG_FLOOR: SimDuration = SimDuration::from_micros(100);

/// The execution engine behind a [`DecomposedScenario`]: the plain
/// sequential simulation when one region is effective, the conservative
/// windowed engine otherwise. Both run the *same* actor graph with the
/// same RNG streams, so the trajectory is engine-invariant.
enum Engine {
    Seq(Box<PresenceSim>),
    Regioned(Box<RegionSim<SimEvent, PresenceActorSet>>),
}

impl Engine {
    fn add(&mut self, region: usize, member: PresenceActorSet) -> ActorId {
        match self {
            Engine::Seq(sim) => sim.add_member(member),
            Engine::Regioned(sim) => sim.add_member(region, member),
        }
    }

    fn now(&self) -> SimTime {
        match self {
            Engine::Seq(sim) => sim.now(),
            Engine::Regioned(sim) => sim.now(),
        }
    }

    fn events_processed(&self) -> u64 {
        match self {
            Engine::Seq(sim) => sim.events_processed(),
            Engine::Regioned(sim) => sim.events_processed(),
        }
    }

    fn actor<A>(&self, id: ActorId) -> Option<&A>
    where
        PresenceActorSet: ProjectActor<A>,
    {
        match self {
            Engine::Seq(sim) => sim.actor(id),
            Engine::Regioned(sim) => sim.actor(id),
        }
    }

    fn actor_mut<A>(&mut self, id: ActorId) -> Option<&mut A>
    where
        PresenceActorSet: ProjectActor<A>,
    {
        match self {
            Engine::Seq(sim) => sim.actor_mut(id),
            Engine::Regioned(sim) => sim.actor_mut(id),
        }
    }

    fn schedule_at(&mut self, at: SimTime, target: ActorId, payload: SimEvent) {
        match self {
            Engine::Seq(sim) => {
                sim.schedule_at(at, target, payload);
            }
            Engine::Regioned(sim) => sim.schedule_at(at, target, payload),
        }
    }

    fn run_until(&mut self, end: SimTime) {
        match self {
            Engine::Seq(sim) => {
                sim.run_until(end);
            }
            Engine::Regioned(sim) => {
                sim.run_until(end);
            }
        }
    }

    fn enable_engine_trace(&mut self) {
        match self {
            Engine::Seq(sim) => sim.enable_engine_trace(),
            Engine::Regioned(sim) => sim.enable_engine_trace(),
        }
    }

    fn take_engine_trace(&mut self) -> Vec<presence_des::EngineEvent> {
        match self {
            Engine::Seq(sim) => sim.take_engine_trace(),
            Engine::Regioned(sim) => sim.take_engine_trace(),
        }
    }

    fn take_barrier_marks(&mut self) -> Vec<presence_des::BarrierMark> {
        match self {
            Engine::Seq(_) => Vec::new(),
            Engine::Regioned(sim) => sim.take_barrier_marks(),
        }
    }
}

/// A scenario on the decomposed (multi-plane) network topology: one
/// [`NetworkActor`] plane per [`DECOMPOSED_PLANES`] slice of the CP pool,
/// joined by inter-plane legs of one fabric `min_delay` — the topology
/// whose region cuts carry positive lookahead, so the paper trio
/// genuinely parallelises instead of collapsing (see
/// [`Scenario::region_plan`] for why the hub cannot).
///
/// Construction always builds all [`DECOMPOSED_PLANES`] planes in the
/// same order regardless of the requested region count; `regions` only
/// choose the engine (sequential for one effective region, the windowed
/// [`RegionSim`] otherwise) and the plane → region grouping. Trajectories
/// are therefore bit-identical across region counts, worker counts, and
/// window policies — pinned by `region_integration` and the decomposed
/// golden fixtures.
pub struct DecomposedScenario {
    engine: Engine,
    cfg: ScenarioConfig,
    mode: RecorderMode,
    device: ActorId,
    planes: Vec<ActorId>,
    churn: ActorId,
    cps: Vec<ActorId>,
    plan: RegionPlan,
    leg: SimDuration,
    /// Trace horizon (ns) when [`DecomposedScenario::enable_trace`] armed
    /// tracing.
    trace_until_ns: Option<u64>,
}

impl DecomposedScenario {
    /// Wires up the decomposed topology for `cfg` across `requested`
    /// regions (capped at [`DECOMPOSED_PLANES`]).
    #[must_use]
    pub fn build(cfg: ScenarioConfig, requested: usize) -> Self {
        Self::assemble(
            cfg,
            requested,
            &|| cfg.delay.build(),
            &|| cfg.loss.build(),
            &[],
            RecorderMode::Full,
        )
    }

    /// [`DecomposedScenario::build`] with explicit per-plane model
    /// factories (each plane owns its own fabric, so time-varying lab
    /// models are instantiated once per plane), mid-run churn switches,
    /// and a recorder granularity — the decomposed mirror of
    /// [`Scenario::assemble_with_recorder`].
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is invalid ([`ScenarioConfig::validate`]).
    #[must_use]
    pub fn assemble(
        cfg: ScenarioConfig,
        requested: usize,
        delay_factory: &dyn Fn() -> Box<dyn DelayModel>,
        loss_factory: &dyn Fn() -> Box<dyn LossModel>,
        churn_switches: &[(f64, ChurnModel)],
        mode: RecorderMode,
    ) -> Self {
        cfg.validate();
        let planes_n = DECOMPOSED_PLANES;
        let effective = requested.clamp(1, planes_n);

        // The inter-plane leg: the delay model's own minimum when
        // positive (distributions unchanged — `max(sample, leg)` is the
        // identity), the WAN floor otherwise (the floor then truncates
        // only the sub-100 µs tail of the plane-local distribution).
        let raw_min = delay_factory().min_delay();
        let needs_floor = raw_min == SimDuration::ZERO;
        let leg = if needs_floor { WAN_LEG_FLOOR } else { raw_min };

        let mut engine = if effective == 1 {
            Engine::Seq(Box::new(Simulation::with_actor_set(cfg.seed)))
        } else {
            Engine::Regioned(Box::new(RegionSim::new(cfg.seed, effective, leg)))
        };

        // Region of each plane: contiguous blocks, `planes_n / effective`
        // planes per region.
        let region_of_plane = |p: usize| p * effective / planes_n;
        // Track every actor's region in add order — the partition the
        // plan validates is exactly the one the engine runs.
        let mut region_of: Vec<u32> = Vec::new();
        let add = |engine: &mut Engine, region_of: &mut Vec<u32>, region: usize, member| {
            region_of.push(u32::try_from(region).expect("region fits u32"));
            engine.add(region, member)
        };

        let mut planes = Vec::with_capacity(planes_n);
        for p in 0..planes_n {
            let delay: Box<dyn DelayModel> = if needs_floor {
                Box::new(FlooredDelay::new(WAN_LEG_FLOOR, delay_factory()))
            } else {
                delay_factory()
            };
            let fabric = Fabric::new(cfg.buffer_capacity, delay, loss_factory());
            planes.push(add(
                &mut engine,
                &mut region_of,
                region_of_plane(p),
                NetworkActor::new(fabric).into(),
            ));
        }

        // Device, CPs, churn: same construction as the hub assembly, but
        // each participant points at (and is co-located with) its plane.
        let device_id = DeviceId(0);
        let machine = match cfg.protocol {
            Protocol::Sapp { device, .. } => {
                DeviceMachine::Sapp(SappDevice::new(device_id, device))
            }
            Protocol::Dcpp { cfg: c } => DeviceMachine::Dcpp(DcppDevice::new(device_id, c)),
            Protocol::FixedRate { .. } => {
                DeviceMachine::Dcpp(DcppDevice::new(device_id, DcppConfig::paper_default()))
            }
        };
        let processing = ProcessingModel {
            min: SimDuration::from_secs_f64(cfg.processing.0),
            max: SimDuration::from_secs_f64(cfg.processing.1),
        };
        let mut device_actor = DeviceActor::new(
            machine,
            planes[0],
            processing,
            cfg.load_window,
            cfg.duration,
        );
        if let (
            Some(tune),
            Protocol::Sapp {
                device: dev_cfg, ..
            },
        ) = (cfg.sapp_auto_tune, cfg.protocol)
        {
            device_actor.set_tuner(AutoTuner::new(tune, dev_cfg.l_nom));
        }
        device_actor.set_recorder_mode(mode);
        let device = add(
            &mut engine,
            &mut region_of,
            region_of_plane(0),
            device_actor.into(),
        );

        let factory = match cfg.protocol {
            Protocol::Sapp { cp, .. } => ProberFactory::Sapp(cp),
            Protocol::Dcpp { cfg: c } => ProberFactory::Dcpp(c),
            Protocol::FixedRate { cycle, period } => {
                ProberFactory::FixedRate(cycle, SimDuration::from_secs_f64(period))
            }
        };
        let samples_hint =
            ((cfg.duration * 20.0 / f64::from(cfg.cp_pool)).min(4e6) as usize).max(16);
        let mut cps = Vec::with_capacity(cfg.cp_pool as usize);
        for i in 0..cfg.cp_pool {
            let plane = i as usize % planes_n;
            let id = CpId(i);
            let mut cp_actor = CpActor::new(
                id,
                factory.clone(),
                planes[plane],
                device_id,
                cfg.disseminate,
                samples_hint,
            );
            cp_actor.set_recorder_mode(mode);
            let actor = add(
                &mut engine,
                &mut region_of,
                region_of_plane(plane),
                cp_actor.into(),
            );
            cps.push(actor);
        }

        // Register each participant's route on its owning plane only,
        // and hand every plane the shared topology map.
        let topology = Arc::new(PlaneTopology {
            planes: planes.clone(),
            plane_of_cp: (0..cfg.cp_pool)
                .map(|i| (i as usize % planes_n) as u32)
                .collect(),
            plane_of_device: vec![0],
            leg,
        });
        for (p, &plane) in planes.iter().enumerate() {
            let net = engine
                .actor_mut::<NetworkActor>(plane)
                .expect("plane actor");
            net.set_plane(p as u32, Arc::clone(&topology));
            if p == 0 {
                net.register(Addr::Device(device_id), device);
            }
            for (i, &actor) in cps.iter().enumerate() {
                if i % planes_n == p {
                    net.register(Addr::Cp(CpId(i as u32)), actor);
                }
            }
        }

        let mut churn_actor = ChurnActor::new(
            cfg.churn,
            cps.clone(),
            cfg.initially_active,
            SimDuration::from_secs_f64(cfg.join_stagger),
            cfg.duration,
        );
        // The churn driver lives in region 0 while its CPs are spread
        // over all regions: membership events must carry wire time.
        churn_actor.set_notify_delay(leg);
        let churn = add(&mut engine, &mut region_of, 0, churn_actor.into());

        let mut regime = None;
        if !churn_switches.is_empty() {
            regime = Some(add(
                &mut engine,
                &mut region_of,
                0,
                crate::RegimeActor::new(churn, churn_switches.to_vec()).into(),
            ));
        }

        // Plan over the actual topology: the validator sees the same
        // partition and routes the engine runs, so the decision is
        // checked, never assumed.
        let mut routes: Vec<(usize, usize, SimDuration)> = Vec::new();
        for (p, &a) in planes.iter().enumerate() {
            for (q, &b) in planes.iter().enumerate() {
                if p != q {
                    routes.push((a.index(), b.index(), leg));
                }
            }
        }
        routes.push((device.index(), planes[0].index(), SimDuration::ZERO));
        routes.push((planes[0].index(), device.index(), leg));
        for (i, &cp) in cps.iter().enumerate() {
            let plane = planes[i % planes_n];
            routes.push((cp.index(), plane.index(), SimDuration::ZERO));
            routes.push((plane.index(), cp.index(), leg));
            routes.push((churn.index(), cp.index(), leg));
        }
        if let Some(regime) = regime {
            routes.push((regime.index(), churn.index(), SimDuration::ZERO));
        }
        let partition = RegionPartition::from_assignment(region_of, effective);
        let plan = plan_partitioned(requested, &partition, &routes);
        assert_eq!(
            plan.effective, effective,
            "decomposed topology must support its own partition (got: {})",
            plan.reason
        );

        Self {
            engine,
            cfg,
            mode,
            device,
            planes,
            churn,
            cps,
            plan,
            leg,
            trace_until_ns: None,
        }
    }

    /// Arms presence tracing on every actor of the decomposed topology
    /// (see [`Scenario::enable_trace`]). The emitted trace is bit-identical
    /// across region counts: per-actor trajectories are region-invariant
    /// and the engine stream is canonically ordered — only the barrier
    /// marks (regioned runs only) differ, on their own track.
    pub fn enable_trace(&mut self, until: Option<f64>, engine: bool) {
        let until_ns = until.map_or(u64::MAX, |s| SimTime::from_secs_f64(s).as_nanos());
        self.trace_until_ns = Some(until_ns);
        if engine {
            self.engine.enable_engine_trace();
        }
        for &plane in &self.planes.clone() {
            self.engine
                .actor_mut::<NetworkActor>(plane)
                .expect("plane actor")
                .set_trace(until_ns);
        }
        let device = self.device;
        self.engine
            .actor_mut::<DeviceActor>(device)
            .expect("device actor")
            .set_trace(until_ns);
        for &cp in &self.cps.clone() {
            self.engine
                .actor_mut::<CpActor>(cp)
                .expect("cp actor")
                .set_trace(until_ns);
        }
        let churn = self.churn;
        self.engine
            .actor_mut::<ChurnActor>(churn)
            .expect("churn actor")
            .set_trace(until_ns);
    }

    /// Drains the trace buffers into a [`presence_trace::TraceModel`] —
    /// the decomposed mirror of [`Scenario::collect_trace`], with one
    /// `net{p}` track per plane and the regioned engine's barrier marks
    /// attached when the run was genuinely parallel.
    ///
    /// # Panics
    ///
    /// Panics if [`DecomposedScenario::enable_trace`] was not called.
    #[must_use]
    pub fn collect_trace(&mut self, result: &ScenarioResult) -> presence_trace::TraceModel {
        let until_ns = self
            .trace_until_ns
            .expect("enable_trace before collect_trace");
        let mut nets = Vec::with_capacity(self.planes.len());
        for &plane in &self.planes.clone() {
            nets.push((
                plane.index(),
                self.engine
                    .actor_mut::<NetworkActor>(plane)
                    .expect("plane actor")
                    .take_trace(),
            ));
        }
        let device = self.device;
        let device_buf = self
            .engine
            .actor_mut::<DeviceActor>(device)
            .expect("device actor")
            .take_trace();
        let mut cps = Vec::with_capacity(self.cps.len());
        for &cp in &self.cps.clone() {
            cps.push((
                cp.index(),
                self.engine
                    .actor_mut::<CpActor>(cp)
                    .expect("cp actor")
                    .take_trace(),
            ));
        }
        let churn = self.churn;
        let churn_buf = self
            .engine
            .actor_mut::<ChurnActor>(churn)
            .expect("churn actor")
            .take_trace();
        TraceCapture {
            until_ns,
            nets,
            device: (device.index(), device_buf),
            cps,
            churn: (churn.index(), churn_buf),
            engine: self.engine.take_engine_trace(),
            barriers: self.engine.take_barrier_marks(),
        }
        .into_model(result)
    }

    /// The configuration this scenario was built from.
    #[must_use]
    pub fn config(&self) -> &ScenarioConfig {
        &self.cfg
    }

    /// The planning decision made at construction (requested vs effective
    /// regions, with the lookahead or collapse evidence).
    #[must_use]
    pub fn region_plan(&self) -> &RegionPlan {
        &self.plan
    }

    /// The inter-plane leg (also the cross-region lookahead).
    #[must_use]
    pub fn leg(&self) -> SimDuration {
        self.leg
    }

    /// Actor ids of the network planes.
    #[must_use]
    pub fn plane_actors(&self) -> &[ActorId] {
        &self.planes
    }

    /// Actor ids of the CP pool.
    #[must_use]
    pub fn cp_actors(&self) -> &[ActorId] {
        &self.cps
    }

    /// Caps the worker threads the windowed engine may use (no-op on the
    /// sequential engine). Trajectories are worker-count-invariant.
    pub fn set_workers(&mut self, workers: usize) {
        if let Engine::Regioned(sim) = &mut self.engine {
            sim.set_workers(workers);
        }
    }

    /// Selects the window sizing policy (no-op on the sequential engine).
    /// Trajectories are policy-invariant; only barrier counts change.
    pub fn set_window_policy(&mut self, policy: WindowPolicy) {
        if let Engine::Regioned(sim) = &mut self.engine {
            sim.set_window_policy(policy);
        }
    }

    /// Parallel-engine counters so far: `(windows_executed,
    /// barrier_exchanges, events_per_window)`; `None` when the run is on
    /// the sequential engine.
    #[must_use]
    pub fn region_counters(&self) -> Option<(u64, u64, f64)> {
        match &self.engine {
            Engine::Seq(_) => None,
            Engine::Regioned(sim) => Some((
                sim.windows_executed(),
                sim.barrier_exchanges(),
                sim.events_per_window(),
            )),
        }
    }

    /// Unicasts forwarded over inter-plane legs, summed over planes.
    #[must_use]
    pub fn relays_forwarded(&self) -> u64 {
        self.planes
            .iter()
            .map(|&p| {
                self.engine
                    .actor::<NetworkActor>(p)
                    .expect("plane actor")
                    .relays_forwarded()
            })
            .sum()
    }

    /// Schedules a device crash (silent leave) at `at` seconds.
    pub fn crash_device_at(&mut self, at: f64) {
        let device = self.device;
        self.engine
            .schedule_at(SimTime::from_secs_f64(at), device, SimEvent::Crash);
    }

    /// Schedules a graceful device leave (Bye broadcast) at `at` seconds.
    pub fn device_bye_at(&mut self, at: f64) {
        let device = self.device;
        self.engine
            .schedule_at(SimTime::from_secs_f64(at), device, SimEvent::GracefulLeave);
    }

    /// Runs the scenario for its configured duration.
    pub fn run(&mut self) {
        let end = SimTime::from_secs_f64(self.cfg.duration);
        self.engine.run_until(end);
    }

    /// Extracts the results accumulated so far. Mirrors
    /// [`Scenario::collect`], with fabric counters summed over the planes
    /// (each plane owns an independent fabric; the hub totals are the
    /// plane totals' sum, and mean occupancy adds because in-flight
    /// counts add).
    #[must_use]
    pub fn collect(&mut self) -> ScenarioResult {
        let now = self.engine.now();

        let (load_series, load_mean, load_variance) = {
            let dev = self
                .engine
                .actor_mut::<DeviceActor>(self.device)
                .expect("device actor");
            match self.mode {
                RecorderMode::Full => {
                    let series = dev.load_series_until(now);
                    let mut acc = presence_stats::Welford::new();
                    for &(_, rate) in series.iter().skip(1) {
                        acc.push(rate);
                    }
                    (series, acc.mean(), acc.sample_variance())
                }
                RecorderMode::Streaming => {
                    let (mean, variance) = dev.streaming_load_stats(now);
                    (Vec::new(), mean, variance)
                }
            }
        };

        let device_probes = self
            .engine
            .actor::<DeviceActor>(self.device)
            .expect("device actor")
            .probes_received();

        let mut offered = 0;
        let mut delivered = 0;
        let mut dropped_overflow = 0;
        let mut dropped_loss = 0;
        let mut unroutable = 0;
        let mut mean_buffer_occupancy: Option<f64> = None;
        for &plane in &self.planes {
            let net = self
                .engine
                .actor_mut::<NetworkActor>(plane)
                .expect("plane actor");
            let stats = net.fabric_stats(now);
            offered += stats.offered;
            delivered += stats.delivered;
            dropped_overflow += stats.dropped_overflow;
            dropped_loss += stats.dropped_loss;
            unroutable += stats.unroutable;
            if let Some(occ) = net.mean_occupancy(now) {
                mean_buffer_occupancy = Some(mean_buffer_occupancy.unwrap_or(0.0) + occ);
            }
        }

        let population_series: Vec<(f64, f64)> = self
            .engine
            .actor::<ChurnActor>(self.churn)
            .expect("churn actor")
            .population_series()
            .samples()
            .iter()
            .map(|s| (s.t, s.value))
            .collect();

        let mut cps = Vec::with_capacity(self.cps.len());
        for &actor in &self.cps {
            let cp = self.engine.actor::<CpActor>(actor).expect("cp actor");
            let rec = cp.record_snapshot();
            cps.push(CpSummary::from_record(&rec, now.as_secs_f64()));
        }

        let freqs: Vec<f64> = cps
            .iter()
            .filter(|c| c.cycles_succeeded > 0)
            .map(|c| c.mean_frequency)
            .collect();
        let fairness = jain_index(&freqs);

        ScenarioResult {
            duration: now.as_secs_f64(),
            events_processed: self.engine.events_processed(),
            device_probes,
            load_series,
            load_mean,
            load_variance,
            mean_buffer_occupancy,
            messages_offered: offered,
            messages_delivered: delivered,
            messages_dropped_overflow: dropped_overflow,
            messages_dropped_loss: dropped_loss,
            messages_unroutable: unroutable,
            population_series,
            cps,
            fairness_jain: fairness,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(protocol: Protocol, cps: u32, secs: f64, seed: u64) -> ScenarioResult {
        let mut cfg = ScenarioConfig::paper_defaults(protocol, cps, secs, seed);
        cfg.load_window = 2.0;
        let mut sc = Scenario::build(cfg);
        sc.run();
        sc.collect()
    }

    #[test]
    fn dcpp_static_two_cps_probes_flow() {
        let r = quick(Protocol::dcpp_paper(), 2, 100.0, 7);
        assert!(
            r.device_probes > 50,
            "only {} probes in 100 s",
            r.device_probes
        );
        assert!(r.cps.iter().all(|c| c.cycles_succeeded > 10));
        // Nobody declared the device absent.
        assert!(r.cps.iter().all(|c| c.detected_absent_at.is_none()));
    }

    #[test]
    fn dcpp_static_load_near_l_nom() {
        // 30 CPs want 2/s each = 60/s demand; DCPP caps at L_nom = 10/s.
        let r = quick(Protocol::dcpp_paper(), 30, 300.0, 11);
        assert!(
            (r.load_mean - 10.0).abs() < 1.5,
            "DCPP load {} should be near 10",
            r.load_mean
        );
        assert!(r.fairness_jain > 0.95, "DCPP fairness {}", r.fairness_jain);
    }

    #[test]
    fn sapp_static_load_near_l_nom_but_unfair() {
        // 3 CPs over the paper's 20 000 s horizon (Figure 2's setup): the
        // population diverges — one CP ends up probing several times slower
        // than the others and never recovers. With only three CPs the
        // divergence is trajectory-dependent, so the fixture pins a seed
        // whose trajectory exhibits it under the workspace RNG streams
        // (at 20 CPs it is robust across seeds; see paper_claims.rs).
        let r = quick(Protocol::sapp_paper(), 3, 20_000.0, 2);
        // The paper: device load is "quite good (near to L_nom = 10)".
        assert!(
            r.load_mean > 4.0 && r.load_mean < 25.0,
            "SAPP load {} out of plausible band",
            r.load_mean
        );
        // And the CPs are unfair (Jain below DCPP's ~1.0, wide spread).
        assert!(
            r.fairness_jain < 0.95,
            "SAPP fairness {} unexpectedly high",
            r.fairness_jain
        );
        assert!(
            r.frequency_spread() > 1.5,
            "SAPP frequency spread {} unexpectedly tight",
            r.frequency_spread()
        );
    }

    #[test]
    fn fixed_rate_overloads_device() {
        // 50 CPs at 2/s each = 100/s at the device: the naive baseline
        // has no defence.
        let r = quick(
            Protocol::FixedRate {
                cycle: ProbeCycleConfig::paper_default(),
                period: 0.5,
            },
            50,
            100.0,
            5,
        );
        assert!(
            r.load_mean > 50.0,
            "fixed-rate load {} should vastly exceed L_nom",
            r.load_mean
        );
    }

    #[test]
    fn crash_is_detected_quickly() {
        let mut cfg = ScenarioConfig::paper_defaults(Protocol::dcpp_paper(), 5, 120.0, 9);
        cfg.load_window = 2.0;
        let mut sc = Scenario::build(cfg);
        sc.crash_device_at(60.0);
        sc.run();
        let r = sc.collect();
        for c in &r.cps {
            let at = c
                .detected_absent_at
                .unwrap_or_else(|| panic!("cp{} never detected the crash", c.id.0));
            assert!(at >= 60.0, "detection before the crash?");
            // Worst case: wait out the assigned delay (≤ ~d_min + backlog)
            // plus the 85 ms verdict; generous bound of 5 s.
            assert!(at < 65.0, "cp{} took {}s to notice", c.id.0, at - 60.0);
        }
    }

    #[test]
    fn bye_stops_all_cps_immediately() {
        let cfg = ScenarioConfig::paper_defaults(Protocol::dcpp_paper(), 5, 120.0, 13);
        let mut sc = Scenario::build(cfg);
        sc.device_bye_at(60.0);
        sc.run();
        let r = sc.collect();
        for c in &r.cps {
            let at = c.detected_absent_at.expect("bye must be seen");
            assert!((60.0..60.5).contains(&at), "bye detection at {at}");
        }
    }

    #[test]
    fn determinism_same_seed_same_result() {
        let a = quick(Protocol::sapp_paper(), 10, 50.0, 42);
        let b = quick(Protocol::sapp_paper(), 10, 50.0, 42);
        assert_eq!(a.device_probes, b.device_probes);
        assert_eq!(a.events_processed, b.events_processed);
        assert_eq!(a.load_series, b.load_series);
        // A different seed shifts the join stagger and the processing
        // jitter, which SAPP's reply-timed load estimates are sensitive to.
        let c = quick(Protocol::sapp_paper(), 10, 50.0, 43);
        let freq = |r: &ScenarioResult| {
            r.cps
                .iter()
                .flat_map(|cp| {
                    cp.frequency_series
                        .iter()
                        .map(|&(t, f)| (t.to_bits(), f.to_bits()))
                })
                .collect::<Vec<_>>()
        };
        assert_ne!(freq(&a), freq(&c), "different seeds must diverge");
    }

    #[test]
    fn churn_population_tracks_model() {
        let mut cfg = ScenarioConfig::paper_defaults(Protocol::dcpp_paper(), 60, 600.0, 21);
        cfg.initially_active = 20;
        cfg.churn = ChurnModel::paper_fig5();
        let mut sc = Scenario::build(cfg);
        sc.run();
        let r = sc.collect();
        assert!(
            r.population_series.len() > 10,
            "population resampled only {} times in 600 s",
            r.population_series.len()
        );
        for &(_, p) in &r.population_series {
            assert!((0.0..=60.0).contains(&p), "population {p} out of range");
        }
    }

    #[test]
    fn burst_leave_reduces_population() {
        let mut cfg = ScenarioConfig::paper_defaults(Protocol::sapp_paper(), 20, 100.0, 2);
        cfg.churn = ChurnModel::BurstLeave {
            at: 50.0,
            leavers: 18,
        };
        let mut sc = Scenario::build(cfg);
        sc.run();
        let r = sc.collect();
        let last = r.population_series.last().unwrap();
        assert_eq!(last.1, 2.0, "2 CPs must remain");
    }

    #[test]
    fn cp_rejoin_accumulates_sessions() {
        // A CP leaves and rejoins: its record must count both sessions.
        let mut cfg = ScenarioConfig::paper_defaults(Protocol::dcpp_paper(), 3, 120.0, 31);
        cfg.join_stagger = 0.0;
        let mut sc = Scenario::build(cfg);
        let cp0 = sc.cp_actors()[0];
        {
            let sim = sc.sim_mut();
            sim.schedule_at(SimTime::from_secs_f64(40.0), cp0, crate::SimEvent::Leave);
            sim.schedule_at(SimTime::from_secs_f64(80.0), cp0, crate::SimEvent::Join);
        }
        sc.run();
        let r = sc.collect();
        let cp = &r.cps[0];
        assert_eq!(cp.joins, 2, "rejoin not counted");
        // It probed in both sessions: cycles roughly double a single
        // 40-second session's worth.
        assert!(cp.cycles_succeeded > 30, "cycles {}", cp.cycles_succeeded);
        // Frequency series spans both sessions.
        let first = cp.frequency_series.first().unwrap().0;
        let last = cp.frequency_series.last().unwrap().0;
        assert!(first < 40.0 && last > 80.0);
    }

    #[test]
    fn sapp_overlay_peers_learned_through_replies() {
        let mut cfg = ScenarioConfig::paper_defaults(Protocol::sapp_paper(), 5, 60.0, 3);
        cfg.disseminate = true;
        let mut sc = Scenario::build(cfg);
        sc.run();
        let cp0 = sc.cp_actors()[0];
        let actor = sc.sim_mut().actor::<CpActor>(cp0).expect("cp actor");
        assert!(
            !actor.overlay().is_empty(),
            "cp00 learned no overlay peers from 60 s of SAPP replies"
        );
    }

    #[test]
    fn streaming_recorder_matches_full_scalars() {
        let mut cfg = ScenarioConfig::paper_defaults(Protocol::dcpp_paper(), 5, 60.0, 17);
        cfg.load_window = 2.0;
        let mut full = Scenario::build(cfg);
        full.run();
        let rf = full.collect();
        let mut streaming = Scenario::build_with_recorder(cfg, RecorderMode::Streaming);
        streaming.run();
        let rs = streaming.collect();
        // Identical trajectory: every counter matches exactly.
        assert_eq!(rf.events_processed, rs.events_processed);
        assert_eq!(rf.device_probes, rs.device_probes);
        assert_eq!(rf.messages_delivered, rs.messages_delivered);
        // Streaming retains no series…
        assert!(rs.load_series.is_empty());
        assert!(rs.cps.iter().all(|c| c.frequency_series.is_empty()));
        // …but the scalar summaries agree: the load stats bitwise (the
        // same rates fold into a Welford in the same order), the
        // frequency means up to floating-point summation order.
        assert_eq!(rf.load_mean.to_bits(), rs.load_mean.to_bits());
        assert_eq!(rf.load_variance.to_bits(), rs.load_variance.to_bits());
        assert_eq!(rf.cps.len(), rs.cps.len());
        for (a, b) in rf.cps.iter().zip(&rs.cps) {
            assert_eq!(a.cycles_succeeded, b.cycles_succeeded);
            assert_eq!(a.probes_sent, b.probes_sent);
            assert_eq!(a.mean_delay.to_bits(), b.mean_delay.to_bits());
            assert!(
                (a.mean_frequency - b.mean_frequency).abs() < 1e-9
                    || (a.mean_frequency.is_nan() && b.mean_frequency.is_nan()),
                "cp{} mean frequency {} vs {}",
                a.id.0,
                a.mean_frequency,
                b.mean_frequency
            );
        }
        assert!((rf.fairness_jain - rs.fairness_jain).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "initially_active exceeds the pool")]
    fn rejects_oversized_active_set() {
        let mut cfg = ScenarioConfig::paper_defaults(Protocol::dcpp_paper(), 5, 10.0, 0);
        cfg.initially_active = 6;
        let _ = Scenario::build(cfg);
    }
}
