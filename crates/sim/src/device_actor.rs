//! The device actor: wraps a device state machine (SAPP or DCPP), models
//! the device's computation time, and records the load series the paper
//! plots.

use crate::event::{Addr, SimEvent};
use crate::recorder::RecorderMode;
use crate::trace::DeviceTrace;
use presence_core::{
    AutoTuner, Bye, DcppDevice, DeviceId, Probe, Reply, SappDevice, TuneDecision, WireMessage,
};
use presence_des::{Actor, ActorId, Context, SimDuration, SimTime, StreamRng, TimerSlots};
use presence_stats::{JumpingWindowRate, TimeSeries, Welford};

/// How long the device takes to process a probe before the reply leaves.
///
/// The paper's timeout derivation assumes a maximal computation time
/// `C_max = 20 ms`; we default to a uniform draw over `[1 ms, 20 ms]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcessingModel {
    /// Minimum processing time.
    pub min: SimDuration,
    /// Maximum processing time.
    pub max: SimDuration,
}

impl ProcessingModel {
    /// The default consistent with the paper's `TOF`/`TOS` constants.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            min: SimDuration::from_millis(1),
            max: SimDuration::from_millis(20),
        }
    }

    /// A fixed processing time.
    #[must_use]
    pub fn constant(d: SimDuration) -> Self {
        Self { min: d, max: d }
    }

    fn sample(&self, rng: &mut StreamRng) -> SimDuration {
        if self.min == self.max {
            self.min
        } else {
            SimDuration::from_nanos(
                rng.uniform(self.min.as_nanos() as f64, self.max.as_nanos() as f64) as u64,
            )
        }
    }
}

/// The concrete device state machine a [`DeviceActor`] hosts.
#[derive(Debug, Clone)]
pub enum DeviceMachine {
    /// A self-adaptive-protocol device.
    Sapp(SappDevice),
    /// A device-controlled-protocol device.
    Dcpp(DcppDevice),
}

impl DeviceMachine {
    fn on_probe(&mut self, now: SimTime, probe: Probe) -> Reply {
        match self {
            DeviceMachine::Sapp(d) => d.on_probe(now, probe),
            DeviceMachine::Dcpp(d) => d.on_probe(now, probe),
        }
    }

    /// The device identity.
    #[must_use]
    pub fn id(&self) -> DeviceId {
        match self {
            DeviceMachine::Sapp(d) => d.id(),
            DeviceMachine::Dcpp(d) => d.id(),
        }
    }

    /// Total probes answered.
    #[must_use]
    pub fn probes_received(&self) -> u64 {
        match self {
            DeviceMachine::Sapp(d) => d.probes_received(),
            DeviceMachine::Dcpp(d) => d.probes_received(),
        }
    }
}

/// The simulated device node.
pub struct DeviceActor {
    machine: DeviceMachine,
    network: ActorId,
    processing: ProcessingModel,
    /// Optional device-side Δ auto-tuner (SAPP only; see
    /// [`presence_core::AutoTuner`]).
    tuner: Option<AutoTuner>,
    alive: bool,
    /// Probes-per-second series in jumping windows (Figure 5's load curve).
    load: JumpingWindowRate,
    /// Probe arrival timestamps (seconds) — kept for summary statistics.
    arrivals: TimeSeries,
    /// Replies scheduled on the network but still inside the processing
    /// window, keyed by a private emission counter. A crash or leave
    /// cancels them — the device dies *mid computation*, so a reply whose
    /// processing has not finished must never escape. Fired handles are
    /// pruned lazily before each insert; at L_nom ≈ 10 probes/s and a
    /// ≤ 20 ms processing window the live depth is almost always ≤ 1, so
    /// the two inline slots cover it (the spill map is pre-allocated for
    /// overload phases, keeping the steady-state loop allocation-free).
    processing_replies: TimerSlots<u64>,
    /// Monotone key source for `processing_replies`.
    reply_seq: u64,
    stopped_at: Option<SimTime>,
    /// Recorder granularity; [`RecorderMode::Streaming`] skips the arrival
    /// series and folds closed load windows into `load_acc` on the fly.
    mode: RecorderMode,
    /// Streaming-mode accumulator over closed load windows (excluding the
    /// first, warm-up window — matching the full-mode summary).
    load_acc: Welford,
    /// Closed load windows seen so far in streaming mode (to skip the
    /// warm-up window).
    load_windows_seen: u64,
    /// Lifecycle trace buffer; `None` (one predictable branch per probe)
    /// unless [`DeviceActor::set_trace`] armed it.
    trace: Option<Box<DeviceTrace>>,
}

impl DeviceActor {
    /// Creates a device actor.
    ///
    /// `load_window` is the width (seconds) of the jumping windows used for
    /// the load series; the paper's Figure 5 resolution is a few seconds.
    /// `horizon` is the configured run length (seconds), used only to
    /// pre-size the recorders so 20 000 s runs don't regrow them.
    #[must_use]
    pub fn new(
        machine: DeviceMachine,
        network: ActorId,
        processing: ProcessingModel,
        load_window: f64,
        horizon: f64,
    ) -> Self {
        // The protocols hold the device near L_nom = 10 probes/s; a small
        // headroom factor covers overload phases without overcommitting.
        let arrivals_hint = (horizon * 12.0).min(4e6) as usize;
        let windows_hint = (horizon / load_window).min(4e6) as usize + 1;
        Self {
            machine,
            network,
            processing,
            tuner: None,
            alive: true,
            load: JumpingWindowRate::with_capacity(0.0, load_window, windows_hint),
            arrivals: TimeSeries::with_capacity(arrivals_hint),
            processing_replies: TimerSlots::with_spill_capacity(8),
            reply_seq: 0,
            stopped_at: None,
            mode: RecorderMode::Full,
            load_acc: Welford::new(),
            load_windows_seen: 0,
            trace: None,
        }
    }

    /// Arms lifecycle tracing up to `until_ns` (virtual nanoseconds).
    pub fn set_trace(&mut self, until_ns: u64) {
        self.trace = Some(Box::new(DeviceTrace::new(until_ns)));
    }

    /// Takes the trace buffer accumulated since [`DeviceActor::set_trace`].
    pub fn take_trace(&mut self) -> Option<Box<DeviceTrace>> {
        self.trace.take()
    }

    /// Switches the recorder granularity. Call before the first event:
    /// streaming mode drops the (pre-sized) arrival series and load-series
    /// backing storage so memory stays flat at any horizon.
    pub fn set_recorder_mode(&mut self, mode: RecorderMode) {
        self.mode = mode;
        if mode == RecorderMode::Streaming {
            self.arrivals = TimeSeries::new();
            self.load = JumpingWindowRate::new(0.0, self.load.width());
        }
    }

    /// Folds every closed load window into the streaming accumulator,
    /// skipping the first (warm-up) window — the same exclusion the
    /// full-mode summary applies.
    fn stream_closed_windows(&mut self) {
        let seen = &mut self.load_windows_seen;
        let acc = &mut self.load_acc;
        self.load.drain_closed(|_, rate| {
            if *seen > 0 {
                acc.push(rate);
            }
            *seen += 1;
        });
    }

    /// Streaming-mode load summary `(mean, sample_variance)` over all
    /// windows closed by `now`, excluding the warm-up window.
    ///
    /// # Panics
    ///
    /// Panics if the actor is in [`RecorderMode::Full`] — the full-mode
    /// summary is computed from [`DeviceActor::load_series_until`].
    #[must_use]
    pub fn streaming_load_stats(&mut self, now: SimTime) -> (f64, f64) {
        assert_eq!(self.mode, RecorderMode::Streaming, "streaming mode only");
        self.load.advance_to(now.as_secs_f64());
        self.stream_closed_windows();
        (self.load_acc.mean(), self.load_acc.sample_variance())
    }

    /// Installs a device-side Δ auto-tuner (meaningful for SAPP devices;
    /// ignored by DCPP, whose load control is inherent).
    pub fn set_tuner(&mut self, tuner: AutoTuner) {
        self.tuner = Some(tuner);
    }

    /// The installed tuner, if any.
    #[must_use]
    pub fn tuner(&self) -> Option<&AutoTuner> {
        self.tuner.as_ref()
    }

    /// Whether the device is still answering probes.
    #[must_use]
    pub fn is_alive(&self) -> bool {
        self.alive
    }

    /// When the device crashed or left, if it did.
    #[must_use]
    pub fn stopped_at(&self) -> Option<SimTime> {
        self.stopped_at
    }

    /// Total probes answered.
    #[must_use]
    pub fn probes_received(&self) -> u64 {
        self.machine.probes_received()
    }

    /// The hosted state machine (for protocol-specific inspection).
    #[must_use]
    pub fn machine(&self) -> &DeviceMachine {
        &self.machine
    }

    /// Flushes load windows up to `now` and returns the full series of
    /// `(window_start, probes_per_second)` points.
    #[must_use]
    pub fn load_series_until(&mut self, now: SimTime) -> Vec<(f64, f64)> {
        self.load.advance_to(now.as_secs_f64());
        self.load.series().to_vec()
    }

    /// Probe arrival timestamps.
    #[must_use]
    pub fn arrivals(&self) -> &TimeSeries {
        &self.arrivals
    }

    /// Cancels every reply still inside its processing window: the device
    /// stopped mid-computation, so those replies never hit the wire.
    fn abort_processing(&mut self, ctx: &mut Context<'_, SimEvent>) {
        self.processing_replies.drain(|_, handle| {
            ctx.cancel(handle);
        });
    }
}

impl Actor<SimEvent> for DeviceActor {
    fn on_event(&mut self, ctx: &mut Context<'_, SimEvent>, event: SimEvent) {
        match event {
            SimEvent::Deliver(WireMessage::Probe(probe)) => {
                if !self.alive {
                    return;
                }
                let now = ctx.now();
                self.load.record(now.as_secs_f64());
                match self.mode {
                    RecorderMode::Full => self.arrivals.push(now.as_secs_f64(), 1.0),
                    RecorderMode::Streaming => self.stream_closed_windows(),
                }
                if let (Some(tuner), DeviceMachine::Sapp(dev)) =
                    (self.tuner.as_mut(), &mut self.machine)
                {
                    match tuner.on_probe(now) {
                        TuneDecision::Doubled => dev.double_delta(),
                        TuneDecision::Halved => {
                            // Halve by retuning l_nom back toward base:
                            // Δ = base Δ · multiplier.
                            let base = dev.l_nom();
                            dev.set_l_nom(base); // recompute Δ from l_nom…
                            for _ in 1..tuner.multiplier() {
                                dev.double_delta();
                            }
                        }
                        TuneDecision::Hold => {}
                    }
                }
                let reply = self.machine.on_probe(now, probe);
                let delay = self.processing.sample(ctx.rng());
                if let Some(t) = self.trace.as_deref_mut() {
                    t.probe(
                        now.as_nanos(),
                        (now + delay).as_nanos(),
                        probe.cp,
                        probe.seq,
                    );
                }
                // Single-hop fast path: the reply's `Send` is scheduled on
                // the network for the instant processing completes — no
                // intermediate self-event. The handle is kept so a crash
                // inside the processing window still suppresses the reply.
                let handle = ctx.schedule_in(
                    delay,
                    self.network,
                    SimEvent::Send {
                        to: Addr::Cp(reply.probe.cp),
                        msg: WireMessage::Reply(reply),
                    },
                );
                self.processing_replies.retain(|_, h| ctx.is_pending(h));
                let key = self.reply_seq;
                self.reply_seq += 1;
                self.processing_replies.insert(key, handle);
            }
            SimEvent::Crash => {
                if self.alive {
                    self.alive = false;
                    self.stopped_at = Some(ctx.now());
                    self.abort_processing(ctx);
                }
            }
            SimEvent::GracefulLeave => {
                if self.alive {
                    self.alive = false;
                    self.stopped_at = Some(ctx.now());
                    self.abort_processing(ctx);
                    ctx.send_now(
                        self.network,
                        SimEvent::Broadcast {
                            msg: WireMessage::Bye(Bye {
                                device: self.machine.id(),
                            }),
                        },
                    );
                }
            }
            SimEvent::DoubleDelta => {
                if let DeviceMachine::Sapp(d) = &mut self.machine {
                    d.double_delta();
                }
            }
            SimEvent::Deliver(_) => {
                // Devices ignore non-probe traffic.
            }
            other => {
                debug_assert!(false, "device actor got unexpected event {other:?}");
            }
        }
    }
}
