//! Region planning for single-run parallelism (`PRESENCE_REGIONS`).
//!
//! `presence-des` provides the conservative engine
//! ([`presence_des::RegionSim`]); this module decides *whether a given
//! scenario topology can use it*. A partition is sound only if every
//! cross-region route carries a positive minimum delay (the lookahead —
//! see [`presence_net::DelayModel::min_delay`]): a zero-delay route
//! crossing the cut would admit same-instant causality across regions,
//! which no safe window can contain.
//!
//! The paper's trio scenarios are **hub-coupled**: every CP and the
//! device reach each other through one `NetworkActor`, and the CP→network
//! leg is a same-instant `send_now`. Any cut separating a participant
//! from the hub therefore fails validation and the planner collapses to
//! one effective region — which is exactly why the golden fixtures replay
//! byte-for-byte at any `PRESENCE_REGIONS` setting. Partitions that *do*
//! parallelise are the hub-free ones: independent population shards
//! ([`crate::run_mega_sharded`]) and multi-hub topologies with one
//! network per region.
//!
//! The region count mirrors the `PRESENCE_JOBS` convention (see
//! [`crate::parallel`]) but defaults to **1**, not the machine
//! parallelism: regions change nothing for hub scenarios, so single-run
//! parallelism is explicit opt-in.

use presence_des::SimDuration;
use std::env;
use std::fmt;

/// Resolves the requested region count: `PRESENCE_REGIONS` if set,
/// otherwise 1 (single-run parallelism is opt-in).
///
/// # Panics
///
/// Panics if `PRESENCE_REGIONS` is set to anything but a positive
/// integer, so a typo cannot silently serialise a study.
#[must_use]
pub fn region_count() -> usize {
    parse_regions(env::var("PRESENCE_REGIONS").ok().as_deref())
}

/// Pure core of [`region_count`]: interprets an optional
/// `PRESENCE_REGIONS` value.
///
/// # Panics
///
/// Panics on a non-numeric or zero value.
#[must_use]
pub fn parse_regions(var: Option<&str>) -> usize {
    match var {
        // `PRESENCE_REGIONS= cmd` clears the variable for one command;
        // treat it as unset, not as a typo.
        Some(raw) if !raw.trim().is_empty() => match raw.trim().parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => panic!("PRESENCE_REGIONS must be a positive integer, got {raw:?}"),
        },
        _ => 1,
    }
}

/// Why a candidate partition cannot run conservatively in parallel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// A route with zero minimum delay crosses the region cut: the
    /// partition admits no safe window.
    ZeroLookaheadRoute {
        /// Source actor index of the offending route.
        from: usize,
        /// Target actor index of the offending route.
        to: usize,
    },
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ZeroLookaheadRoute { from, to } => write!(
                f,
                "route {from} → {to} has zero minimum delay and crosses the \
                 region cut: no safe window exists for this partition"
            ),
        }
    }
}

/// An explicit actor → region assignment, with the validator that decides
/// whether it supports conservative parallel execution.
#[derive(Debug, Clone)]
pub struct RegionPartition {
    region_of: Vec<u32>,
    regions: usize,
}

impl RegionPartition {
    /// Assigns `members` actors round-robin across `regions` regions
    /// (actor `i` → region `i % regions`).
    ///
    /// # Panics
    ///
    /// Panics if `regions == 0`.
    #[must_use]
    pub fn round_robin(members: usize, regions: usize) -> Self {
        assert!(regions > 0, "a partition needs at least one region");
        Self {
            region_of: (0..members).map(|i| (i % regions) as u32).collect(),
            regions,
        }
    }

    /// Builds a partition from an explicit assignment.
    ///
    /// # Panics
    ///
    /// Panics if `regions == 0` or any assignment is out of range.
    #[must_use]
    pub fn from_assignment(region_of: Vec<u32>, regions: usize) -> Self {
        assert!(regions > 0, "a partition needs at least one region");
        assert!(
            region_of.iter().all(|&r| (r as usize) < regions),
            "region assignment out of range"
        );
        Self { region_of, regions }
    }

    /// The region of actor `member`.
    #[must_use]
    pub fn region_of(&self, member: usize) -> u32 {
        self.region_of[member]
    }

    /// The region count.
    #[must_use]
    pub fn regions(&self) -> usize {
        self.regions
    }

    /// Validates this partition against the scenario's routes
    /// (`(from, to, min_delay)` triples) and returns the usable
    /// cross-region lookahead:
    ///
    /// * `Ok(Some(l))` — every cross-region route has minimum delay
    ///   ≥ `l > 0`; a conservative window of `l` is sound.
    /// * `Ok(None)` — no route crosses the cut at all (an *isolated*
    ///   partition: independent shards, one window per run).
    /// * `Err(_)` — some zero-delay route crosses the cut. The partition
    ///   is rejected loudly; running it would deadlock or reorder.
    ///
    /// # Errors
    ///
    /// [`PartitionError::ZeroLookaheadRoute`] naming the first offending
    /// route.
    pub fn lookahead(
        &self,
        routes: &[(usize, usize, SimDuration)],
    ) -> Result<Option<SimDuration>, PartitionError> {
        let mut min: Option<SimDuration> = None;
        for &(from, to, delay) in routes {
            if self.region_of[from] == self.region_of[to] {
                continue;
            }
            if delay == SimDuration::ZERO {
                return Err(PartitionError::ZeroLookaheadRoute { from, to });
            }
            min = Some(min.map_or(delay, |m| m.min(delay)));
        }
        Ok(min)
    }
}

/// The outcome of region planning: what was requested, what the topology
/// actually supports, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionPlan {
    /// Regions requested (`PRESENCE_REGIONS` or an explicit `--regions`).
    pub requested: usize,
    /// Regions the run will actually use.
    pub effective: usize,
    /// Human-readable planning decision (surfaced by `perf_report`).
    pub reason: String,
}

/// Plans a run: validates a round-robin split of `members` actors into
/// `requested` regions against `routes`, collapsing to one region when
/// the topology cannot support the cut.
///
/// Collapse is a *planning* outcome, not an error: the run proceeds
/// sequentially and stays bit-identical to every other region setting.
/// A genuinely unsound configuration never reaches the engine.
#[must_use]
pub fn plan(
    requested: usize,
    members: usize,
    routes: &[(usize, usize, SimDuration)],
) -> RegionPlan {
    if requested <= 1 {
        return RegionPlan {
            requested,
            effective: 1,
            reason: "single region requested".into(),
        };
    }
    let regions = requested.min(members.max(1));
    let partition = RegionPartition::round_robin(members, regions);
    plan_partitioned(requested, &partition, routes)
}

/// [`plan`] for an explicit actor → region assignment (the decomposed
/// multi-plane topologies, where co-location is structural rather than
/// round-robin). The reason string always carries the decision's
/// evidence: the planned cross-region lookahead on success, or the
/// offending zero-delay route on collapse.
#[must_use]
pub fn plan_partitioned(
    requested: usize,
    partition: &RegionPartition,
    routes: &[(usize, usize, SimDuration)],
) -> RegionPlan {
    if requested <= 1 {
        return RegionPlan {
            requested,
            effective: 1,
            reason: "single region requested".into(),
        };
    }
    let regions = partition.regions();
    match partition.lookahead(routes) {
        Ok(Some(lookahead)) => RegionPlan {
            requested,
            effective: regions,
            reason: format!(
                "{regions} regions with {} ns cross-region lookahead",
                lookahead.as_nanos()
            ),
        },
        Ok(None) => RegionPlan {
            requested,
            effective: regions,
            reason: format!("{regions} isolated regions (no cross-region routes)"),
        },
        Err(err) => RegionPlan {
            requested,
            effective: 1,
            reason: format!("collapsed to one region: {err}"),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: SimDuration = SimDuration::from_millis(1);

    #[test]
    fn parse_regions_defaults_to_one() {
        assert_eq!(parse_regions(None), 1);
        assert_eq!(parse_regions(Some("")), 1);
        assert_eq!(parse_regions(Some("  ")), 1);
        assert_eq!(parse_regions(Some("4")), 4);
        assert_eq!(parse_regions(Some(" 2 ")), 2);
    }

    #[test]
    #[should_panic(expected = "positive integer")]
    fn parse_regions_rejects_zero() {
        let _ = parse_regions(Some("0"));
    }

    #[test]
    #[should_panic(expected = "positive integer")]
    fn parse_regions_rejects_garbage() {
        let _ = parse_regions(Some("lots"));
    }

    #[test]
    fn lookahead_is_min_over_cross_routes() {
        let p = RegionPartition::round_robin(4, 2);
        // 0,2 → region 0; 1,3 → region 1.
        let routes = [
            (0, 2, MS),
            (0, 1, SimDuration::from_millis(3)),
            (1, 2, SimDuration::from_millis(2)),
        ];
        assert_eq!(p.lookahead(&routes), Ok(Some(SimDuration::from_millis(2))));
    }

    #[test]
    fn no_cross_routes_is_isolated() {
        let p = RegionPartition::round_robin(4, 2);
        let routes = [(0, 2, SimDuration::ZERO), (1, 3, SimDuration::ZERO)];
        assert_eq!(p.lookahead(&routes), Ok(None));
    }

    #[test]
    fn zero_delay_cross_route_is_rejected() {
        let p = RegionPartition::round_robin(2, 2);
        let routes = [(0, 1, SimDuration::ZERO)];
        assert_eq!(
            p.lookahead(&routes),
            Err(PartitionError::ZeroLookaheadRoute { from: 0, to: 1 })
        );
    }

    #[test]
    fn plan_collapses_hub_topologies() {
        // Star around actor 0 with instant spokes: every multi-region cut
        // severs a spoke, so the planner must fall back to one region.
        let routes: Vec<_> = (1..6).map(|i| (i, 0, SimDuration::ZERO)).collect();
        let plan = plan(4, 6, &routes);
        assert_eq!(plan.effective, 1);
        assert!(
            plan.reason.contains("zero minimum delay"),
            "{}",
            plan.reason
        );
    }

    #[test]
    fn plan_keeps_sound_partitions() {
        let routes = [(0, 1, MS)];
        let plan = plan(2, 2, &routes);
        assert_eq!(plan.effective, 2);
        assert!(plan.reason.contains("lookahead"), "{}", plan.reason);
    }

    #[test]
    fn plan_caps_regions_at_member_count() {
        let plan = plan(8, 3, &[]);
        assert_eq!(plan.effective, 3);
    }

    #[test]
    fn explicit_assignment_validates_bounds() {
        let p = RegionPartition::from_assignment(vec![0, 1, 1, 0], 2);
        assert_eq!(p.region_of(2), 1);
        assert_eq!(p.regions(), 2);
    }
}
