//! The event vocabulary shared by all simulation actors.

use crate::churn::ChurnModel;
use presence_core::{CpId, DeviceId, TimerToken, WireMessage};
use presence_des::SimDuration;

/// Network-level address of a node actor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Addr {
    /// A control point.
    Cp(CpId),
    /// A device.
    Device(DeviceId),
}

/// Everything that can be scheduled in a presence simulation.
#[derive(Debug, Clone)]
pub enum SimEvent {
    /// (to the network actor) Admit `msg` for unicast delivery to `to`.
    Send {
        /// Destination address.
        to: Addr,
        /// The message.
        msg: WireMessage,
    },
    /// (to the network actor) Admit `msg` for delivery to every registered
    /// CP (a device's Bye multicast).
    Broadcast {
        /// The message.
        msg: WireMessage,
    },
    /// (plane → plane, decomposed topology) A unicast whose destination is
    /// owned by another network plane, forwarded over the inter-plane leg
    /// (one [`crate::NetworkActor::min_delay`] of wire time). The owning
    /// plane admits it with the leg already discounted from the sampled
    /// delay, so end-to-end delivery time matches the hub topology's
    /// single-fabric draw distributionally (exactly, when the delay model's
    /// minimum covers the leg).
    Relay {
        /// Final destination.
        to: Addr,
        /// The message.
        msg: WireMessage,
    },
    /// (plane → plane, decomposed topology) A device Bye broadcast
    /// forwarded to another plane, which admits one copy per locally owned
    /// CP (ascending id), leg-discounted like [`SimEvent::Relay`].
    RelayBroadcast {
        /// The message.
        msg: WireMessage,
    },
    /// (to a node actor) A message arrives from the network.
    ///
    /// Scheduled by the network actor directly on the destination at admit
    /// time, for the sampled delivery instant — the single-hop fast path.
    /// One `Send` dispatch plus one `Deliver` firing is the complete
    /// per-message event cost (the events-per-delivered-message ≤ 2
    /// contract pinned by the `perf_report` CI gate).
    Deliver(WireMessage),
    /// (to a node actor) A protocol timer fired.
    Timer(TimerToken),
    /// (to a CP actor) Join the network and start probing.
    Join,
    /// (to a CP actor) Leave the network silently (stop probing).
    Leave,
    /// (to a device actor) Crash: stop answering, without a Bye.
    Crash,
    /// (to a device actor) Leave gracefully: broadcast a Bye, stop
    /// answering.
    GracefulLeave,
    /// (to the churn actor) Resample the target CP population.
    ResampleChurn,
    /// (to the churn actor) Switch to a new churn model mid-run — sent by
    /// the regime scheduler at a configured boundary. The churn actor
    /// cancels its pending self-events, unwinds any not-yet-fired wave
    /// joins/leaves, and re-arms under the new model.
    SetChurn(ChurnModel),
    /// (to the churn actor, from itself) One step of a staggered
    /// join/leave wave: flip CP `index`'s membership now and forward the
    /// `Join`/`Leave`, so flags and the population series move when the
    /// change actually happens, not when the wave was scheduled.
    ChurnWave {
        /// Index into the churn actor's CP pool.
        index: u32,
        /// `true` joins the CP, `false` leaves it.
        join: bool,
    },
    /// (to a device actor, SAPP Δ-retuning ablation) Multiply Δ by two.
    DoubleDelta,
    /// (to a [`crate::MegaDcppShard`]) A probe from pair `pair` arrives at
    /// its device. Mega events carry dense indices instead of wire structs:
    /// at 10⁶ pairs the per-event footprint is what bounds queue memory.
    MegaProbe {
        /// Dense (CP, device) pair index inside the shard.
        pair: u32,
        /// Probe-cycle sequence number (per pair).
        seq: u32,
    },
    /// (to a [`crate::MegaDcppShard`]) The device's reply for cycle `seq`
    /// arrives back at pair `pair`'s CP.
    MegaReply {
        /// Dense pair index.
        pair: u32,
        /// The cycle it answers.
        seq: u32,
        /// The device-dictated wait until the next probe.
        wait: SimDuration,
    },
    /// (to a [`crate::MegaDcppShard`]) Pair `pair`'s single outstanding
    /// timer fired: a probe timeout while probing, the inter-cycle wake
    /// while sleeping (the shard keeps at most one timer per pair, so the
    /// pair's phase disambiguates).
    MegaTimer {
        /// Dense pair index.
        pair: u32,
    },
}
