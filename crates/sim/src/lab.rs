//! The scenario lab: declarative, time-varying experiment specifications.
//!
//! A [`ScenarioSpec`] is the JSON-authorable description of one lab
//! experiment: a protocol, a population, **phased** network and churn
//! regimes (each a timeline of models switching at configured sim-time
//! boundaries), an optional device failure, and a horizon. It *lowers*
//! onto the existing [`ScenarioConfig`] machinery — nothing about the
//! engine changes; a single-phase spec builds an actor graph identical to
//! [`Scenario::build`], which is how the paper-faithful catalog entries
//! reproduce the golden trajectories bit-for-bit.
//!
//! * delay/loss phases become a [`presence_net::Scheduled`] wrapper that
//!   switches models exactly at the boundaries;
//! * churn phases after the first are driven by a [`crate::RegimeActor`]
//!   sending [`crate::SimEvent::SetChurn`] at each boundary;
//! * every phase start becomes a **regime window**, and [`slice_result`]
//!   reports device load, Jain fairness, population, and detection
//!   latency per window;
//! * [`run_lab`] fans replications across the [`crate::parallel`] worker
//!   pool and merges them in seed order, so a [`LabReport`] is
//!   byte-identical at any worker count.
//!
//! Shipped specs live in the repository's `catalog/` directory; the
//! `lab` binary (`presence-bench`) loads, validates, runs, and prints
//! them.

use crate::churn::ChurnModel;
use crate::metrics::ScenarioResult;
use crate::parallel::run_indexed;
use crate::scenario::{DelayKind, LossKind, Protocol, Scenario, ScenarioConfig};
use presence_core::AutoTuneConfig;
use presence_des::SimTime;
use presence_net::{DelayModel, LossModel, Scheduled};
use presence_stats::{
    jain_index, merge_boundaries, slice_windows, step_mean, window_mean, window_slice,
};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One timed phase of the delay regime: `delay` is active from `start`
/// seconds until the next phase (or the horizon).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DelayPhase {
    /// Phase start (seconds; the first phase must start at 0).
    pub start: f64,
    /// The delay model active during this phase.
    pub delay: DelayKind,
}

/// One timed phase of the loss regime.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LossPhase {
    /// Phase start (seconds; the first phase must start at 0).
    pub start: f64,
    /// The loss model active during this phase.
    pub loss: LossKind,
}

/// One timed phase of the churn regime.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnPhase {
    /// Phase start (seconds; the first phase must start at 0).
    pub start: f64,
    /// The churn model active during this phase.
    pub churn: ChurnModel,
}

/// A declarative, serialisable scenario: everything [`ScenarioConfig`]
/// holds, with the three stationary model choices generalised to phased
/// regime timelines plus an optional mid-run device failure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Catalog name (kebab-case by convention).
    pub name: String,
    /// One-line human description of what the scenario stresses.
    pub description: String,
    /// Protocol under test.
    pub protocol: Protocol,
    /// Size of the CP pool (upper bound on the population).
    pub cp_pool: u32,
    /// How many CPs are active from the start.
    pub initially_active: u32,
    /// Network buffer capacity (the paper: 20 000).
    pub buffer_capacity: usize,
    /// Delay regime timeline (first phase starts at 0).
    pub delay: Vec<DelayPhase>,
    /// Loss regime timeline (first phase starts at 0).
    pub loss: Vec<LossPhase>,
    /// Churn regime timeline (first phase starts at 0).
    pub churn: Vec<ChurnPhase>,
    /// Device processing time bounds (seconds): `(min, max)`.
    pub processing: (f64, f64),
    /// Stagger window for initial joins (seconds).
    pub join_stagger: f64,
    /// Width of the device-load measurement windows (seconds).
    pub load_window: f64,
    /// Run SAPP's overlay dissemination of leave notices.
    pub disseminate: bool,
    /// Install the device-side Δ auto-tuner (SAPP protocol only).
    pub sapp_auto_tune: Option<AutoTuneConfig>,
    /// Crash the device (silent leave) at this instant, if set.
    pub crash_at: Option<f64>,
    /// Graceful device leave (Bye broadcast) at this instant, if set.
    pub bye_at: Option<f64>,
    /// Root seed.
    pub seed: u64,
    /// Virtual run length (seconds).
    pub duration: f64,
}

/// Why a [`ScenarioSpec`] was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(pub String);

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid scenario spec: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

fn err(msg: impl Into<String>) -> SpecError {
    SpecError(msg.into())
}

/// Checks one phase timeline: non-empty, anchored at 0, strictly
/// increasing, every start inside the horizon.
fn check_phases(kind: &str, starts: &[f64], duration: f64) -> Result<(), SpecError> {
    if starts.is_empty() {
        return Err(err(format!("{kind} timeline must have at least one phase")));
    }
    if starts[0] != 0.0 {
        return Err(err(format!("first {kind} phase must start at t = 0")));
    }
    for pair in starts.windows(2) {
        if pair[0] >= pair[1] {
            return Err(err(format!(
                "{kind} phase starts must be strictly increasing"
            )));
        }
    }
    let last = starts[starts.len() - 1];
    if last >= duration {
        return Err(err(format!(
            "{kind} phase at {last} s starts at or after the {duration} s horizon"
        )));
    }
    if starts.iter().any(|s| !s.is_finite()) {
        return Err(err(format!("{kind} phase starts must be finite")));
    }
    Ok(())
}

impl ScenarioSpec {
    /// Wraps a stationary [`ScenarioConfig`] into a single-phase spec —
    /// the bridge the paper-faithful catalog entries are generated
    /// through.
    #[must_use]
    pub fn from_config(name: &str, description: &str, cfg: ScenarioConfig) -> Self {
        Self {
            name: name.to_string(),
            description: description.to_string(),
            protocol: cfg.protocol,
            cp_pool: cfg.cp_pool,
            initially_active: cfg.initially_active,
            buffer_capacity: cfg.buffer_capacity,
            delay: vec![DelayPhase {
                start: 0.0,
                delay: cfg.delay,
            }],
            loss: vec![LossPhase {
                start: 0.0,
                loss: cfg.loss,
            }],
            churn: vec![ChurnPhase {
                start: 0.0,
                churn: cfg.churn,
            }],
            processing: cfg.processing,
            join_stagger: cfg.join_stagger,
            load_window: cfg.load_window,
            disseminate: cfg.disseminate,
            sapp_auto_tune: cfg.sapp_auto_tune,
            crash_at: None,
            bye_at: None,
            seed: cfg.seed,
            duration: cfg.duration,
        }
    }

    /// The stationary config this spec lowers onto: first phase of every
    /// timeline. [`ScenarioSpec::build`] overrides the network models and
    /// churn switches on top of it.
    #[must_use]
    pub fn base_config(&self) -> ScenarioConfig {
        ScenarioConfig {
            protocol: self.protocol,
            cp_pool: self.cp_pool,
            initially_active: self.initially_active,
            buffer_capacity: self.buffer_capacity,
            delay: self.delay[0].delay,
            loss: self.loss[0].loss,
            churn: self.churn[0].churn,
            processing: self.processing,
            join_stagger: self.join_stagger,
            load_window: self.load_window,
            disseminate: self.disseminate,
            sapp_auto_tune: self.sapp_auto_tune,
            seed: self.seed,
            duration: self.duration,
        }
    }

    /// Validates every structural invariant a runnable spec must satisfy,
    /// as a `Result` (batch tooling reports all catalog problems instead
    /// of panicking on the first).
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.name.is_empty() {
            return Err(err("name must not be empty"));
        }
        if self.cp_pool == 0 {
            return Err(err("need at least one CP"));
        }
        if self.initially_active > self.cp_pool {
            return Err(err("initially_active exceeds the pool"));
        }
        if self.buffer_capacity == 0 {
            return Err(err("buffer capacity must be positive"));
        }
        if !(self.duration > 0.0 && self.duration.is_finite()) {
            return Err(err("duration must be positive and finite"));
        }
        let (p_min, p_max) = self.processing;
        if !(p_min >= 0.0 && p_min <= p_max && p_max.is_finite()) {
            return Err(err("processing bounds must satisfy 0 <= min <= max"));
        }
        if !(self.join_stagger >= 0.0 && self.join_stagger.is_finite()) {
            return Err(err("join stagger must be non-negative"));
        }
        if !(self.load_window > 0.0 && self.load_window.is_finite()) {
            return Err(err("load window must be positive"));
        }

        let delay_starts: Vec<f64> = self.delay.iter().map(|p| p.start).collect();
        let loss_starts: Vec<f64> = self.loss.iter().map(|p| p.start).collect();
        let churn_starts: Vec<f64> = self.churn.iter().map(|p| p.start).collect();
        check_phases("delay", &delay_starts, self.duration)?;
        check_phases("loss", &loss_starts, self.duration)?;
        check_phases("churn", &churn_starts, self.duration)?;

        for phase in &self.delay {
            validate_delay(phase.delay)?;
        }
        for phase in &self.loss {
            validate_loss(phase.loss)?;
        }
        for phase in &self.churn {
            validate_churn(phase.churn)?;
        }

        if self.sapp_auto_tune.is_some() && !matches!(self.protocol, Protocol::Sapp { .. }) {
            return Err(err("sapp_auto_tune requires the SAPP protocol"));
        }
        for (label, at) in [("crash_at", self.crash_at), ("bye_at", self.bye_at)] {
            if let Some(at) = at {
                if !(at > 0.0 && at < self.duration) {
                    return Err(err(format!("{label} must fall inside (0, duration)")));
                }
            }
        }
        if self.crash_at.is_some() && self.bye_at.is_some() {
            return Err(err("a device cannot both crash and say Bye"));
        }
        Ok(())
    }

    /// Every regime boundary of this spec (union of the three timelines'
    /// phase starts), sorted and deduplicated, starting with 0 — the
    /// window starts of the per-regime metric slices.
    #[must_use]
    pub fn regime_starts(&self) -> Vec<f64> {
        let delay: Vec<f64> = self.delay.iter().map(|p| p.start).collect();
        let loss: Vec<f64> = self.loss.iter().map(|p| p.start).collect();
        let churn: Vec<f64> = self.churn.iter().map(|p| p.start).collect();
        merge_boundaries(&[&delay, &loss, &churn], self.duration)
    }

    /// The per-regime `[start, end)` windows of this spec.
    #[must_use]
    pub fn regime_windows(&self) -> Vec<(f64, f64)> {
        slice_windows(&self.regime_starts(), self.duration)
    }

    /// Builds the runnable scenario this spec describes. A single-phase
    /// spec produces an actor graph identical to
    /// [`Scenario::build`]`(self.base_config())` — same actors, same RNG
    /// streams, bit-identical trajectory.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant (the spec is re-validated so
    /// hand-built specs cannot skip it).
    pub fn build(&self) -> Result<Scenario, SpecError> {
        self.validate()?;
        let switches = self.churn_switches();
        let mut scenario = Scenario::assemble(
            self.base_config(),
            self.delay_model(),
            self.loss_model(),
            &switches,
        );
        if let Some(at) = self.crash_at {
            scenario.crash_device_at(at);
        }
        if let Some(at) = self.bye_at {
            scenario.device_bye_at(at);
        }
        Ok(scenario)
    }

    /// Builds this spec on the decomposed (multi-plane) topology across
    /// `regions` regions — the parallel mirror of [`ScenarioSpec::build`].
    /// Each plane instantiates its own copies of the (possibly
    /// time-varying) delay/loss models.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant, like [`ScenarioSpec::build`].
    pub fn build_decomposed(&self, regions: usize) -> Result<crate::DecomposedScenario, SpecError> {
        self.validate()?;
        let switches = self.churn_switches();
        let mut scenario = crate::DecomposedScenario::assemble(
            self.base_config(),
            regions,
            &|| self.delay_model(),
            &|| self.loss_model(),
            &switches,
            crate::RecorderMode::Full,
        );
        if let Some(at) = self.crash_at {
            scenario.crash_device_at(at);
        }
        if let Some(at) = self.bye_at {
            scenario.device_bye_at(at);
        }
        Ok(scenario)
    }

    /// One instance of the spec's delay model (phased specs get a
    /// [`Scheduled`] wrapper).
    fn delay_model(&self) -> Box<dyn DelayModel> {
        if self.delay.len() == 1 {
            self.delay[0].delay.build()
        } else {
            Box::new(Scheduled::from_segments(
                self.delay
                    .iter()
                    .map(|p| (SimTime::from_secs_f64(p.start), p.delay.build()))
                    .collect(),
            ))
        }
    }

    /// One instance of the spec's loss model.
    fn loss_model(&self) -> Box<dyn LossModel> {
        if self.loss.len() == 1 {
            self.loss[0].loss.build()
        } else {
            Box::new(Scheduled::from_segments(
                self.loss
                    .iter()
                    .map(|p| (SimTime::from_secs_f64(p.start), p.loss.build()))
                    .collect(),
            ))
        }
    }

    /// The mid-run churn regime switches (every churn phase after the
    /// first).
    fn churn_switches(&self) -> Vec<(f64, ChurnModel)> {
        self.churn[1..].iter().map(|p| (p.start, p.churn)).collect()
    }

    /// Parses and validates a spec from JSON text.
    ///
    /// # Errors
    ///
    /// Returns a parse or validation error.
    pub fn from_json(text: &str) -> Result<Self, SpecError> {
        let spec: ScenarioSpec =
            serde_json::from_str(text).map_err(|e| err(format!("parse error: {e}")))?;
        spec.validate()?;
        Ok(spec)
    }

    /// Serialises the spec as pretty JSON (the catalog file format).
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("spec serialises")
    }
}

fn validate_delay(kind: DelayKind) -> Result<(), SpecError> {
    match kind {
        DelayKind::Constant(s) => {
            if !(s >= 0.0 && s.is_finite()) {
                return Err(err("constant delay must be non-negative"));
            }
        }
        DelayKind::Uniform(lo, hi) => {
            if !(lo >= 0.0 && lo <= hi && hi.is_finite()) {
                return Err(err("uniform delay bounds must satisfy 0 <= low <= high"));
            }
        }
        DelayKind::ThreeModePaper => {}
        DelayKind::Exponential { mean, cap } => {
            if !(mean > 0.0 && mean.is_finite() && cap > 0.0 && cap.is_finite()) {
                return Err(err("exponential delay needs positive mean and cap"));
            }
        }
    }
    Ok(())
}

fn validate_loss(kind: LossKind) -> Result<(), SpecError> {
    match kind {
        LossKind::None => {}
        LossKind::Bernoulli(p) => {
            if !(0.0..=1.0).contains(&p) {
                return Err(err("Bernoulli loss probability must be in [0, 1]"));
            }
        }
        LossKind::Bursty(r) => {
            if !(r > 0.0 && r <= 0.5) {
                return Err(err("bursty loss average rate must be in (0, 0.5]"));
            }
        }
    }
    Ok(())
}

fn validate_churn(model: ChurnModel) -> Result<(), SpecError> {
    match model {
        ChurnModel::Static => {}
        ChurnModel::BurstLeave { at, .. } => {
            if !(at >= 0.0 && at.is_finite()) {
                return Err(err("burst-leave time must be non-negative"));
            }
        }
        ChurnModel::UniformResample { min, max, rate } => {
            if min > max {
                return Err(err("uniform-resample population bounds inverted"));
            }
            if !(rate > 0.0 && rate.is_finite()) {
                return Err(err("uniform-resample rate must be positive"));
            }
        }
        ChurnModel::FlashCrowd { at, ramp, hold, .. } => {
            if !(at >= 0.0 && at.is_finite()) {
                return Err(err("flash-crowd start must be non-negative"));
            }
            if !(ramp >= 0.0 && ramp.is_finite() && hold >= 0.0 && hold.is_finite()) {
                return Err(err("flash-crowd ramp and hold must be non-negative"));
            }
        }
        ChurnModel::Diurnal {
            period,
            min,
            max,
            rate,
        } => {
            if !(period > 0.0 && period.is_finite()) {
                return Err(err("diurnal period must be positive"));
            }
            if min > max {
                return Err(err("diurnal population bounds inverted"));
            }
            if !(rate > 0.0 && rate.is_finite()) {
                return Err(err("diurnal rate must be positive"));
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Per-regime metric slices
// ---------------------------------------------------------------------------

/// Metrics of one regime window of one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegimeSlice {
    /// Window start (seconds).
    pub start: f64,
    /// Window end (exclusive; the last window ends at the horizon).
    pub end: f64,
    /// Mean device load (probes/s) over load windows starting inside the
    /// slice; `None` if no load window landed here.
    pub load_mean: Option<f64>,
    /// Jain fairness index over the per-CP mean probe frequencies within
    /// the slice (CPs with at least one completed cycle here).
    pub fairness_jain: Option<f64>,
    /// Time-weighted mean driven population over the slice (the series
    /// is a step function, so the value set before the window carries
    /// into it).
    pub population_mean: Option<f64>,
    /// CPs whose absence verdict fell inside this slice.
    pub detections: u32,
    /// Mean verdict latency (seconds after the configured crash/bye) of
    /// those detections; `None` without a failure or without detections.
    pub detection_latency_mean: Option<f64>,
}

/// Slices one run's result along the given regime windows. `failure_at`
/// (the spec's `crash_at`/`bye_at`) anchors detection latency.
#[must_use]
pub fn slice_result(
    result: &ScenarioResult,
    windows: &[(f64, f64)],
    failure_at: Option<f64>,
) -> Vec<RegimeSlice> {
    windows
        .iter()
        .map(|&(start, end)| {
            let load = window_slice(&result.load_series, start, end);
            let population = step_mean(&result.population_series, start, end);

            // Per-CP mean frequency within the window, over CPs that
            // completed a cycle here.
            let freqs: Vec<f64> = result
                .cps
                .iter()
                .filter_map(|cp| window_mean(window_slice(&cp.frequency_series, start, end)))
                .collect();
            let fairness = if freqs.is_empty() {
                None
            } else {
                Some(jain_index(&freqs))
            };

            let verdicts: Vec<f64> = result
                .cps
                .iter()
                .filter_map(|cp| cp.detected_absent_at)
                .filter(|&t| t >= start && t < end)
                .collect();
            let latency = failure_at.and_then(|at| {
                let late: Vec<f64> = verdicts
                    .iter()
                    .map(|&t| t - at)
                    .filter(|&d| d >= 0.0)
                    .collect();
                if late.is_empty() {
                    None
                } else {
                    Some(late.iter().sum::<f64>() / late.len() as f64)
                }
            });

            RegimeSlice {
                start,
                end,
                load_mean: window_mean(load),
                fairness_jain: fairness,
                population_mean: population,
                detections: verdicts.len() as u32,
                detection_latency_mean: latency,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// The lab runner
// ---------------------------------------------------------------------------

/// Whole-run numbers of one replication.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabSeedResult {
    /// Seed of this replication.
    pub seed: u64,
    /// Mean device load over the whole run.
    pub load_mean: f64,
    /// Whole-run Jain fairness.
    pub fairness_jain: f64,
    /// Engine events processed.
    pub events_processed: u64,
    /// Messages delivered by the fabric.
    pub messages_delivered: u64,
    /// Messages the loss regime dropped.
    pub messages_dropped_loss: u64,
    /// Messages dropped on buffer overflow.
    pub messages_dropped_overflow: u64,
    /// Messages the fabric could not route to any live recipient
    /// (`FabricStats::unroutable`).
    pub messages_unroutable: u64,
    /// Per-regime slices of this replication.
    pub slices: Vec<RegimeSlice>,
}

/// The lab's aggregate answer for one spec: per-seed results plus
/// cross-seed means per regime window. Byte-identical at any worker
/// count (replications merge in seed order before any folding).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabReport {
    /// Spec name.
    pub name: String,
    /// Seeds run.
    pub seeds: Vec<u64>,
    /// The regime windows the slices refer to.
    pub windows: Vec<(f64, f64)>,
    /// Cross-seed aggregate slice per window: each floating-point metric
    /// is the mean over the seeds where it was defined, while
    /// `detections` is the **total across all seeds** (a count, not a
    /// mean — compare against `per_seed` slices accordingly).
    pub slices: Vec<RegimeSlice>,
    /// One entry per seed, in seed order.
    pub per_seed: Vec<LabSeedResult>,
}

/// Aggregates the per-seed slices of one window: floating-point metrics
/// averaged over the seeds where they were defined, `detections` summed
/// (it is a count; see [`LabReport::slices`]).
fn mean_slice(window: (f64, f64), per_seed: &[&RegimeSlice]) -> RegimeSlice {
    fn mean_defined(values: impl Iterator<Item = Option<f64>>) -> Option<f64> {
        let defined: Vec<f64> = values.flatten().collect();
        if defined.is_empty() {
            None
        } else {
            Some(defined.iter().sum::<f64>() / defined.len() as f64)
        }
    }
    RegimeSlice {
        start: window.0,
        end: window.1,
        load_mean: mean_defined(per_seed.iter().map(|s| s.load_mean)),
        fairness_jain: mean_defined(per_seed.iter().map(|s| s.fairness_jain)),
        population_mean: mean_defined(per_seed.iter().map(|s| s.population_mean)),
        detections: per_seed.iter().map(|s| s.detections).sum(),
        detection_latency_mean: mean_defined(per_seed.iter().map(|s| s.detection_latency_mean)),
    }
}

/// Runs `spec` once under its own seed and returns the raw result (the
/// golden-comparison path).
///
/// # Errors
///
/// Returns the spec's first violated invariant.
pub fn run_spec_once(spec: &ScenarioSpec) -> Result<ScenarioResult, SpecError> {
    let mut scenario = spec.build()?;
    scenario.run();
    Ok(scenario.collect())
}

/// Runs `spec` under each seed (overriding `spec.seed`) across `jobs`
/// workers and reports per-regime-sliced metrics. The report is
/// **byte-identical for every `jobs` value**: replications are
/// independent simulations merged back in seed order before the
/// (order-sensitive) cross-seed folds.
///
/// # Errors
///
/// Returns the spec's first violated invariant (checked once, before any
/// worker spawns).
///
/// # Panics
///
/// Panics if `seeds` is empty or `jobs` is zero.
pub fn run_lab(spec: &ScenarioSpec, seeds: &[u64], jobs: usize) -> Result<LabReport, SpecError> {
    assert!(!seeds.is_empty(), "need at least one seed");
    spec.validate()?;
    let windows = spec.regime_windows();
    let failure_at = spec.crash_at.or(spec.bye_at);

    let per_seed = run_indexed(seeds.len(), jobs, |i| {
        let mut seeded = spec.clone();
        seeded.seed = seeds[i];
        // The spec was validated above; a failure here would be a race on
        // the borrowed spec, which the worker pool forbids.
        let mut scenario = seeded.build().expect("validated spec builds");
        scenario.run();
        let result = scenario.collect();
        LabSeedResult {
            seed: seeds[i],
            load_mean: result.load_mean,
            fairness_jain: result.fairness_jain,
            events_processed: result.events_processed,
            messages_delivered: result.messages_delivered,
            messages_dropped_loss: result.messages_dropped_loss,
            messages_dropped_overflow: result.messages_dropped_overflow,
            messages_unroutable: result.messages_unroutable,
            slices: slice_result(&result, &windows, failure_at),
        }
    });

    let slices = windows
        .iter()
        .enumerate()
        .map(|(w, &window)| {
            let per: Vec<&RegimeSlice> = per_seed.iter().map(|s| &s.slices[w]).collect();
            mean_slice(window, &per)
        })
        .collect();

    Ok(LabReport {
        name: spec.name.clone(),
        seeds: seeds.to_vec(),
        windows,
        slices,
        per_seed,
    })
}

// ---------------------------------------------------------------------------
// The shipped catalog
// ---------------------------------------------------------------------------

/// The specs behind the repository's `catalog/` directory, in shipping
/// order. The JSON files are generated from these definitions
/// (`lab --emit-catalog`), and an integration test pins the files against
/// them so the two can never drift.
///
/// The first three are the paper-faithful golden trio — single-phase
/// specs whose trajectories are bit-identical to the hard-coded presets.
/// The rest exercise what the paper only conjectures: partitions that
/// heal, flash crowds, diurnal populations, bursty loss storms, and a
/// mixed scenario where delay, loss, and churn all switch mid-run.
#[must_use]
pub fn builtin_catalog() -> Vec<ScenarioSpec> {
    let mut specs = Vec::new();

    for ((name, cfg), description) in crate::scenario::golden_trio().into_iter().zip([
        "Paper §3/Fig 2: SAPP, 10 CPs, 200 s — the golden-trio SAPP preset",
        "Paper §3: DCPP, 30 CPs, 300 s — the golden-trio DCPP preset",
        "Paper Fig 5: DCPP under uniform-resample churn — the golden-trio churn preset",
    ]) {
        specs.push(ScenarioSpec::from_config(
            &format!("paper-{name}"),
            description,
            cfg,
        ));
    }

    // Partition and recovery: the network blacks out completely for 60 s,
    // then heals while a resample regime churns fresh joins through the
    // pool (rejoining CPs restart their probers after the false verdicts
    // the partition caused).
    {
        let cfg = ScenarioConfig::paper_defaults(Protocol::dcpp_paper(), 12, 400.0, 17);
        let mut spec = ScenarioSpec::from_config(
            "partition-recovery",
            "total 60 s network partition, then heal + churn-driven rejoin",
            cfg,
        );
        spec.loss = vec![
            LossPhase {
                start: 0.0,
                loss: LossKind::None,
            },
            LossPhase {
                start: 150.0,
                loss: LossKind::Bernoulli(1.0),
            },
            LossPhase {
                start: 210.0,
                loss: LossKind::None,
            },
        ];
        spec.churn = vec![
            ChurnPhase {
                start: 0.0,
                churn: ChurnModel::Static,
            },
            ChurnPhase {
                start: 210.0,
                churn: ChurnModel::UniformResample {
                    min: 4,
                    max: 12,
                    rate: 0.1,
                },
            },
        ];
        specs.push(spec);
    }

    // Flash crowd: 8 CPs idle along until a 40-CP crowd ramps in over
    // 30 s, holds two minutes, and drains back out.
    {
        let mut cfg = ScenarioConfig::paper_defaults(Protocol::dcpp_paper(), 40, 400.0, 23);
        cfg.initially_active = 8;
        let mut spec = ScenarioSpec::from_config(
            "flash-crowd",
            "join wave to 40 CPs over 30 s, 120 s hold, then drain",
            cfg,
        );
        spec.churn = vec![ChurnPhase {
            start: 0.0,
            churn: ChurnModel::FlashCrowd {
                at: 100.0,
                peak: 40,
                ramp: 30.0,
                hold: 120.0,
            },
        }];
        specs.push(spec);
    }

    // A compressed "day": the population follows a sinusoid between 4 and
    // 48 CPs over a 300 s period, churning hardest near the peak.
    {
        let mut cfg = ScenarioConfig::paper_defaults(Protocol::dcpp_paper(), 48, 600.0, 29);
        cfg.initially_active = 4;
        let mut spec = ScenarioSpec::from_config(
            "diurnal-day",
            "sinusoid-modulated MMPP population, two compressed day cycles",
            cfg,
        );
        spec.churn = vec![ChurnPhase {
            start: 0.0,
            churn: ChurnModel::Diurnal {
                period: 300.0,
                min: 4,
                max: 48,
                rate: 0.2,
            },
        }];
        specs.push(spec);
    }

    // Bursty loss storm over SAPP: the §5 conjecture's weather — calm,
    // a 10 % Gilbert–Elliott storm, a 30 % storm, then calm again, with
    // mild churn refreshing CPs that false-verdicted during the bursts.
    {
        let cfg = ScenarioConfig::paper_defaults(Protocol::sapp_paper(), 12, 500.0, 31);
        let mut spec = ScenarioSpec::from_config(
            "bursty-loss-storm",
            "Gilbert–Elliott storms (10 % then 30 %) over SAPP, §5 conjecture",
            cfg,
        );
        spec.loss = vec![
            LossPhase {
                start: 0.0,
                loss: LossKind::None,
            },
            LossPhase {
                start: 150.0,
                loss: LossKind::Bursty(0.1),
            },
            LossPhase {
                start: 300.0,
                loss: LossKind::Bursty(0.3),
            },
            LossPhase {
                start: 400.0,
                loss: LossKind::None,
            },
        ];
        spec.churn = vec![ChurnPhase {
            start: 0.0,
            churn: ChurnModel::UniformResample {
                min: 6,
                max: 12,
                rate: 0.05,
            },
        }];
        specs.push(spec);
    }

    // Crash under loss: the device dies inside a lossy regime; the
    // per-regime slices separate clean-network detection behaviour from
    // loss-confounded behaviour.
    {
        let cfg = ScenarioConfig::paper_defaults(Protocol::dcpp_paper(), 10, 300.0, 37);
        let mut spec = ScenarioSpec::from_config(
            "crash-under-loss",
            "device crash at 200 s inside a 5 % i.i.d. loss regime",
            cfg,
        );
        spec.loss = vec![
            LossPhase {
                start: 0.0,
                loss: LossKind::None,
            },
            LossPhase {
                start: 100.0,
                loss: LossKind::Bernoulli(0.05),
            },
        ];
        spec.crash_at = Some(200.0);
        specs.push(spec);
    }

    // The acceptance scenario: delay, loss, AND churn all switch mid-run.
    {
        let mut cfg = ScenarioConfig::paper_defaults(Protocol::dcpp_paper(), 30, 600.0, 41);
        cfg.initially_active = 10;
        let mut spec = ScenarioSpec::from_config(
            "mixed-regime-stress",
            "delay, loss, and churn regimes all switching mid-run",
            cfg,
        );
        spec.delay = vec![
            DelayPhase {
                start: 0.0,
                delay: DelayKind::ThreeModePaper,
            },
            DelayPhase {
                start: 200.0,
                delay: DelayKind::Uniform(0.0002, 0.002),
            },
            DelayPhase {
                start: 400.0,
                delay: DelayKind::ThreeModePaper,
            },
        ];
        spec.loss = vec![
            LossPhase {
                start: 0.0,
                loss: LossKind::None,
            },
            LossPhase {
                start: 250.0,
                loss: LossKind::Bursty(0.15),
            },
            LossPhase {
                start: 450.0,
                loss: LossKind::None,
            },
        ];
        spec.churn = vec![
            ChurnPhase {
                start: 0.0,
                churn: ChurnModel::UniformResample {
                    min: 2,
                    max: 20,
                    rate: 0.05,
                },
            },
            ChurnPhase {
                start: 300.0,
                churn: ChurnModel::FlashCrowd {
                    at: 300.0,
                    peak: 30,
                    ramp: 20.0,
                    hold: 60.0,
                },
            },
            ChurnPhase {
                start: 450.0,
                churn: ChurnModel::Diurnal {
                    period: 150.0,
                    min: 5,
                    max: 25,
                    rate: 0.1,
                },
            },
        ];
        specs.push(spec);
    }

    specs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::golden_trio;

    fn quick_spec() -> ScenarioSpec {
        let mut cfg = ScenarioConfig::paper_defaults(Protocol::dcpp_paper(), 6, 60.0, 3);
        cfg.load_window = 2.0;
        ScenarioSpec::from_config("quick", "unit-test spec", cfg)
    }

    #[test]
    fn single_phase_spec_matches_bare_scenario_bit_for_bit() {
        for (name, cfg) in golden_trio() {
            let spec = ScenarioSpec::from_config(name, "paper preset", cfg);
            let via_spec = run_spec_once(&spec).expect("spec runs");
            let mut bare = Scenario::build(cfg);
            bare.run();
            let direct = bare.collect();
            assert_eq!(
                serde_json::to_string(&via_spec).unwrap(),
                serde_json::to_string(&direct).unwrap(),
                "{name}: spec lowering must not perturb the trajectory"
            );
        }
    }

    #[test]
    fn spec_round_trips_through_json() {
        let mut spec = quick_spec();
        spec.delay.push(DelayPhase {
            start: 20.0,
            delay: DelayKind::Uniform(0.0001, 0.001),
        });
        spec.loss.push(LossPhase {
            start: 30.0,
            loss: LossKind::Bursty(0.1),
        });
        spec.churn.push(ChurnPhase {
            start: 40.0,
            churn: ChurnModel::Diurnal {
                period: 20.0,
                min: 1,
                max: 6,
                rate: 0.5,
            },
        });
        spec.crash_at = Some(50.0);
        let json = spec.to_json();
        let back = ScenarioSpec::from_json(&json).expect("round-trips");
        assert_eq!(back, spec);
    }

    #[test]
    fn validation_catches_structural_errors() {
        type Mutation = Box<dyn Fn(&mut ScenarioSpec)>;
        let cases: Vec<(&str, Mutation)> = vec![
            ("empty name", Box::new(|s| s.name.clear())),
            ("no CPs", Box::new(|s| s.cp_pool = 0)),
            (
                "oversized active set",
                Box::new(|s| s.initially_active = 99),
            ),
            ("zero buffer", Box::new(|s| s.buffer_capacity = 0)),
            ("no delay phases", Box::new(|s| s.delay.clear())),
            ("late first phase", Box::new(|s| s.delay[0].start = 1.0)),
            (
                "phase past horizon",
                Box::new(|s| {
                    s.loss.push(LossPhase {
                        start: 60.0,
                        loss: LossKind::None,
                    });
                }),
            ),
            (
                "non-increasing churn phases",
                Box::new(|s| {
                    s.churn.push(ChurnPhase {
                        start: 0.0,
                        churn: ChurnModel::Static,
                    });
                }),
            ),
            (
                "bad loss probability",
                Box::new(|s| s.loss[0].loss = LossKind::Bernoulli(1.5)),
            ),
            (
                "bad bursty rate",
                Box::new(|s| s.loss[0].loss = LossKind::Bursty(0.9)),
            ),
            (
                "inverted uniform delay",
                Box::new(|s| s.delay[0].delay = DelayKind::Uniform(0.5, 0.1)),
            ),
            (
                "inverted diurnal bounds",
                Box::new(|s| {
                    s.churn[0].churn = ChurnModel::Diurnal {
                        period: 10.0,
                        min: 9,
                        max: 2,
                        rate: 0.1,
                    };
                }),
            ),
            ("crash outside run", Box::new(|s| s.crash_at = Some(99.0))),
            (
                "crash and bye together",
                Box::new(|s| {
                    s.crash_at = Some(10.0);
                    s.bye_at = Some(20.0);
                }),
            ),
            (
                "tuner without SAPP",
                Box::new(|s| {
                    s.sapp_auto_tune = Some(presence_core::AutoTuneConfig::default());
                }),
            ),
        ];
        for (what, mutate) in cases {
            let mut spec = quick_spec();
            mutate(&mut spec);
            assert!(spec.validate().is_err(), "{what}: should be rejected");
        }
        assert!(quick_spec().validate().is_ok());
    }

    #[test]
    fn regime_windows_union_all_timelines() {
        let mut spec = quick_spec();
        spec.delay.push(DelayPhase {
            start: 20.0,
            delay: DelayKind::Constant(0.001),
        });
        spec.loss.push(LossPhase {
            start: 30.0,
            loss: LossKind::Bernoulli(0.05),
        });
        spec.churn.push(ChurnPhase {
            start: 20.0,
            churn: ChurnModel::Static,
        });
        assert_eq!(
            spec.regime_windows(),
            vec![(0.0, 20.0), (20.0, 30.0), (30.0, 60.0)]
        );
    }

    #[test]
    fn lab_report_slices_and_is_jobs_invariant() {
        let mut spec = quick_spec();
        spec.loss.push(LossPhase {
            start: 30.0,
            loss: LossKind::Bernoulli(0.2),
        });
        let seeds = [1, 2, 3, 4];
        let serial = run_lab(&spec, &seeds, 1).expect("runs");
        let parallel = run_lab(&spec, &seeds, 3).expect("runs");
        assert_eq!(
            serde_json::to_string(&serial).unwrap(),
            serde_json::to_string(&parallel).unwrap(),
            "worker count must not perturb the report"
        );
        assert_eq!(serial.windows.len(), 2);
        assert_eq!(serial.slices.len(), 2);
        assert_eq!(serial.per_seed.len(), 4);
        // Loss kicks in only in the second window.
        let lossy: u64 = serial
            .per_seed
            .iter()
            .map(|s| s.messages_dropped_loss)
            .sum();
        assert!(lossy > 0, "Bernoulli(0.2) regime must drop something");
        for s in &serial.slices {
            assert!(s.load_mean.is_some(), "device load defined in every window");
        }
    }

    #[test]
    fn builtin_catalog_validates_and_has_unique_names() {
        let catalog = builtin_catalog();
        assert!(catalog.len() >= 8, "catalog has {} entries", catalog.len());
        let mut names: Vec<&str> = catalog.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), catalog.len(), "catalog names must be unique");
        for spec in &catalog {
            spec.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            let back = ScenarioSpec::from_json(&spec.to_json())
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            assert_eq!(&back, spec, "{} must round-trip", spec.name);
        }
        let mixed = catalog
            .iter()
            .find(|s| s.name == "mixed-regime-stress")
            .expect("acceptance scenario shipped");
        assert!(
            mixed.delay.len() > 1 && mixed.loss.len() > 1 && mixed.churn.len() > 1,
            "mixed scenario must switch all three regimes"
        );
    }

    #[test]
    fn crash_detection_latency_lands_in_the_right_slice() {
        let mut spec = quick_spec();
        spec.churn.push(ChurnPhase {
            start: 30.0,
            churn: ChurnModel::Static,
        });
        spec.crash_at = Some(40.0);
        let report = run_lab(&spec, &[7], 1).expect("runs");
        assert_eq!(report.slices.len(), 2);
        assert_eq!(report.slices[0].detections, 0);
        assert_eq!(report.slices[1].detections, 6, "all 6 CPs detect");
        let latency = report.slices[1]
            .detection_latency_mean
            .expect("latency defined");
        assert!(latency > 0.0 && latency < 10.0, "latency {latency}");
    }
}
