//! Result types extracted from finished scenarios.

use crate::cp_actor::CpRecord;
use presence_core::CpId;
use serde::{Deserialize, Serialize};

/// Per-CP summary, flattened for serialisation and table rendering.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpSummary {
    /// The CP's identity.
    pub id: CpId,
    /// Mean of the per-cycle delay δ (seconds); `NaN` if no cycle finished.
    pub mean_delay: f64,
    /// Sample variance of the per-cycle delay.
    pub delay_variance: f64,
    /// Mean probe frequency: successful cycles per active second would be
    /// ideal, but to match the paper's plots this is the mean of `1/δ`
    /// samples.
    pub mean_frequency: f64,
    /// `(t, 1/δ)` series for plotting (Figures 2–4).
    pub frequency_series: Vec<(f64, f64)>,
    /// Probes transmitted (including retransmissions).
    pub probes_sent: u64,
    /// Completed (successful) probe cycles.
    pub cycles_succeeded: u64,
    /// Failed cycles (absence verdicts).
    pub cycles_failed: u64,
    /// Retransmissions sent.
    pub retransmissions: u64,
    /// When this CP declared the device absent (seconds), if it did.
    pub detected_absent_at: Option<f64>,
    /// How many times the CP joined.
    pub joins: u64,
    /// Leave notices this CP forwarded over the overlay.
    pub notices_forwarded: u64,
}

impl CpSummary {
    /// Builds a summary from an actor record. `_now` reserved for
    /// rate-normalised metrics.
    #[must_use]
    pub fn from_record(rec: &CpRecord, _now: f64) -> Self {
        let freq_series: Vec<(f64, f64)> = rec
            .frequency_series
            .samples()
            .iter()
            .map(|s| (s.t, s.value))
            .collect();
        let mean_freq = if !freq_series.is_empty() {
            freq_series.iter().map(|&(_, f)| f).sum::<f64>() / freq_series.len() as f64
        } else if !rec.freq_stats.is_empty() {
            // Streaming recorders keep no series; fall back to the Welford
            // accumulator (numerically equal up to floating-point
            // summation order).
            rec.freq_stats.mean()
        } else {
            f64::NAN
        };
        Self {
            id: rec.id,
            mean_delay: rec.delay_stats.mean(),
            delay_variance: rec.delay_stats.sample_variance(),
            mean_frequency: mean_freq,
            frequency_series: freq_series,
            probes_sent: rec.stats.probes_sent,
            cycles_succeeded: rec.stats.cycles_succeeded,
            cycles_failed: rec.stats.cycles_failed,
            retransmissions: rec.stats.retransmissions,
            detected_absent_at: rec.detected_absent_at.map(|t| t.as_secs_f64()),
            joins: rec.joins,
            notices_forwarded: rec.notices_forwarded,
        }
    }
}

/// Everything a finished scenario reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioResult {
    /// Virtual seconds simulated.
    pub duration: f64,
    /// Events the engine processed.
    pub events_processed: u64,
    /// Probes the device answered.
    pub device_probes: u64,
    /// `(window_start, probes_per_second)` — the Figure 5 load curve.
    pub load_series: Vec<(f64, f64)>,
    /// Mean of the load series (excluding the first, warm-up window).
    pub load_mean: f64,
    /// Sample variance of the load series.
    pub load_variance: f64,
    /// Time-weighted mean in-flight message count (the paper's "average
    /// buffer length", ≈ 0.004 in §3).
    pub mean_buffer_occupancy: Option<f64>,
    /// Messages offered to the network.
    pub messages_offered: u64,
    /// Messages whose delivery deadline passed within the run.
    pub messages_delivered: u64,
    /// Messages dropped by buffer overflow.
    pub messages_dropped_overflow: u64,
    /// Messages dropped by the loss model.
    pub messages_dropped_loss: u64,
    /// Messages addressed to an unregistered address — always 0 in a
    /// correctly wired scenario (misroutes must not masquerade as loss).
    pub messages_unroutable: u64,
    /// `(t, active CPs)` step series — Figure 5's second curve.
    pub population_series: Vec<(f64, f64)>,
    /// Per-CP summaries (the whole pool, including never-active CPs).
    pub cps: Vec<CpSummary>,
    /// Jain fairness index over the mean frequencies of CPs that completed
    /// at least one cycle.
    pub fairness_jain: f64,
}

impl ScenarioResult {
    /// Engine events spent on the network path per delivered message,
    /// computed as `(offered + delivered) / delivered`: one `Send`
    /// dispatch per offered message plus one `Deliver` firing per
    /// delivered one. The single-hop delivery path holds this at 2 plus
    /// the drop/in-flight share (the old route cost 3); the `perf_report`
    /// CI gate fails above 2.05. `None` when nothing was delivered.
    ///
    /// Approximation: a `Broadcast` is one engine dispatch but increments
    /// `offered` once per copy, so broadcast-heavy runs *over*state the
    /// true event cost — conservative for the ≤ gate. (Unroutable sends,
    /// one dispatch with nothing offered, are the tiny inverse.)
    #[must_use]
    pub fn events_per_delivered_message(&self) -> Option<f64> {
        if self.messages_delivered == 0 {
            return None;
        }
        let events = self.messages_offered + self.messages_delivered;
        Some(events as f64 / self.messages_delivered as f64)
    }

    /// Summaries of CPs that completed at least one probe cycle.
    #[must_use]
    pub fn active_cps(&self) -> Vec<&CpSummary> {
        self.cps.iter().filter(|c| c.cycles_succeeded > 0).collect()
    }

    /// Mean delays of active CPs, sorted ascending.
    #[must_use]
    pub fn sorted_mean_delays(&self) -> Vec<f64> {
        let mut v: Vec<f64> = self
            .active_cps()
            .iter()
            .map(|c| c.mean_delay)
            .filter(|d| d.is_finite())
            .collect();
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        v
    }

    /// Descriptive statistics over the active CPs' mean delays (the §3
    /// steady-state table's underlying distribution); `None` when no CP
    /// completed a cycle.
    #[must_use]
    pub fn delay_summary(&self) -> Option<presence_stats::Summary> {
        let delays: Vec<f64> = self.active_cps().iter().map(|c| c.mean_delay).collect();
        presence_stats::describe(&delays)
    }

    /// Ratio between the fastest and slowest active CP's mean frequency
    /// (1.0 = perfectly fair).
    #[must_use]
    pub fn frequency_spread(&self) -> f64 {
        let freqs: Vec<f64> = self
            .active_cps()
            .iter()
            .map(|c| c.mean_frequency)
            .filter(|f| f.is_finite())
            .collect();
        presence_stats::max_min_ratio(&freqs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presence_des::SimTime;
    use presence_stats::{TimeSeries, Welford};

    fn record(id: u32, delays: &[f64]) -> CpRecord {
        let mut freq = TimeSeries::new();
        let mut stats = Welford::new();
        let mut freq_stats = Welford::new();
        for (i, &d) in delays.iter().enumerate() {
            freq.push(i as f64, 1.0 / d);
            freq_stats.push(1.0 / d);
            stats.push(d);
        }
        CpRecord {
            id: CpId(id),
            frequency_series: freq,
            delay_stats: stats,
            freq_stats,
            stats: presence_core::CpStats {
                probes_sent: delays.len() as u64,
                cycles_started: delays.len() as u64,
                cycles_succeeded: delays.len() as u64,
                cycles_failed: 0,
                stale_replies: 0,
                retransmissions: 0,
            },
            detected_absent_at: Some(SimTime::from_secs_f64(99.0)),
            joins: 1,
            notices_forwarded: 0,
        }
    }

    #[test]
    fn summary_from_record() {
        let rec = record(3, &[2.0, 2.0, 4.0]);
        let s = CpSummary::from_record(&rec, 100.0);
        assert_eq!(s.id, CpId(3));
        assert!((s.mean_delay - 8.0 / 3.0).abs() < 1e-9);
        assert_eq!(s.cycles_succeeded, 3);
        assert_eq!(s.detected_absent_at, Some(99.0));
        assert_eq!(s.frequency_series.len(), 3);
        // mean of (0.5, 0.5, 0.25)
        assert!((s.mean_frequency - 1.25 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn streaming_record_falls_back_to_welford_mean() {
        // A streaming-mode record has no series; the summary must still
        // report the mean frequency from the Welford accumulator.
        let mut rec = record(1, &[2.0, 4.0]);
        rec.frequency_series = TimeSeries::new();
        let s = CpSummary::from_record(&rec, 10.0);
        assert!(s.frequency_series.is_empty());
        assert!((s.mean_frequency - 0.375).abs() < 1e-12);
    }

    #[test]
    fn result_helpers() {
        let cps = vec![
            CpSummary::from_record(&record(0, &[1.0, 1.0]), 10.0),
            CpSummary::from_record(&record(1, &[4.0, 4.0]), 10.0),
        ];
        let r = ScenarioResult {
            duration: 10.0,
            events_processed: 0,
            device_probes: 4,
            load_series: vec![],
            load_mean: f64::NAN,
            load_variance: f64::NAN,
            mean_buffer_occupancy: None,
            messages_offered: 0,
            messages_delivered: 0,
            messages_dropped_overflow: 0,
            messages_dropped_loss: 0,
            messages_unroutable: 0,
            population_series: vec![],
            cps,
            fairness_jain: 0.5,
        };
        assert_eq!(r.active_cps().len(), 2);
        assert_eq!(r.sorted_mean_delays(), vec![1.0, 4.0]);
        assert!((r.frequency_spread() - 4.0).abs() < 1e-9);
        let summary = r.delay_summary().unwrap();
        assert_eq!(summary.count, 2);
        assert!((summary.mean - 2.5).abs() < 1e-9);
        assert_eq!(summary.min, 1.0);
        assert_eq!(summary.max, 4.0);
    }

    #[test]
    fn result_serialises() {
        let r = ScenarioResult {
            duration: 1.0,
            events_processed: 10,
            device_probes: 5,
            load_series: vec![(0.0, 10.0)],
            load_mean: 10.0,
            load_variance: 0.0,
            mean_buffer_occupancy: Some(0.004),
            messages_offered: 10,
            messages_delivered: 5,
            messages_dropped_overflow: 0,
            messages_dropped_loss: 0,
            messages_unroutable: 0,
            population_series: vec![(0.0, 3.0)],
            cps: vec![],
            fairness_jain: 1.0,
        };
        let json = serde_json::to_string(&r).unwrap();
        let back: ScenarioResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
